//! Criterion micro-benchmarks of DIESEL's hot paths.
//!
//! These complement the table/figure binaries: they measure the *real*
//! in-process costs (chunk packing/parsing, ID minting, snapshot codec,
//! namespace stat, shuffle generation, KV ops, cache hits, request
//! merging) plus the chunk-size and group-size ablations called out in
//! DESIGN.md §5.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use diesel_cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_chunk::{ChunkBuilder, ChunkBuilderConfig, ChunkIdGenerator, ChunkReader, ChunkWriter};
use diesel_kv::{KvStore, ShardedKv};
use diesel_meta::recovery::chunk_object_key;
use diesel_meta::{MetaService, MetaSnapshot};
use diesel_shuffle::{epoch_order, ChunkFiles, DatasetIndex, ShuffleKind};
use diesel_store::MemObjectStore;
use diesel_store::ObjectStore;

fn bench_chunk_id(c: &mut Criterion) {
    let gen = ChunkIdGenerator::deterministic(1, 1, 1000);
    c.bench_function("chunk_id/next", |b| b.iter(|| std::hint::black_box(gen.next_id())));
    let id = gen.next_id();
    c.bench_function("chunk_id/encode", |b| b.iter(|| std::hint::black_box(id.encode())));
    let s = id.encode();
    c.bench_function("chunk_id/decode", |b| {
        b.iter(|| diesel_chunk::ChunkId::decode(std::hint::black_box(&s)).unwrap())
    });
}

fn build_chunk(files: usize, file_size: usize) -> Vec<u8> {
    let mut b = ChunkBuilder::new(ChunkBuilderConfig {
        target_chunk_size: usize::MAX,
        ..Default::default()
    });
    let data = vec![0xabu8; file_size];
    for i in 0..files {
        b.add_file(&format!("train/cls{}/img{i:05}.bin", i % 10), &data).unwrap();
    }
    let ids = ChunkIdGenerator::deterministic(1, 1, 1);
    b.seal(ids.next_id(), 1).1
}

fn bench_chunk_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk");
    // Ablation: chunk size 256 KB → 16 MB at 4 KB files.
    for &files in &[64usize, 1024, 4096] {
        let bytes = (files * 4096) as u64;
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(BenchmarkId::new("build_4k_files", files), &files, |b, &n| {
            b.iter(|| std::hint::black_box(build_chunk(n, 4096).len()))
        });
        let chunk = build_chunk(files, 4096);
        g.bench_with_input(BenchmarkId::new("parse", files), &chunk, |b, chunk| {
            b.iter(|| ChunkReader::parse(std::hint::black_box(chunk)).unwrap().file_count())
        });
    }
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let svc = MetaService::new(Arc::new(ShardedKv::new()));
    let ids = ChunkIdGenerator::deterministic(2, 2, 2);
    let cfg = ChunkBuilderConfig { target_chunk_size: 1 << 20, ..Default::default() };
    let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
    for i in 0..20_000 {
        w.add_file(&format!("train/c{}/f{i:06}", i % 100), &[0u8; 16]).unwrap();
    }
    for sealed in w.finish() {
        svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
    }
    let snap = svc.build_snapshot("ds").unwrap();
    let encoded = snap.encode();
    let mut g = c.benchmark_group("snapshot_20k_files");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("encode", |b| b.iter(|| std::hint::black_box(snap.encode().len())));
    g.bench_function("decode", |b| {
        b.iter(|| MetaSnapshot::decode(std::hint::black_box(&encoded)).unwrap().files.len())
    });
    let ns = snap.build_namespace();
    g.bench_function("namespace_stat", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 20_000;
            let path = &snap.files[i].path;
            std::hint::black_box(ns.stat(path).unwrap().length)
        })
    });
    g.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    // Ablation: group size sweep at fixed dataset shape.
    let index = DatasetIndex::new(
        (0..2000u32)
            .map(|ci| ChunkFiles {
                chunk: diesel_chunk::ChunkId::new(ci, diesel_chunk::MachineId::from_seed(1), 1, ci),
                chunk_bytes: 4 << 20,
                files: (0..40).map(|f| format!("c{ci}/f{f}")).collect(),
            })
            .collect(),
    );
    let mut g = c.benchmark_group("shuffle_80k_files");
    g.throughput(Throughput::Elements(80_000));
    g.bench_function("dataset_shuffle", |b| {
        let mut e = 0u64;
        b.iter(|| {
            e += 1;
            epoch_order(&index, ShuffleKind::DatasetShuffle, 7, e).len()
        })
    });
    for &gs in &[10usize, 100, 500] {
        g.bench_with_input(BenchmarkId::new("chunk_wise", gs), &gs, |b, &gs| {
            let mut e = 0u64;
            b.iter(|| {
                e += 1;
                epoch_order(&index, ShuffleKind::ChunkWise { group_size: gs }, 7, e).len()
            })
        });
    }
    g.finish();
}

fn bench_kv(c: &mut Criterion) {
    let kv = ShardedKv::new();
    for i in 0..100_000 {
        kv.put(&format!("f/ds/file{i:06}"), vec![0u8; 48].into()).unwrap();
    }
    let mut g = c.benchmark_group("kv_100k_keys");
    g.bench_function("get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 48_271) % 100_000;
            kv.get(&format!("f/ds/file{i:06}")).unwrap()
        })
    });
    g.bench_function("put", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            kv.put(&format!("f/ds/new{i:08}"), vec![0u8; 48].into()).unwrap()
        })
    });
    g.finish();
}

fn bench_cache_hit(c: &mut Criterion) {
    let store = Arc::new(MemObjectStore::new());
    let svc = MetaService::new(Arc::new(ShardedKv::new()));
    let ids = ChunkIdGenerator::deterministic(3, 3, 3);
    let cfg = ChunkBuilderConfig { target_chunk_size: 4 << 20, ..Default::default() };
    let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
    for i in 0..5_000 {
        w.add_file(&format!("f{i:05}"), &[1u8; 4096]).unwrap();
    }
    for sealed in w.finish() {
        store.put(&chunk_object_key("ds", sealed.header.id), sealed.bytes.clone()).unwrap();
        svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
    }
    let snap = svc.build_snapshot("ds").unwrap();
    let cache = TaskCache::new(
        Topology::uniform(4, 4).unwrap(),
        store,
        "ds",
        snap.chunks.clone(),
        CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
    )
    .unwrap();
    cache.prefetch_all().unwrap();
    let metas: Vec<diesel_meta::FileMeta> = snap.files.iter().map(|f| f.meta).collect();
    let mut g = c.benchmark_group("task_cache");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("hit_4k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 2711) % metas.len();
            cache.get_file(&metas[i]).unwrap().data.len()
        })
    });
    g.finish();
}

fn bench_request_executor(c: &mut Criterion) {
    let metas: Vec<diesel_meta::FileMeta> = (0..4096)
        .map(|i| diesel_meta::FileMeta {
            chunk: diesel_chunk::ChunkId::new(
                (i % 64) as u32,
                diesel_chunk::MachineId::from_seed(1),
                1,
                0,
            ),
            index_in_chunk: i as u32,
            offset: ((i * 2_654_435_761usize) % (1 << 20)) as u64,
            length: 4096,
            uploaded_ms: 0,
        })
        .collect();
    let mut g = c.benchmark_group("request_executor");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("plan_4096_reads_64_chunks", |b| {
        b.iter(|| diesel_core::plan_chunk_reads(std::hint::black_box(&metas)).len())
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_chunk_id,
        bench_chunk_roundtrip,
        bench_snapshot,
        bench_shuffle,
        bench_kv,
        bench_cache_hit,
        bench_request_executor
);
criterion_main!(benches);
