//! # diesel-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§6); run e.g.
//!
//! ```text
//! cargo run -p diesel-bench --release --bin fig11a
//! ```
//!
//! Each binary prints the paper's reported numbers next to the
//! reproduction's, and appends its output to `results/` when the
//! `DIESEL_RESULTS_DIR` environment variable is set. EXPERIMENTS.md
//! indexes all of them.
//!
//! Shared infrastructure:
//!
//! * [`model::DieselClusterModel`] — the calibrated timing model of the
//!   DIESEL read path (local / one-hop remote / FUSE) used by the
//!   cluster-scale figures.
//! * [`driver`] — deterministic simulated-client drivers.
//! * [`report`] — fixed-width table printing and result persistence.

pub mod driver;
pub mod model;
pub mod report;

pub use driver::{run_uniform_clients, ClientOutcome};
pub use model::DieselClusterModel;
pub use report::Table;
