//! Deterministic simulated-client drivers shared by the experiment
//! binaries.
//!
//! The driver reports through `diesel-obs` rather than hand-carried
//! counters: every operation lands in a `bench.ops` counter and a
//! `bench.op_latency` histogram, and [`ClientOutcome`] is read back
//! from one registry snapshot.

use std::sync::Arc;

use diesel_obs::{Registry, Summary};
use diesel_simnet::{run_actors, SimActor, SimTime};
use diesel_util::MockClock;

/// Aggregate outcome of one driven workload.
#[derive(Debug, Clone, Copy)]
pub struct ClientOutcome {
    /// Total operations completed.
    pub ops: u64,
    /// Simulation makespan.
    pub makespan: SimTime,
    /// Operations per simulated second.
    pub qps: f64,
    /// Per-operation simulated service-time distribution (ns).
    pub latency: Summary,
}

/// Drive `clients` simulated clients, each performing `ops_each`
/// operations; `op(client, op_index, now) -> completion` computes one
/// operation's completion time. Deterministic (least-clock-first).
pub fn run_uniform_clients(
    clients: usize,
    ops_each: usize,
    op: impl Fn(usize, usize, SimTime) -> SimTime + Sync,
) -> ClientOutcome {
    // MockClock keeps the registry deterministic (lint R2): event
    // timestamps never read the wall clock.
    let registry = Registry::new(Arc::new(MockClock::new()));
    let ops_counter = registry.counter("bench.ops", &[]);
    let latency = registry.histogram("bench.op_latency", &[]);
    let mut actors: Vec<Box<dyn FnMut(SimTime) -> Option<SimTime> + '_>> = (0..clients)
        .map(|c| {
            let mut i = 0usize;
            let op = &op;
            let ops_counter = ops_counter.clone();
            let latency = latency.clone();
            Box::new(move |now: SimTime| {
                if i == ops_each {
                    return None;
                }
                let done = op(c, i, now);
                i += 1;
                ops_counter.inc();
                latency.record_ns((done - now).as_nanos());
                Some(done)
            }) as Box<dyn FnMut(SimTime) -> Option<SimTime> + '_>
        })
        .collect();
    let mut refs: Vec<&mut dyn SimActor> =
        actors.iter_mut().map(|b| b as &mut dyn SimActor).collect();
    let report = run_actors(&mut refs);
    let snap = registry.snapshot();
    let ops = snap.counter("bench.ops");
    let makespan = report.makespan();
    let qps = if makespan == SimTime::ZERO { 0.0 } else { ops as f64 / makespan.as_secs_f64() };
    ClientOutcome { ops, makespan, qps, latency: snap.histogram_summary("bench.op_latency") }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_cost_ops_give_exact_qps() {
        let out = run_uniform_clients(4, 100, |_, _, now| now + SimTime::from_millis(1));
        assert_eq!(out.ops, 400);
        assert_eq!(out.makespan, SimTime::from_millis(100));
        assert!((out.qps - 4000.0).abs() < 1.0);
        // The latency distribution comes from the obs registry and sees
        // every op at its exact (constant) cost.
        assert_eq!(out.latency.count, 400);
        assert_eq!(out.latency.max_ns, 1_000_000);
    }

    #[test]
    fn zero_clients() {
        let out = run_uniform_clients(0, 100, |_, _, now| now);
        assert_eq!(out.ops, 0);
        assert_eq!(out.qps, 0.0);
        assert_eq!(out.latency.count, 0);
    }
}
