//! Deterministic simulated-client drivers shared by the experiment
//! binaries.

use diesel_simnet::{run_actors, SimActor, SimTime};

/// Aggregate outcome of one driven workload.
#[derive(Debug, Clone, Copy)]
pub struct ClientOutcome {
    /// Total operations completed.
    pub ops: u64,
    /// Simulation makespan.
    pub makespan: SimTime,
    /// Operations per simulated second.
    pub qps: f64,
}

/// Drive `clients` simulated clients, each performing `ops_each`
/// operations; `op(client, op_index, now) -> completion` computes one
/// operation's completion time. Deterministic (least-clock-first).
pub fn run_uniform_clients(
    clients: usize,
    ops_each: usize,
    op: impl Fn(usize, usize, SimTime) -> SimTime + Sync,
) -> ClientOutcome {
    let mut actors: Vec<Box<dyn FnMut(SimTime) -> Option<SimTime> + '_>> = (0..clients)
        .map(|c| {
            let mut i = 0usize;
            let op = &op;
            Box::new(move |now: SimTime| {
                if i == ops_each {
                    return None;
                }
                let done = op(c, i, now);
                i += 1;
                Some(done)
            }) as Box<dyn FnMut(SimTime) -> Option<SimTime> + '_>
        })
        .collect();
    let mut refs: Vec<&mut dyn SimActor> =
        actors.iter_mut().map(|b| b as &mut dyn SimActor).collect();
    let report = run_actors(&mut refs);
    let ops = (clients * ops_each) as u64;
    let makespan = report.makespan();
    let qps = if makespan == SimTime::ZERO { 0.0 } else { ops as f64 / makespan.as_secs_f64() };
    ClientOutcome { ops, makespan, qps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_cost_ops_give_exact_qps() {
        let out = run_uniform_clients(4, 100, |_, _, now| now + SimTime::from_millis(1));
        assert_eq!(out.ops, 400);
        assert_eq!(out.makespan, SimTime::from_millis(100));
        assert!((out.qps - 4000.0).abs() < 1.0);
    }

    #[test]
    fn zero_clients() {
        let out = run_uniform_clients(0, 100, |_, _, now| now);
        assert_eq!(out.ops, 0);
        assert_eq!(out.qps, 0.0);
    }
}
