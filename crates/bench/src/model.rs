//! Calibrated timing model of the DIESEL read/write paths at cluster
//! scale.
//!
//! Calibration anchors (paper §6):
//!
//! * Fig. 11a — DIESEL-API ≈ 1.2 M QPS and DIESEL-FUSE ≈ 0.8 M QPS on
//!   4 KB cached reads with 10 nodes × 16 clients.
//! * Fig. 12 — with chunk-wise shuffle, DIESEL-API ≈ 4.3 GB/s on 4 KB
//!   files and ≈ 10.1 GB/s on 128 KB files (160 threads).
//! * Fig. 9 — 64 processes write > 2 M 4 KB files/s (client-side chunk
//!   aggregation; the ImageNet write completes in seconds).
//!
//! The model: a client's read is served either locally (its node owns
//! the chunk) or by the owner node's master client — one hop. Each
//! master is a single-threaded data-plane [`Resource`] moving bytes at
//! Thrift-copy speed; remote requests additionally pay a client-side
//! round trip. The FUSE facade multiplies kernel crossings per file.

use diesel_simnet::{Resource, SimTime};

/// Timing model for one DIESEL task's cluster.
pub struct DieselClusterModel {
    /// Physical nodes in the task.
    pub nodes: usize,
    /// One-hop client-observed RPC round trip (Thrift over IB).
    pub client_rtt: SimTime,
    /// Cost of a local fetch through the node's master client
    /// (loopback RPC; non-master I/O workers do not share its address
    /// space).
    pub local_service: SimTime,
    /// Per-kernel-crossing FUSE overhead.
    pub fuse_per_request: SimTime,
    /// Kernel FUSE request size (read splitting).
    pub fuse_max_read: u64,
    /// Master data-plane base cost per request.
    pub master_base: SimTime,
    /// Master data-plane copy bandwidth (bytes/s).
    pub master_bytes_per_sec: f64,
    /// Client-side write-path cost per file (CRC + builder append).
    pub write_per_file: SimTime,
    /// Client-side write-path copy bandwidth.
    pub write_bytes_per_sec: f64,
    masters: Vec<Resource>,
}

impl DieselClusterModel {
    /// The calibrated defaults for the paper's 10-node testbed.
    pub fn new(nodes: usize) -> Self {
        DieselClusterModel {
            nodes,
            client_rtt: SimTime::from_micros(100),
            local_service: SimTime::from_micros(45),
            fuse_per_request: SimTime::from_micros(90),
            fuse_max_read: 128 << 10,
            master_base: SimTime::from_micros(6),
            master_bytes_per_sec: 1.3e9,
            write_per_file: SimTime::from_micros(28),
            write_bytes_per_sec: 3.0e9,
            masters: (0..nodes).map(|_| Resource::new("diesel-master", 1)).collect(),
        }
    }

    /// Which node owns a file, given a stable per-file key. The key is
    /// avalanche-mixed first so structured keys (client*i arithmetic)
    /// still spread uniformly over masters.
    pub fn owner_of(&self, file_key: u64) -> usize {
        let mut x = file_key;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x as usize) % self.nodes
    }

    /// Completion time of one cached read issued at `now` by a client on
    /// `client_node` for a file owned by `owner_node`.
    pub fn read_at(
        &self,
        now: SimTime,
        client_node: usize,
        owner_node: usize,
        bytes: u64,
        fuse: bool,
    ) -> SimTime {
        let mut done = if owner_node == client_node {
            now + self.local_service
        } else {
            let service = self.master_base + SimTime::for_bytes(bytes, self.master_bytes_per_sec);
            let grant = self.masters[owner_node].acquire(now, service);
            grant.end + self.client_rtt
        };
        if fuse {
            let crossings = bytes.div_ceil(self.fuse_max_read).max(1);
            done += SimTime::from_nanos(crossings * self.fuse_per_request.as_nanos());
        }
        done
    }

    /// Completion time of one `DL_put` of `bytes` issued at `now`
    /// (client-side aggregation: chunk shipping is asynchronous and
    /// overlaps, so the per-file cost dominates — Fig. 9).
    pub fn write_at(&self, now: SimTime, bytes: u64) -> SimTime {
        now + self.write_per_file + SimTime::for_bytes(bytes, self.write_bytes_per_sec)
    }

    /// Reset master clocks between phases.
    pub fn reset(&self) {
        for m in &self.masters {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_uniform_clients;

    #[test]
    fn api_read_qps_matches_fig11a() {
        // 10 nodes × 16 clients, 4 KB cached reads → ≈ 1.1–1.3 M QPS.
        let m = DieselClusterModel::new(10);
        let outcome = run_uniform_clients(160, 300, |client, op, now| {
            let node = client % 10;
            let owner = m.owner_of((client * 7919 + op * 104729) as u64);
            m.read_at(now, node, owner, 4 << 10, false)
        });
        assert!((0.9e6..1.5e6).contains(&outcome.qps), "DIESEL-API 4 KB QPS {:.0}", outcome.qps);
    }

    #[test]
    fn fuse_costs_roughly_a_third() {
        let run = |fuse: bool| {
            let m = DieselClusterModel::new(10);
            run_uniform_clients(160, 300, |client, op, now| {
                let node = client % 10;
                let owner = m.owner_of((client * 31 + op * 7) as u64);
                m.read_at(now, node, owner, 4 << 10, fuse)
            })
            .qps
        };
        let api = run(false);
        let fuse = run(true);
        let ratio = fuse / api;
        assert!((0.5..0.85).contains(&ratio), "FUSE/API = {ratio:.2}");
    }

    #[test]
    fn large_reads_are_bandwidth_bound() {
        // Fig. 12: 128 KB reads ≈ 10 GB/s aggregate.
        let m = DieselClusterModel::new(10);
        let outcome = run_uniform_clients(160, 120, |client, op, now| {
            let node = client % 10;
            let owner = m.owner_of((client * 13 + op * 3) as u64);
            m.read_at(now, node, owner, 128 << 10, false)
        });
        let gbps = outcome.qps * (128 << 10) as f64 / 1e9;
        assert!((7.0..15.0).contains(&gbps), "128 KB bandwidth {gbps:.1} GB/s");
    }

    #[test]
    fn writes_hit_two_million_per_second() {
        // Fig. 9: 64 processes, 4 KB files, > 2 M files/s.
        let m = DieselClusterModel::new(4);
        let outcome = run_uniform_clients(64, 2000, |_, _, now| m.write_at(now, 4 << 10));
        assert!((1.6e6..3.0e6).contains(&outcome.qps), "DIESEL 4 KB write rate {:.0}", outcome.qps);
    }
}
