//! Figure 11a — 4 KB random-read QPS vs number of client nodes:
//! DIESEL-API vs DIESEL-FUSE vs Memcached cluster vs Lustre.
//!
//! Paper anchors at 10 nodes (16 clients each): DIESEL-API > 1.2 M QPS,
//! DIESEL-FUSE ≈ 0.8 M (> 60 % of API), Memcached ≈ 0.56 M, Lustre
//! ≈ 0.04 M.

use diesel_baselines::{LustreConfig, LustreSim, MemcachedConfig, MemcachedSim};
use diesel_bench::report::fmt_count;
use diesel_bench::{run_uniform_clients, DieselClusterModel, Table};
use diesel_simnet::SimTime;

const THREADS_PER_NODE: usize = 16;
const OPS: usize = 250;
const SIZE: u64 = 4 << 10;
const UNIVERSE: usize = 40_000;

fn diesel_qps(nodes: usize, fuse: bool) -> f64 {
    let m = DieselClusterModel::new(nodes);
    run_uniform_clients(nodes * THREADS_PER_NODE, OPS, |c, i, now| {
        let node = c % nodes;
        let owner = m.owner_of((c * 2_654_435_761 + i * 40_503) as u64);
        m.read_at(now, node, owner, SIZE, fuse)
    })
    .qps
}

fn memcached_qps(nodes: usize) -> f64 {
    let mc = MemcachedSim::new(MemcachedConfig { servers: 10, ..Default::default() });
    let keys: Vec<String> = (0..UNIVERSE).map(|i| format!("k/{i}")).collect();
    for k in &keys {
        mc.write_at(SimTime::ZERO, k, SIZE);
    }
    mc.reset_clocks();
    run_uniform_clients(nodes * THREADS_PER_NODE, OPS, |c, i, now| {
        mc.read_at(now, &keys[(c * 48_271 + i * 16_807) % UNIVERSE], SIZE).0
    })
    .qps
}

fn lustre_qps(nodes: usize) -> f64 {
    let l = LustreSim::new(LustreConfig::default());
    run_uniform_clients(nodes * THREADS_PER_NODE, OPS, |_, _, now| l.read_file_at(now, SIZE)).qps
}

fn main() {
    let mut table = Table::new(
        "Fig. 11a: 4 KB random-read QPS vs client nodes (16 clients/node)",
        &["nodes", "DIESEL-API", "DIESEL-FUSE", "Memcached", "Lustre"],
    );
    let mut last = (0.0, 0.0, 0.0, 0.0);
    for nodes in [1usize, 2, 4, 6, 8, 10] {
        let api = diesel_qps(nodes, false);
        let fuse = diesel_qps(nodes, true);
        let mc = memcached_qps(nodes);
        let lu = lustre_qps(nodes);
        last = (api, fuse, mc, lu);
        table.row(&[
            nodes.to_string(),
            fmt_count(api),
            fmt_count(fuse),
            fmt_count(mc),
            fmt_count(lu),
        ]);
    }
    table.emit("fig11a");
    let (api, fuse, mc, lu) = last;
    diesel_bench::report::note(
        "fig11a",
        &format!(
            "at 10 nodes — paper: API 1.2M / FUSE 0.8M / Memcached 0.56M / Lustre 0.04M; \
             measured: API {} / FUSE {} ({:.0}% of API; paper >60%) / Memcached {} / Lustre {}.",
            fmt_count(api),
            fmt_count(fuse),
            fuse / api * 100.0,
            fmt_count(mc),
            fmt_count(lu)
        ),
    );
}
