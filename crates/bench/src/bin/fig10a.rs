//! Figure 10a — metadata QPS vs number of client nodes for 1/3/5
//! DIESEL servers (no snapshot: every stat is a server RPC that the
//! server answers from the KV cluster).
//!
//! Paper shape: with 1 server the curve flattens from ~2 client nodes;
//! with 3 servers at ~7 nodes; with 5 servers it approaches the Redis
//! cluster's measured ceiling (~0.97 M QPS).

use diesel_bench::report::fmt_count;
use diesel_bench::{run_uniform_clients, Table};
use diesel_simnet::{Resource, SimTime};

/// Per-stat client round trip (network + client stack).
const CLIENT_RTT: SimTime = SimTime(100_000);
/// DIESEL server: 16 worker threads, 64 µs service per metadata op
/// (deserialize, KV query, reply) ⇒ ~250 k QPS per server.
const SERVER_THREADS: usize = 16;
const SERVER_SERVICE: SimTime = SimTime(64_000);
/// The KV cluster ceiling: 16 instances, ~60 k QPS each ⇒ 0.97 M.
const KV_INSTANCES: usize = 16;
const KV_SERVICE: SimTime = SimTime(16_500);

const THREADS_PER_NODE: usize = 16;
const OPS: usize = 400;

fn qps(servers: usize, client_nodes: usize) -> f64 {
    let server_pool: Vec<Resource> =
        (0..servers).map(|_| Resource::new("diesel-server", SERVER_THREADS)).collect();
    let kv = Resource::new("kv-cluster", KV_INSTANCES);
    let clients = client_nodes * THREADS_PER_NODE;
    run_uniform_clients(clients, OPS, |c, i, now| {
        // Clients spread over the servers round-robin.
        let s = &server_pool[(c + i) % servers];
        let at_server = s.acquire(now, SERVER_SERVICE);
        // The server's KV query serializes on the shared cluster.
        let kv_done = kv.acquire(at_server.start, KV_SERVICE).end;
        kv_done.max_of(at_server.end) + CLIENT_RTT
    })
    .qps
}

fn main() {
    let mut table = Table::new(
        "Fig. 10a: metadata QPS vs client nodes (16 threads/node)",
        &["client nodes", "1 server", "3 servers", "5 servers"],
    );
    let mut curves: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for nodes in 1..=10usize {
        let row: Vec<f64> = [1usize, 3, 5].iter().map(|&s| qps(s, nodes)).collect();
        for (i, v) in row.iter().enumerate() {
            curves[i].push(*v);
        }
        table.row(&[nodes.to_string(), fmt_count(row[0]), fmt_count(row[1]), fmt_count(row[2])]);
    }
    table.emit("fig10a");
    diesel_bench::report::note(
        "fig10a",
        &format!(
            "saturation points: 1 server flattens at {:.0}k QPS, 3 servers at {:.0}k, \
             5 servers at {:.0}k (paper: Redis ceiling ~970k).",
            curves[0].last().unwrap() / 1e3,
            curves[1].last().unwrap() / 1e3,
            curves[2].last().unwrap() / 1e3
        ),
    );
}
