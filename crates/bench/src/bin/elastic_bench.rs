//! Elastic-membership benchmark gate: the fixed suite behind
//! `BENCH_8.json`.
//!
//! The elastic cache plane (DESIGN.md §13) earns its keep on three
//! numbers, pinned here:
//!
//! * `ring_lookup_ns` — [`HashRing::owner_of`], the per-read placement
//!   cost every `get_file` now pays instead of a `HashMap` probe
//! * `rebalance_4_to_8_ms` — wall time for a warm 4-node cache to grow
//!   to 8 (peer warm handoff for every moved chunk)
//! * `rebalance_8_to_4_ms` — the matching shrink: leavers drain into
//!   survivors
//! * `store_read_amplification` — backing-store chunk reads for
//!   warmup + grow + shrink, divided by the dataset's chunk count.
//!   The peer-to-peer handoff keeps this at 1.0 (each chunk read once,
//!   ever); the `naive_rewarm_amplification` key records what
//!   re-warming moved chunks from the store would have cost instead.
//!
//! Results land in the same two-section JSON format as
//! `payload_bench` (`baseline` seeded on first run and kept verbatim,
//! `current` rewritten every run; `--check` enforces
//! `current <= baseline * tolerance` per key).

use std::sync::Arc;
use std::time::Instant;

use diesel_cache::{CacheConfig, CachePolicy, HashRing, TaskCache, Topology};
use diesel_chunk::{ChunkBuilderConfig, ChunkId, ChunkIdGenerator, ChunkWriter};
use diesel_kv::ShardedKv;
use diesel_meta::recovery::chunk_object_key;
use diesel_meta::MetaService;
use diesel_store::{MemObjectStore, ObjectStore};

/// Best-of-`reps` wall time for `iters` runs of `f`, in ns per iter.
fn best_ns_per_iter(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn ring_lookup_ns() -> f64 {
    let ring = HashRing::contiguous(8).unwrap();
    let gen = ChunkIdGenerator::deterministic(3, 3, 33);
    let chunks: Vec<ChunkId> = (0..4096).map(|_| gen.next_id()).collect();
    best_ns_per_iter(5, 50, || {
        let mut acc = 0usize;
        for &c in &chunks {
            acc = acc.wrapping_add(ring.owner_of(c));
        }
        assert!(acc < usize::MAX);
    }) / 4096.0
}

/// A packed synthetic dataset: store + its chunk ids.
fn packed_dataset(files: usize) -> (Arc<MemObjectStore>, Vec<ChunkId>) {
    let store = Arc::new(MemObjectStore::new());
    let svc = MetaService::new(Arc::new(ShardedKv::new()));
    let ids = ChunkIdGenerator::deterministic(8, 8, 88);
    let cfg = ChunkBuilderConfig { target_chunk_size: 64 << 10, ..Default::default() };
    let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
    for i in 0..files {
        w.add_file(&format!("f{i:05}"), &[(i % 251) as u8; 4096]).unwrap();
    }
    for sealed in w.finish() {
        store.put(&chunk_object_key("ds", sealed.header.id), sealed.bytes.clone()).unwrap();
        svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
    }
    let snap = svc.build_snapshot("ds").unwrap();
    (store, snap.chunks)
}

fn warm_cache(
    store: &Arc<MemObjectStore>,
    chunks: &[ChunkId],
    nodes: usize,
) -> TaskCache<MemObjectStore> {
    let cache = TaskCache::new(
        Topology::uniform(nodes, 1).unwrap(),
        store.clone(),
        "ds",
        chunks.to_vec(),
        CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
    )
    .unwrap();
    cache.prefetch_all().unwrap();
    cache
}

/// `(grow_ms, shrink_ms, amplification, naive_amplification)` for the
/// 4→8→4 membership dance over a warm cache.
fn rebalance_suite() -> (f64, f64, f64, f64) {
    let (store, chunks) = packed_dataset(2048);
    let mut grow_ms = f64::INFINITY;
    let mut shrink_ms = f64::INFINITY;
    let mut amp = 0.0;
    let mut naive_amp = 0.0;
    for _ in 0..3 {
        let cache = warm_cache(&store, &chunks, 4);
        let warm_loads = cache.metrics().chunk_loads();
        assert_eq!(warm_loads, chunks.len() as u64);

        let t0 = Instant::now();
        let up = cache.resize(8).unwrap();
        grow_ms = grow_ms.min(t0.elapsed().as_nanos() as f64 / 1e6);
        assert_eq!(up.store_fallbacks, 0, "warm grow must be all peer handoffs");

        let t0 = Instant::now();
        let down = cache.resize(4).unwrap();
        shrink_ms = shrink_ms.min(t0.elapsed().as_nanos() as f64 / 1e6);
        assert_eq!(down.store_fallbacks, 0);

        // Store reads over warmup + both rebalances, per unique chunk.
        amp = cache.metrics().chunk_loads() as f64 / chunks.len() as f64;
        // A naive rebalance re-warms every moved chunk from the store.
        naive_amp = (warm_loads + up.chunks_moved + down.chunks_moved) as f64 / chunks.len() as f64;
    }
    (grow_ms, shrink_ms, amp, naive_amp)
}

/// Flat `"key": number` pairs of one named JSON section.
fn parse_section(text: &str, name: &str) -> Option<Vec<(String, f64)>> {
    let start = text.find(&format!("\"{name}\""))?;
    let open = start + text[start..].find('{')?;
    let close = open + text[open..].find('}')?;
    let mut out = Vec::new();
    for part in text[open + 1..close].split(',') {
        let (k, v) = part.split_once(':')?;
        out.push((k.trim().trim_matches('"').to_string(), v.trim().parse().ok()?));
    }
    Some(out)
}

fn render_section(pairs: &[(String, f64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("    \"{k}\": {v:.3}")).collect();
    format!("{{\n{}\n  }}", body.join(",\n"))
}

fn render(baseline: &[(String, f64)], current: &[(String, f64)]) -> String {
    format!(
        "{{\n  \"schema\": 1,\n  \"suite\": \"elastic_bench\",\n  \"baseline\": {},\n  \"current\": {}\n}}\n",
        render_section(baseline),
        render_section(current)
    )
}

fn main() {
    let mut json_path = "BENCH_8.json".to_string();
    let mut check = false;
    let mut tolerance = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next().expect("--json needs a path"),
            "--check" => check = true,
            "--tolerance" => {
                tolerance =
                    args.next().and_then(|s| s.parse().ok()).expect("--tolerance needs a number")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let lookup = ring_lookup_ns();
    let (grow, shrink, amp, naive_amp) = rebalance_suite();

    let current: Vec<(String, f64)> = vec![
        ("ring_lookup_ns".into(), lookup),
        ("rebalance_4_to_8_ms".into(), grow),
        ("rebalance_8_to_4_ms".into(), shrink),
        ("store_read_amplification".into(), amp),
        ("naive_rewarm_amplification".into(), naive_amp),
    ];

    // First run seeds the baseline; later runs keep it verbatim.
    let baseline = std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|t| parse_section(&t, "baseline"))
        .unwrap_or_else(|| current.clone());
    std::fs::write(&json_path, render(&baseline, &current)).expect("write json");

    println!("elastic_bench -> {json_path}");
    for (k, v) in &current {
        let base = baseline.iter().find(|(bk, _)| bk == k).map(|(_, bv)| *bv);
        match base {
            Some(b) if b > 0.0 => {
                println!("  {k:<28} {v:>12.3}  (baseline {b:.3}, {:+.1}%)", (v / b - 1.0) * 100.0)
            }
            _ => println!("  {k:<28} {v:>12.3}"),
        }
    }

    if check {
        let mut failed = false;
        for (k, v) in &current {
            if let Some((_, b)) = baseline.iter().find(|(bk, _)| bk == k) {
                if *b > 0.0 && *v > b * tolerance {
                    eprintln!(
                        "REGRESSION: {k} = {v:.3} exceeds baseline {b:.3} x tolerance {tolerance}"
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("elastic_bench --check: all keys within {tolerance}x of baseline");
    }
}
