//! Pipelined DataLoader vs serial reads over a latency-injected store.
//!
//! The paper's pipeline argument (§4.2, Fig. 10a): training throughput
//! is gated by how well sample I/O overlaps compute, and per-file reads
//! on a slow store serialize the whole epoch. Here the backing store is
//! a [`DelayedStore`] charging a seek-heavy device model in real wall
//! time, and we read one epoch three ways:
//!
//! * `serial` — an inline work pool: every fetch and decode runs on the
//!   consumer thread, one after another (the no-pipeline baseline).
//! * `pipelined xN` — the loader's two-stage fetch/decode pipeline on an
//!   N-worker pool; batched fetches overlap each other and the consumer.
//!
//! All three runs yield byte-identical batches; only the wall clock
//! differs.
//!
//! With `--trace out.json` the bench instead reads one epoch through
//! the *full* stack — retrying instrumented channel, task cache with a
//! killed node, pipelined loader — under an always-on tracer, and
//! writes the spans as chrome-trace JSON (open in Perfetto / `chrome:
//! //tracing`). The run self-validates: the JSON must parse and at
//! least one client read span must have a `server.handle` descendant.

use std::sync::Arc;
use std::time::Instant;

use diesel_bench::Table;
use diesel_cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_core::{ClientConfig, DieselClient, DieselServer, ServerConn};
use diesel_exec::{ExecConfig, WorkPool};
use diesel_kv::ShardedKv;
use diesel_net::{Clock, EndpointMetrics, Instrumented, Retry, RetryPolicy, Service};
use diesel_obs::{chrome_trace_json, parse_chrome_trace, Tracer};
use diesel_shuffle::ShuffleKind;
use diesel_simnet::SimTime;
use diesel_store::{DelayedStore, DeviceModel, MemObjectStore};
use diesel_train::loader::upload_samples;
use diesel_train::{DataLoader, SyntheticSpec};
use diesel_util::SystemClock;

const SAMPLES: usize = 384;
const BATCH: usize = 16;
const SEED: u64 = 41;

/// A small-overhead spinning-disk-ish front: slow enough that an epoch
/// is I/O-bound, fast enough that the serial baseline stays under a
/// second.
fn device() -> DeviceModel {
    DeviceModel {
        name: "delayed-store",
        per_request_overhead: SimTime::from_micros(800),
        bytes_per_sec: 300.0e6,
        parallelism: 8,
    }
}

type Stack = Arc<DieselClient<ShardedKv, DelayedStore<MemObjectStore>>>;

/// Build a fresh server+client over a delayed store, upload the dataset,
/// and wire `pool` through both the server's request executor and the
/// returned loader.
fn stack(pool: &WorkPool) -> Stack {
    let store = Arc::new(DelayedStore::new(
        Arc::new(MemObjectStore::new()),
        device(),
        Arc::new(SystemClock::new()),
    ));
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store).with_pool(pool.clone()));
    let client = DieselClient::connect_with(
        server,
        "synth",
        ClientConfig {
            chunk: diesel_chunk::ChunkBuilderConfig {
                target_chunk_size: 8192,
                ..Default::default()
            },
        },
    )
    .with_deterministic_identity(1, 1, 100);
    let samples = SyntheticSpec::cifar_like().generate(SAMPLES);
    upload_samples(&client, &samples).expect("upload");
    client.download_meta().expect("meta");
    client.enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });
    Arc::new(client)
}

/// Read one epoch to exhaustion; returns (wall seconds, batches, label
/// checksum — proves every run saw the same data).
fn run_epoch(pool: WorkPool) -> (f64, usize, u64) {
    let loader = DataLoader::new(stack(&pool), BATCH, SEED).with_pool(pool).with_prefetch_depth(4);
    let t0 = Instant::now();
    let mut batches = 0usize;
    let mut checksum = 0u64;
    for batch in loader.epoch_iter(0).expect("epoch") {
        let (x, labels) = batch.expect("batch");
        batches += 1;
        for (r, &l) in labels.iter().enumerate() {
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(l as u64)
                .wrapping_add(x.row(r)[0].to_bits() as u64);
        }
    }
    (t0.elapsed().as_secs_f64(), batches, checksum)
}

/// Read one epoch through every layer under an always-on tracer and
/// write the spans to `out` as chrome-trace JSON.
fn run_traced(out: &str) {
    let pool = WorkPool::new("loader-trace", ExecConfig { workers: 4, queue_capacity: 0 });
    let store = Arc::new(DelayedStore::new(
        Arc::new(MemObjectStore::new()),
        device(),
        Arc::new(SystemClock::new()),
    ));
    let server = DieselServer::new(Arc::new(ShardedKv::new()), store).with_pool(pool.clone());
    // One tracer shared by client, channel, server, and loader: spans
    // from every layer land in a single buffer, forming whole traces.
    let tracer = Tracer::enabled(server.registry());
    let server = Arc::new(server.with_tracer(tracer.clone()));

    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let inner = server.direct_channel(0);
    let metrics = EndpointMetrics::new(server.registry(), &inner.endpoint());
    let conn: ServerConn = Arc::new(
        Retry::new(
            Instrumented::new(inner, metrics.clone(), clock.clone()),
            RetryPolicy {
                max_attempts: 3,
                base_backoff_ns: 100_000,
                multiplier: 2,
                max_backoff_ns: 1_000_000,
            },
            clock,
        )
        .with_metrics(metrics),
    );
    let client: DieselClient<ShardedKv, DelayedStore<MemObjectStore>> =
        DieselClient::connect_channel_with(
            conn,
            "synth",
            ClientConfig {
                chunk: diesel_chunk::ChunkBuilderConfig {
                    target_chunk_size: 8192,
                    ..Default::default()
                },
            },
        )
        .with_deterministic_identity(1, 1, 100)
        .with_tracer(tracer.clone());
    let samples = SyntheticSpec::cifar_like().generate(SAMPLES);
    upload_samples(&client, &samples).expect("upload");
    client.download_meta().expect("meta");
    client.enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });

    // Task cache over the dataset's chunks, one node down: reads hit
    // the cache, miss on the dead node, and fall back through the
    // channel to the server — every read-path shape shows up.
    let chunks = server.meta().chunk_ids("synth").expect("chunks");
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(2, 2).unwrap(),
            server.store().clone(),
            "synth",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap(),
    );
    cache.prefetch_all().expect("prefetch");
    cache.kill_node(0);
    client.attach_cache(cache);

    tracer.drain(); // keep only the epoch's read path
    let loader = DataLoader::new(Arc::new(client), BATCH, SEED)
        .with_pool(pool)
        .with_prefetch_depth(4)
        .with_tracer(tracer.clone());
    let mut batches = 0usize;
    for batch in loader.epoch_iter(0).expect("epoch") {
        batch.expect("batch");
        batches += 1;
    }

    let spans = tracer.drain();
    let json = chrome_trace_json(&spans);
    std::fs::write(out, &json).expect("write trace file");

    // Self-validate what we just wrote: it must parse, and at least one
    // client read must form a connected tree down to the server.
    let parsed = parse_chrome_trace(&json).expect("emitted trace must parse");
    let linked = parsed.iter().any(|c| {
        (c.name == "client.read" || c.name == "client.get_many")
            && parsed.iter().any(|s| s.name == "server.handle" && s.is_descendant_of(c, &parsed))
    });
    assert!(linked, "no client read span has a server.handle descendant");
    println!(
        "loader_pipeline --trace: {batches} batches, {} spans -> {out} (validated)",
        parsed.len()
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let out = args.next().unwrap_or_else(|| "loader_trace.json".into());
            run_traced(&out);
            return;
        }
    }

    let mut table = Table::new(
        format!("DataLoader pipeline ({SAMPLES} samples, batch {BATCH}, delayed store)"),
        &["mode", "epoch ms", "batches", "speedup", "checksum"],
    );

    let (serial_s, serial_batches, serial_sum) = run_epoch(WorkPool::inline("loader-serial"));
    table.row(&[
        "serial".into(),
        format!("{:.1}", serial_s * 1e3),
        serial_batches.to_string(),
        "1.00x".into(),
        format!("{serial_sum:016x}"),
    ]);

    for workers in [2usize, 4, 8] {
        let pool = WorkPool::new("loader-bench", ExecConfig { workers, queue_capacity: 0 });
        let (s, batches, sum) = run_epoch(pool);
        assert_eq!(batches, serial_batches, "batch count must not depend on workers");
        assert_eq!(sum, serial_sum, "batch contents must not depend on workers");
        table.row(&[
            format!("pipelined x{workers}"),
            format!("{:.1}", s * 1e3),
            batches.to_string(),
            format!("{:.2}x", serial_s / s),
            format!("{sum:016x}"),
        ]);
    }

    table.emit("loader_pipeline");
}
