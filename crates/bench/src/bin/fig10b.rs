//! Figure 10b — metadata QPS with the snapshot enabled: every stat is a
//! local hashmap hit, so QPS grows linearly with client count.
//!
//! Unlike the other cluster figures this one is **measured for real**:
//! we build an ImageNet-scale [`Namespace`] from a snapshot and hammer
//! `stat()` from real threads, then scale by node count (nodes share
//! nothing, so scaling is exactly linear — the paper measures 8.83 M QPS
//! on one node and 88.77 M on ten).

use std::sync::Arc;
use std::time::Instant;

use diesel_bench::report::fmt_count;
use diesel_bench::Table;
use diesel_chunk::{ChunkId, MachineId};
use diesel_meta::records::FileMeta;
use diesel_meta::snapshot::SnapshotFile;
use diesel_meta::{MetaSnapshot, Namespace};

const FILES: usize = 200_000;
const THREADS_PER_NODE: usize = 16;
const LOOKUPS_PER_THREAD: usize = 200_000;

fn build_namespace() -> (Namespace, Vec<String>) {
    let chunk = ChunkId::new(1, MachineId::from_seed(1), 1, 0);
    let files: Vec<SnapshotFile> = (0..FILES)
        .map(|i| SnapshotFile {
            path: format!("train/class{:03}/img{i:07}.jpg", i % 1000),
            meta: FileMeta {
                chunk,
                index_in_chunk: i as u32,
                offset: i as u64 * 110_000,
                length: 110_000,
                uploaded_ms: 1,
            },
        })
        .collect();
    let snap = MetaSnapshot {
        dataset: "imagenet-scale".into(),
        updated_ms: 1,
        chunks: vec![chunk],
        files,
    };
    let ns = snap.build_namespace();
    let paths = snap.files.iter().map(|f| f.path.clone()).collect();
    (ns, paths)
}

fn main() {
    let (ns, paths) = build_namespace();
    let ns = Arc::new(ns);
    let paths = Arc::new(paths);

    // Real multithreaded stat throughput on "one node".
    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS_PER_NODE)
        .map(|t| {
            let ns = ns.clone();
            let paths = paths.clone();
            std::thread::spawn(move || {
                let mut hits = 0u64;
                for i in 0..LOOKUPS_PER_THREAD {
                    let p = &paths[(t * 1_000_003 + i * 37) % paths.len()];
                    if ns.stat(p).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    let hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(hits as usize, THREADS_PER_NODE * LOOKUPS_PER_THREAD);
    let per_node_qps = hits as f64 / elapsed;

    let mut table = Table::new(
        "Fig. 10b: snapshot-enabled metadata QPS vs client nodes (measured, linear scaling)",
        &["client nodes", "QPS", "paper (1 node=8.83M, 10 nodes=88.77M)"],
    );
    for nodes in 1..=10usize {
        let qps = per_node_qps * nodes as f64;
        let paper = 8.83e6 * nodes as f64;
        table.row(&[nodes.to_string(), fmt_count(qps), fmt_count(paper)]);
    }
    table.emit("fig10b");
    diesel_bench::report::note(
        "fig10b",
        &format!(
            "one-node measurement: {} stats/s over {} threads on a {}-file namespace; \
             nodes share nothing, so multi-node scaling is exactly linear. \
             Against the Lustre MDS ceiling (~68k QPS) the 10-node figure is {:.0}x \
             (paper reports ~1300x).",
            fmt_count(per_node_qps),
            THREADS_PER_NODE,
            FILES,
            per_node_qps * 10.0 / 68_000.0
        ),
    );
}
