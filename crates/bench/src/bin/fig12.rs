//! Figure 12 — read bandwidth with the chunk-wise shuffle enabled, 10
//! nodes × 16 threads, 4 KB and 128 KB files: DIESEL-API / DIESEL-FUSE
//! vs Lustre.
//!
//! Paper anchors: 4 KB — Lustre 60.2 MB/s (15.4 k files/s), DIESEL-API
//! 4317 MB/s (71.7×), DIESEL-FUSE 3483.7 MB/s (57.8×). 128 KB — Lustre
//! 2001.8 MB/s, DIESEL-API 10095.3 MB/s (5.0×), DIESEL-FUSE
//! 8712.5 MB/s (4.4×). The chunk-wise shuffle is what lets DIESEL serve
//! these "random" file reads from chunk-resident cache memory.

use diesel_baselines::{LustreConfig, LustreSim};
use diesel_bench::report::fmt_count;
use diesel_bench::{run_uniform_clients, DieselClusterModel, Table};

const NODES: usize = 10;
const CLIENTS: usize = NODES * 16;
const OPS: usize = 300;

fn diesel_bw(size: u64, fuse: bool) -> (f64, f64) {
    let m = DieselClusterModel::new(NODES);
    let out = run_uniform_clients(CLIENTS, OPS, |c, i, now| {
        let node = c % NODES;
        // Chunk-wise shuffle ⇒ the needed chunk is already resident on
        // its owner; reads hit local or one-hop cache memory.
        let owner = m.owner_of((c * 1_103_515_245 + i * 12_345) as u64);
        m.read_at(now, node, owner, size, fuse)
    });
    (out.qps * size as f64 / 1e6, out.qps)
}

fn lustre_bw(size: u64) -> (f64, f64) {
    let l = LustreSim::new(LustreConfig::default());
    let out = run_uniform_clients(CLIENTS, OPS, |_, _, now| l.read_file_at(now, size));
    (out.qps * size as f64 / 1e6, out.qps)
}

fn main() {
    let mut table = Table::new(
        "Fig. 12: read bandwidth with chunk-wise shuffle (10 nodes, 160 threads)",
        &["system", "size", "MB/s", "files/s", "vs Lustre", "paper vs Lustre"],
    );
    for &(label, size, paper_api, paper_fuse) in
        &[("4KB", 4u64 << 10, 71.7, 57.8), ("128KB", 128 << 10, 5.0, 4.4)]
    {
        let (lu_mb, lu_fps) = lustre_bw(size);
        let (api_mb, api_fps) = diesel_bw(size, false);
        let (fuse_mb, fuse_fps) = diesel_bw(size, true);
        table.row(&[
            "Lustre".into(),
            label.into(),
            format!("{lu_mb:.1}"),
            fmt_count(lu_fps),
            "1.0x".into(),
            "1.0x".into(),
        ]);
        table.row(&[
            "DIESEL-API".into(),
            label.into(),
            format!("{api_mb:.1}"),
            fmt_count(api_fps),
            format!("{:.1}x", api_mb / lu_mb),
            format!("{paper_api:.1}x"),
        ]);
        table.row(&[
            "DIESEL-FUSE".into(),
            label.into(),
            format!("{fuse_mb:.1}"),
            fmt_count(fuse_fps),
            format!("{:.1}x", fuse_mb / lu_mb),
            format!("{paper_fuse:.1}x"),
        ]);
    }
    table.emit("fig12");
    diesel_bench::report::note(
        "fig12",
        "shape check: the 4 KB speedup is an order of magnitude larger than the 128 KB \
         speedup — small random reads are where per-file RPC overhead dominates, and \
         where converting them to chunk reads pays most.",
    );
}
