//! Ablation: the chunk-size design choice (DESIGN.md §5).
//!
//! DIESEL fixes chunks at ≥ 4 MB. This sweep shows the trade-off space
//! that choice sits in, mixing *real measurements* (chunk build/parse
//! cost, header overhead, recovery scan volume) with the calibrated
//! storage model (effective read throughput at that request size).

use std::sync::Arc;
use std::time::Instant;

use diesel_bench::report::fmt_count;
use diesel_bench::Table;
use diesel_chunk::{ChunkBuilderConfig, ChunkIdGenerator, ChunkReader, ChunkWriter};
use diesel_kv::ShardedKv;
use diesel_meta::{recover_full, MetaService};
use diesel_store::model::DeviceModel;
use diesel_store::{MemObjectStore, ObjectStore};

const FILE_SIZE: usize = 110 << 10; // ImageNet-ish mean file
const DATASET_BYTES: usize = 64 << 20; // 64 MiB miniature dataset

fn main() {
    let files = DATASET_BYTES / FILE_SIZE;
    let device = DeviceModel::nvme_ssd_cluster();
    let mut table = Table::new(
        format!("Ablation: chunk size ({} files x {} KB)", files, FILE_SIZE >> 10),
        &[
            "chunk size",
            "chunks",
            "header overhead",
            "build MB/s",
            "recovery scans",
            "device MB/s @chunk",
            "device files/s @4KB-read",
        ],
    );

    for &chunk_size in &[256usize << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20] {
        // Real: pack the dataset.
        let ids = ChunkIdGenerator::deterministic(1, 1, 9);
        let cfg = ChunkBuilderConfig { target_chunk_size: chunk_size, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
        let data = vec![0x5au8; FILE_SIZE];
        let t0 = Instant::now();
        for i in 0..files {
            w.add_file(&format!("train/c{}/img{i:05}.jpg", i % 16), &data).unwrap();
        }
        let sealed = w.finish();
        let build_secs = t0.elapsed().as_secs_f64();
        let total_bytes: usize = sealed.iter().map(|c| c.bytes.len()).sum();
        let payload_bytes = files * FILE_SIZE;
        let overhead = (total_bytes - payload_bytes) as f64 / total_bytes as f64;

        // Real: every chunk parses back (recovery-style header scan).
        let store = MemObjectStore::new();
        let svc = MetaService::new(Arc::new(ShardedKv::new()));
        for c in &sealed {
            ChunkReader::parse(&c.bytes).unwrap();
            store
                .put(&diesel_meta::recovery::chunk_object_key("ds", c.header.id), c.bytes.clone())
                .unwrap();
        }
        let report = recover_full(&svc, &store, "ds").unwrap();
        assert_eq!(report.files_recovered as usize, files);

        table.row(&[
            human(chunk_size),
            sealed.len().to_string(),
            format!("{:.2}%", overhead * 100.0),
            format!("{:.0}", payload_bytes as f64 / build_secs / 1e6),
            format!("{} chunks / {} KiB headers", report.chunks_scanned, report.header_bytes >> 10),
            format!("{:.0}", device.bandwidth_mb_per_sec(chunk_size as u64)),
            fmt_count(device.files_per_sec(4 << 10)),
        ]);
    }
    table.emit("ablation_chunk_size");
    diesel_bench::report::note(
        "ablation_chunk_size",
        "take-away: below ~1 MB the device bandwidth column (what cache warm-up and \
         chunk-wise reads achieve) falls off sharply, while above ~16 MB the win is \
         marginal and per-chunk cache/eviction granularity worsens — the paper's >=4 MB \
         choice sits at the knee.",
    );
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else {
        format!("{}KB", bytes >> 10)
    }
}
