//! Figure 9 — write throughput for 4 KB and 128 KB files: DIESEL vs
//! Memcached cluster vs Lustre (4 nodes, 64 MPI processes).
//!
//! Paper anchors: DIESEL writes > 2 M 4 KB files/s — ≈ 1.79× Memcached
//! and ≈ 366× Lustre; on 128 KB files DIESEL is ≈ 17.3× Memcached and
//! ≈ 127× Lustre. DIESEL's advantage comes from client-side chunk
//! aggregation (files never become individual RPCs or creates).

use diesel_baselines::{LustreConfig, LustreSim, MemcachedConfig, MemcachedSim};
use diesel_bench::report::{fmt_count, note};
use diesel_bench::{run_uniform_clients, DieselClusterModel, Table};

const CLIENTS: usize = 64;
const OPS: usize = 1500;

fn main() {
    let mut table = Table::new(
        "Fig. 9: write throughput, 64 processes on 4 nodes (files/s)",
        &["system", "4KB files/s", "128KB files/s", "4KB vs Lustre", "128KB vs Lustre"],
    );

    let mut rates = std::collections::HashMap::new();
    for &(label, size) in &[("4KB", 4u64 << 10), ("128KB", 128 << 10)] {
        // DIESEL: client-side aggregation.
        let diesel = DieselClusterModel::new(4);
        let d = run_uniform_clients(CLIENTS, OPS, |_, _, now| diesel.write_at(now, size)).qps;

        // Memcached: one pipelined set per file.
        let mc = MemcachedSim::new(MemcachedConfig::default());
        let m = run_uniform_clients(CLIENTS, OPS, |c, i, now| {
            mc.write_at(now, &format!("w/{c}/{i}"), size)
        })
        .qps;

        // Lustre: one create+write per file.
        let lustre = LustreSim::new(LustreConfig::default());
        let l = run_uniform_clients(CLIENTS, OPS, |_, _, now| lustre.write_file_at(now, size)).qps;

        rates.insert(label, (d, m, l));
    }

    let (d4, m4, l4) = rates["4KB"];
    let (d128, m128, l128) = rates["128KB"];
    for (name, r4, r128) in [("DIESEL", d4, d128), ("Memcached", m4, m128), ("Lustre", l4, l128)] {
        table.row(&[
            name.to_string(),
            fmt_count(r4),
            fmt_count(r128),
            format!("{:.1}x", r4 / l4),
            format!("{:.1}x", r128 / l128),
        ]);
    }
    table.emit("fig9");

    note(
        "fig9",
        &format!(
            "paper: DIESEL/Memcached = 1.79x (4KB) — measured {:.2}x; \
             DIESEL/Lustre = 366x (4KB) — measured {:.0}x; \
             DIESEL/Lustre = 127x (128KB) — measured {:.0}x.",
            d4 / m4,
            d4 / l4,
            d128 / l128,
        ),
    );
    let diesel110 = DieselClusterModel::new(4);
    let d110 =
        run_uniform_clients(CLIENTS, OPS, |_, _, now| diesel110.write_at(now, 110 << 10)).qps;
    let imagenet_secs = 1_281_167.0 / d110;
    note(
        "fig9",
        &format!(
            "writing ImageNet-1K (1.28M files) at these rates completes in ~{imagenet_secs:.1}s \
             (paper: ~3s with 64 threads)."
        ),
    );
}
