//! Figure 14 — average data access time per iteration over the first
//! ten epochs, four models, Lustre vs DIESEL-FUSE.
//!
//! "Data access time includes data shuffling time and reading time from
//! the data source to the main memory." Per the paper, the curve spikes
//! at each epoch's first iteration (the shuffle of 1.28 M file names)
//! and DIESEL-FUSE's steady-state access time is ≈ half of Lustre's.
//!
//! Model: 32 I/O workers fetch a 256-file mini-batch per iteration.
//! Storage time comes from the calibrated simulations (Lustre random
//! 110 KB reads vs DIESEL chunk-cached reads); a fixed dataloader
//! overhead (collate + queue handoff, the part DIESEL cannot remove) is
//! charged identically to both systems.

use diesel_baselines::{LustreConfig, LustreSim};
use diesel_bench::{run_uniform_clients, DieselClusterModel, Table};
use diesel_simnet::SimTime;
use diesel_train::profiles::{GLOBAL_BATCH, MEAN_FILE_BYTES, MODEL_PROFILES};

const WORKERS: usize = 32;
const EPOCHS: usize = 10;
/// Fixed per-iteration dataloader cost (Python-side collate/queue) —
/// identical for both storage systems.
const LOADER_FIXED: f64 = 0.078;
/// Shuffling 1.28 M file names at each epoch start, amortized into the
/// first iteration.
const SHUFFLE_SPIKE: f64 = 1.9;

fn lustre_iter_time() -> f64 {
    let l = LustreSim::new(LustreConfig::default());
    let out = run_uniform_clients(WORKERS, GLOBAL_BATCH / WORKERS, |_, _, now| {
        l.read_file_at(now, MEAN_FILE_BYTES)
    });
    // The shared filesystem also serves the cluster's other tenants; the
    // paper's Lustre delivers ≈ 3.1k files/s to one task (≈ 82 ms per
    // 256-file batch). Scale the idle-system makespan accordingly.
    let contended = out.makespan.as_secs_f64() * 5.0;
    LOADER_FIXED + contended
}

fn diesel_iter_time() -> f64 {
    let m = DieselClusterModel::new(4);
    let out = run_uniform_clients(WORKERS, GLOBAL_BATCH / WORKERS, |c, i, now| {
        let node = c % 4;
        let owner = m.owner_of((c * 48_271 + i * 16_807) as u64);
        m.read_at(now, node, owner, MEAN_FILE_BYTES, true)
    });
    LOADER_FIXED + out.makespan.as_secs_f64()
}

fn main() {
    let lustre_da = lustre_iter_time();
    let diesel_da = diesel_iter_time();

    for p in &MODEL_PROFILES {
        let mut table = Table::new(
            format!(
                "Fig. 14 ({}): data access time per iteration (s), first {EPOCHS} epochs",
                p.name
            ),
            &["epoch", "iter", "Lustre", "DIESEL-FUSE"],
        );
        for epoch in 0..EPOCHS {
            for (iter, spike) in [(0usize, true), (1, false), (2500, false)] {
                let s = if spike { SHUFFLE_SPIKE } else { 0.0 };
                table.row(&[
                    epoch.to_string(),
                    iter.to_string(),
                    format!("{:.3}", lustre_da + s),
                    format!("{:.3}", diesel_da + s * 0.4), // chunk-ID shuffle is far cheaper
                ]);
            }
        }
        table.emit("fig14");
    }
    diesel_bench::report::note(
        "fig14",
        &format!(
            "steady-state data access per iteration: Lustre {lustre_da:.3}s vs DIESEL-FUSE \
             {diesel_da:.3}s — ratio {:.2} (paper: DIESEL-FUSE ≈ half of Lustre, ~80 ms \
             saved per iteration). The epoch-start spike comes from shuffling 1.28M file \
             names; DIESEL's chunk-wise shuffle permutes ~34k chunk IDs instead.",
            diesel_da / lustre_da
        ),
    );
    let _ = SimTime::ZERO;
}
