//! Figure 13 — top-1/top-5 accuracy vs epoch: chunk-wise shuffle vs
//! dataset shuffle.
//!
//! This experiment trains **for real** (mini MLP + SGD on synthetic
//! datasets stored in DIESEL — DESIGN.md §2 explains the substitution):
//! the claim under test is purely about the data *order*, so a real
//! optimizer on a real data path is the honest check. Four panels like
//! the paper:
//!
//! * "ImageNet-like" dataset with group sizes 100 and 500 scaled to the
//!   chunk count (we use proportional group sizes) vs dataset shuffle;
//! * "CIFAR-like" dataset with group sizes 15 and 30 vs dataset shuffle.

use std::sync::Arc;

use diesel_bench::Table;
use diesel_core::{ClientConfig, DieselClient, DieselServer};
use diesel_kv::ShardedKv;
use diesel_shuffle::ShuffleKind;
use diesel_store::MemObjectStore;
use diesel_train::loader::upload_samples;
use diesel_train::{train, DataLoader, Mlp, MlpConfig, SyntheticSpec, TrainConfig};

const EPOCHS: u64 = 14;
const TRAIN_N: usize = 3000;
const EVAL_N: usize = 600;

fn run(spec: &SyntheticSpec, kind: ShuffleKind) -> Vec<(f64, f64)> {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server,
        "synth",
        ClientConfig {
            chunk: diesel_chunk::ChunkBuilderConfig {
                target_chunk_size: 16 << 10,
                ..Default::default()
            },
        },
    )
    .with_deterministic_identity(1, 1, 100);
    let train_set = spec.generate(TRAIN_N);
    let eval_set = spec.generate_eval(EVAL_N);
    upload_samples(&client, &train_set).unwrap();
    client.download_meta().unwrap();
    client.enable_shuffle(kind);
    let loader = DataLoader::new(Arc::new(client), 32, 4242);
    let mut model = Mlp::new(
        MlpConfig {
            input_dim: spec.dim,
            hidden: vec![64],
            classes: spec.classes,
            lr: 0.06,
            momentum: 0.9,
        },
        9,
    );
    train(&mut model, &loader, &eval_set, &TrainConfig { epochs: EPOCHS, topk: (1, 5) })
        .unwrap()
        .into_iter()
        .map(|m| (m.top1, m.topk))
        .collect()
}

fn panel(name: &str, spec: &SyntheticSpec, groups: [usize; 2]) {
    let baseline = run(spec, ShuffleKind::DatasetShuffle);
    let g_small = run(spec, ShuffleKind::ChunkWise { group_size: groups[0] });
    let g_large = run(spec, ShuffleKind::ChunkWise { group_size: groups[1] });

    for (metric, idx) in [("top-1", 0usize), ("top-5", 1)] {
        let mut table = Table::new(
            format!("Fig. 13 ({name}, {metric} accuracy %)"),
            &[
                "epoch",
                "shuffle dataset",
                &format!("chunk-wise g={}", groups[0]),
                &format!("chunk-wise g={}", groups[1]),
            ],
        );
        for e in 0..EPOCHS as usize {
            let pick = |v: &[(f64, f64)]| if idx == 0 { v[e].0 } else { v[e].1 };
            table.row(&[
                e.to_string(),
                format!("{:.1}", pick(&baseline) * 100.0),
                format!("{:.1}", pick(&g_small) * 100.0),
                format!("{:.1}", pick(&g_large) * 100.0),
            ]);
        }
        table.emit("fig13");
    }
    let b = baseline.last().unwrap().0;
    let s = g_small.last().unwrap().0;
    let l = g_large.last().unwrap().0;
    diesel_bench::report::note(
        "fig13",
        &format!(
            "{name}: final top-1 — dataset shuffle {:.1}%, chunk-wise g={} {:.1}%, \
             g={} {:.1}% (max deviation {:.1} pts; paper: no accuracy or convergence loss).",
            b * 100.0,
            groups[0],
            s * 100.0,
            groups[1],
            l * 100.0,
            ((b - s).abs().max((b - l).abs())) * 100.0
        ),
    );
}

fn main() {
    panel("ImageNet-like / MLP", &SyntheticSpec::imagenet_like(), [10, 50]);
    panel("CIFAR-like / MLP", &SyntheticSpec::cifar_like(), [4, 8]);
    diesel_bench::report::note(
        "fig13",
        "group sizes are scaled to this dataset's chunk count the way the paper scales \
         100/500 (ImageNet) vs 15/30 (CIFAR) to theirs: small groups cover a few percent \
         of the chunks, large groups tens of percent.",
    );
}
