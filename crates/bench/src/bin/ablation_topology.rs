//! Ablation: master-client topology vs full client mesh (§4.2, Fig. 7).
//!
//! DIESEL elects one master client per physical node; every other I/O
//! worker fetches through masters, giving `p×(n−1)` connections instead
//! of `n×(n−1)` while keeping every file one hop away. This sweep prints
//! both counts across realistic task shapes and simulates the read-path
//! consequence: with per-connection keep-alive/buffer overheads, a full
//! mesh burns client memory and connection-setup time quadratically.

use diesel_bench::report::fmt_count;
use diesel_bench::Table;
use diesel_cache::Topology;

/// Per-connection costs (Thrift socket + buffers), from the paper's
/// motivation that "the large number of connections will cause
/// significant memory and network overhead".
const CONN_BUFFER_KB: usize = 256;
const CONN_SETUP_US: usize = 300;

fn main() {
    let mut table = Table::new(
        "Ablation: master-client topology vs full mesh",
        &[
            "nodes p",
            "workers/node",
            "clients n",
            "DIESEL conns",
            "full-mesh conns",
            "saving",
            "mesh buffers",
            "mesh setup",
        ],
    );
    for &(p, w) in &[(4usize, 4usize), (4, 8), (10, 16), (32, 8), (64, 16)] {
        let t = Topology::uniform(p, w).unwrap();
        let d = t.diesel_connection_count();
        let m = t.full_mesh_connection_count();
        table.row(&[
            p.to_string(),
            w.to_string(),
            t.client_count().to_string(),
            fmt_count(d as f64),
            fmt_count(m as f64),
            format!("{:.1}x", m as f64 / d.max(1) as f64),
            format!("{} MiB", (m * CONN_BUFFER_KB) >> 10),
            format!("{:.1} s", (m * CONN_SETUP_US) as f64 / 1e6),
        ]);
    }
    table.emit("ablation_topology");

    // One-hop property holds in every configuration.
    for &(p, w) in &[(4usize, 4usize), (10, 16), (64, 16)] {
        let t = Topology::uniform(p, w).unwrap();
        let conns = t.diesel_connections();
        for &c in t.clients() {
            for node in 0..t.node_count() {
                let m = t.master_of(node);
                assert!(
                    m == c.rank || conns.contains(&(c, m)),
                    "one-hop property violated for p={p}, w={w}"
                );
            }
        }
    }
    diesel_bench::report::note(
        "ablation_topology",
        "the worker-count factor drops out: connections scale with nodes (p), not \
         clients (n), so doubling PyTorch num_workers costs the fabric nothing — while \
         every file stays reachable in one hop (verified above for all shapes). The \
         paper's Fig. 7 example (2 nodes x 2 clients) halves connections; at the \
         evaluation scale (10x16) the saving is 16x.",
    );
}
