//! Telemetry-plane benchmark gate: the fixed suite behind
//! `BENCH_10.json`.
//!
//! The flight recorder / SLO monitor / Prometheus renderer (DESIGN.md
//! §15) are monitoring machinery — they must observe the data plane
//! without perturbing it. This suite pins their costs:
//!
//! * `recorder_tick_us_500series` — one recorder tick (snapshot +
//!   delta-encode) over a registry with ~500 live series, µs
//! * `prom_render_us_500series` — one Prometheus text exposition of the
//!   same snapshot, µs
//! * `slo_eval_us` — one SLO evaluation (8 tenants × 4 objectives) over
//!   a populated recording, µs
//! * `recorder_overhead_ratio` — cache-hit read sweep wall time with a
//!   live 100 ms recorder driver attached ÷ without; asserted ≤ 1.05
//!   outright (the ≤5 % hot-path overhead contract), and ratcheted
//! * `slo_health_light_fair` / `slo_health_light_open` — the final
//!   `slo.health{dataset=light}` gauge of the deterministic
//!   noisy-neighbour scenario with and without admission control;
//!   asserted to be exactly 1 and 0
//!
//! The run also archives the fair scenario's Prometheus scrape to
//! `results/scrape.prom` and re-parses it with the round-trip parser,
//! so the exposition format is validated on every bench run.
//!
//! Ledger protocol matches the other suites: first run seeds
//! `baseline`, later runs rewrite `current`; with `--check`, cost keys
//! must stay within `--tolerance`× of baseline.

use std::sync::Arc;
use std::time::Instant;

use diesel_chunk::ChunkBuilderConfig;
use diesel_core::{ClientConfig, DieselClient, DieselServer};
use diesel_kv::ShardedKv;
use diesel_obs::{FlightRecorder, RecorderConfig, Registry, SloMonitor, SloTarget};
use diesel_simnet::{noisy_neighbour_config, run_telemetry};
use diesel_store::MemObjectStore;
use diesel_util::SystemClock;

const FILES: usize = 200;
const TENANTS: usize = 8;

/// Best-of-`reps` wall time for `iters` runs of `f`, in ns per iter.
fn best_ns_per_iter(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// A registry with ~500 live series: 200 labelled counters, 100 gauges,
/// 200 labelled histograms with recorded samples — the shape of a busy
/// multi-tenant server.
fn populated_registry() -> Arc<Registry> {
    let reg = Arc::new(Registry::new(Arc::new(SystemClock::new())));
    for i in 0..200u64 {
        let tag = format!("t{i:03}");
        reg.counter("bench.ops", &[("series", &tag)]).add(i * 17 + 1);
    }
    for i in 0..100u64 {
        let tag = format!("t{i:03}");
        reg.gauge("bench.depth", &[("series", &tag)]).set(i * 3);
    }
    for i in 0..200u64 {
        let tag = format!("t{i:03}");
        let h = reg.histogram("bench.latency", &[("series", &tag)]);
        for k in 0..8 {
            h.record_ns(1_000 * (i + 1) * (k + 1));
        }
    }
    reg
}

/// Tick cost over the populated registry, with a light mutation between
/// ticks so every frame carries real deltas (an idle registry would
/// delta-encode to nothing and flatter the number).
fn recorder_tick_us(reg: &Arc<Registry>) -> f64 {
    let rec = FlightRecorder::new(
        reg.clone(),
        RecorderConfig { max_frames: 256, max_bytes: 32 << 20, ..Default::default() },
    );
    let mut i = 0u64;
    best_ns_per_iter(3, 200, || {
        i += 1;
        reg.counter("bench.ops", &[("series", "t000")]).add(i);
        reg.histogram("bench.latency", &[("series", "t000")]).record_ns(i * 100);
        rec.tick();
    }) / 1e3
}

fn prom_render_us(reg: &Arc<Registry>) -> f64 {
    let snap = reg.snapshot();
    best_ns_per_iter(3, 100, || {
        let text = diesel_obs::render_prometheus(&snap);
        assert!(!text.is_empty());
    }) / 1e3
}

/// SLO evaluation cost: 8 tenants × 4 objectives over a recording with
/// live per-tenant series.
fn slo_eval_us() -> f64 {
    let reg = Arc::new(Registry::new(Arc::new(SystemClock::new())));
    let rec = Arc::new(FlightRecorder::new(reg.clone(), RecorderConfig::default()));
    let targets: Vec<SloTarget> = (0..TENANTS)
        .map(|i| SloTarget {
            read_p99_ns: Some(5_000_000),
            max_error_ratio: Some(0.01),
            min_hit_rate: Some(0.5),
            max_throttle_ratio: Some(0.2),
            ..SloTarget::new(&format!("tenant{i}"))
        })
        .collect();
    let monitor = SloMonitor::new(reg.clone(), rec.clone(), targets);
    for _round in 0..10u64 {
        for i in 0..TENANTS {
            let name = format!("tenant{i}");
            let labels = &[("dataset", name.as_str())][..];
            reg.counter("server.file_reads", labels).add(50);
            reg.counter("cache.file_reads", labels).add(50);
            reg.counter("cache.chunk_hits", labels).add(45);
            reg.counter("server.tenant.admitted", labels).add(50);
            for k in 0..50 {
                reg.histogram("server.read_latency", labels).record_ns(100_000 + k * 10_000);
            }
        }
        rec.tick();
    }
    best_ns_per_iter(3, 100, || {
        let reports = monitor.evaluate();
        assert_eq!(reports.len(), TENANTS);
    }) / 1e3
}

type Stack =
    (Arc<DieselServer<ShardedKv, MemObjectStore>>, DieselClient<ShardedKv, MemObjectStore>);

/// Server + client with a small dataset uploaded and meta loaded; reads
/// go through the wire path, so the server's registry sees every op.
fn stack() -> Stack {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server.clone(),
        "synth",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 1 << 16, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 100);
    for i in 0..FILES {
        client.put(&format!("f{i:04}"), &[(i % 251) as u8; 512]).expect("put");
    }
    client.flush().expect("flush");
    client.download_meta().expect("meta");
    (server, client)
}

/// Read-path overhead of a live recorder: sweep cost with a 10 ms
/// recorder driver sampling the server's registry ÷ cost without. Each
/// tick snapshots the registry under its write gate, so sampling *does*
/// contend with the hot path — 10 ms is 100× the default 1 s cadence,
/// and the contract is that even that stays under 5 %.
///
/// Bare/attached sweeps are measured back-to-back in pairs and the
/// smallest ratio wins: ambient machine noise drifts on a timescale
/// longer than one pair, so at least one pair sees both sides under the
/// same conditions, and the min cancels the drift while an actual
/// recorder cost shows up in *every* pair.
fn recorder_overhead_ratio() -> f64 {
    let (server, client) = stack();
    let paths: Vec<String> = (0..FILES).map(|i| format!("f{i:04}")).collect();
    let sweep = |iters: usize| {
        best_ns_per_iter(1, iters, || {
            for p in &paths {
                assert!(!client.get(p).expect("read").is_empty());
            }
        }) / FILES as f64
    };
    sweep(200); // warm-up
    let mut best_ratio = f64::INFINITY;
    for _ in 0..4 {
        let bare = sweep(600);
        let rec = Arc::new(FlightRecorder::new(
            server.registry().clone(),
            RecorderConfig { interval_ns: 10_000_000, max_frames: 512, ..Default::default() },
        ));
        let driver = rec.spawn();
        let attached = sweep(600);
        driver.stop();
        assert!(rec.ticks() > 0, "driver must actually have sampled during the sweep");
        best_ratio = best_ratio.min(attached / bare);
    }
    best_ratio
}

/// Flat `"key": number` pairs of one named JSON section.
fn parse_section(text: &str, name: &str) -> Option<Vec<(String, f64)>> {
    let start = text.find(&format!("\"{name}\""))?;
    let open = start + text[start..].find('{')?;
    let close = open + text[open..].find('}')?;
    let mut out = Vec::new();
    for part in text[open + 1..close].split(',') {
        let (k, v) = part.split_once(':')?;
        out.push((k.trim().trim_matches('"').to_string(), v.trim().parse().ok()?));
    }
    Some(out)
}

fn render_section(pairs: &[(String, f64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("    \"{k}\": {v:.3}")).collect();
    format!("{{\n{}\n  }}", body.join(",\n"))
}

fn render(baseline: &[(String, f64)], current: &[(String, f64)]) -> String {
    format!(
        "{{\n  \"schema\": 1,\n  \"suite\": \"obs_plane\",\n  \"baseline\": {},\n  \"current\": {}\n}}\n",
        render_section(baseline),
        render_section(current)
    )
}

fn main() {
    let mut json_path = "BENCH_10.json".to_string();
    let mut check = false;
    let mut tolerance = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next().expect("--json needs a path"),
            "--check" => check = true,
            "--tolerance" => {
                tolerance =
                    args.next().and_then(|s| s.parse().ok()).expect("--tolerance needs a number")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let reg = populated_registry();
    let tick_us = recorder_tick_us(&reg);
    let render_us = prom_render_us(&reg);
    let eval_us = slo_eval_us();
    let overhead = recorder_overhead_ratio();

    // The deterministic SLO acceptance scenario: light tenant beside a
    // 10× neighbour, green with admission control and red without.
    let fair = run_telemetry(&noisy_neighbour_config(true));
    let open = run_telemetry(&noisy_neighbour_config(false));
    let health_fair = *fair.health.get("light").expect("light tenant present") as f64;
    let health_open = *open.health.get("light").expect("light tenant present") as f64;

    // Hard contracts, asserted outright (the ratchet only bounds drift).
    assert!(
        overhead <= 1.05,
        "recorder must cost <= 5% on the cache-hit read path, measured {overhead:.4}x"
    );
    assert_eq!(health_fair, 1.0, "admission control must keep the light tenant green");
    assert_eq!(health_open, 0.0, "disabled admission must breach the light tenant");

    // Archive the fair scenario's scrape and round-trip it through the
    // parser: the exposition format is validated on every bench run.
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/scrape.prom", &fair.scrape).expect("write scrape");
    let samples = diesel_obs::parse_prometheus(&fair.scrape).expect("scrape must round-trip");
    assert!(
        samples.iter().any(|s| s.name == "slo_health" && s.label("dataset") == Some("light")),
        "archived scrape must carry the health gauge"
    );

    let current: Vec<(String, f64)> = vec![
        ("recorder_tick_us_500series".into(), tick_us),
        ("prom_render_us_500series".into(), render_us),
        ("slo_eval_us".into(), eval_us),
        ("recorder_overhead_ratio".into(), overhead),
        ("slo_health_light_fair".into(), health_fair),
        ("slo_health_light_open".into(), health_open),
    ];

    // First run seeds the baseline; later runs keep it verbatim.
    let baseline = std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|t| parse_section(&t, "baseline"))
        .unwrap_or_else(|| current.clone());
    std::fs::write(&json_path, render(&baseline, &current)).expect("write json");

    println!("obs_plane -> {json_path}");
    for (k, v) in &current {
        let base = baseline.iter().find(|(bk, _)| bk == k).map(|(_, bv)| *bv);
        match base {
            Some(b) if b > 0.0 => {
                println!("  {k:<28} {v:>12.3}  (baseline {b:.3}, {:+.1}%)", (v / b - 1.0) * 100.0)
            }
            _ => println!("  {k:<28} {v:>12.3}"),
        }
    }

    if check {
        let mut failed = false;
        for (k, v) in &current {
            // The health gauges are exact contracts asserted above, not
            // costs; everything else ratchets against the baseline.
            if k.starts_with("slo_health") {
                continue;
            }
            if let Some((_, b)) = baseline.iter().find(|(bk, _)| bk == k) {
                if *b > 0.0 && *v > b * tolerance {
                    eprintln!(
                        "REGRESSION: {k} = {v:.3} exceeds baseline {b:.3} x tolerance {tolerance}"
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("obs_plane --check: all keys within {tolerance}x of baseline");
    }
}
