//! Multi-tenant serving benchmark gate: the fixed suite behind
//! `BENCH_9.json`.
//!
//! The multi-tenant plane (DESIGN.md §14) earns its keep on isolation
//! numbers, pinned here over the deterministic simulator:
//!
//! * `light_solo_goodput` — SLO-qualified ops/s of the light tenant
//!   alone on the pool (the reference point)
//! * `light_slowdown_unthrottled` — solo ÷ in-mix goodput when a 10×
//!   neighbour shares the pool with no admission control; the pool
//!   overloads and this must be ≥ 3 (the failure mode the feature
//!   exists to fix)
//! * `light_slowdown_throttled` — same ratio with per-tenant token
//!   buckets in front of the pool; must stay ≤ 1.5
//! * `fairness_ratio_throttled` — max/min per-tenant goodput under the
//!   throttled skewed mix
//! * `kv_ceiling_mqps` — closed-loop KV sweep at 10⁶ simulated clients
//!   over 16 instances × 60 kQPS, reproducing the ~0.96 MQPS ceiling of
//!   Fig. 10a
//!
//! Every key is simulator-derived and therefore deterministic, so the
//! ratchet (`--check`: `current <= baseline * tolerance` per key) never
//! flakes; the isolation bounds are additionally asserted outright.

use diesel_simnet::{
    kv_closed_loop_qps, run_multi_tenant, MultiTenantConfig, OpMix, ServiceModel, SimAdmission,
    SimTime, TenantSpec,
};

const LIGHT_RATE: f64 = 800.0;
const HEAVY_RATE: f64 = 8_000.0; // the 10× skewed neighbour
const LIGHT_OPS: u64 = 8_000;
const HEAVY_OPS: u64 = 80_000;
const SERVERS: usize = 4;
const SEED: u64 = 9;

fn scenario(tenants: Vec<TenantSpec>, admission: Option<SimAdmission>) -> MultiTenantConfig {
    MultiTenantConfig {
        tenants,
        servers: SERVERS,
        service: ServiceModel::default(),
        slo: SimTime::from_millis(20),
        admission,
        seed: SEED,
    }
}

fn light() -> TenantSpec {
    TenantSpec {
        name: "light".into(),
        rate_per_sec: LIGHT_RATE,
        ops: LIGHT_OPS,
        mix: OpMix::default(),
    }
}

fn heavy() -> TenantSpec {
    TenantSpec {
        name: "heavy".into(),
        rate_per_sec: HEAVY_RATE,
        ops: HEAVY_OPS,
        mix: OpMix::default(),
    }
}

/// Flat `"key": number` pairs of one named JSON section.
fn parse_section(text: &str, name: &str) -> Option<Vec<(String, f64)>> {
    let start = text.find(&format!("\"{name}\""))?;
    let open = start + text[start..].find('{')?;
    let close = open + text[open..].find('}')?;
    let mut out = Vec::new();
    for part in text[open + 1..close].split(',') {
        let (k, v) = part.split_once(':')?;
        out.push((k.trim().trim_matches('"').to_string(), v.trim().parse().ok()?));
    }
    Some(out)
}

fn render_section(pairs: &[(String, f64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("    \"{k}\": {v:.3}")).collect();
    format!("{{\n{}\n  }}", body.join(",\n"))
}

fn render(baseline: &[(String, f64)], current: &[(String, f64)]) -> String {
    format!(
        "{{\n  \"schema\": 1,\n  \"suite\": \"mixed_tenants\",\n  \"baseline\": {},\n  \"current\": {}\n}}\n",
        render_section(baseline),
        render_section(current)
    )
}

fn main() {
    let mut json_path = "BENCH_9.json".to_string();
    let mut check = false;
    let mut tolerance = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next().expect("--json needs a path"),
            "--check" => check = true,
            "--tolerance" => {
                tolerance =
                    args.next().and_then(|s| s.parse().ok()).expect("--tolerance needs a number")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    // Reference: the light tenant alone on the pool.
    let solo = run_multi_tenant(&scenario(vec![light()], None));
    let solo_good = solo.tenant("light").unwrap().goodput();

    // Skewed mix, no admission control: the 10× neighbour overloads the
    // pool and the light tenant's SLO goodput collapses.
    let open = run_multi_tenant(&scenario(vec![light(), heavy()], None));
    let open_good = open.tenant("light").unwrap().goodput();
    let slowdown_open = if open_good > 0.0 { solo_good / open_good } else { f64::INFINITY };

    // Same mix behind per-tenant token buckets: the heavy tenant is
    // clamped to its share and the light tenant keeps its goodput.
    let adm = SimAdmission { rate_per_sec: 3_000.0, burst: 50.0 };
    let fair = run_multi_tenant(&scenario(vec![light(), heavy()], Some(adm)));
    let fair_good = fair.tenant("light").unwrap().goodput();
    let slowdown_fair = if fair_good > 0.0 { solo_good / fair_good } else { f64::INFINITY };

    // Closed-loop KV ceiling at a million simulated clients (Fig. 10a).
    let kv_mqps = kv_closed_loop_qps(16, 60_000.0, 1_000_000, 2) / 1e6;

    // The isolation contract, asserted outright (deterministic inputs,
    // so these are hard gates rather than tolerance-ratcheted).
    assert!(
        slowdown_open >= 3.0,
        "unthrottled 10x neighbour must degrade the light tenant >= 3x, got {slowdown_open:.2}"
    );
    assert!(
        slowdown_fair <= 1.5,
        "admission control must keep the light tenant within 1.5x of solo, got {slowdown_fair:.2}"
    );
    assert!(kv_mqps > 0.90 && kv_mqps < 0.98, "kv ceiling {kv_mqps:.3} MQPS out of range");

    let slowdown_open_key = if slowdown_open.is_finite() { slowdown_open } else { 1e9 };
    let current: Vec<(String, f64)> = vec![
        ("light_solo_goodput".into(), solo_good),
        ("light_slowdown_unthrottled".into(), slowdown_open_key),
        ("light_slowdown_throttled".into(), slowdown_fair),
        ("fairness_ratio_throttled".into(), fair.fairness_ratio()),
        ("kv_ceiling_mqps".into(), kv_mqps),
    ];

    // First run seeds the baseline; later runs keep it verbatim.
    let baseline = std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|t| parse_section(&t, "baseline"))
        .unwrap_or_else(|| current.clone());
    std::fs::write(&json_path, render(&baseline, &current)).expect("write json");

    println!("mixed_tenants -> {json_path}");
    for (k, v) in &current {
        let base = baseline.iter().find(|(bk, _)| bk == k).map(|(_, bv)| *bv);
        match base {
            Some(b) if b > 0.0 => {
                println!("  {k:<28} {v:>12.3}  (baseline {b:.3}, {:+.1}%)", (v / b - 1.0) * 100.0)
            }
            _ => println!("  {k:<28} {v:>12.3}"),
        }
    }

    if check {
        let mut failed = false;
        for (k, v) in &current {
            // Goodput and slowdown-headroom keys are floors, not costs;
            // only the cost-like keys ratchet against the baseline.
            if k == "light_solo_goodput" || k == "light_slowdown_unthrottled" {
                continue;
            }
            if let Some((_, b)) = baseline.iter().find(|(bk, _)| bk == k) {
                if *b > 0.0 && *v > b * tolerance {
                    eprintln!(
                        "REGRESSION: {k} = {v:.3} exceeds baseline {b:.3} x tolerance {tolerance}"
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("mixed_tenants --check: all keys within {tolerance}x of baseline");
    }
}
