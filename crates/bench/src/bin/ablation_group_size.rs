//! Ablation: the chunk-wise shuffle group size (DESIGN.md §5).
//!
//! Group size G trades memory and I/O efficiency against order
//! randomness. This sweep measures, *for real* on a miniature dataset:
//!
//! * order-quality metrics (normalized displacement → 1/3 is uniform;
//!   same-chunk adjacency; epoch-to-epoch correlation);
//! * the peak working set (bytes a client must cache);
//! * chunk loads per epoch under a constrained task cache (read
//!   amplification).

use std::sync::Arc;

use diesel_bench::Table;
use diesel_cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_core::{ClientConfig, DieselClient, DieselServer};
use diesel_kv::ShardedKv;
use diesel_shuffle::quality::{
    chunk_run_fraction, epoch_correlation, mean_normalized_displacement,
};
use diesel_shuffle::{epoch_order, ShuffleItem, ShuffleKind};
use diesel_store::MemObjectStore;

const FILES: usize = 3000;
const FILE_SIZE: usize = 400;
const CHUNK_SIZE: usize = 8 << 10;

fn main() {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server.clone(),
        "ds",
        ClientConfig {
            chunk: diesel_chunk::ChunkBuilderConfig {
                target_chunk_size: CHUNK_SIZE,
                ..Default::default()
            },
        },
    )
    .with_deterministic_identity(1, 1, 50);
    for i in 0..FILES {
        client.put(&format!("f{i:05}"), &vec![(i % 251) as u8; FILE_SIZE]).unwrap();
    }
    client.flush().unwrap();
    client.download_meta().unwrap();
    let chunks = server.meta().chunk_ids("ds").unwrap();
    let nchunks = chunks.len();

    // Build the same index the client uses, for the quality metrics.
    client.enable_shuffle(ShuffleKind::DatasetShuffle);
    let index = {
        let snap = server.build_snapshot("ds").unwrap();
        let mut cf: Vec<diesel_shuffle::ChunkFiles> = snap
            .chunks
            .iter()
            .map(|&c| diesel_shuffle::ChunkFiles { chunk: c, chunk_bytes: 0, files: vec![] })
            .collect();
        for f in &snap.files {
            let i = snap.chunks.iter().position(|c| *c == f.meta.chunk).unwrap();
            cf[i].chunk_bytes += f.meta.length;
            cf[i].files.push(f.path.clone());
        }
        diesel_shuffle::DatasetIndex::new(cf)
    };
    let canonical: Vec<ShuffleItem> = {
        let mut v = Vec::new();
        for (ci, c) in index.chunks.iter().enumerate() {
            for fi in 0..c.files.len() as u32 {
                v.push(ShuffleItem { chunk_index: ci as u32, file_index: fi });
            }
        }
        v
    };

    let mut table = Table::new(
        format!("Ablation: shuffle group size ({FILES} files in {nchunks} chunks)"),
        &[
            "strategy",
            "displacement (1/3=uniform)",
            "same-chunk adjacency",
            "epoch corr",
            "working set KiB",
            "chunk loads/epoch @15% cache",
        ],
    );

    let mut strategies: Vec<(String, ShuffleKind)> =
        vec![("dataset shuffle".into(), ShuffleKind::DatasetShuffle)];
    for g in [1usize, 2, 4, 8, 16, nchunks] {
        strategies.push((format!("chunk-wise g={g}"), ShuffleKind::ChunkWise { group_size: g }));
    }

    for (label, kind) in strategies {
        let e1 = epoch_order(&index, kind, 7, 1);
        let e2 = epoch_order(&index, kind, 7, 2);
        let disp = mean_normalized_displacement(&e1, &canonical);
        let runs = chunk_run_fraction(&e1);
        let corr = epoch_correlation(&e1, &e2);
        let ws = e1.peak_working_set_bytes(&index);

        // Real read-amplification run: fresh cache at 15% of the dataset.
        client.enable_shuffle(kind);
        let cache = Arc::new(
            TaskCache::new(
                Topology::uniform(2, 2).unwrap(),
                server.store().clone(),
                "ds",
                chunks.clone(),
                CacheConfig {
                    capacity_bytes_per_node: (FILES * FILE_SIZE) as u64 / 13,
                    policy: CachePolicy::OnDemand,
                },
            )
            .unwrap(),
        );
        client.attach_cache(cache.clone());
        let order = client.epoch_file_list(7, 1).unwrap();
        for path in &order {
            client.get(path).unwrap();
        }
        let loads = cache.metrics().chunk_loads();

        table.row(&[
            label,
            format!("{disp:.3}"),
            format!("{:.1}%", runs * 100.0),
            format!("{corr:+.3}"),
            format!("{}", ws >> 10),
            loads.to_string(),
        ]);
    }
    table.emit("ablation_group_size");
    diesel_bench::report::note(
        "ablation_group_size",
        "take-away: even tiny groups keep displacement near the uniform 1/3 (chunks are \
         shuffled globally before grouping) and epochs decorrelated; what grows with \
         small G is chunk adjacency — exactly the locality that cuts per-epoch chunk \
         loads from many times the chunk count (dataset shuffle, thrashing) down to \
         once per chunk. A group spanning every chunk degenerates back into the \
         thrashing baseline: the paper's 'hundreds of chunks per group' keeps adjacency \
         low while the working set stays ~G x 4 MB.",
    );
}
