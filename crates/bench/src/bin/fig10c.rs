//! Figure 10c — single-threaded `ls -R` / `ls -lR` over ImageNet-1K:
//! Lustre vs XFS (local NVMe) vs DIESEL-FUSE with a metadata snapshot.
//!
//! Paper shape: `ls -R` takes 30–40 s on both Lustre and DIESEL-FUSE
//! (FUSE crossings dominate), but `ls -lR` explodes to ~170 s on Lustre
//! (file sizes live on the OSS ⇒ extra RPC per file) while DIESEL-FUSE
//! serves sizes from the local snapshot.

use diesel_baselines::{LustreConfig, LustreSim, XfsSim};
use diesel_bench::Table;
use diesel_simnet::SimTime;

const FILES: u64 = 1_281_167;
const DIRS: u64 = 1_001; // 1000 class dirs + root

/// DIESEL-FUSE cost model for metadata traversal: every directory entry
/// surfaces through one FUSE readdir slot (~25 µs of context-switch +
/// marshalling per entry, like any FUSE fs); `stat` hits the local
/// snapshot namespace, whose cost is dwarfed by the getattr crossing.
const FUSE_PER_ENTRY: SimTime = SimTime(25_000);
const FUSE_PER_GETATTR: SimTime = SimTime(8_000);

fn fuse_ls(with_sizes: bool) -> SimTime {
    let entries = FILES + DIRS;
    let mut t = SimTime::from_nanos(entries * FUSE_PER_ENTRY.as_nanos());
    if with_sizes {
        // `ls -lR` batches getattr with the readdirplus-style crossing;
        // the snapshot lookup itself is O(1) in-memory.
        t += SimTime::from_nanos(FILES * FUSE_PER_GETATTR.as_nanos());
    }
    t
}

fn main() {
    let lustre = LustreSim::new(LustreConfig::default());
    // ls -R on Lustre: readdir every class directory.
    let mut ls_r = SimTime::ZERO;
    for _ in 0..DIRS {
        ls_r = lustre.readdir_at(ls_r, (FILES / DIRS) as usize);
    }
    // ls -lR adds one size RPC per file (single-threaded ⇒ serial
    // latency); measure the per-stat latency on an idle system.
    let fresh = LustreSim::new(LustreConfig::default());
    let per_stat = fresh.stat_with_size_at(SimTime::ZERO);
    let ls_lr = ls_r + SimTime::from_nanos(per_stat.as_nanos() * FILES);

    let xfs = XfsSim::default();

    let mut table = Table::new(
        "Fig. 10c: elapsed time of ls -R / ls -lR on ImageNet-1K (seconds)",
        &["system", "ls -R", "ls -lR", "paper ls -R", "paper ls -lR"],
    );
    table.row(&[
        "Lustre".into(),
        format!("{:.1}", ls_r.as_secs_f64()),
        format!("{:.1}", ls_lr.as_secs_f64()),
        "30-40".into(),
        "~170".into(),
    ]);
    table.row(&[
        "XFS (local NVMe)".into(),
        format!("{:.1}", xfs.ls_recursive(FILES, DIRS).as_secs_f64()),
        format!("{:.1}", xfs.ls_recursive_with_sizes(FILES, DIRS).as_secs_f64()),
        "few seconds".into(),
        "few seconds".into(),
    ]);
    table.row(&[
        "DIESEL-FUSE (snapshot)".into(),
        format!("{:.1}", fuse_ls(false).as_secs_f64()),
        format!("{:.1}", fuse_ls(true).as_secs_f64()),
        "30-40".into(),
        "30-45".into(),
    ]);
    table.emit("fig10c");
    diesel_bench::report::note(
        "fig10c",
        &format!(
            "ls -lR penalty: Lustre pays {:.0}x over its own ls -R (size lives on the OSS); \
             DIESEL-FUSE pays only {:.2}x because sizes come from the local snapshot (O(1) hashmap).",
            ls_lr.as_secs_f64() / ls_r.as_secs_f64(),
            fuse_ls(true).as_secs_f64() / fuse_ls(false).as_secs_f64()
        ),
    );
}
