//! Payload-plane benchmark gate: the fixed suite behind `BENCH_6.json`.
//!
//! DIESEL's cache-hit economics (§4.2, Fig. 10/14) only hold if a hit is
//! pointer-handoff cheap, so this bench pins the hot payload path with
//! five fixed measurements:
//!
//! * `chunk_parse_ns` — [`ChunkReader::parse`] over a ~1000-file chunk
//! * `cache_hit_read_ns` — [`TaskCache::get_file`] on a fully prefetched
//!   cache (the zero-copy fast path)
//! * `merged_read_us_per_file` — `client.get_many` through the server's
//!   `read_files_merged` plan (no cache attached)
//! * `loader_epoch_ms` — a full [`DataLoader`] epoch over a cache-hit
//!   stack (fetch + decode pipeline)
//! * `kv_put_ns` / `kv_get_ns` — [`ShardedKv`] point ops
//!
//! plus tracer-derived span means (`span_cache_get_hit_us`,
//! `span_loader_fetch_us`) from one traced cache-hit epoch, so the PR 5
//! tracer's view of the read path is recorded alongside the wall times.
//!
//! Results land in a two-section JSON file (default `BENCH_6.json`):
//! the first ever run seeds `baseline` (the pre-refactor numbers, kept
//! verbatim forever); every later run rewrites `current`. With
//! `--check`, wall-time keys in `current` must stay within
//! `--tolerance`× of `baseline` (shrink-only in spirit, with headroom
//! for CI noise) or the process exits nonzero.

use std::sync::Arc;
use std::time::Instant;

use diesel_cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_chunk::{ChunkBuilderConfig, ChunkIdGenerator, ChunkReader, ChunkWriter};
use diesel_core::{ClientConfig, DieselClient, DieselServer};
use diesel_kv::{KvStore, ShardedKv};
use diesel_meta::FileMeta;
use diesel_obs::{Span, Tracer};
use diesel_shuffle::ShuffleKind;
use diesel_store::MemObjectStore;
use diesel_train::loader::upload_samples;
use diesel_train::{DataLoader, SyntheticSpec};

const SAMPLES: usize = 256;
const BATCH: usize = 16;
const SEED: u64 = 61;

/// Best-of-`reps` wall time for `iters` runs of `f`, in ns per iter.
fn best_ns_per_iter(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// One sealed ~1000-file chunk, as raw bytes.
fn chunk_parse_ns() -> f64 {
    let ids = ChunkIdGenerator::deterministic(7, 7, 77);
    let cfg = ChunkBuilderConfig { target_chunk_size: 1 << 22, ..Default::default() };
    let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
    for i in 0..1000 {
        w.add_file(&format!("file-{i:05}"), &[(i % 251) as u8; 100]).unwrap();
    }
    let sealed = w.finish();
    assert_eq!(sealed.len(), 1, "suite expects one chunk");
    let bytes = &sealed[0].bytes;
    best_ns_per_iter(3, 500, || {
        let r = ChunkReader::parse(bytes).unwrap();
        assert_eq!(r.header().files.len(), 1000);
    })
}

type Stack =
    (Arc<DieselServer<ShardedKv, MemObjectStore>>, DieselClient<ShardedKv, MemObjectStore>);

/// Server + client over a plain memory store with the synthetic dataset
/// uploaded and meta downloaded.
fn stack() -> Stack {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server.clone(),
        "synth",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 1 << 16, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 100);
    let samples = SyntheticSpec::cifar_like().generate(SAMPLES);
    upload_samples(&client, &samples).expect("upload");
    client.download_meta().expect("meta");
    (server, client)
}

/// `(path, meta)` for every file in the dataset.
fn file_metas(server: &DieselServer<ShardedKv, MemObjectStore>) -> Vec<(String, FileMeta)> {
    let snap = server.meta().build_snapshot("synth").expect("snapshot");
    snap.files.iter().map(|f| (f.path.clone(), f.meta)).collect()
}

/// A fully prefetched single-node cache over the server's store.
fn prefetched_cache(
    server: &Arc<DieselServer<ShardedKv, MemObjectStore>>,
) -> Arc<TaskCache<MemObjectStore>> {
    let chunks = server.meta().chunk_ids("synth").expect("chunks");
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(1, 1).unwrap(),
            server.store().clone(),
            "synth",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap(),
    );
    cache.prefetch_all().expect("prefetch");
    cache
}

fn cache_hit_read_ns() -> f64 {
    let (server, _client) = stack();
    let metas = file_metas(&server);
    let cache = prefetched_cache(&server);
    best_ns_per_iter(3, 50, || {
        for (_, meta) in &metas {
            let f = cache.get_file(meta).unwrap();
            assert!(!f.data.is_empty());
        }
    }) / metas.len() as f64
}

fn merged_read_us_per_file() -> f64 {
    let (server, client) = stack();
    let paths: Vec<String> = file_metas(&server).into_iter().map(|(p, _)| p).collect();
    let ns = best_ns_per_iter(3, 20, || {
        let got = client.get_many(&paths).unwrap();
        assert_eq!(got.len(), paths.len());
    });
    ns / 1e3 / paths.len() as f64
}

fn kv_ops_ns() -> (f64, f64) {
    let keys: Vec<String> = (0..4096).map(|i| format!("bench/key/{i:06}")).collect();
    let value = vec![0xa5u8; 1024];
    let kv = ShardedKv::new();
    let put = best_ns_per_iter(3, 4, || {
        for k in &keys {
            kv.put(k, value.clone().into()).unwrap();
        }
    }) / keys.len() as f64;
    let get = best_ns_per_iter(3, 8, || {
        for k in &keys {
            assert_eq!(kv.get(k).unwrap().expect("present").len(), 1024);
        }
    }) / keys.len() as f64;
    (put, get)
}

fn loader_epoch_ms() -> f64 {
    let (server, client) = stack();
    client.enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });
    client.attach_cache(prefetched_cache(&server));
    let loader = DataLoader::new(Arc::new(client), BATCH, SEED);
    best_ns_per_iter(3, 2, || {
        for batch in loader.epoch_iter(0).expect("epoch") {
            batch.expect("batch");
        }
    }) / 1e6
}

/// Mean duration (µs) of spans selected by `pick`.
fn span_mean_us(spans: &[Span], pick: impl Fn(&Span) -> bool) -> f64 {
    let durs: Vec<u64> = spans.iter().filter(|s| pick(s)).map(|s| s.duration_ns()).collect();
    if durs.is_empty() {
        return 0.0;
    }
    durs.iter().sum::<u64>() as f64 / durs.len() as f64 / 1e3
}

/// One traced cache-hit epoch; returns (cache.get{outcome=hit} mean µs,
/// loader.fetch mean µs).
fn traced_span_means() -> (f64, f64) {
    let (server, client) = stack();
    let tracer = Tracer::enabled(server.registry());
    client.enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });
    client.attach_cache(prefetched_cache(&server));
    let client = client.with_tracer(tracer.clone());
    let loader = DataLoader::new(Arc::new(client), BATCH, SEED).with_tracer(tracer.clone());
    tracer.drain(); // spans from the epoch only
    for batch in loader.epoch_iter(0).expect("epoch") {
        batch.expect("batch");
    }
    let spans = tracer.drain();
    let hit = span_mean_us(&spans, |s| {
        s.name == "cache.get" && s.labels.iter().any(|(k, v)| k == "outcome" && v == "hit")
    });
    let fetch = span_mean_us(&spans, |s| s.name == "loader.fetch");
    assert!(fetch > 0.0, "traced epoch must produce loader.fetch spans");
    (hit, fetch)
}

/// Flat `"key": number` pairs of one named JSON section, as written by
/// [`render`]. Returns `None` if the section is absent or malformed.
fn parse_section(text: &str, name: &str) -> Option<Vec<(String, f64)>> {
    let start = text.find(&format!("\"{name}\""))?;
    let open = start + text[start..].find('{')?;
    let close = open + text[open..].find('}')?;
    let mut out = Vec::new();
    for part in text[open + 1..close].split(',') {
        let (k, v) = part.split_once(':')?;
        out.push((k.trim().trim_matches('"').to_string(), v.trim().parse().ok()?));
    }
    Some(out)
}

fn render_section(pairs: &[(String, f64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("    \"{k}\": {v:.3}")).collect();
    format!("{{\n{}\n  }}", body.join(",\n"))
}

fn render(baseline: &[(String, f64)], current: &[(String, f64)]) -> String {
    format!(
        "{{\n  \"schema\": 1,\n  \"suite\": \"payload_bench\",\n  \"baseline\": {},\n  \"current\": {}\n}}\n",
        render_section(baseline),
        render_section(current)
    )
}

fn main() {
    let mut json_path = "BENCH_6.json".to_string();
    let mut check = false;
    let mut tolerance = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next().expect("--json needs a path"),
            "--check" => check = true,
            "--tolerance" => {
                tolerance =
                    args.next().and_then(|s| s.parse().ok()).expect("--tolerance needs a number")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let parse = chunk_parse_ns();
    let hit = cache_hit_read_ns();
    let merged = merged_read_us_per_file();
    let epoch = loader_epoch_ms();
    let (kv_put, kv_get) = kv_ops_ns();
    let (span_hit, span_fetch) = traced_span_means();

    let current: Vec<(String, f64)> = vec![
        ("chunk_parse_ns".into(), parse),
        ("cache_hit_read_ns".into(), hit),
        ("merged_read_us_per_file".into(), merged),
        ("loader_epoch_ms".into(), epoch),
        ("kv_put_ns".into(), kv_put),
        ("kv_get_ns".into(), kv_get),
        ("span_cache_get_hit_us".into(), span_hit),
        ("span_loader_fetch_us".into(), span_fetch),
    ];

    // First run seeds the baseline; later runs keep it verbatim.
    let baseline = std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|t| parse_section(&t, "baseline"))
        .unwrap_or_else(|| current.clone());
    std::fs::write(&json_path, render(&baseline, &current)).expect("write json");

    println!("payload_bench -> {json_path}");
    for (k, v) in &current {
        let base = baseline.iter().find(|(bk, _)| bk == k).map(|(_, bv)| *bv);
        match base {
            Some(b) if b > 0.0 => {
                println!("  {k:<26} {v:>12.3}  (baseline {b:.3}, {:+.1}%)", (v / b - 1.0) * 100.0)
            }
            _ => println!("  {k:<26} {v:>12.3}"),
        }
    }

    if check {
        let mut failed = false;
        for (k, v) in &current {
            if let Some((_, b)) = baseline.iter().find(|(bk, _)| bk == k) {
                if *b > 0.0 && *v > b * tolerance {
                    eprintln!(
                        "REGRESSION: {k} = {v:.3} exceeds baseline {b:.3} x tolerance {tolerance}"
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("payload_bench --check: all keys within {tolerance}x of baseline");
    }
}
