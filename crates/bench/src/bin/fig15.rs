//! Figure 15 — normalized total training time, four models, DIESEL-FUSE
//! vs Lustre (time normalized to Lustre).
//!
//! Paper anchors: the four Lustre runs take 37–66 h; DIESEL-FUSE cuts
//! I/O time by 51–58 % and total time by 15–27 % (≈ 8–9 h), e.g.
//! ResNet-50 saves ≈ 80 ms/iteration ⇒ ≈ 10 h over 90 epochs.
//!
//! Composition: per-iteration data-access times come from the same
//! storage simulations as Fig. 14; compute times from the calibrated
//! model profiles; totals are `(compute + data access) × 5005 iters ×
//! 90 epochs`.

use diesel_baselines::{LustreConfig, LustreSim};
use diesel_bench::{run_uniform_clients, DieselClusterModel, Table};
use diesel_simnet::SimTime;
use diesel_train::profiles::{GLOBAL_BATCH, MEAN_FILE_BYTES, MODEL_PROFILES};

const WORKERS: usize = 32;
const LOADER_FIXED: f64 = 0.078;

fn data_access_times() -> (f64, f64) {
    let l = LustreSim::new(LustreConfig::default());
    let lustre = run_uniform_clients(WORKERS, GLOBAL_BATCH / WORKERS, |_, _, now| {
        l.read_file_at(now, MEAN_FILE_BYTES)
    })
    .makespan
    .as_secs_f64()
        * 5.0
        + LOADER_FIXED;

    let m = DieselClusterModel::new(4);
    let diesel = run_uniform_clients(WORKERS, GLOBAL_BATCH / WORKERS, |c, i, now| {
        let node = c % 4;
        let owner = m.owner_of((c * 48_271 + i * 16_807) as u64);
        m.read_at(now, node, owner, MEAN_FILE_BYTES, true)
    })
    .makespan
    .as_secs_f64()
        + LOADER_FIXED;
    (lustre, diesel)
}

fn main() {
    let (da_lustre, da_diesel) = data_access_times();
    let mut table = Table::new(
        "Fig. 15: total training time, normalized to Lustre",
        &[
            "model",
            "Lustre total (h)",
            "DIESEL total (h)",
            "normalized",
            "I/O reduction",
            "total reduction",
        ],
    );
    for p in &MODEL_PROFILES {
        let lustre_total = p.total_time(SimTime::from_secs_f64(da_lustre)).as_secs_f64() / 3600.0;
        let diesel_total = p.total_time(SimTime::from_secs_f64(da_diesel)).as_secs_f64() / 3600.0;
        table.row(&[
            p.name.to_string(),
            format!("{lustre_total:.1}"),
            format!("{diesel_total:.1}"),
            format!("{:.3}", diesel_total / lustre_total),
            format!("{:.0}%", (1.0 - da_diesel / da_lustre) * 100.0),
            format!("{:.1}%", (1.0 - diesel_total / lustre_total) * 100.0),
        ]);
    }
    table.emit("fig15");
    diesel_bench::report::note(
        "fig15",
        &format!(
            "paper: I/O time −51–58%, total time −15–27%, Lustre totals 37–66 h. \
             Measured data access: Lustre {da_lustre:.3}s/iter vs DIESEL {da_diesel:.3}s/iter. \
             The lightest model (AlexNet) saves the largest fraction — I/O is a bigger \
             share of its iteration — exactly the paper's trend."
        ),
    );
}
