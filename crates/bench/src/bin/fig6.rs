//! Figure 6 — reading speed of a global Memcached cluster as nodes
//! fail.
//!
//! Setup mirrors §4.2: a 20-node Memcached cluster, 16 read clients per
//! node (320 total), each iteration reads a random set of 128 files.
//! One Memcached node is disabled at iteration 30 and another at
//! iteration 70; misses fall through to the backing Lustre.
//!
//! Paper shape: "5 % cache misses reduce 90 % reading speed" — the slow
//! fallback path serializes on Lustre and drags the whole iteration.

use diesel_baselines::{LustreConfig, LustreSim, MemcachedConfig, MemcachedSim};
use diesel_bench::report::fmt_count;
use diesel_bench::{run_uniform_clients, Table};
use diesel_simnet::SimTime;

const NODES: usize = 20;
const CLIENTS: usize = NODES * 16;
const FILES_PER_ITER: usize = 128;
const ITERS: usize = 100;
const FILE_BYTES: u64 = 110 << 10;
const UNIVERSE: usize = 60_000;

fn main() {
    let mc = MemcachedSim::new(MemcachedConfig { servers: NODES, ..MemcachedConfig::default() });
    // The fallback Lustre is the *shared* cluster filesystem: this
    // task's share of it under production load is a fraction of the
    // idle-system capacity of the other figures.
    let lustre = LustreSim::new(LustreConfig {
        oss_parallelism: 2,
        oss_request_overhead: diesel_simnet::SimTime::from_micros(800),
        ..LustreConfig::default()
    });
    let keys: Vec<String> = (0..UNIVERSE).map(|i| format!("img/{i:06}.jpg")).collect();
    // Pre-load the whole dataset into the cache.
    for k in &keys {
        mc.write_at(SimTime::ZERO, k, FILE_BYTES);
    }

    let mut table = Table::new(
        "Fig. 6: Memcached-cluster reading speed vs iteration (node kills at 30 and 70)",
        &["iteration", "hit ratio", "files/s", "relative speed"],
    );
    let mut baseline = 0.0f64;
    for iter in 0..ITERS {
        if iter == 30 {
            mc.kill_server(7);
        }
        if iter == 70 {
            mc.kill_server(13);
        }
        mc.reset_clocks();
        lustre.reset();
        let hit_ratio = mc.hit_fraction(&keys);
        let outcome = run_uniform_clients(CLIENTS, FILES_PER_ITER, |c, i, now| {
            let key = &keys[(c * 48_271 + i * 16_807 + iter * 7_919) % UNIVERSE];
            let (t, src) = mc.read_at(now, key, FILE_BYTES);
            match src {
                diesel_baselines::ReadSource::Hit => t,
                diesel_baselines::ReadSource::Miss => lustre.read_file_at(t, FILE_BYTES),
            }
        });
        if iter == 0 {
            baseline = outcome.qps;
        }
        if iter % 10 == 0 || iter == 30 || iter == 31 || iter == 70 || iter == 71 || iter == 99 {
            table.row(&[
                iter.to_string(),
                format!("{:.1}%", hit_ratio * 100.0),
                fmt_count(outcome.qps),
                format!("{:.1}%", outcome.qps / baseline * 100.0),
            ]);
        }
    }
    table.emit("fig6");
    diesel_bench::report::note(
        "fig6",
        "paper: a ~5% miss ratio cuts reading speed by ~90% — the misses queue on the \
         backing Lustre and every client's iteration waits on its slowest file. DIESEL's \
         task-grained cache avoids this failure mode entirely (see fig11b / the \
         failure_recovery example).",
    );
}
