//! Figure 11b — cache warm-up / recovery time: DIESEL's task-grained
//! cache (0 % → 100 %) vs the Memcached cluster (80 % → 100 %).
//!
//! Mechanism under test: DIESEL fills **chunk-wise** — one miss pulls a
//! ≥ 4 MB chunk covering dozens of files, so random batches warm the
//! cache in a handful of seconds. Memcached fills **file-wise** from
//! whatever random batches happen to touch, so the missing 20 % decays
//! with a coupon-collector tail and takes minutes (paper: > 100 s even
//! though only 20 % of the files must be reloaded).

use diesel_bench::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FILES: usize = 1_281_167;
const FILE_BYTES: f64 = 110.0 * 1024.0;
const FILES_PER_CHUNK: usize = 38; // ≈ 4 MB / 110 KB
const CLIENTS: usize = 160;
const BATCH: usize = 128;

/// Cost constants (seconds).
/// One cached 110 KB read, one hop, including the client-side copy.
const HIT_COST: f64 = 750e-6;
/// A Memcached miss: random 110 KB read from the shared Lustre under
/// contention, plus the `set` that re-fills the cache.
const MC_MISS_COST: f64 = 5e-3;
/// Aggregate read bandwidth of the storage cluster for ≥4 MB chunk
/// reads (6 NVMe storage nodes; the same cluster absorbs the paper's
/// 3 s ImageNet write).
const STORAGE_BYTES_PER_SEC: f64 = 15e9;

struct Series {
    label: &'static str,
    points: Vec<(f64, f64, f64)>, // (elapsed s, batch time s, hit ratio)
    finished_at: Option<f64>,
}

fn simulate(chunk_fill: bool, start_hit_ratio: f64, seed: u64) -> Series {
    let chunks = FILES.div_ceil(FILES_PER_CHUNK);
    let mut rng = StdRng::seed_from_u64(seed);
    // Residency state: per chunk for DIESEL, per file for Memcached.
    let mut chunk_loaded = vec![false; chunks];
    let mut file_loaded = vec![false; FILES];
    if start_hit_ratio > 0.0 {
        for (i, loaded) in file_loaded.iter_mut().enumerate() {
            if (i as f64 / FILES as f64) < start_hit_ratio {
                *loaded = true;
            }
        }
    }
    let mut loaded_files = file_loaded.iter().filter(|&&b| b).count();
    let mut elapsed = 0.0f64;
    let mut points = Vec::new();
    let mut finished_at = None;
    for iter in 0..100_000usize {
        // One "iteration": every client reads a random batch.
        let mut hits = 0usize;
        let mut misses = 0usize;
        let mut chunk_loads = 0usize;
        for _ in 0..CLIENTS * BATCH {
            let f = rng.gen_range(0..FILES);
            let resident =
                if chunk_fill { chunk_loaded[f / FILES_PER_CHUNK] } else { file_loaded[f] };
            if resident {
                hits += 1;
            } else {
                misses += 1;
                if chunk_fill {
                    let c = f / FILES_PER_CHUNK;
                    chunk_loaded[c] = true;
                    chunk_loads += 1;
                    let lo = c * FILES_PER_CHUNK;
                    let hi = ((c + 1) * FILES_PER_CHUNK).min(FILES);
                    for loaded in &mut file_loaded[lo..hi] {
                        if !*loaded {
                            *loaded = true;
                            loaded_files += 1;
                        }
                    }
                } else if !file_loaded[f] {
                    file_loaded[f] = true;
                    loaded_files += 1;
                }
            }
        }
        // Batch wall time: work divided over the clients; misses pay the
        // slow path.
        let batch_time = if chunk_fill {
            // Chunk loads stream from the storage cluster at full
            // bandwidth and the batch waits on them.
            let chunk_time =
                chunk_loads as f64 * FILES_PER_CHUNK as f64 * FILE_BYTES / STORAGE_BYTES_PER_SEC;
            (hits + misses) as f64 * HIT_COST / CLIENTS as f64 + chunk_time
        } else {
            (hits as f64 * HIT_COST + misses as f64 * MC_MISS_COST) / CLIENTS as f64
        };
        elapsed += batch_time;
        let ratio = loaded_files as f64 / FILES as f64;
        if iter % 5 == 0 || ratio >= 1.0 {
            points.push((elapsed, batch_time, ratio));
        }
        if ratio >= 1.0 {
            finished_at = Some(elapsed);
            break;
        }
    }
    Series {
        label: if chunk_fill {
            "DIESEL (0%→100%, chunk-wise)"
        } else {
            "Memcached (80%→100%, file-wise)"
        },
        points,
        finished_at,
    }
}

fn main() {
    let diesel = simulate(true, 0.0, 1);
    let memcached = simulate(false, 0.8, 2);

    for series in [&diesel, &memcached] {
        let mut table = Table::new(
            format!("Fig. 11b: {}", series.label),
            &["elapsed (s)", "batch time (s)", "hit ratio"],
        );
        // Subsample to ~12 rows.
        let step = (series.points.len() / 12).max(1);
        for (i, (t, bt, r)) in series.points.iter().enumerate() {
            if i % step == 0 || *r >= 1.0 {
                table.row(&[format!("{t:.1}"), format!("{bt:.3}"), format!("{:.1}%", r * 100.0)]);
            }
        }
        table.emit("fig11b");
    }
    diesel_bench::report::note(
        "fig11b",
        &format!(
            "full-cache times — DIESEL from empty: {:.1}s (paper: ~10s, batch time \
             stabilizing ~0.1s); Memcached reloading just 20% of files: {} \
             (paper: >100s). Chunk-granular fill beats file-granular fill by {:.0}x \
             while loading 5x more data.",
            diesel.finished_at.unwrap_or(f64::NAN),
            memcached
                .finished_at
                .map(|t| format!("{t:.0}s"))
                .unwrap_or_else(|| ">600s (tail not reached)".into()),
            memcached.finished_at.unwrap_or(600.0) / diesel.finished_at.unwrap_or(1.0)
        ),
    );
}
