//! Table 2 — read bandwidth and IOPS vs file size on the SSD storage
//! cluster.
//!
//! Reproduction: the calibrated [`DeviceModel::nvme_ssd_cluster`] cost
//! model, evaluated at the paper's seven file sizes, against the paper's
//! measured rows. The point of the table — large reads multiply the
//! effective 4K-IOPS ~25× — should fall out of the fit.

use diesel_bench::report::{fmt_count, note};
use diesel_bench::Table;
use diesel_store::model::{DeviceModel, TABLE2_PAPER_ROWS};

fn main() {
    let model = DeviceModel::nvme_ssd_cluster();
    let mut table = Table::new(
        "Table 2: read bandwidth & IOPS vs file size (paper vs model)",
        &[
            "File Size",
            "paper MB/s",
            "model MB/s",
            "paper files/s",
            "model files/s",
            "model 4K-IOPS",
            "err%",
        ],
    );
    for (size, paper_mb, paper_files) in TABLE2_PAPER_ROWS {
        let mb = model.bandwidth_mb_per_sec(size);
        let files = model.files_per_sec(size);
        let iops = model.equivalent_4k_iops(size);
        let err = (files - paper_files).abs() / paper_files * 100.0;
        table.row(&[
            human_size(size),
            format!("{paper_mb:.1}"),
            format!("{mb:.1}"),
            fmt_count(paper_files),
            fmt_count(files),
            fmt_count(iops),
            format!("{err:.1}"),
        ]);
    }
    table.emit("table2");

    let ratio = model.equivalent_4k_iops(4 << 20) / model.equivalent_4k_iops(4 << 10);
    note(
        "table2",
        &format!(
            "4 MB reads deliver {ratio:.1}x the equivalent 4K-IOPS of 4 KB reads \
             (paper: ~25x) — the asymmetry DIESEL's >=4 MB chunks exploit."
        ),
    );
}

fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else {
        format!("{}KB", bytes >> 10)
    }
}
