//! Fixed-width table printing and result persistence for the
//! experiment binaries.

use std::fmt::Write as _;

/// A simple fixed-width table that prints like the paper's tables.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are pre-formatted strings).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(ncols);
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:>width$}", c, width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * ncols + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout and persist when `DIESEL_RESULTS_DIR` is set.
    pub fn emit(&self, experiment: &str) {
        let rendered = self.render();
        println!("{rendered}");
        persist(experiment, &rendered);
    }
}

/// Append free text to the experiment's result file (and stdout).
pub fn note(experiment: &str, text: &str) {
    println!("{text}");
    persist(experiment, text);
}

fn persist(experiment: &str, text: &str) {
    if let Ok(dir) = std::env::var("DIESEL_RESULTS_DIR") {
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("{experiment}.txt"));
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "{text}");
        }
    }
}

/// Format a float with thousands grouping for readability.
pub fn fmt_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "12345".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("| long-name | 12345 |"));
        assert!(r.contains("|         a |     1 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(1_234_567.0), "1.23M");
        assert_eq!(fmt_count(45_600.0), "45.6k");
        assert_eq!(fmt_count(12.34), "12.3");
    }
}
