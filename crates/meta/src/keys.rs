//! The key-value key schema (paper Fig. 5b).
//!
//! All keys are namespaced by dataset. Directory listings use the
//! `hash(parent)` construction from the paper so that one `pscan`
//! enumerates exactly one directory's children of one kind:
//!
//! | key                                          | value               |
//! |----------------------------------------------|---------------------|
//! | `ds/<dataset>`                               | [`DatasetRecord`]   |
//! | `ck/<dataset>/<chunk-id>`                    | [`ChunkRecord`]     |
//! | `f/<dataset>/<full path>`                    | [`FileMeta`]        |
//! | `dir/<dataset>/<hash(parent)>/d/<name>`      | (empty)             |
//! | `dir/<dataset>/<hash(parent)>/f/<name>`      | [`FileMeta`]        |
//!
//! [`DatasetRecord`]: crate::records::DatasetRecord
//! [`ChunkRecord`]: crate::records::ChunkRecord
//! [`FileMeta`]: crate::records::FileMeta

use diesel_chunk::ChunkId;
use diesel_kv::hash::fnv1a_64;

/// Key of a dataset record.
pub fn dataset_key(dataset: &str) -> String {
    format!("ds/{dataset}")
}

/// Prefix matching all dataset records.
pub const DATASET_PREFIX: &str = "ds/";

/// Key of a chunk record.
pub fn chunk_key(dataset: &str, id: ChunkId) -> String {
    format!("ck/{dataset}/{}", id.encode())
}

/// Prefix matching all chunk records of a dataset, in chunk-ID order
/// (the encoding is order-preserving, so a sorted pscan is a time scan).
pub fn chunk_prefix(dataset: &str) -> String {
    format!("ck/{dataset}/")
}

/// Key of a file record (point lookup by full path).
pub fn file_key(dataset: &str, path: &str) -> String {
    format!("f/{dataset}/{path}")
}

/// Prefix matching all file records of a dataset.
pub fn file_prefix(dataset: &str) -> String {
    format!("f/{dataset}/")
}

/// Hash of a parent directory path, printed as fixed-width hex so keys
/// stay flat and uniformly distributed across KV instances.
pub fn dir_hash(parent: &str) -> String {
    format!("{:016x}", fnv1a_64(parent.as_bytes()))
}

/// Key of a directory-entry record: `kind` is `'d'` or `'f'`.
pub fn dir_entry_key(dataset: &str, parent: &str, kind: char, name: &str) -> String {
    debug_assert!(kind == 'd' || kind == 'f');
    format!("dir/{dataset}/{}/{kind}/{name}", dir_hash(parent))
}

/// Prefix for one directory's children of one kind (the paper's
/// `pscan hash(folder)/d` / `pscan hash(folder)/f`).
pub fn dir_scan_prefix(dataset: &str, parent: &str, kind: char) -> String {
    debug_assert!(kind == 'd' || kind == 'f');
    format!("dir/{dataset}/{}/{kind}/", dir_hash(parent))
}

/// Split a full path into `(parent, basename)`. The root parent is `""`.
pub fn split_path(path: &str) -> (&str, &str) {
    match path.rfind('/') {
        Some(i) => (&path[..i], &path[i + 1..]),
        None => ("", path),
    }
}

/// All ancestor (parent, child-component) pairs a file's path implies.
///
/// `a/b/c.jpg` yields `[("", "a"), ("a", "b")]` — the directories that
/// must exist — plus the caller stores the `("a/b", "c.jpg")` file entry.
pub fn ancestor_dirs(path: &str) -> Vec<(&str, &str)> {
    let mut out = Vec::new();
    let mut prev_end = 0usize;
    for (i, _) in path.match_indices('/') {
        let parent = if prev_end == 0 { "" } else { &path[..prev_end - 1] };
        let name = &path[prev_end..i];
        if !name.is_empty() {
            out.push((parent, name));
        }
        prev_end = i + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::MachineId;

    #[test]
    fn key_shapes() {
        assert_eq!(dataset_key("imagenet"), "ds/imagenet");
        let id = ChunkId::new(7, MachineId::from_seed(1), 2, 3);
        assert!(chunk_key("imagenet", id).starts_with("ck/imagenet/"));
        assert_eq!(file_key("d", "a/b.jpg"), "f/d/a/b.jpg");
    }

    #[test]
    fn chunk_keys_sort_in_write_order() {
        let gen = diesel_chunk::ChunkIdGenerator::deterministic(1, 1, 100);
        let keys: Vec<String> = (0..100).map(|_| chunk_key("ds", gen.next_id())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn split_path_cases() {
        assert_eq!(split_path("a/b/c.jpg"), ("a/b", "c.jpg"));
        assert_eq!(split_path("top.txt"), ("", "top.txt"));
        assert_eq!(split_path("a/b/"), ("a/b", ""));
    }

    #[test]
    fn ancestors() {
        assert_eq!(ancestor_dirs("a/b/c.jpg"), vec![("", "a"), ("a", "b")]);
        assert_eq!(ancestor_dirs("plain.txt"), Vec::<(&str, &str)>::new());
        assert_eq!(ancestor_dirs("x/y"), vec![("", "x")]);
    }

    #[test]
    fn dir_keys_differ_by_parent_and_kind() {
        let d1 = dir_entry_key("ds", "a", 'd', "x");
        let d2 = dir_entry_key("ds", "b", 'd', "x");
        let f1 = dir_entry_key("ds", "a", 'f', "x");
        assert_ne!(d1, d2);
        assert_ne!(d1, f1);
        assert!(d1.starts_with(&dir_scan_prefix("ds", "a", 'd')));
        assert!(f1.starts_with(&dir_scan_prefix("ds", "a", 'f')));
    }

    #[test]
    fn dir_hash_is_stable_hex() {
        let h = dir_hash("train/cat");
        assert_eq!(h.len(), 16);
        assert_eq!(h, dir_hash("train/cat"));
        assert_ne!(h, dir_hash("train/dog"));
    }
}
