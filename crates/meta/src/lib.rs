//! # diesel-meta — metadata storage, processing and snapshots
//!
//! DIESEL's first contribution (§4.1) is decoupling metadata *storage*
//! (a key-value database) from metadata *processing* (performed in DIESEL
//! servers and, via snapshots, in the clients themselves):
//!
//! * [`keys`] — the key schema of Fig. 5b. File-system operations map to
//!   KV operations: `stat` is one `get`; `readdir` of `/folderA` is
//!   `pscan hash(/folderA)/d ∪ pscan hash(/folderA)/f`.
//! * [`records`] — compact binary codecs for dataset / chunk / file
//!   records (hand-rolled: versioned, little-endian, no external format
//!   dependency).
//! * [`MetaService`] — the server-side metadata path: ingest a chunk
//!   header into KV pairs, look up files, list directories, delete files
//!   (bitmap update), and materialize snapshots.
//! * [`MetaSnapshot`] — the per-dataset snapshot (§4.1.3): dataset update
//!   timestamp, the chunk-ID list, and per-file (chunk, offset, length,
//!   full name). Clients load it once and serve *all* metadata locally —
//!   the mechanism behind the linear scaling of Fig. 10b.
//! * [`Namespace`] — the client-side in-memory index built from a
//!   snapshot: O(1) stat, directory tree for `readdir`/`ls -R`.
//! * [`recovery`] — §4.1.2: rebuild the KV contents by scanning
//!   self-contained chunks in ID (= write) order, either from a timestamp
//!   (scenario a, partial loss) or from scratch (scenario b, power loss).

pub mod keys;
pub mod namespace;
pub mod records;
pub mod recovery;
pub mod service;
pub mod snapshot;

pub use namespace::{DirEntry, EntryKind, Namespace};
pub use records::{ChunkRecord, DatasetRecord, FileMeta};
pub use recovery::{recover_from_timestamp, recover_full, RecoveryReport};
pub use service::MetaService;
pub use snapshot::MetaSnapshot;

/// Errors from the metadata layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// The underlying KV store failed.
    Kv(diesel_kv::KvError),
    /// A stored record could not be decoded (version skew / corruption).
    BadRecord { key: String },
    /// A snapshot buffer could not be decoded.
    BadSnapshot(String),
    /// The named dataset does not exist.
    NoSuchDataset(String),
    /// The named file does not exist in the dataset.
    NoSuchFile(String),
    /// Chunk parsing failed during recovery.
    Chunk(diesel_chunk::ChunkError),
    /// Object-store access failed during recovery.
    Store(String),
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::Kv(e) => write!(f, "kv error: {e}"),
            MetaError::BadRecord { key } => write!(f, "undecodable record at {key:?}"),
            MetaError::BadSnapshot(why) => write!(f, "bad snapshot: {why}"),
            MetaError::NoSuchDataset(d) => write!(f, "no such dataset: {d:?}"),
            MetaError::NoSuchFile(p) => write!(f, "no such file: {p:?}"),
            MetaError::Chunk(e) => write!(f, "chunk error during recovery: {e}"),
            MetaError::Store(e) => write!(f, "object store error: {e}"),
        }
    }
}

impl std::error::Error for MetaError {}

impl From<diesel_kv::KvError> for MetaError {
    fn from(e: diesel_kv::KvError) -> Self {
        MetaError::Kv(e)
    }
}

impl From<diesel_chunk::ChunkError> for MetaError {
    fn from(e: diesel_chunk::ChunkError) -> Self {
        MetaError::Chunk(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MetaError>;
