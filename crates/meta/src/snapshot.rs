//! Per-dataset metadata snapshots (§4.1.3).
//!
//! "The metadata snapshot is kept simple to reduce the download time and
//! the snapshot size, containing the dataset update timestamp, the chunk
//! ID lists and the file metadata (chunk ID, offset, length and full
//! name)."
//!
//! The binary layout is versioned and CRC-protected. Chunk IDs appear
//! once in a table; each file references its chunk by table index, so a
//! 1.28 M-file dataset costs ≈ 40 B + name length per file.
//!
//! Freshness: a client compares `(dataset, updated_ms)` against the
//! dataset record in the KV database; a stale snapshot must be
//! re-downloaded (`DL_save_meta` / `DL_load_meta`).

use diesel_chunk::crc::crc32;
use diesel_chunk::ChunkId;

use crate::namespace::Namespace;
use crate::records::{put_string, Cursor, FileMeta};
use crate::{MetaError, Result};

const SNAPSHOT_MAGIC: [u8; 4] = *b"DSLS";
const SNAPSHOT_VERSION: u16 = 1;

/// One file row inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFile {
    /// Full path within the dataset.
    pub path: String,
    /// The file's location and stat info.
    pub meta: FileMeta,
}

/// A materialized metadata snapshot of one dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaSnapshot {
    /// Dataset name.
    pub dataset: String,
    /// Dataset update timestamp (ms) at materialization time.
    pub updated_ms: u64,
    /// All chunk IDs, sorted (write order).
    pub chunks: Vec<ChunkId>,
    /// All live files.
    pub files: Vec<SnapshotFile>,
}

impl MetaSnapshot {
    /// Serialize to the on-disk format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.chunks.len() * 16 + self.files.len() * 56);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        let crc_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes());
        put_string(&mut out, &self.dataset);
        out.extend_from_slice(&self.updated_ms.to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.0);
        }
        out.extend_from_slice(&(self.files.len() as u32).to_le_bytes());
        for f in &self.files {
            put_string(&mut out, &f.path);
            f.meta.encode_into(&mut out);
        }
        let crc = crc32(&out);
        out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserialize and verify.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let fail = |why: &str| MetaError::BadSnapshot(why.to_owned());
        if data.len() < 10 || data[0..4] != SNAPSHOT_MAGIC {
            return Err(fail("bad magic"));
        }
        let version =
            u16::from_le_bytes(data[4..6].try_into().map_err(|_| fail("truncated header"))?);
        if version > SNAPSHOT_VERSION {
            return Err(fail("unsupported version"));
        }
        let stored_crc =
            u32::from_le_bytes(data[6..10].try_into().map_err(|_| fail("truncated header"))?);
        let mut hasher = diesel_chunk::crc::Hasher::new();
        hasher.update(&data[0..6]);
        hasher.update(&[0u8; 4]);
        hasher.update(&data[10..]);
        if hasher.finalize() != stored_crc {
            return Err(fail("checksum mismatch"));
        }
        let mut c = Cursor::new(&data[10..]);
        let dataset = c.string().ok_or_else(|| fail("dataset name"))?;
        let updated_ms = c.u64().ok_or_else(|| fail("timestamp"))?;
        let n_chunks = c.u32().ok_or_else(|| fail("chunk count"))? as usize;
        let mut chunks = Vec::with_capacity(n_chunks.min(1 << 20));
        for _ in 0..n_chunks {
            chunks.push(c.chunk_id().ok_or_else(|| fail("chunk id"))?);
        }
        let n_files = c.u32().ok_or_else(|| fail("file count"))? as usize;
        let mut files = Vec::with_capacity(n_files.min(1 << 22));
        for _ in 0..n_files {
            let path = c.string().ok_or_else(|| fail("file path"))?;
            let meta = FileMeta::decode_from(&mut c).ok_or_else(|| fail("file meta"))?;
            files.push(SnapshotFile { path, meta });
        }
        if c.remaining() != 0 {
            return Err(fail("trailing bytes"));
        }
        Ok(MetaSnapshot { dataset, updated_ms, chunks, files })
    }

    /// Write to a local file (`DL_save_meta`).
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.encode()).map_err(|e| MetaError::Store(e.to_string()))
    }

    /// Load from a local file (`DL_load_meta`).
    pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let data = std::fs::read(path).map_err(|e| MetaError::Store(e.to_string()))?;
        Self::decode(&data)
    }

    /// Build the client-side O(1) metadata index from this snapshot.
    pub fn build_namespace(&self) -> Namespace {
        Namespace::from_files(self.files.iter().map(|f| (f.path.clone(), f.meta)))
    }

    /// Is this snapshot current w.r.t. the authority's `(dataset,
    /// updated_ms)`? (§4.1.3's up-to-date check.)
    pub fn is_fresh(&self, dataset: &str, authority_updated_ms: u64) -> bool {
        self.dataset == dataset && self.updated_ms == authority_updated_ms
    }

    /// Total serialized size (reported by the snapshot-efficiency bench).
    pub fn encoded_size(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::MachineId;
    use proptest::prelude::*;

    fn cid(n: u32) -> ChunkId {
        ChunkId::new(n, MachineId::from_seed(3), 9, n)
    }

    fn sample() -> MetaSnapshot {
        let chunks = vec![cid(1), cid(2)];
        let files = (0..100)
            .map(|i| SnapshotFile {
                path: format!("train/class{}/img{i}.jpg", i % 7),
                meta: FileMeta {
                    chunk: chunks[i % 2],
                    index_in_chunk: i as u32,
                    offset: (i * 1000) as u64,
                    length: 997,
                    uploaded_ms: 1234,
                },
            })
            .collect();
        MetaSnapshot { dataset: "imagenet-mini".into(), updated_ms: 777, chunks, files }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let enc = s.encode();
        let back = MetaSnapshot::decode(&enc).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn corruption_detected() {
        let s = sample();
        let mut enc = s.encode();
        let n = enc.len();
        enc[n / 2] ^= 0x40;
        assert!(matches!(MetaSnapshot::decode(&enc), Err(MetaError::BadSnapshot(_))));
        assert!(MetaSnapshot::decode(&enc[..n - 1]).is_err());
        assert!(MetaSnapshot::decode(b"????").is_err());
    }

    #[test]
    fn freshness_check() {
        let s = sample();
        assert!(s.is_fresh("imagenet-mini", 777));
        assert!(!s.is_fresh("imagenet-mini", 778), "stale timestamp");
        assert!(!s.is_fresh("other", 777), "wrong dataset");
    }

    #[test]
    fn namespace_from_snapshot() {
        let s = sample();
        let ns = s.build_namespace();
        assert_eq!(ns.file_count(), 100);
        assert_eq!(ns.stat("train/class0/img0.jpg").unwrap().length, 997);
        assert!(ns.is_dir("train/class3"));
    }

    #[test]
    fn save_load_file() {
        let s = sample();
        let path = std::env::temp_dir().join(format!("diesel-snap-{}.bin", std::process::id()));
        s.save_to(&path).unwrap();
        let back = MetaSnapshot::load_from(&path).unwrap();
        assert_eq!(back, s);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_is_compact() {
        // The paper: ImageNet-1K snapshot stays small. Check bytes/file
        // stays near name-length + ~48 B of fixed cost.
        let s = sample();
        let per_file = s.encoded_size() as f64 / s.files.len() as f64;
        assert!(per_file < 80.0, "snapshot too fat: {per_file:.1} B/file");
    }

    #[test]
    fn empty_snapshot() {
        let s =
            MetaSnapshot { dataset: "empty".into(), updated_ms: 0, chunks: vec![], files: vec![] };
        let back = MetaSnapshot::decode(&s.encode()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.build_namespace().file_count(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = MetaSnapshot::decode(&data);
        }
    }
}
