//! Binary codecs for the metadata records stored in the KV database.
//!
//! Records are versioned (one leading version byte) and little-endian.
//! Codecs are hand-rolled: the approved dependency set has no serde
//! *format* crate, and the records are simple enough that explicit
//! layouts double as documentation.

use diesel_chunk::{ChunkId, DeletionBitmap};

use crate::{MetaError, Result};

const RECORD_VERSION: u8 = 1;

/// Cursor-style reader with bounds checking.
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4).and_then(|s| s.try_into().ok()).map(u32::from_le_bytes)
    }
    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8).and_then(|s| s.try_into().ok()).map(u64::from_le_bytes)
    }
    pub(crate) fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        // diesel-lint: allow(R6) tiny metadata string, not chunk payload
        String::from_utf8(bytes.to_vec()).ok()
    }
    pub(crate) fn chunk_id(&mut self) -> Option<ChunkId> {
        self.take(16).and_then(|s| s.try_into().ok()).map(ChunkId)
    }
    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn bad(key_hint: &str) -> MetaError {
    MetaError::BadRecord { key: key_hint.to_owned() }
}

/// Per-dataset record (`ds/<dataset>`): the freshness authority a client
/// compares its snapshot against (§4.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetRecord {
    /// Millisecond timestamp of the latest chunk ingest/delete.
    pub updated_ms: u64,
    /// Number of chunks in the dataset.
    pub chunk_count: u64,
    /// Number of live files across chunks.
    pub file_count: u64,
    /// Total payload bytes across chunks.
    pub total_bytes: u64,
}

impl DatasetRecord {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33);
        out.push(RECORD_VERSION);
        out.extend_from_slice(&self.updated_ms.to_le_bytes());
        out.extend_from_slice(&self.chunk_count.to_le_bytes());
        out.extend_from_slice(&self.file_count.to_le_bytes());
        out.extend_from_slice(&self.total_bytes.to_le_bytes());
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut c = Cursor::new(data);
        if c.u8() != Some(RECORD_VERSION) {
            return Err(bad("DatasetRecord"));
        }
        Ok(DatasetRecord {
            updated_ms: c.u64().ok_or_else(|| bad("DatasetRecord"))?,
            chunk_count: c.u64().ok_or_else(|| bad("DatasetRecord"))?,
            file_count: c.u64().ok_or_else(|| bad("DatasetRecord"))?,
            total_bytes: c.u64().ok_or_else(|| bad("DatasetRecord"))?,
        })
    }
}

/// Per-chunk record (`ck/<dataset>/<id>`): Fig. 5b lists "the update
/// timestamp, size, number of files it contains, number of deleted files
/// and the deletion bitmap".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Update timestamp (ms).
    pub updated_ms: u64,
    /// Total chunk size in bytes (header + payload).
    pub size: u64,
    /// Files in the chunk (live + deleted).
    pub file_count: u32,
    /// Deletion state.
    pub bitmap: DeletionBitmap,
}

impl ChunkRecord {
    /// Number of deleted files (from the bitmap).
    pub fn deleted_count(&self) -> u32 {
        self.bitmap.deleted_count() as u32
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let bm = self.bitmap.to_bytes();
        let mut out = Vec::with_capacity(1 + 8 + 8 + 4 + 4 + bm.len());
        out.push(RECORD_VERSION);
        out.extend_from_slice(&self.updated_ms.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.file_count.to_le_bytes());
        out.extend_from_slice(&self.deleted_count().to_le_bytes());
        out.extend_from_slice(&bm);
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut c = Cursor::new(data);
        if c.u8() != Some(RECORD_VERSION) {
            return Err(bad("ChunkRecord"));
        }
        let updated_ms = c.u64().ok_or_else(|| bad("ChunkRecord"))?;
        let size = c.u64().ok_or_else(|| bad("ChunkRecord"))?;
        let file_count = c.u32().ok_or_else(|| bad("ChunkRecord"))?;
        let deleted_count = c.u32().ok_or_else(|| bad("ChunkRecord"))?;
        let bm_len = DeletionBitmap::wire_len(file_count as usize);
        let bm_bytes = c.take(bm_len).ok_or_else(|| bad("ChunkRecord"))?;
        let bitmap = DeletionBitmap::from_bytes(bm_bytes, file_count as usize)
            .ok_or_else(|| bad("ChunkRecord"))?;
        if bitmap.deleted_count() as u32 != deleted_count {
            return Err(bad("ChunkRecord"));
        }
        Ok(ChunkRecord { updated_ms, size, file_count, bitmap })
    }
}

/// Per-file record (`f/<dataset>/<path>` and `dir/.../f/<name>`): where
/// the file's bytes live. This is also the per-file payload of the
/// metadata snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileMeta {
    /// The chunk holding the file.
    pub chunk: ChunkId,
    /// Index of the file within the chunk's file table (needed for
    /// bitmap updates on delete).
    pub index_in_chunk: u32,
    /// Byte offset within the chunk payload.
    pub offset: u64,
    /// File length in bytes.
    pub length: u64,
    /// Upload timestamp (ms) — `DL_stat` reports it.
    pub uploaded_ms: u64,
}

impl FileMeta {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 16 + 4 + 8 + 8 + 8);
        out.push(RECORD_VERSION);
        self.encode_into(&mut out);
        out
    }

    /// Serialize without the version byte (snapshot uses a file-level
    /// version instead).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.chunk.0);
        out.extend_from_slice(&self.index_in_chunk.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.length.to_le_bytes());
        out.extend_from_slice(&self.uploaded_ms.to_le_bytes());
    }

    pub(crate) fn decode_from(c: &mut Cursor<'_>) -> Option<Self> {
        Some(FileMeta {
            chunk: c.chunk_id()?,
            index_in_chunk: c.u32()?,
            offset: c.u64()?,
            length: c.u64()?,
            uploaded_ms: c.u64()?,
        })
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut c = Cursor::new(data);
        if c.u8() != Some(RECORD_VERSION) {
            return Err(bad("FileMeta"));
        }
        Self::decode_from(&mut c).ok_or_else(|| bad("FileMeta"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::MachineId;
    use proptest::prelude::*;

    fn cid(seed: u64) -> ChunkId {
        ChunkId::new(seed as u32, MachineId::from_seed(seed), seed as u32 % 999, 7)
    }

    #[test]
    fn dataset_record_roundtrip() {
        let r =
            DatasetRecord { updated_ms: 123, chunk_count: 4, file_count: 99, total_bytes: 1 << 40 };
        assert_eq!(DatasetRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn chunk_record_roundtrip_with_bitmap() {
        let mut bitmap = DeletionBitmap::new(77);
        bitmap.set_deleted(5);
        bitmap.set_deleted(76);
        let r = ChunkRecord { updated_ms: 9, size: 4 << 20, file_count: 77, bitmap };
        let back = ChunkRecord::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.deleted_count(), 2);
    }

    #[test]
    fn file_meta_roundtrip() {
        let f = FileMeta {
            chunk: cid(11),
            index_in_chunk: 3,
            offset: 4096,
            length: 1234,
            uploaded_ms: 55,
        };
        assert_eq!(FileMeta::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn decoders_reject_garbage() {
        assert!(DatasetRecord::decode(&[]).is_err());
        assert!(DatasetRecord::decode(&[9, 0, 0]).is_err());
        assert!(ChunkRecord::decode(&[1, 2, 3]).is_err());
        assert!(FileMeta::decode(&[1]).is_err());
        // Wrong version byte.
        let good =
            FileMeta { chunk: cid(1), index_in_chunk: 0, offset: 0, length: 0, uploaded_ms: 0 }
                .encode();
        let mut wrong = good.clone();
        wrong[0] = 99;
        assert!(FileMeta::decode(&wrong).is_err());
    }

    #[test]
    fn chunk_record_rejects_count_bitmap_mismatch() {
        let bitmap = DeletionBitmap::new(8);
        let r = ChunkRecord { updated_ms: 1, size: 2, file_count: 8, bitmap };
        let mut enc = r.encode();
        // Corrupt the deleted_count field (bytes 17..21 → offset 1+8+8+4 = 21..25).
        enc[21] = 5;
        assert!(ChunkRecord::decode(&enc).is_err());
    }

    proptest! {
        #[test]
        fn file_meta_roundtrip_prop(idx in any::<u32>(), off in any::<u64>(), len in any::<u64>(), up in any::<u64>(), seed in any::<u64>()) {
            let f = FileMeta { chunk: cid(seed), index_in_chunk: idx, offset: off, length: len, uploaded_ms: up };
            prop_assert_eq!(FileMeta::decode(&f.encode()).unwrap(), f);
        }

        #[test]
        fn record_decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = DatasetRecord::decode(&data);
            let _ = ChunkRecord::decode(&data);
            let _ = FileMeta::decode(&data);
        }
    }
}
