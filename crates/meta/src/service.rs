//! The server-side metadata path.
//!
//! `MetaService` performs the metadata *processing* that the paper
//! deliberately keeps out of the KV database (§4.1.1): extracting
//! key-value pairs from chunk headers on ingest, translating file-system
//! operations into KV operations, and materializing snapshots.

use std::sync::Arc;

use diesel_chunk::{ChunkHeader, ChunkId};
use diesel_kv::{Bytes, KvStore};

use crate::keys;
use crate::namespace::{DirEntry, EntryKind};
use crate::records::{ChunkRecord, DatasetRecord, FileMeta};
use crate::snapshot::{MetaSnapshot, SnapshotFile};
use crate::{MetaError, Result};

/// Metadata processing over a KV storage backend.
///
/// Dataset and chunk record counters are maintained with
/// [`KvStore::update`] — an atomic read-modify-write *in the store* —
/// because pooled front-end servers share one KV cluster, so no lock
/// local to a single service instance could serialize them.
pub struct MetaService<K> {
    kv: Arc<K>,
}

impl<K: KvStore> MetaService<K> {
    /// A service over `kv`.
    pub fn new(kv: Arc<K>) -> Self {
        MetaService { kv }
    }

    /// The underlying KV handle.
    pub fn kv(&self) -> &Arc<K> {
        &self.kv
    }

    /// Ingest one chunk's header: "the server extracts the metadata to
    /// construct key-value pairs and writes them to the key-value
    /// database" (Fig. 3). `chunk_size` is the full chunk length.
    pub fn ingest_chunk(&self, dataset: &str, header: &ChunkHeader, chunk_size: u64) -> Result<()> {
        let mut pairs: Vec<(String, Bytes)> = Vec::with_capacity(2 + header.files.len() * 2);
        let record = ChunkRecord {
            updated_ms: header.updated_ms,
            size: chunk_size,
            file_count: header.files.len() as u32,
            bitmap: header.bitmap.clone(),
        };
        pairs.push((keys::chunk_key(dataset, header.id), record.encode().into()));

        let mut live_files = 0u64;
        let mut live_bytes = 0u64;
        for (i, f) in header.files.iter().enumerate() {
            if header.bitmap.is_deleted(i) {
                continue;
            }
            live_files += 1;
            live_bytes += f.length;
            let meta = FileMeta {
                chunk: header.id,
                index_in_chunk: i as u32,
                offset: f.offset,
                length: f.length,
                uploaded_ms: header.updated_ms,
            };
            // One encoded buffer, shared by the file record and its
            // dir entry (a `Bytes` clone is a refcount bump).
            let enc: Bytes = meta.encode().into();
            pairs.push((keys::file_key(dataset, &f.name), enc.clone()));
            let (parent, name) = keys::split_path(&f.name);
            pairs.push((keys::dir_entry_key(dataset, parent, 'f', name), enc));
            for (anc_parent, anc_name) in keys::ancestor_dirs(&f.name) {
                pairs.push((keys::dir_entry_key(dataset, anc_parent, 'd', anc_name), Bytes::new()));
            }
        }
        self.kv.mput(pairs)?;

        // Fold this chunk's contribution into the dataset record with an
        // atomic store-side update (concurrent ingest through *other*
        // pool servers races on the same record).
        let mut decode_err = None;
        self.kv.update(&keys::dataset_key(dataset), &mut |cur| {
            let mut rec = match cur {
                Some(raw) => match DatasetRecord::decode(&raw) {
                    Ok(rec) => rec,
                    Err(e) => {
                        decode_err = Some(e);
                        return Some(raw); // leave the record untouched
                    }
                },
                None => {
                    DatasetRecord { updated_ms: 0, chunk_count: 0, file_count: 0, total_bytes: 0 }
                }
            };
            rec.updated_ms = rec.updated_ms.max(header.updated_ms);
            rec.chunk_count += 1;
            rec.file_count += live_files;
            rec.total_bytes += live_bytes;
            Some(rec.encode().into())
        })?;
        match decode_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The dataset record (freshness authority).
    pub fn dataset_record(&self, dataset: &str) -> Result<DatasetRecord> {
        match self.kv.get(&keys::dataset_key(dataset))? {
            Some(raw) => DatasetRecord::decode(&raw),
            None => Err(MetaError::NoSuchDataset(dataset.to_owned())),
        }
    }

    /// All dataset names.
    pub fn list_datasets(&self) -> Result<Vec<String>> {
        Ok(self
            .kv
            .pscan(keys::DATASET_PREFIX)?
            .into_iter()
            .map(|(k, _)| k[keys::DATASET_PREFIX.len()..].to_owned())
            .collect())
    }

    /// Point lookup of one file's metadata ("retrieved by a single get").
    pub fn file_meta(&self, dataset: &str, path: &str) -> Result<FileMeta> {
        match self.kv.get(&keys::file_key(dataset, path))? {
            Some(raw) => FileMeta::decode(&raw),
            None => Err(MetaError::NoSuchFile(path.to_owned())),
        }
    }

    /// Chunk record lookup.
    pub fn chunk_record(&self, dataset: &str, id: ChunkId) -> Result<ChunkRecord> {
        match self.kv.get(&keys::chunk_key(dataset, id))? {
            Some(raw) => ChunkRecord::decode(&raw),
            None => Err(MetaError::NoSuchDataset(format!("{dataset}:{id}"))),
        }
    }

    /// All chunk IDs of a dataset, in write (ID) order.
    pub fn chunk_ids(&self, dataset: &str) -> Result<Vec<ChunkId>> {
        let prefix = keys::chunk_prefix(dataset);
        let mut ids = Vec::new();
        for (k, _) in self.kv.pscan(&prefix)? {
            let enc = &k[prefix.len()..];
            ids.push(ChunkId::decode(enc).map_err(|_| MetaError::BadRecord { key: k.clone() })?);
        }
        Ok(ids) // pscan is sorted; the encoding is order-preserving
    }

    /// `readdir`: "`pscan hash(/folderA)/d ∪ pscan hash(/folderA)/f`"
    /// (§4.1.1).
    pub fn readdir(&self, dataset: &str, dir: &str) -> Result<Vec<DirEntry>> {
        let dprefix = keys::dir_scan_prefix(dataset, dir, 'd');
        let fprefix = keys::dir_scan_prefix(dataset, dir, 'f');
        let mut out = Vec::new();
        for (k, _) in self.kv.pscan(&dprefix)? {
            out.push(DirEntry {
                name: k[dprefix.len()..].to_owned(),
                kind: EntryKind::Dir,
                size: 0,
            });
        }
        for (k, v) in self.kv.pscan(&fprefix)? {
            let meta = FileMeta::decode(&v)?;
            out.push(DirEntry {
                name: k[fprefix.len()..].to_owned(),
                kind: EntryKind::File,
                size: meta.length,
            });
        }
        Ok(out)
    }

    /// Delete a file: remove its records and flip its bit in the chunk
    /// record. Returns the removed meta (the caller updates the chunk
    /// bytes in object storage via `mark_deleted`).
    pub fn delete_file(&self, dataset: &str, path: &str, now_ms: u64) -> Result<FileMeta> {
        let meta = self.file_meta(dataset, path)?;
        // Flip the file's bit in the chunk record (atomically — deleters
        // of sibling files in the same chunk race on the bitmap).
        let ck = keys::chunk_key(dataset, meta.chunk);
        let mut found = false;
        let mut decode_err = None;
        self.kv.update(&ck, &mut |cur| {
            let raw = cur?;
            match ChunkRecord::decode(&raw) {
                Ok(mut rec) => {
                    found = true;
                    rec.bitmap.set_deleted(meta.index_in_chunk as usize);
                    rec.updated_ms = now_ms;
                    Some(rec.encode().into())
                }
                Err(e) => {
                    decode_err = Some(e);
                    Some(raw)
                }
            }
        })?;
        if let Some(e) = decode_err {
            return Err(e);
        }
        if !found {
            return Err(MetaError::BadRecord { key: ck });
        }
        // Remove the file and dir-entry records.
        self.kv.delete(&keys::file_key(dataset, path))?;
        let (parent, name) = keys::split_path(path);
        self.kv.delete(&keys::dir_entry_key(dataset, parent, 'f', name))?;
        // Subtract the file from the dataset counters.
        let mut decode_err = None;
        self.kv.update(&keys::dataset_key(dataset), &mut |cur| {
            let raw = cur?;
            match DatasetRecord::decode(&raw) {
                Ok(mut ds) => {
                    ds.file_count = ds.file_count.saturating_sub(1);
                    ds.total_bytes = ds.total_bytes.saturating_sub(meta.length);
                    ds.updated_ms = now_ms;
                    Some(ds.encode().into())
                }
                Err(e) => {
                    decode_err = Some(e);
                    Some(raw)
                }
            }
        })?;
        match decode_err {
            Some(e) => Err(e),
            None => Ok(meta),
        }
    }

    /// Apply signed deltas to the dataset counters (used by compaction,
    /// which removes a chunk's contribution before re-ingesting its
    /// rewritten replacement).
    pub fn adjust_dataset_counters(
        &self,
        dataset: &str,
        d_chunks: i64,
        d_files: i64,
        d_bytes: i64,
        now_ms: u64,
    ) -> Result<()> {
        let mut found = false;
        let mut decode_err = None;
        self.kv.update(&keys::dataset_key(dataset), &mut |cur| {
            let raw = cur?;
            match DatasetRecord::decode(&raw) {
                Ok(mut rec) => {
                    found = true;
                    rec.chunk_count = rec.chunk_count.saturating_add_signed(d_chunks);
                    rec.file_count = rec.file_count.saturating_add_signed(d_files);
                    rec.total_bytes = rec.total_bytes.saturating_add_signed(d_bytes);
                    rec.updated_ms = rec.updated_ms.max(now_ms);
                    Some(rec.encode().into())
                }
                Err(e) => {
                    decode_err = Some(e);
                    Some(raw)
                }
            }
        })?;
        if let Some(e) = decode_err {
            return Err(e);
        }
        if !found {
            return Err(MetaError::NoSuchDataset(dataset.to_owned()));
        }
        Ok(())
    }

    /// Remove every key belonging to `dataset` (`DL_delete_dataset`).
    /// Returns the number of deleted keys.
    pub fn delete_dataset(&self, dataset: &str) -> Result<u64> {
        let mut deleted = 0u64;
        for prefix in
            [keys::chunk_prefix(dataset), keys::file_prefix(dataset), format!("dir/{dataset}/")]
        {
            for (k, _) in self.kv.pscan(&prefix)? {
                if self.kv.delete(&k)? {
                    deleted += 1;
                }
            }
        }
        if self.kv.delete(&keys::dataset_key(dataset))? {
            deleted += 1;
        }
        Ok(deleted)
    }

    /// Materialize the metadata snapshot of `dataset` (§4.1.3).
    pub fn build_snapshot(&self, dataset: &str) -> Result<MetaSnapshot> {
        let record = self.dataset_record(dataset)?;
        let chunks = self.chunk_ids(dataset)?;
        let fprefix = keys::file_prefix(dataset);
        let mut files = Vec::new();
        for (k, v) in self.kv.pscan(&fprefix)? {
            files.push(SnapshotFile {
                path: k[fprefix.len()..].to_owned(),
                meta: FileMeta::decode(&v)?,
            });
        }
        Ok(MetaSnapshot {
            dataset: dataset.to_owned(),
            updated_ms: record.updated_ms,
            chunks,
            files,
        })
    }
}

impl<K> std::fmt::Debug for MetaService<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaService").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::{ChunkBuilder, ChunkIdGenerator};
    use diesel_kv::ShardedKv;

    fn service() -> MetaService<ShardedKv> {
        MetaService::new(Arc::new(ShardedKv::new()))
    }

    fn make_chunk(files: &[(&str, &[u8])], ts: u32) -> (ChunkHeader, Vec<u8>) {
        let mut b = ChunkBuilder::with_default_config();
        for (n, d) in files {
            b.add_file(n, d).unwrap();
        }
        let ids = ChunkIdGenerator::deterministic(1, 1, ts);
        b.seal(ids.next_id(), ts as u64 * 1000)
    }

    #[test]
    fn ingest_then_lookup() {
        let svc = service();
        let (h, bytes) =
            make_chunk(&[("train/cat/1.jpg", b"xx"), ("train/dog/2.jpg", b"yyy")], 100);
        svc.ingest_chunk("ds", &h, bytes.len() as u64).unwrap();

        let meta = svc.file_meta("ds", "train/cat/1.jpg").unwrap();
        assert_eq!(meta.length, 2);
        assert_eq!(meta.chunk, h.id);
        assert!(matches!(svc.file_meta("ds", "nope"), Err(MetaError::NoSuchFile(_))));

        let rec = svc.dataset_record("ds").unwrap();
        assert_eq!(rec.chunk_count, 1);
        assert_eq!(rec.file_count, 2);
        assert_eq!(rec.total_bytes, 5);
        assert_eq!(rec.updated_ms, 100_000);

        let cr = svc.chunk_record("ds", h.id).unwrap();
        assert_eq!(cr.file_count, 2);
        assert_eq!(cr.size, bytes.len() as u64);
    }

    #[test]
    fn readdir_via_pscan() {
        let svc = service();
        let (h, b) = make_chunk(
            &[
                ("train/cat/1.jpg", b"a"),
                ("train/cat/2.jpg", b"bb"),
                ("train/dog/1.jpg", b"c"),
                ("top.txt", b"d"),
            ],
            5,
        );
        svc.ingest_chunk("ds", &h, b.len() as u64).unwrap();

        let root = svc.readdir("ds", "").unwrap();
        let names: Vec<&str> = root.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"train"));
        assert!(names.contains(&"top.txt"));

        let cat = svc.readdir("ds", "train/cat").unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.iter().all(|e| e.kind == EntryKind::File));
        assert_eq!(cat.iter().map(|e| e.size).sum::<u64>(), 3);

        let train = svc.readdir("ds", "train").unwrap();
        assert_eq!(train.iter().filter(|e| e.kind == EntryKind::Dir).count(), 2);
    }

    #[test]
    fn multiple_chunks_accumulate_and_sort() {
        let svc = service();
        let ids = ChunkIdGenerator::deterministic(1, 1, 50);
        let mut expected_ids = Vec::new();
        for i in 0..5 {
            let mut b = ChunkBuilder::with_default_config();
            b.add_file(&format!("f{i}"), b"data").unwrap();
            let (h, bytes) = b.seal(ids.next_id(), 50_000 + i);
            expected_ids.push(h.id);
            svc.ingest_chunk("ds", &h, bytes.len() as u64).unwrap();
        }
        let got = svc.chunk_ids("ds").unwrap();
        assert_eq!(got, expected_ids, "chunk scan must be in write order");
        assert_eq!(svc.dataset_record("ds").unwrap().chunk_count, 5);
        assert_eq!(svc.list_datasets().unwrap(), vec!["ds"]);
    }

    #[test]
    fn delete_file_updates_everything() {
        let svc = service();
        let (h, b) = make_chunk(&[("a/x", b"1234"), ("a/y", b"56")], 9);
        svc.ingest_chunk("ds", &h, b.len() as u64).unwrap();

        let meta = svc.delete_file("ds", "a/x", 99_000).unwrap();
        assert_eq!(meta.length, 4);
        assert!(svc.file_meta("ds", "a/x").is_err());
        // Chunk record bitmap updated.
        let cr = svc.chunk_record("ds", h.id).unwrap();
        assert_eq!(cr.deleted_count(), 1);
        assert_eq!(cr.updated_ms, 99_000);
        // readdir no longer lists it.
        let entries = svc.readdir("ds", "a").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "y");
        // Dataset counters updated.
        let ds = svc.dataset_record("ds").unwrap();
        assert_eq!(ds.file_count, 1);
        assert_eq!(ds.total_bytes, 2);
        assert_eq!(ds.updated_ms, 99_000);
    }

    #[test]
    fn snapshot_matches_service_state() {
        let svc = service();
        let (h, b) = make_chunk(&[("p/a", b"12"), ("p/b", b"345")], 33);
        svc.ingest_chunk("ds", &h, b.len() as u64).unwrap();
        let snap = svc.build_snapshot("ds").unwrap();
        assert_eq!(snap.dataset, "ds");
        assert_eq!(snap.chunks, vec![h.id]);
        assert_eq!(snap.files.len(), 2);
        assert!(snap.is_fresh("ds", svc.dataset_record("ds").unwrap().updated_ms));

        // After a delete the old snapshot is stale.
        svc.delete_file("ds", "p/a", 999_999).unwrap();
        assert!(!snap.is_fresh("ds", svc.dataset_record("ds").unwrap().updated_ms));
    }

    #[test]
    fn deleted_files_in_ingested_chunk_are_skipped() {
        let svc = service();
        let (mut h, b) = make_chunk(&[("keep", b"k"), ("gone", b"g")], 1);
        h.bitmap.set_deleted(1);
        svc.ingest_chunk("ds", &h, b.len() as u64).unwrap();
        assert!(svc.file_meta("ds", "keep").is_ok());
        assert!(svc.file_meta("ds", "gone").is_err());
        assert_eq!(svc.dataset_record("ds").unwrap().file_count, 1);
    }

    #[test]
    fn delete_dataset_removes_all_keys() {
        let svc = service();
        let (h, b) = make_chunk(&[("a/b/c", b"1"), ("a/d", b"2")], 7);
        svc.ingest_chunk("ds", &h, b.len() as u64).unwrap();
        let (h2, b2) = make_chunk(&[("other", b"3")], 8);
        svc.ingest_chunk("keepme", &h2, b2.len() as u64).unwrap();

        let removed = svc.delete_dataset("ds").unwrap();
        assert!(removed >= 5, "chunk + 2 files + dir entries + ds record, got {removed}");
        assert!(svc.dataset_record("ds").is_err());
        assert!(svc.file_meta("ds", "a/d").is_err());
        // Other datasets untouched.
        assert!(svc.dataset_record("keepme").is_ok());
        assert_eq!(svc.list_datasets().unwrap(), vec!["keepme"]);
    }

    #[test]
    fn no_such_dataset() {
        let svc = service();
        assert!(matches!(svc.dataset_record("ghost"), Err(MetaError::NoSuchDataset(_))));
        assert!(svc.build_snapshot("ghost").is_err());
        assert_eq!(svc.chunk_ids("ghost").unwrap(), vec![]);
    }
}
