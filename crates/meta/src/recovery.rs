//! Fault recovery of the in-memory metadata database (§4.1.2).
//!
//! Chunks are self-contained (headers embed all file metadata) and their
//! IDs sort by creation time, so the KV database is derived state:
//!
//! * **Scenario (a)** — some recently written pairs were lost (a KV node
//!   died): [`recover_from_timestamp`] re-scans only chunks whose ID
//!   timestamp is at or after a known-good point.
//! * **Scenario (b)** — all pairs were lost (power failure):
//!   [`recover_full`] scans every chunk **in ID order**, which replays
//!   the original write order so later updates win.

use diesel_chunk::{ChunkHeader, ChunkId};
use diesel_kv::KvStore;
use diesel_store::ObjectStore;

use crate::service::MetaService;
use crate::{MetaError, Result};

/// Outcome of a recovery pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Chunks scanned from the object store.
    pub chunks_scanned: u64,
    /// Live files re-registered.
    pub files_recovered: u64,
    /// Bytes of chunk data read to perform the scan (headers only would
    /// be `header_bytes`; we also report it to show the benefit of
    /// header-prefix reads).
    pub header_bytes: u64,
}

/// Key prefix under which a dataset's chunks live in the object store.
pub fn chunk_object_prefix(dataset: &str) -> String {
    format!("{dataset}/")
}

/// Object-store key of one chunk.
pub fn chunk_object_key(dataset: &str, id: ChunkId) -> String {
    format!("{dataset}/{}", id.encode())
}

/// Parse the chunk ID out of an object key produced by
/// [`chunk_object_key`].
pub fn parse_chunk_object_key<'a>(dataset: &str, key: &'a str) -> Option<&'a str> {
    key.strip_prefix(&chunk_object_prefix(dataset))
}

/// Scenario (b): rebuild all metadata of `dataset` from scratch.
///
/// Chunks are listed in key order — the order-preserving ID encoding
/// makes that the original write order — and each self-contained header
/// is re-ingested.
pub fn recover_full<K: KvStore, S: ObjectStore>(
    service: &MetaService<K>,
    store: &S,
    dataset: &str,
) -> Result<RecoveryReport> {
    recover_from_timestamp(service, store, dataset, 0)
}

/// Scenario (a): rebuild metadata for chunks created at or after
/// `since_secs` (chunk-ID timestamp seconds).
pub fn recover_from_timestamp<K: KvStore, S: ObjectStore>(
    service: &MetaService<K>,
    store: &S,
    dataset: &str,
    since_secs: u32,
) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    for key in store.list_prefix(&chunk_object_prefix(dataset)) {
        let Some(encoded) = parse_chunk_object_key(dataset, &key) else { continue };
        let Ok(id) = ChunkId::decode(encoded) else {
            return Err(MetaError::BadRecord { key });
        };
        if id.timestamp_secs() < since_secs {
            continue;
        }
        // Self-contained headers let recovery read only the chunk prefix.
        // We don't know the header length up front; read a generous
        // prefix and fall back to the whole object when the file table is
        // longer.
        let size = store.size_of(&key).unwrap_or(0);
        let probe = store
            .get_range(&key, 0, (64 << 10).min(size))
            .map_err(|e| MetaError::Store(e.to_string()))?;
        let header = match ChunkHeader::decode(&probe) {
            Ok(h) => h,
            Err(_) => {
                let whole = store.get(&key).map_err(|e| MetaError::Store(e.to_string()))?;
                report.header_bytes += whole.len() as u64;
                let h = ChunkHeader::decode(&whole)?;
                service.ingest_chunk(dataset, &h, whole.len() as u64)?;
                report.chunks_scanned += 1;
                report.files_recovered += h.bitmap.live_count() as u64;
                continue;
            }
        };
        report.header_bytes += probe.len() as u64;
        service.ingest_chunk(dataset, &header, size as u64)?;
        report.chunks_scanned += 1;
        report.files_recovered += header.bitmap.live_count() as u64;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::{ChunkBuilderConfig, ChunkIdGenerator, ChunkWriter};
    use diesel_kv::{ClusterConfig, KvCluster, ShardedKv};
    use diesel_store::{Bytes, MemObjectStore};
    use std::sync::Arc;

    /// Write a small dataset: returns (service, store, file names).
    fn populate(ts: u32) -> (MetaService<ShardedKv>, MemObjectStore, Vec<String>) {
        let svc = MetaService::new(Arc::new(ShardedKv::new()));
        let store = MemObjectStore::new();
        let ids = ChunkIdGenerator::deterministic(1, 1, ts);
        let cfg = ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(move || ts as u64 * 1000);
        let mut names = Vec::new();
        for i in 0..40 {
            let name = format!("cls{}/img{i:03}.bin", i % 4);
            w.add_file(&name, &[i as u8; 300]).unwrap();
            names.push(name);
        }
        for sealed in w.finish() {
            store.put(&chunk_object_key("ds", sealed.header.id), sealed.bytes.clone()).unwrap();
            svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
        }
        (svc, store, names)
    }

    #[test]
    fn full_recovery_rebuilds_identical_metadata() {
        let (svc, store, names) = populate(100);
        let snap_before = svc.build_snapshot("ds").unwrap();

        // Power loss: wipe the KV store, then recover from chunks.
        svc.kv().clear();
        assert!(svc.dataset_record("ds").is_err());
        let report = recover_full(&svc, &store, "ds").unwrap();
        assert_eq!(report.files_recovered, 40);
        assert!(report.chunks_scanned > 1);

        let snap_after = svc.build_snapshot("ds").unwrap();
        assert_eq!(snap_after.chunks, snap_before.chunks);
        assert_eq!(snap_after.files, snap_before.files);
        for n in &names {
            assert!(svc.file_meta("ds", n).is_ok(), "missing {n} after recovery");
        }
    }

    #[test]
    fn partial_recovery_scans_only_recent_chunks() {
        // Two write sessions at t=100 and t=200.
        let svc = MetaService::new(Arc::new(ShardedKv::new()));
        let store = MemObjectStore::new();
        for ts in [100u32, 200] {
            let ids = ChunkIdGenerator::deterministic(1, 1, ts);
            let cfg = ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() };
            let mut w = ChunkWriter::new(cfg, &ids).with_clock(move || ts as u64);
            for i in 0..10 {
                w.add_file(&format!("t{ts}/f{i}"), &[0u8; 256]).unwrap();
            }
            for sealed in w.finish() {
                store.put(&chunk_object_key("ds", sealed.header.id), sealed.bytes.clone()).unwrap();
                svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
            }
        }
        // Simulate losing only the second session's metadata.
        let kv = svc.kv();
        kv.retain(|k, _| !k.contains("t200/"));
        assert!(svc.file_meta("ds", "t200/f0").is_err());
        assert!(svc.file_meta("ds", "t100/f0").is_ok());

        let report = recover_from_timestamp(&svc, &store, "ds", 150).unwrap();
        assert_eq!(report.files_recovered, 10, "only the t=200 chunks rescanned");
        assert!(svc.file_meta("ds", "t200/f9").is_ok());
    }

    #[test]
    fn recovery_works_against_a_cluster_after_power_loss() {
        let cluster =
            Arc::new(KvCluster::new(ClusterConfig { instances: 4, shards_per_instance: 8 }));
        let svc = MetaService::new(cluster.clone());
        let store = MemObjectStore::new();
        let ids = ChunkIdGenerator::deterministic(2, 2, 77);
        let cfg = ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 77_000);
        for i in 0..30 {
            w.add_file(&format!("f/{i}"), &[1u8; 200]).unwrap();
        }
        for sealed in w.finish() {
            store.put(&chunk_object_key("ds", sealed.header.id), sealed.bytes.clone()).unwrap();
            svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
        }
        cluster.power_loss();
        let report = recover_full(&svc, &store, "ds").unwrap();
        assert_eq!(report.files_recovered, 30);
        assert_eq!(svc.dataset_record("ds").unwrap().file_count, 30);
    }

    #[test]
    fn recovery_skips_foreign_datasets() {
        let (svc, store, _) = populate(50);
        // Another dataset's chunks in the same store.
        store.put("otherds/zzz", Bytes::from_static(b"not-a-chunk")).unwrap();
        svc.kv().clear();
        let report = recover_full(&svc, &store, "ds").unwrap();
        assert_eq!(report.files_recovered, 40);
    }

    #[test]
    fn recovery_reads_only_header_prefixes() {
        let (svc, store, _) = populate(60);
        let total: u64 = store.total_bytes();
        svc.kv().clear();
        let report = recover_full(&svc, &store, "ds").unwrap();
        assert!(report.header_bytes <= total, "recovery must not read more than the dataset");
    }

    #[test]
    fn garbage_chunk_key_is_an_error() {
        let (svc, store, _) = populate(70);
        store.put("ds/NOT-A-VALID-ID!!", Bytes::from_static(b"junk")).unwrap();
        svc.kv().clear();
        assert!(matches!(recover_full(&svc, &store, "ds"), Err(MetaError::BadRecord { .. })));
    }
}
