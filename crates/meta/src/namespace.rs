//! Client-side in-memory namespace: the "metadata cache and interpreter"
//! of libDIESEL.
//!
//! "The folder hierarchy can be built dynamically from the full filenames
//! in the key-value pairs" (§4.1.1) and, with a snapshot loaded, "the
//! file metadata is loaded from the local snapshot into main memory in
//! hashmap. Therefore, the cost of getting the file metadata is O(1)"
//! (§6.3). [`Namespace`] is exactly that structure: a flat
//! `HashMap<path → FileMeta>` for stat plus a directory tree for
//! `readdir` / recursive listing.

use std::collections::{BTreeMap, HashMap};

use crate::records::FileMeta;
use crate::{MetaError, Result};

/// What a directory entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A sub-directory.
    Dir,
    /// A regular file.
    File,
}

/// One `readdir` result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Base name of the entry.
    pub name: String,
    /// Directory or file.
    pub kind: EntryKind,
    /// File size (0 for directories).
    pub size: u64,
}

#[derive(Debug, Default)]
struct DirNode {
    subdirs: BTreeMap<String, DirNode>,
    files: BTreeMap<String, u64>, // name → size
}

/// The in-memory metadata index for one dataset.
#[derive(Debug, Default)]
pub struct Namespace {
    by_path: HashMap<String, FileMeta>,
    root: DirNode,
}

impl Namespace {
    /// An empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(full path, meta)` pairs.
    pub fn from_files(files: impl IntoIterator<Item = (String, FileMeta)>) -> Self {
        let mut ns = Self::new();
        for (path, meta) in files {
            ns.insert(path, meta);
        }
        ns
    }

    /// Insert (or replace) one file.
    pub fn insert(&mut self, path: String, meta: FileMeta) {
        let mut node = &mut self.root;
        let (parent, name) = crate::keys::split_path(&path);
        if !parent.is_empty() {
            for comp in parent.split('/') {
                node = node.subdirs.entry(comp.to_owned()).or_default();
            }
        }
        node.files.insert(name.to_owned(), meta.length);
        self.by_path.insert(path, meta);
    }

    /// Remove one file; prunes now-empty directories. Returns its meta.
    pub fn remove(&mut self, path: &str) -> Option<FileMeta> {
        let meta = self.by_path.remove(path)?;
        let (parent, name) = crate::keys::split_path(path);
        remove_in(&mut self.root, parent, name);
        Some(meta)
    }

    /// O(1) stat by full path.
    pub fn stat(&self, path: &str) -> Option<&FileMeta> {
        self.by_path.get(path)
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.by_path.len()
    }

    /// Total bytes across files.
    pub fn total_bytes(&self) -> u64 {
        self.by_path.values().map(|m| m.length).sum()
    }

    /// Iterate `(path, meta)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &FileMeta)> {
        self.by_path.iter()
    }

    /// Does `path` name an existing directory (root included)?
    pub fn is_dir(&self, path: &str) -> bool {
        self.find_dir(path).is_some()
    }

    fn find_dir(&self, path: &str) -> Option<&DirNode> {
        if path.is_empty() {
            return Some(&self.root);
        }
        let mut node = &self.root;
        for comp in path.split('/') {
            node = node.subdirs.get(comp)?;
        }
        Some(node)
    }

    /// List a directory (sorted: subdirectories then files, each
    /// alphabetical — matching `ls` output grouping used in Fig. 10c).
    pub fn readdir(&self, path: &str) -> Result<Vec<DirEntry>> {
        let node = self.find_dir(path).ok_or_else(|| MetaError::NoSuchFile(path.to_owned()))?;
        let mut out = Vec::with_capacity(node.subdirs.len() + node.files.len());
        for name in node.subdirs.keys() {
            out.push(DirEntry { name: name.clone(), kind: EntryKind::Dir, size: 0 });
        }
        for (name, &size) in &node.files {
            out.push(DirEntry { name: name.clone(), kind: EntryKind::File, size });
        }
        Ok(out)
    }

    /// Recursive traversal (the `ls -R` / `ls -lR` workload of Fig. 10c):
    /// visits every directory, returning the number of entries touched.
    /// When `with_sizes` is set the per-file size is read too (the `stat`
    /// part of `ls -lR`) — with a local namespace both are O(1), which is
    /// the point of the snapshot design.
    pub fn walk(&self, path: &str, with_sizes: bool) -> Result<WalkStats> {
        let node = self.find_dir(path).ok_or_else(|| MetaError::NoSuchFile(path.to_owned()))?;
        let mut stats = WalkStats::default();
        walk_in(node, with_sizes, &mut stats);
        Ok(stats)
    }
}

/// Counters from [`Namespace::walk`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalkStats {
    /// Directories visited.
    pub dirs: u64,
    /// Files listed.
    pub files: u64,
    /// Sum of file sizes (only populated when `with_sizes`).
    pub bytes: u64,
}

fn walk_in(node: &DirNode, with_sizes: bool, stats: &mut WalkStats) {
    stats.dirs += 1;
    stats.files += node.files.len() as u64;
    if with_sizes {
        stats.bytes += node.files.values().sum::<u64>();
    }
    for child in node.subdirs.values() {
        walk_in(child, with_sizes, stats);
    }
}

fn remove_in(node: &mut DirNode, parent: &str, name: &str) -> bool {
    if parent.is_empty() {
        node.files.remove(name);
        return node.files.is_empty() && node.subdirs.is_empty();
    }
    let (head, rest) = match parent.find('/') {
        Some(i) => (&parent[..i], &parent[i + 1..]),
        None => (parent, ""),
    };
    let mut prune = false;
    if let Some(child) = node.subdirs.get_mut(head) {
        if remove_in(child, rest, name) {
            node.subdirs.remove(head);
            prune = true;
        }
    }
    prune && node.files.is_empty() && node.subdirs.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::{ChunkId, MachineId};

    fn meta(len: u64) -> FileMeta {
        FileMeta {
            chunk: ChunkId::new(1, MachineId::from_seed(1), 1, 0),
            index_in_chunk: 0,
            offset: 0,
            length: len,
            uploaded_ms: 0,
        }
    }

    fn sample() -> Namespace {
        Namespace::from_files(vec![
            ("train/cat/1.jpg".to_owned(), meta(10)),
            ("train/cat/2.jpg".to_owned(), meta(20)),
            ("train/dog/3.jpg".to_owned(), meta(30)),
            ("val/4.jpg".to_owned(), meta(40)),
            ("README".to_owned(), meta(5)),
        ])
    }

    #[test]
    fn stat_is_exact() {
        let ns = sample();
        assert_eq!(ns.stat("train/cat/2.jpg").unwrap().length, 20);
        assert!(ns.stat("train/cat").is_none(), "directories are not files");
        assert!(ns.stat("missing").is_none());
        assert_eq!(ns.file_count(), 5);
        assert_eq!(ns.total_bytes(), 105);
    }

    #[test]
    fn readdir_sorted_dirs_then_files() {
        let ns = sample();
        let root = ns.readdir("").unwrap();
        let names: Vec<(&str, EntryKind)> =
            root.iter().map(|e| (e.name.as_str(), e.kind)).collect();
        assert_eq!(
            names,
            vec![("train", EntryKind::Dir), ("val", EntryKind::Dir), ("README", EntryKind::File)]
        );
        let cat = ns.readdir("train/cat").unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat[0].size, 10);
        assert!(ns.readdir("train/horse").is_err());
    }

    #[test]
    fn walk_counts_everything() {
        let ns = sample();
        let s = ns.walk("", true).unwrap();
        assert_eq!(s.dirs, 5, "root, train, cat, dog, val");
        assert_eq!(s.files, 5);
        assert_eq!(s.bytes, 105);
        let no_sizes = ns.walk("", false).unwrap();
        assert_eq!(no_sizes.bytes, 0);
        let sub = ns.walk("train", true).unwrap();
        assert_eq!(sub.files, 3);
    }

    #[test]
    fn remove_prunes_empty_dirs() {
        let mut ns = sample();
        assert!(ns.remove("train/dog/3.jpg").is_some());
        assert!(!ns.is_dir("train/dog"), "empty dir must be pruned");
        assert!(ns.is_dir("train"), "non-empty ancestor stays");
        assert!(ns.remove("train/dog/3.jpg").is_none(), "double remove");
        assert_eq!(ns.file_count(), 4);
    }

    #[test]
    fn insert_replaces_existing() {
        let mut ns = sample();
        ns.insert("README".to_owned(), meta(500));
        assert_eq!(ns.stat("README").unwrap().length, 500);
        assert_eq!(ns.file_count(), 5);
    }

    #[test]
    fn empty_namespace() {
        let ns = Namespace::new();
        assert_eq!(ns.file_count(), 0);
        assert!(ns.readdir("").unwrap().is_empty());
        assert_eq!(ns.walk("", true).unwrap().dirs, 1);
    }
}
