//! Satellite coverage: N writer threads hammer counters, histograms and
//! the event ring while a reader snapshots continuously. Totals are
//! conserved, batched pairs never tear, and the ring never exceeds its
//! bound.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use diesel_obs::Registry;
use diesel_util::MockClock;

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 20_000;

#[test]
fn totals_conserved_under_concurrent_writers() {
    let reg = Arc::new(Registry::new(Arc::new(MockClock::new())));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let reg = reg.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut snaps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = reg.snapshot();
                // Batched pair: writers always bump both inside one
                // batch(), so a snapshot must never see them apart.
                assert_eq!(
                    snap.counter("pair.first"),
                    snap.counter("pair.second"),
                    "batched counters tore apart"
                );
                // Monotonic totals never exceed the eventual maximum.
                assert!(snap.counter("free.ops") <= WRITERS as u64 * OPS_PER_WRITER);
                snaps += 1;
            }
            snaps
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let reg = reg.clone();
            thread::spawn(move || {
                let first = reg.counter("pair.first", &[]);
                let second = reg.counter("pair.second", &[]);
                let free = reg.counter("free.ops", &[]);
                let lat = reg.histogram("op.latency", &[]);
                for i in 0..OPS_PER_WRITER {
                    reg.batch(|| {
                        first.inc();
                        second.inc();
                    });
                    free.inc();
                    lat.record_ns((w as u64 + 1) * 100 + i % 7);
                }
            })
        })
        .collect();

    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snaps = reader.join().unwrap();
    assert!(snaps > 0, "reader never snapshotted");

    let total = WRITERS as u64 * OPS_PER_WRITER;
    let end = reg.snapshot();
    assert_eq!(end.counter("pair.first"), total);
    assert_eq!(end.counter("pair.second"), total);
    assert_eq!(end.counter("free.ops"), total);
    assert_eq!(end.histogram_summary("op.latency").count, total);
}

#[test]
fn event_ring_never_exceeds_bound_under_contention() {
    const CAP: usize = 64;
    let reg = Arc::new(Registry::with_event_capacity(Arc::new(MockClock::new()), CAP));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let reg = reg.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let snap = reg.snapshot();
                assert!(snap.events.len() <= CAP, "ring overflowed: {}", snap.events.len());
            }
        })
    };

    let writers: Vec<_> = (0..4)
        .map(|w| {
            let reg = reg.clone();
            thread::spawn(move || {
                let node = w.to_string();
                for _ in 0..5_000 {
                    reg.event("stress.tick", &[("node", &node)]);
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().unwrap();

    let end = reg.snapshot();
    assert_eq!(end.events.len(), CAP);
    assert_eq!(end.dropped_events, 4 * 5_000 - CAP as u64);
}
