//! # diesel-obs — the workspace's observability core
//!
//! DIESEL's evaluation is counter-driven: cache hit ratios (Fig. 11),
//! metadata QPS against the Redis ceiling (Fig. 10), per-iteration I/O
//! time (Fig. 14/15). This crate is the single substrate those numbers
//! flow through:
//!
//! * [`Registry`] — a namespace of named [`Counter`]/[`Gauge`]/
//!   [`HistogramHandle`] cells. Handles are cheap clones of shared
//!   atomics; the hot path takes no lock.
//! * [`RegistrySnapshot`] — a consistent point-in-time copy. Updates
//!   grouped in [`Registry::batch`] appear all-or-nothing; snapshots
//!   merge, so a `ServerPool` aggregates per-node registries exactly.
//! * [`Event`] — a bounded structured-event ring (`{ts, scope, kv}`)
//!   stamped via the injected [`diesel_util::Clock`], so replays stay
//!   deterministic under `MockClock`.
//! * [`Histogram`] — log-bucketed latencies (~4 % relative error),
//!   shared with the simulator's measurement layer.
//! * [`copies`] — the process-global `bytes.copied{site=…}` ledger
//!   every deliberate payload copy reports to, making the zero-copy
//!   read path an asserted invariant (DESIGN.md §11).
//! * [`lockdep`] — the `lockdep.cycle{a=…,b=…}` bridge: every
//!   lock-order cycle detected by `diesel_util::lockdep` lands in a
//!   process-global ledger registry (DESIGN.md §12).
//! * [`recorder`] — the flight recorder: Clock-driven sampling of the
//!   registry into a bounded ring of delta-encoded frames, with
//!   `rate`/`delta`/`percentile_over` window queries (DESIGN.md §15).
//! * [`slo`] — the per-tenant SLO monitor: declarative targets
//!   evaluated on recorder ticks via multi-window burn rates, emitting
//!   `slo.breach`/`slo.recovered` events and `slo.health` gauges.
//! * [`prom`] — Prometheus text exposition of any snapshot (with a
//!   round-trip parser), what `dlcmd scrape` serves fleet-wide.
//!
//! # Metric naming
//!
//! Names are dotted, `crate.metric` (`cache.chunk_hits`,
//! `net.requests`); static dimensions ride as sorted labels in the id:
//! `net.requests{endpoint=server@0}`. Renderers group on the leading
//! segment, and [`RegistrySnapshot::sum_counter`] folds a name across
//! its label sets.
//!
//! # Tracing
//!
//! Aggregates answer "how fast on average"; the [`trace`] module
//! answers "where did *this* request spend its time". A [`Tracer`]
//! records clock-stamped [`Span`]s with parent links, context
//! propagates across RPC envelopes and work-pool submissions via
//! [`TraceContext`]/[`AmbientTrace`], and [`export`] renders drained
//! spans as chrome-trace JSON or a critical-path text summary.

pub mod copies;
pub mod export;
pub mod histogram;
pub mod lockdep;
pub mod prom;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod trace;

pub use copies::{copied_at, copied_total, copies_snapshot, record_copy, BYTES_COPIED};
pub use export::{chrome_trace_json, critical_path, parse_chrome_trace, ExportedSpan};
pub use histogram::{fmt_ns, Histogram, Summary};
pub use lockdep::{cycles_reported, lockdep_snapshot, LOCKDEP_CYCLES, LOCKDEP_EVENT};
pub use prom::{parse_prometheus, render_prometheus, split_metric_id, PromSample, PromValue};
pub use recorder::{FlightRecorder, Frame, RecorderConfig, RecorderDriver};
pub use registry::{
    Counter, Event, Gauge, HistogramHandle, Registry, RegistrySnapshot, DEFAULT_EVENT_CAPACITY,
};
pub use slo::{SloMonitor, SloObjective, SloReport, SloState, SloTarget};
pub use trace::{
    AmbientTrace, Sampling, Span, SpanGuard, TraceContext, Tracer, DEFAULT_SPAN_CAPACITY,
};
