//! Per-tenant SLO monitor: declarative targets evaluated over flight
//! recorder windows.
//!
//! PR 9's admission plane *enforces* per-tenant ceilings; nothing so
//! far *judges* the outcome against a service-level objective. The
//! [`SloMonitor`] closes the loop: each tenant declares an
//! [`SloTarget`] (read p99, error ratio, hit-rate floor, throttle
//! ratio), and on every recorder tick the monitor computes **burn
//! rates** — how fast the tenant is consuming its error budget — over
//! two windows of recorder time:
//!
//! * **fast** (default 1 min): catches an incident while it happens.
//! * **slow** (default 10 min): filters one-tick blips — a breach
//!   needs *both* windows burning, the standard multi-window guard
//!   against flapping alerts.
//!
//! A burn rate of 1.0 means "exactly at target"; above it the budget
//! is burning. Transitions emit typed events into the registry's
//! existing event ring — `slo.breach{dataset,slo,window}` when both
//! windows burn at or above 1, `slo.recovered{dataset,slo,window}`
//! once the fast window drops back under 1 — and every evaluation
//! refreshes an `slo.health{dataset}` gauge (1 = all objectives in
//! SLO) that `dlcmd top` and the simnet scenario read. Everything is a
//! deterministic function of the recording, so MockClock runs produce
//! exact breach/recover sequences CI asserts on.
//!
//! # Metric bindings
//!
//! Objectives read the workspace's conventional per-tenant series:
//! `server.read_latency{dataset=…}` (p99 + request count),
//! `server.request_errors{dataset=…}`, `cache.chunk_hits` /
//! `cache.file_reads{dataset=…}` (hit rate), and
//! `server.tenant.admitted`/`throttled{dataset=…}` (throttle ratio).

use std::collections::BTreeMap;
use std::sync::Arc;

use diesel_util::Mutex;

use crate::recorder::FlightRecorder;
use crate::registry::Registry;

/// Default fast burn window: 1 min of recorder time.
pub const DEFAULT_FAST_WINDOW_NS: u64 = 60_000_000_000;
/// Default slow burn window: 10 min of recorder time.
pub const DEFAULT_SLOW_WINDOW_NS: u64 = 600_000_000_000;

/// Declarative per-tenant objectives. Unset objectives are not
/// evaluated.
#[derive(Debug, Clone, Default)]
pub struct SloTarget {
    /// The tenant (dataset id) the objectives apply to.
    pub dataset: String,
    /// Read p99 latency must stay at or under this.
    pub read_p99_ns: Option<u64>,
    /// Failed requests / total requests must stay at or under this.
    pub max_error_ratio: Option<f64>,
    /// Cache chunk hits / file reads must stay at or above this.
    pub min_hit_rate: Option<f64>,
    /// Throttled / (admitted + throttled) must stay at or under this.
    pub max_throttle_ratio: Option<f64>,
}

impl SloTarget {
    /// A target with every objective unset.
    pub fn new(dataset: &str) -> Self {
        SloTarget { dataset: dataset.to_owned(), ..SloTarget::default() }
    }
}

/// Where one objective currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    /// Within target (or no traffic to judge).
    Ok,
    /// Both burn windows at or above 1 until the fast window recovers.
    Breached,
}

/// One objective's evaluation: burn rates plus the sticky state.
#[derive(Debug, Clone)]
pub struct SloObjective {
    /// Objective kind: `read_p99` | `error_ratio` | `hit_rate` |
    /// `throttle_ratio`.
    pub slo: &'static str,
    /// Budget consumption rate over the fast window (1.0 = at target).
    pub fast_burn: f64,
    /// Budget consumption rate over the slow window.
    pub slow_burn: f64,
    /// State after this evaluation.
    pub state: SloState,
}

/// One tenant's evaluation across its declared objectives.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// The tenant.
    pub dataset: String,
    /// Evaluated objectives, in declaration order.
    pub objectives: Vec<SloObjective>,
}

impl SloReport {
    /// True when no objective is breached.
    pub fn healthy(&self) -> bool {
        self.objectives.iter().all(|o| o.state == SloState::Ok)
    }
}

/// The monitor: targets + sticky per-objective state, evaluated
/// against a [`FlightRecorder`] on demand (typically once per tick).
pub struct SloMonitor {
    registry: Arc<Registry>,
    recorder: Arc<FlightRecorder>,
    targets: Vec<SloTarget>,
    fast_ns: u64,
    slow_ns: u64,
    /// (dataset, slo) → sticky state; rank below the registry locks —
    /// evaluation never holds this while emitting.
    slo_states: Mutex<BTreeMap<(String, &'static str), SloState>>,
}

impl SloMonitor {
    /// A monitor with the default 1 min / 10 min windows.
    pub fn new(
        registry: Arc<Registry>,
        recorder: Arc<FlightRecorder>,
        targets: Vec<SloTarget>,
    ) -> Self {
        SloMonitor::with_windows(
            registry,
            recorder,
            targets,
            DEFAULT_FAST_WINDOW_NS,
            DEFAULT_SLOW_WINDOW_NS,
        )
    }

    /// A monitor with explicit fast/slow windows (tests, simnet).
    pub fn with_windows(
        registry: Arc<Registry>,
        recorder: Arc<FlightRecorder>,
        targets: Vec<SloTarget>,
        fast_ns: u64,
        slow_ns: u64,
    ) -> Self {
        SloMonitor {
            registry,
            recorder,
            targets,
            fast_ns,
            slow_ns,
            slo_states: Mutex::named("obs.slo_states", BTreeMap::new()),
        }
    }

    /// The declared targets.
    pub fn targets(&self) -> &[SloTarget] {
        &self.targets
    }

    /// Evaluate every target against the recorder's current window,
    /// emit breach/recover events for state transitions, refresh the
    /// `slo.health{dataset}` gauges, and return the per-tenant
    /// reports. Deterministic: targets in declaration order,
    /// objectives in fixed kind order.
    pub fn evaluate(&self) -> Vec<SloReport> {
        let mut reports = Vec::with_capacity(self.targets.len());
        let mut transitions: Vec<(String, &'static str, SloState)> = Vec::new();
        for target in &self.targets {
            let burns = self.burns_for(target);
            let mut objectives = Vec::with_capacity(burns.len());
            {
                let mut states = self.slo_states.lock();
                for (slo, fast_burn, slow_burn) in burns {
                    let key = (target.dataset.clone(), slo);
                    let prev = states.get(&key).copied().unwrap_or(SloState::Ok);
                    let next = match prev {
                        SloState::Ok if fast_burn >= 1.0 && slow_burn >= 1.0 => SloState::Breached,
                        SloState::Breached if fast_burn < 1.0 => SloState::Ok,
                        same => same,
                    };
                    if next != prev {
                        transitions.push((target.dataset.clone(), slo, next));
                    }
                    states.insert(key, next);
                    objectives.push(SloObjective { slo, fast_burn, slow_burn, state: next });
                }
            }
            reports.push(SloReport { dataset: target.dataset.clone(), objectives });
        }
        // Emissions happen with no monitor lock held (the registry
        // nests its own locks internally).
        for (dataset, slo, next) in &transitions {
            let scope = match next {
                SloState::Breached => "slo.breach",
                SloState::Ok => "slo.recovered",
            };
            let window = match next {
                SloState::Breached => "fast+slow",
                SloState::Ok => "fast",
            };
            self.registry.event(scope, &[("dataset", dataset), ("slo", slo), ("window", window)]);
        }
        for report in &reports {
            let health = if report.healthy() { 1 } else { 0 };
            self.registry.gauge("slo.health", &[("dataset", &report.dataset)]).set(health);
        }
        reports
    }

    /// `(kind, fast_burn, slow_burn)` for each declared objective of
    /// one target, in fixed order.
    fn burns_for(&self, t: &SloTarget) -> Vec<(&'static str, f64, f64)> {
        let d = &t.dataset;
        let mut out = Vec::new();
        if let Some(p99_target) = t.read_p99_ns {
            let id = format!("server.read_latency{{dataset={d}}}");
            let burn = |win: u64| {
                let h = self.recorder.histogram_over(&id, win);
                if h.count() == 0 || p99_target == 0 {
                    return 0.0;
                }
                h.quantile_ns(0.99) as f64 / p99_target as f64
            };
            out.push(("read_p99", burn(self.fast_ns), burn(self.slow_ns)));
        }
        if let Some(budget) = t.max_error_ratio {
            let errs = format!("server.request_errors{{dataset={d}}}");
            let reqs = format!("server.read_latency{{dataset={d}}}");
            let burn = |win: u64| {
                let total = self.recorder.histogram_over(&reqs, win).count()
                    + self.recorder.delta(&errs, win);
                ratio_burn(self.recorder.delta(&errs, win), total, budget)
            };
            out.push(("error_ratio", burn(self.fast_ns), burn(self.slow_ns)));
        }
        if let Some(floor) = t.min_hit_rate {
            let hits = format!("cache.chunk_hits{{dataset={d}}}");
            let reads = format!("cache.file_reads{{dataset={d}}}");
            // The budget is the allowed *miss* rate; burning it means
            // missing more often than the floor allows.
            let budget = (1.0 - floor).max(0.0);
            let burn = |win: u64| {
                let reads = self.recorder.delta(&reads, win);
                let misses = reads.saturating_sub(self.recorder.delta(&hits, win));
                ratio_burn(misses, reads, budget)
            };
            out.push(("hit_rate", burn(self.fast_ns), burn(self.slow_ns)));
        }
        if let Some(budget) = t.max_throttle_ratio {
            let throttled = format!("server.tenant.throttled{{dataset={d}}}");
            let admitted = format!("server.tenant.admitted{{dataset={d}}}");
            let burn = |win: u64| {
                let throttled = self.recorder.delta(&throttled, win);
                let total = throttled + self.recorder.delta(&admitted, win);
                ratio_burn(throttled, total, budget)
            };
            out.push(("throttle_ratio", burn(self.fast_ns), burn(self.slow_ns)));
        }
        out
    }
}

impl std::fmt::Debug for SloMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloMonitor")
            .field("targets", &self.targets.len())
            .field("fast_ns", &self.fast_ns)
            .field("slow_ns", &self.slow_ns)
            .finish()
    }
}

/// Burn rate of a bad/total ratio against its budget. No traffic means
/// nothing to judge (0.0); a zero budget burns infinitely fast the
/// moment anything bad happens.
fn ratio_burn(bad: u64, total: u64, budget: f64) -> f64 {
    if total == 0 || bad == 0 {
        return 0.0;
    }
    let measured = bad as f64 / total as f64;
    if budget <= 0.0 {
        return f64::INFINITY;
    }
    measured / budget
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecorderConfig;
    use diesel_util::{Clock, MockClock};

    struct Rig {
        clock: Arc<MockClock>,
        reg: Arc<Registry>,
        rec: Arc<FlightRecorder>,
        monitor: SloMonitor,
    }

    /// 1 s ticks; 2 s fast window, 6 s slow window.
    fn rig(target: SloTarget) -> Rig {
        let clock = Arc::new(MockClock::new());
        let reg = Arc::new(Registry::new(Arc::clone(&clock) as Arc<dyn Clock>));
        let rec = Arc::new(FlightRecorder::new(Arc::clone(&reg), RecorderConfig::default()));
        let monitor = SloMonitor::with_windows(
            Arc::clone(&reg),
            Arc::clone(&rec),
            vec![target],
            2_000_000_000,
            6_000_000_000,
        );
        Rig { clock, reg, rec, monitor }
    }

    fn tick(rig: &Rig) -> Vec<SloReport> {
        rig.clock.advance(1_000_000_000);
        rig.rec.tick();
        rig.monitor.evaluate()
    }

    #[test]
    fn latency_breach_needs_both_windows_and_recovers_on_fast() {
        let mut target = SloTarget::new("a");
        target.read_p99_ns = Some(1_000_000);
        let r = rig(target);
        let lat = r.reg.histogram("server.read_latency", &[("dataset", "a")]);

        // Healthy traffic for a while: well under target.
        for _ in 0..6 {
            for _ in 0..50 {
                lat.record_ns(100_000);
            }
            let reports = tick(&r);
            assert!(reports[0].healthy());
        }
        // One slow tick trips the fast window but not the slow one.
        for _ in 0..50 {
            lat.record_ns(50_000_000);
        }
        let reports = tick(&r);
        let o = &reports[0].objectives[0];
        assert!(o.fast_burn >= 1.0, "fast={}", o.fast_burn);
        // Slow window still dominated by fast samples at p99? With 6 s
        // of 50-sample ticks, one bad tick is ~14% of samples — above
        // the 1% tail, so p99 lands in the slow bucket and the slow
        // window breaches too once the bad tick is inside it.
        assert_eq!(o.state, SloState::Breached);
        assert_eq!(r.reg.snapshot().gauge("slo.health{dataset=a}"), 0);

        // Fast traffic resumes; once the bad tick ages out of the fast
        // window the objective recovers.
        let mut recovered = false;
        for _ in 0..4 {
            for _ in 0..50 {
                lat.record_ns(100_000);
            }
            let reports = tick(&r);
            if reports[0].objectives[0].state == SloState::Ok {
                recovered = true;
                break;
            }
        }
        assert!(recovered);
        assert_eq!(r.reg.snapshot().gauge("slo.health{dataset=a}"), 1);

        // Event sequence is exactly breach then recover.
        let scopes: Vec<String> = r
            .reg
            .snapshot()
            .events
            .iter()
            .filter(|e| e.scope.starts_with("slo."))
            .map(|e| e.scope.clone())
            .collect();
        assert_eq!(scopes, vec!["slo.breach", "slo.recovered"]);
    }

    #[test]
    fn hit_rate_floor_burns_on_misses() {
        let mut target = SloTarget::new("a");
        target.min_hit_rate = Some(0.8);
        let r = rig(target);
        let hits = r.reg.counter("cache.chunk_hits", &[("dataset", "a")]);
        let reads = r.reg.counter("cache.file_reads", &[("dataset", "a")]);

        // 95% hit rate: burn 0.25 of the 20% miss budget.
        hits.add(95);
        reads.add(100);
        let reports = tick(&r);
        let o = &reports[0].objectives[0];
        assert!((o.fast_burn - 0.25).abs() < 1e-9, "{}", o.fast_burn);
        assert_eq!(o.state, SloState::Ok);

        // 50% hit rate: 2.5× the budget, sustained → breach.
        for _ in 0..6 {
            hits.add(50);
            reads.add(100);
            tick(&r);
        }
        let reports = tick(&r);
        assert_eq!(reports[0].objectives[0].state, SloState::Breached);
    }

    #[test]
    fn throttle_and_error_ratios_judge_no_traffic_as_ok() {
        let mut target = SloTarget::new("quiet");
        target.max_error_ratio = Some(0.01);
        target.max_throttle_ratio = Some(0.1);
        let r = rig(target);
        for _ in 0..3 {
            let reports = tick(&r);
            assert!(reports[0].healthy());
            for o in &reports[0].objectives {
                assert_eq!(o.fast_burn, 0.0);
            }
        }
        assert_eq!(r.reg.snapshot().gauge("slo.health{dataset=quiet}"), 1);
    }

    #[test]
    fn zero_budget_burns_infinitely_on_first_bad_event() {
        assert_eq!(ratio_burn(0, 100, 0.0), 0.0);
        assert_eq!(ratio_burn(1, 100, 0.0), f64::INFINITY);
        assert_eq!(ratio_burn(5, 0, 0.5), 0.0);
        assert!((ratio_burn(5, 100, 0.1) - 0.5).abs() < 1e-12);
    }
}
