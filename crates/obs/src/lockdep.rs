//! `lockdep.cycle{a=…,b=…}` — the lock-order witness's reporting plane.
//!
//! The witness itself lives in `diesel_util::lockdep` (util is below
//! obs and cannot emit events); this module closes the loop by
//! installing a cycle reporter that lands every detected lock-order
//! cycle in a process-global ledger registry:
//!
//! * counter `lockdep.cycles{a=…,b=…}` — one cell per ordered class
//!   pair, so dashboards and tests can count inversions per pair;
//! * event `lockdep.cycle{a=…,b=…,at=…}` — the acquisition site that
//!   closed the cycle, in the bounded event ring.
//!
//! Like the copy ledger ([`crate::copies`]), the state is process-global
//! on purpose: a cycle can be detected under any lock in any component,
//! far from whichever `Registry` a caller wired up, and the invariant
//! being watched — "no lock-order inversion anywhere in the process" —
//! is a whole-process property.
//!
//! The bridge is installed automatically the first time any [`Registry`]
//! is constructed (every serving component builds one), and explicitly
//! via [`install`] from tests that touch no registry.

use std::sync::{Arc, Once, OnceLock};

use diesel_util::{lockdep, SystemClock};

use crate::registry::{Registry, RegistrySnapshot};

/// Metric name of the per-pair cycle counter.
pub const LOCKDEP_CYCLES: &str = "lockdep.cycles";

/// Event scope of cycle reports in the ledger's event ring.
pub const LOCKDEP_EVENT: &str = "lockdep.cycle";

fn ledger() -> &'static Registry {
    static LEDGER: OnceLock<Registry> = OnceLock::new();
    // Events want a wall-clock stamp; counters never read it.
    LEDGER.get_or_init(|| Registry::new(Arc::new(SystemClock::new())))
}

/// Install the util→obs reporter bridge (idempotent). Runs implicitly
/// on first `Registry` construction; call it directly from code that
/// wants cycle events without building any registry.
pub fn install() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        lockdep::set_cycle_reporter(Box::new(|r: &lockdep::CycleReport| {
            // The ledger's own locks are named; diesel_util::lockdep
            // holds a per-thread re-entrancy latch while running this
            // hook, so a cycle detected *here* cannot recurse.
            ledger().counter(LOCKDEP_CYCLES, &[("a", &r.a), ("b", &r.b)]).inc();
            ledger().event(LOCKDEP_EVENT, &[("a", &r.a), ("b", &r.b), ("at", &r.acquire_site)]);
        }));
    });
}

/// Cycles reported so far between the ordered pair (`a` held, `b`
/// acquired), per the ledger counter.
pub fn cycles_reported(a: &str, b: &str) -> u64 {
    ledger().snapshot().counter(&format!("{LOCKDEP_CYCLES}{{a={a},b={b}}}"))
}

/// A consistent snapshot of the whole lockdep ledger (counters and the
/// event ring) for delta assertions.
pub fn lockdep_snapshot() -> RegistrySnapshot {
    ledger().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reported_cycles_reach_the_ledger() {
        install();
        // Warn on this thread regardless of DIESEL_LOCKDEP: the suite
        // also runs under `fail`, and this inversion is deliberate.
        lockdep::set_thread_mode(Some(lockdep::Mode::Warn));
        // Unique class names so parallel tests can't interfere.
        let a = lockdep::class("obs-test.a");
        let b = lockdep::class("obs-test.b");
        {
            let ga = lockdep::acquire(a);
            let gb = lockdep::acquire(b);
            drop((ga, gb));
        }
        let before = cycles_reported("obs-test.b", "obs-test.a");
        {
            let gb = lockdep::acquire(b);
            let ga = lockdep::acquire(a); // inversion: reported, not fatal (warn)
            drop((gb, ga));
        }
        lockdep::set_thread_mode(None);
        assert_eq!(cycles_reported("obs-test.b", "obs-test.a"), before + 1);
        let snap = lockdep_snapshot();
        let hit = snap.events.iter().any(|e| {
            e.scope == LOCKDEP_EVENT && e.kv.contains(&("a".to_owned(), "obs-test.b".to_owned()))
        });
        assert!(hit, "event ring must carry the cycle: {:?}", snap.events);
    }
}
