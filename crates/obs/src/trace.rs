//! Span-based request tracing (the per-request complement to the
//! aggregate [`Registry`] counters).
//!
//! # Span model
//!
//! A [`Tracer`] mints trace/span ids from per-tracer atomic counters —
//! never from time or entropy, so identical runs mint identical ids —
//! and records finished [`Span`]s (name, labels, parent, start/end
//! nanoseconds from the registry's injected [`Clock`]) into a bounded,
//! lock-sharded buffer. [`Tracer::drain`] empties the buffer in a
//! deterministic `(trace, id)` order for export
//! (see [`crate::export`]).
//!
//! # Ambient propagation
//!
//! Instrumented code never threads a tracer through call signatures.
//! Instead the current tracer and span context live in thread-locals:
//!
//! * [`install_tracer`] makes a tracer ambient for a scope (a client or
//!   server installs its own around a request).
//! * [`span`] opens a child of the ambient context — or a new sampled
//!   root when there is none — and makes itself the ambient context
//!   until the returned [`SpanGuard`] drops.
//! * [`current_context`] / [`install_context`] move a compact
//!   [`TraceContext`] across a transport envelope (diesel-net).
//! * [`AmbientTrace`] captures both halves at task-submission time and
//!   restores them on a worker thread (diesel-exec).
//!
//! With no ambient tracer, [`span`] is a single thread-local load —
//! the instrumented hot paths cost nothing when tracing is off.
//!
//! # Sampling
//!
//! Roots are sampled per [`Sampling`], parsed from `DIESEL_TRACE`
//! (`off`, `always`, or an integer `n` for 1-in-n). Children of a
//! propagated context always record: the root's sampling decision rides
//! the context, exactly like a sampled bit in a real RPC header.
//!
//! # Slow-op watchdog
//!
//! When a finished span exceeds its per-name threshold (default from
//! `DIESEL_SLOW_MS`, 100 ms), the tracer emits a `slow` event into its
//! registry's event ring, so stalls surface in `dlcmd stats` without
//! pulling a full trace.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diesel_util::{Clock, Mutex};

use crate::histogram::fmt_ns;
use crate::registry::{Counter, Registry};

/// Compact propagation context: which trace a unit of work belongs to
/// and which span is its parent. Copies across RPC envelopes and
/// work-pool submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace (request tree) this context belongs to.
    pub trace: u64,
    /// The span that is the parent of work done under this context.
    pub span: u64,
}

/// One finished span: a named, labelled interval within a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id, unique within the tracer (and across tracers
    /// with distinct [`Tracer::with_part`] values).
    pub id: u64,
    /// Parent span id, `None` for a trace root.
    pub parent: Option<u64>,
    /// Dotted operation name, e.g. `client.read`.
    pub name: String,
    /// Free-form dimensions, in insertion order.
    pub labels: Vec<(String, String)>,
    /// Start, in nanoseconds on the tracer's clock.
    pub start_ns: u64,
    /// End, in nanoseconds on the tracer's clock.
    pub end_ns: u64,
}

impl Span {
    /// Wall time covered by the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// `name{k=v,…}` rendering (labels in insertion order).
    pub fn display_name(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let dims: Vec<String> = self.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}{{{}}}", self.name, dims.join(","))
    }
}

/// How trace roots are sampled. Children of an existing context always
/// record regardless of the local setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampling {
    /// Record every root.
    Always,
    /// Record every n-th root (deterministic counter, not random).
    OneIn(u64),
    /// Never start a root locally.
    Off,
}

impl Sampling {
    /// Parse the `DIESEL_TRACE` environment variable (unset = off).
    pub fn from_env() -> Self {
        match std::env::var("DIESEL_TRACE") {
            Ok(v) => Sampling::parse(&v),
            Err(_) => Sampling::Off,
        }
    }

    /// Parse a `DIESEL_TRACE`-style value: `off`/`0`/`false` disables,
    /// `always`/`on`/`1`/`true` records everything, an integer `n ≥ 2`
    /// records one root in `n`. Anything else is off.
    pub fn parse(v: &str) -> Self {
        match v.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" | "false" | "none" => Sampling::Off,
            "always" | "on" | "1" | "true" => Sampling::Always,
            other => match other.parse::<u64>() {
                Ok(n) if n >= 2 => Sampling::OneIn(n),
                _ => Sampling::Off,
            },
        }
    }
}

/// Default bound on buffered spans per tracer (across all shards).
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;

const SPAN_SHARDS: usize = 8;

struct TracerInner {
    registry: Arc<Registry>,
    clock: Arc<dyn Clock>,
    sampling: Sampling,
    /// High bits OR-ed into minted ids so tracers in one deployment can
    /// be kept collision-free; pre-shifted.
    part: AtomicU64,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    root_seq: AtomicU64,
    shards: Vec<Mutex<Vec<Span>>>,
    shard_capacity: usize,
    recorded: Counter,
    dropped: Counter,
    slow_default_ns: u64,
    slow_overrides: Mutex<BTreeMap<String, u64>>,
}

/// A span recorder bound to a [`Registry`]'s clock. Cheap to clone;
/// clones share the buffer and id counters.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer sampling per the `DIESEL_TRACE` environment variable.
    pub fn new(registry: &Arc<Registry>) -> Self {
        Tracer::with_sampling(registry, Sampling::from_env())
    }

    /// A tracer that records every root (benches, tests, `dlcmd trace`).
    pub fn enabled(registry: &Arc<Registry>) -> Self {
        Tracer::with_sampling(registry, Sampling::Always)
    }

    /// A tracer with an explicit sampling mode.
    pub fn with_sampling(registry: &Arc<Registry>, sampling: Sampling) -> Self {
        let (recorded, dropped) = if sampling == Sampling::Off {
            // Keep disabled tracers out of the metric namespace so an
            // untraced process renders exactly the same stats as before.
            (Counter::detached(), Counter::detached())
        } else {
            (
                registry.counter("obs.spans_recorded", &[]),
                registry.counter("obs.events_dropped", &[("ring", "trace")]),
            )
        };
        let slow_default_ns = std::env::var("DIESEL_SLOW_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(100)
            .saturating_mul(1_000_000);
        Tracer {
            inner: Arc::new(TracerInner {
                registry: Arc::clone(registry),
                clock: Arc::clone(registry.clock()),
                sampling,
                part: AtomicU64::new(0),
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                root_seq: AtomicU64::new(0),
                shards: (0..SPAN_SHARDS)
                    .map(|_| Mutex::named("obs.trace_shard", Vec::new()))
                    .collect(),
                shard_capacity: DEFAULT_SPAN_CAPACITY / SPAN_SHARDS,
                recorded,
                dropped,
                slow_default_ns,
                slow_overrides: Mutex::named("obs.trace_slow", BTreeMap::new()),
            }),
        }
    }

    /// Namespace this tracer's minted ids under `part` (high 16 bits),
    /// so several tracers in one deployment (e.g. one per pool node)
    /// never mint colliding ids. Set before any span is recorded.
    #[must_use]
    pub fn with_part(self, part: u16) -> Self {
        self.inner.part.store((part as u64) << 48, Ordering::Relaxed);
        self
    }

    /// The sampling mode this tracer was built with.
    pub fn sampling(&self) -> Sampling {
        self.inner.sampling
    }

    /// Override the slow-span threshold for one span name (the default
    /// for all other names comes from `DIESEL_SLOW_MS`).
    pub fn set_slow_threshold_ns(&self, name: &str, threshold_ns: u64) {
        self.inner.slow_overrides.lock().insert(name.to_owned(), threshold_ns);
    }

    /// Drain every buffered span, sorted by `(trace, id)` — a
    /// deterministic order for byte-stable export.
    pub fn drain(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            out.append(&mut shard.lock());
        }
        out.sort_by_key(|s| (s.trace, s.id));
        out
    }

    /// Spans recorded (buffered) so far.
    pub fn spans_recorded(&self) -> u64 {
        self.inner.recorded.get()
    }

    /// Spans discarded because the buffer was full.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    fn sample_root(&self) -> bool {
        match self.inner.sampling {
            Sampling::Always => true,
            Sampling::Off => false,
            Sampling::OneIn(n) => {
                self.inner.root_seq.fetch_add(1, Ordering::Relaxed).is_multiple_of(n.max(1))
            }
        }
    }

    fn mint_trace(&self) -> u64 {
        self.inner.part.load(Ordering::Relaxed)
            | self.inner.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    fn mint_span(&self) -> u64 {
        self.inner.part.load(Ordering::Relaxed)
            | self.inner.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn slow_threshold_ns(&self, name: &str) -> u64 {
        let overrides = self.inner.slow_overrides.lock();
        overrides.get(name).copied().unwrap_or(self.inner.slow_default_ns)
    }

    fn finish(&self, span: Span) {
        let dur = span.duration_ns();
        if dur >= self.slow_threshold_ns(&span.name) {
            self.inner.registry.event("slow", &[("span", &span.name), ("took", &fmt_ns(dur))]);
        }
        let idx = (span.id as usize) % self.inner.shards.len();
        if let Some(shard) = self.inner.shards.get(idx) {
            let mut buf = shard.lock();
            if buf.len() >= self.inner.shard_capacity {
                drop(buf);
                self.inner.dropped.inc();
            } else {
                buf.push(span);
                drop(buf);
                self.inner.recorded.inc();
            }
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sampling", &self.inner.sampling)
            .field("recorded", &self.inner.recorded.get())
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// Fast gate: true iff TRACER holds a tracer.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
    static CONTEXT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Is a tracer currently ambient on this thread? Use to skip building
/// span labels on hot paths when tracing is off.
pub fn active() -> bool {
    ENABLED.with(Cell::get)
}

/// The ambient span context, if any (what a transport puts in its
/// request envelope).
pub fn current_context() -> Option<TraceContext> {
    CONTEXT.with(Cell::get)
}

/// Make `tracer` ambient on this thread until the guard drops. A
/// no-op (keeping whatever was ambient) when the tracer samples
/// nothing and no propagated context is live — so installing a
/// disabled tracer around every request costs one thread-local read.
pub fn install_tracer(tracer: &Tracer) -> TracerGuard {
    if tracer.sampling() == Sampling::Off && CONTEXT.with(Cell::get).is_none() {
        return TracerGuard { prev: None, _not_send: PhantomData };
    }
    let prev = TRACER.with(|cell| cell.borrow_mut().replace(tracer.clone()));
    ENABLED.with(|e| e.set(true));
    TracerGuard { prev: Some(prev), _not_send: PhantomData }
}

/// Restores the previously ambient tracer on drop.
#[derive(Debug)]
pub struct TracerGuard {
    /// `Some(previous)` when an install actually happened.
    prev: Option<Option<Tracer>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for TracerGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            ENABLED.with(|e| e.set(prev.is_some()));
            TRACER.with(|cell| *cell.borrow_mut() = prev);
        }
    }
}

/// Replace the ambient span context (e.g. with one received in a
/// transport envelope) until the guard drops.
pub fn install_context(ctx: Option<TraceContext>) -> ContextGuard {
    let prev = CONTEXT.with(|c| c.replace(ctx));
    ContextGuard { prev, _not_send: PhantomData }
}

/// Restores the previously ambient context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

/// Both halves of the ambient state, captured on one thread and
/// restorable on another (work-pool submission → worker).
#[derive(Clone, Debug, Default)]
pub struct AmbientTrace {
    tracer: Option<Tracer>,
    ctx: Option<TraceContext>,
}

impl AmbientTrace {
    /// Capture this thread's ambient tracer and context.
    pub fn capture() -> Self {
        if !ENABLED.with(Cell::get) {
            // No tracer ⇒ nothing worth carrying (a bare context can
            // only have leaked from a mis-nested guard).
            return AmbientTrace::default();
        }
        AmbientTrace { tracer: TRACER.with(|t| t.borrow().clone()), ctx: CONTEXT.with(Cell::get) }
    }

    /// True when there is nothing to restore.
    pub fn is_empty(&self) -> bool {
        self.tracer.is_none() && self.ctx.is_none()
    }

    /// Install the captured state on the current thread until the guard
    /// drops. Near-free when both the capture and the thread's current
    /// state are empty.
    pub fn install(&self) -> AmbientGuard {
        if self.is_empty() && !ENABLED.with(Cell::get) && CONTEXT.with(Cell::get).is_none() {
            return AmbientGuard { prev: None, _not_send: PhantomData };
        }
        let prev_tracer = TRACER.with(|t| t.borrow_mut().take());
        TRACER.with(|t| *t.borrow_mut() = self.tracer.clone());
        ENABLED.with(|e| e.set(self.tracer.is_some()));
        let prev_ctx = CONTEXT.with(|c| c.replace(self.ctx));
        AmbientGuard { prev: Some((prev_tracer, prev_ctx)), _not_send: PhantomData }
    }
}

/// Restores the pre-install ambient state on drop.
#[derive(Debug)]
pub struct AmbientGuard {
    prev: Option<(Option<Tracer>, Option<TraceContext>)>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        if let Some((tracer, ctx)) = self.prev.take() {
            ENABLED.with(|e| e.set(tracer.is_some()));
            TRACER.with(|t| *t.borrow_mut() = tracer);
            CONTEXT.with(|c| c.set(ctx));
        }
    }
}

struct ActiveSpan {
    tracer: Tracer,
    trace: u64,
    id: u64,
    parent: Option<u64>,
    name: String,
    labels: Vec<(String, String)>,
    start_ns: u64,
    prev_ctx: Option<TraceContext>,
}

/// An open span. While it lives, it is the ambient context on its
/// thread; dropping it stamps the end time, runs the slow-op watchdog,
/// records the span, and restores the previous context.
#[derive(Debug, Default)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// This span's propagation context; `None` for a disabled span.
    pub fn context(&self) -> Option<TraceContext> {
        self.active.as_ref().map(|a| TraceContext { trace: a.trace, span: a.id })
    }

    /// Is this span actually recording?
    pub fn enabled(&self) -> bool {
        self.active.is_some()
    }

    /// Attach a label decided after the span opened (e.g. hit/miss).
    pub fn label(&mut self, key: &str, value: &str) {
        if let Some(a) = self.active.as_mut() {
            a.labels.push((key.to_owned(), value.to_owned()));
        }
    }
}

impl std::fmt::Debug for ActiveSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSpan").field("name", &self.name).field("id", &self.id).finish()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            CONTEXT.with(|c| c.set(a.prev_ctx));
            let end_ns = a.tracer.inner.clock.now_ns();
            a.tracer.finish(Span {
                trace: a.trace,
                id: a.id,
                parent: a.parent,
                name: a.name,
                labels: a.labels,
                start_ns: a.start_ns,
                end_ns,
            });
        }
    }
}

/// Open a span named `name` under the ambient tracer: a child of the
/// ambient context when one is live, otherwise a new root subject to
/// the tracer's sampling. Disabled (a cheap no-op guard) when no
/// tracer is ambient or the root is not sampled.
pub fn span(name: &str, labels: &[(&str, &str)]) -> SpanGuard {
    if !ENABLED.with(Cell::get) {
        return SpanGuard::default();
    }
    let Some(tracer) = TRACER.with(|t| t.borrow().clone()) else {
        return SpanGuard::default();
    };
    let (trace, parent) = match CONTEXT.with(Cell::get) {
        Some(ctx) => (ctx.trace, Some(ctx.span)),
        None => {
            if !tracer.sample_root() {
                return SpanGuard::default();
            }
            (tracer.mint_trace(), None)
        }
    };
    let id = tracer.mint_span();
    let prev_ctx = CONTEXT.with(|c| c.replace(Some(TraceContext { trace, span: id })));
    let start_ns = tracer.inner.clock.now_ns();
    SpanGuard {
        active: Some(ActiveSpan {
            tracer,
            trace,
            id,
            parent,
            name: name.to_owned(),
            labels: labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            start_ns,
            prev_ctx,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_util::MockClock;

    fn rig(sampling: Sampling) -> (Arc<MockClock>, Arc<Registry>, Tracer) {
        let clock = Arc::new(MockClock::new());
        let registry = Arc::new(Registry::new(clock.clone()));
        let tracer = Tracer::with_sampling(&registry, sampling);
        (clock, registry, tracer)
    }

    #[test]
    fn spans_nest_via_ambient_context() {
        let (clock, _reg, tracer) = rig(Sampling::Always);
        {
            let _t = install_tracer(&tracer);
            let root = span("client.read", &[("path", "a")]);
            assert!(root.enabled());
            clock.advance(10);
            {
                let child = span("kv.get", &[]);
                assert_eq!(child.context().map(|c| c.trace), root.context().map(|c| c.trace));
                clock.advance(5);
            }
            clock.advance(1);
        }
        let spans = tracer.drain();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "client.read").unwrap();
        let child = spans.iter().find(|s| s.name == "kv.get").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(child.trace, root.trace);
        assert_eq!(root.duration_ns(), 16);
        assert_eq!(child.duration_ns(), 5);
        assert_eq!(root.labels, vec![("path".to_owned(), "a".to_owned())]);
        assert_eq!(tracer.spans_recorded(), 2);
    }

    #[test]
    fn no_ambient_tracer_means_no_spans() {
        let (_, _, tracer) = rig(Sampling::Always);
        let g = span("orphan", &[]);
        assert!(!g.enabled());
        drop(g);
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn off_sampling_roots_nothing_but_children_of_contexts_record() {
        let (_, _, tracer) = rig(Sampling::Off);
        {
            let _t = install_tracer(&tracer);
            // install_tracer is a no-op for Off with no live context.
            assert!(!active());
        }
        // A propagated context forces recording even at Off.
        let ctx = TraceContext { trace: 7, span: 3 };
        {
            let _c = install_context(Some(ctx));
            let _t = install_tracer(&tracer);
            assert!(active());
            let s = span("server.handle", &[]);
            assert!(s.enabled());
        }
        let spans = tracer.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans.first().map(|s| (s.trace, s.parent)), Some((7, Some(3))));
    }

    #[test]
    fn one_in_n_sampling_is_a_deterministic_counter() {
        let (_, _, tracer) = rig(Sampling::OneIn(3));
        let _t = install_tracer(&tracer);
        for _ in 0..9 {
            let _s = span("root", &[]);
        }
        drop(_t);
        assert_eq!(tracer.drain().len(), 3, "every 3rd root records");
    }

    #[test]
    fn ids_are_deterministic_across_identical_runs() {
        let run = || {
            let (_, _, tracer) = rig(Sampling::Always);
            let _t = install_tracer(&tracer);
            for i in 0..4 {
                let mut s = span("op", &[]);
                s.label("i", &i.to_string());
                let _child = span("inner", &[]);
            }
            drop(_t);
            tracer.drain()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn buffer_bound_drops_and_counts() {
        let (_, _, tracer) = rig(Sampling::Always);
        let _t = install_tracer(&tracer);
        for _ in 0..(DEFAULT_SPAN_CAPACITY + 100) {
            let _s = span("tiny", &[]);
        }
        drop(_t);
        assert_eq!(tracer.spans_recorded(), DEFAULT_SPAN_CAPACITY as u64);
        assert_eq!(tracer.spans_dropped(), 100);
        assert_eq!(tracer.drain().len(), DEFAULT_SPAN_CAPACITY);
    }

    #[test]
    fn slow_spans_emit_a_watchdog_event() {
        let (clock, registry, tracer) = rig(Sampling::Always);
        tracer.set_slow_threshold_ns("slow.op", 1_000_000); // 1 ms
        let _t = install_tracer(&tracer);
        {
            let _s = span("slow.op", &[]);
            clock.advance(2_000_000);
        }
        {
            let _s = span("fast.op", &[]);
            clock.advance(10);
        }
        drop(_t);
        let snap = registry.snapshot();
        let slow: Vec<_> = snap.events.iter().filter(|e| e.scope == "slow").collect();
        assert_eq!(slow.len(), 1, "{:?}", snap.events);
        let ev = slow.first().unwrap();
        assert!(ev.kv.iter().any(|(k, v)| k == "span" && v == "slow.op"), "{ev:?}");
        assert!(ev.kv.iter().any(|(k, v)| k == "took" && v == "2.00ms"), "{ev:?}");
    }

    #[test]
    fn part_namespaces_minted_ids() {
        let (_, _, a) = rig(Sampling::Always);
        let b = {
            let clock = Arc::new(MockClock::new());
            let registry = Arc::new(Registry::new(clock));
            Tracer::with_sampling(&registry, Sampling::Always).with_part(2)
        };
        let span_a = {
            let _t = install_tracer(&a);
            let s = span("x", &[]);
            s.context().unwrap()
        };
        let span_b = {
            let _t = install_tracer(&b);
            let s = span("x", &[]);
            s.context().unwrap()
        };
        assert_ne!(span_a.span, span_b.span);
        assert_eq!(span_b.span >> 48, 2);
    }

    #[test]
    fn ambient_capture_restores_on_another_scope() {
        let (_, _, tracer) = rig(Sampling::Always);
        let captured = {
            let _t = install_tracer(&tracer);
            let root = span("root", &[]);
            let amb = AmbientTrace::capture();
            assert!(!amb.is_empty());
            drop(root);
            amb
        };
        // Simulates a worker thread: nothing ambient until installed.
        assert!(!active());
        {
            let _g = captured.install();
            assert!(active());
            let child = span("worker.task", &[]);
            assert!(child.enabled());
        }
        assert!(!active());
        let spans = tracer.drain();
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let child = spans.iter().find(|s| s.name == "worker.task").unwrap();
        assert_eq!(child.parent, Some(root.id));
    }

    #[test]
    fn empty_ambient_install_is_a_noop() {
        let amb = AmbientTrace::capture();
        assert!(amb.is_empty());
        let _g = amb.install();
        assert!(!active());
    }

    #[test]
    fn sampling_parse_table() {
        assert_eq!(Sampling::parse("off"), Sampling::Off);
        assert_eq!(Sampling::parse("0"), Sampling::Off);
        assert_eq!(Sampling::parse(""), Sampling::Off);
        assert_eq!(Sampling::parse("junk"), Sampling::Off);
        assert_eq!(Sampling::parse("always"), Sampling::Always);
        assert_eq!(Sampling::parse("1"), Sampling::Always);
        assert_eq!(Sampling::parse("ON"), Sampling::Always);
        assert_eq!(Sampling::parse("8"), Sampling::OneIn(8));
    }

    #[test]
    fn display_name_includes_labels() {
        let s = Span {
            trace: 1,
            id: 2,
            parent: None,
            name: "net.call".into(),
            labels: vec![("endpoint".into(), "server@0".into())],
            start_ns: 0,
            end_ns: 0,
        };
        assert_eq!(s.display_name(), "net.call{endpoint=server@0}");
    }
}
