//! Log-bucketed latency histograms with ~4 % relative-error buckets.
//!
//! This is the one histogram implementation in the workspace; the
//! simulator's `SimTime`-flavoured histogram and the RPC layer's latency
//! tracking both delegate here. Buckets are geometric — 16 per decade
//! over 12 decades (1 ns .. 1000 s) — so `merge` is exact bucket-wise
//! addition and quantiles carry bucket resolution.

/// Geometric buckets per factor-of-ten.
const BUCKETS_PER_DECADE: usize = 16;
/// Covered range: 1 ns .. 1000 s.
const DECADES: usize = 12;
/// Total bucket count (one extra catch-all at the top). Public so the
/// flight recorder can size fixed bucket-delta arrays against the same
/// geometry.
pub const NBUCKETS: usize = BUCKETS_PER_DECADE * DECADES + 1;

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    let log10 = (ns as f64).log10();
    let idx = (log10 * BUCKETS_PER_DECADE as f64) as usize;
    idx.min(NBUCKETS - 1)
}

fn bucket_floor(idx: usize) -> u64 {
    10f64.powf(idx as f64 / BUCKETS_PER_DECADE as f64) as u64
}

/// A histogram over nanosecond durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    // bucket i covers [floor_i, floor_{i+1}) with geometric spacing.
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; NBUCKETS], total: 0, sum_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    /// Record one duration in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        if let Some(c) = self.counts.get_mut(bucket_of(ns)) {
            *c += 1;
        }
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// The raw per-bucket sample counts. Bucket `i` covers
    /// `[bucket_floor_ns(i), bucket_floor_ns(i+1))`; every histogram in
    /// the workspace uses the same fixed geometry, so two histograms'
    /// buckets always align index-wise (what makes [`merge`](Self::merge)
    /// exact and lets the flight recorder store frame-to-frame bucket
    /// deltas).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Lower bound (ns) of bucket `idx`; the bucket's exclusive upper
    /// bound is `bucket_floor_ns(idx + 1)`.
    pub fn bucket_floor_ns(idx: usize) -> u64 {
        bucket_floor(idx)
    }

    /// Rebuild a histogram from per-bucket counts (e.g. a window sum of
    /// recorder bucket deltas). Count and quantiles are exact at bucket
    /// resolution; `sum`/`min`/`max` are reconstructed from bucket
    /// floors, so means carry the same ~4 % relative error as quantiles.
    /// Counts beyond the fixed bucket geometry are ignored.
    pub fn from_bucket_counts(counts: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for (i, &c) in counts.iter().take(NBUCKETS).enumerate() {
            if c == 0 {
                continue;
            }
            let floor = bucket_floor(i);
            if let Some(slot) = h.counts.get_mut(i) {
                *slot = c;
            }
            h.total += c;
            h.sum_ns += floor as u128 * c as u128;
            h.min_ns = h.min_ns.min(floor);
            h.max_ns = h.max_ns.max(floor);
        }
        h
    }

    /// Merge another histogram into this one (exact: buckets align).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Approximate quantile `q ∈ [0,1]` in nanoseconds (bucket floor,
    /// clamped to the observed min/max).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_floor(i).max(self.min_ns).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Mean, min, max and common quantiles.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.total,
            mean_ns: if self.total == 0 { 0 } else { (self.sum_ns / self.total as u128) as u64 },
            min_ns: if self.total == 0 { 0 } else { self.min_ns },
            p50_ns: self.quantile_ns(0.50),
            p99_ns: self.quantile_ns(0.99),
            max_ns: if self.total == 0 { 0 } else { self.max_ns },
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point statistics extracted from a [`Histogram`], in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Minimum sample.
    pub min_ns: u64,
    /// Median (bucket-resolution).
    pub p50_ns: u64,
    /// 99th percentile (bucket-resolution).
    pub p99_ns: u64,
    /// Maximum sample.
    pub max_ns: u64,
}

/// Render a nanosecond duration with a human-scale unit.
///
/// Pure integer arithmetic: two fixed decimals per unit, round-half-up,
/// and a carry into the next unit when rounding would print `1000.00`
/// of the smaller one — so output is stable-width and free of float
/// noise (`999_999ns` is `1.00ms`, never `1000.00us` or
/// `1.0000000002s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        return format!("{ns}ns");
    }
    for (div, unit) in [(1_000u64, "us"), (1_000_000, "ms")] {
        let centi = centi_units(ns, div);
        if centi < 100_000 {
            return format!("{}.{:02}{unit}", centi / 100, centi % 100);
        }
    }
    let centi = centi_units(ns, 1_000_000_000);
    format!("{}.{:02}s", centi / 100, centi % 100)
}

/// `ns` rescaled to hundredths of the unit whose size is `div` ns,
/// rounded half-up. Widened to u128 so u64::MAX ns cannot overflow.
fn centi_units(ns: u64, div: u64) -> u64 {
    ((ns as u128 * 100 + div as u128 / 2) / div as u128) as u64
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            fmt_ns(self.mean_ns),
            fmt_ns(self.p50_ns),
            fmt_ns(self.p99_ns),
            fmt_ns(self.max_ns)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ns, 0);
        assert_eq!(h.quantile_ns(0.5), 0);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record_ns(42_000);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_ns, 42_000);
        assert_eq!(s.min_ns, 42_000);
        assert_eq!(s.max_ns, 42_000);
        // Quantiles land within the bucket (±~8 %).
        let p50 = h.quantile_ns(0.5) as f64;
        assert!((p50 - 42_000.0).abs() / 42_000.0 < 0.1, "p50={p50}");
    }

    #[test]
    fn quantiles_are_ordered_and_close() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record_ns(us * 1_000);
        }
        let s = h.summary();
        assert!(s.min_ns <= s.p50_ns && s.p50_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
        let p50 = s.p50_ns as f64 / 1_000.0;
        let p99 = s.p99_ns as f64 / 1_000.0;
        assert!((p50 - 500.0).abs() / 500.0 < 0.2, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.2, "p99={p99}");
        assert_eq!(s.mean_ns, 500_500);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for i in 0..500u64 {
            a.record_ns(i * 17 + 1);
            both.record_ns(i * 17 + 1);
            b.record_ns((i + 1) * 1_000);
            both.record_ns((i + 1) * 1_000);
        }
        a.merge(&b);
        assert_eq!(a.summary(), both.summary());
    }

    #[test]
    fn zero_duration_counts() {
        let mut h = Histogram::new();
        h.record_ns(0);
        h.record_ns(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.summary().max_ns, 0);
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(42_000), "42.00us");
        assert_eq!(fmt_ns(3_500_000), "3.50ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.00s");
    }

    #[test]
    fn fmt_ns_boundaries_carry_units_without_float_noise() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_000), "1.00us");
        assert_eq!(fmt_ns(999_994), "999.99us");
        // Rounding that would print 1000.00us carries into ms.
        assert_eq!(fmt_ns(999_995), "1.00ms");
        assert_eq!(fmt_ns(999_999), "1.00ms");
        assert_eq!(fmt_ns(1_000_000), "1.00ms");
        assert_eq!(fmt_ns(999_999_999), "1.00s");
        assert_eq!(fmt_ns(1_000_000_000), "1.00s");
        assert_eq!(fmt_ns(1_000_000_002), "1.00s", "no 1.0000000002s");
        assert_eq!(fmt_ns(1_005_000_000), "1.01s", "half rounds up");
        // Huge values stay exact integers (u64::MAX ns ≈ 584 years).
        assert_eq!(fmt_ns(u64::MAX), "18446744073.71s");
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = Histogram::new();
        h.record_ns(5_000);
        let before = h.summary();
        h.merge(&Histogram::new());
        assert_eq!(h.summary(), before);
        assert_eq!(h.summary().min_ns, 5_000, "empty min (u64::MAX) must not leak");

        let mut empty = Histogram::new();
        empty.merge(&Histogram::new());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.summary(), Summary::default());
    }

    #[test]
    fn merging_into_an_empty_histogram_adopts_the_other() {
        let mut single = Histogram::new();
        single.record_ns(7_777);
        let mut h = Histogram::new();
        h.merge(&single);
        assert_eq!(h.count(), 1);
        assert_eq!(h.summary().min_ns, 7_777);
        assert_eq!(h.summary().max_ns, 7_777);
    }

    #[test]
    fn quantiles_on_empty_and_single_sample_histograms() {
        let empty = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile_ns(q), 0, "q={q}");
        }
        let mut single = Histogram::new();
        single.record_ns(42_000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile_ns(q), 42_000, "single sample clamps to itself, q={q}");
        }
        let mut zero = Histogram::new();
        zero.record_ns(0);
        assert_eq!(zero.quantile_ns(0.5), 0);
    }

    #[test]
    fn quantiles_after_merge_stay_clamped_and_ordered() {
        // Two single-sample histograms three decades apart: after the
        // merge, p50 must land exactly on the low sample and p99/p100 on
        // the high one (bucket floors clamp to the observed min/max, so
        // neither quantile can wander outside the recorded range).
        let mut low = Histogram::new();
        low.record_ns(1_000);
        let mut high = Histogram::new();
        high.record_ns(1_000_000);
        low.merge(&high);
        assert_eq!(low.quantile_ns(0.0), 1_000);
        assert_eq!(low.quantile_ns(0.5), 1_000);
        assert_eq!(low.quantile_ns(0.99), 1_000_000);
        assert_eq!(low.quantile_ns(1.0), 1_000_000);
        // Merging an empty histogram must not perturb any quantile.
        let before: Vec<u64> = [0.0, 0.5, 0.99, 1.0].iter().map(|&q| low.quantile_ns(q)).collect();
        low.merge(&Histogram::new());
        let after: Vec<u64> = [0.0, 0.5, 0.99, 1.0].iter().map(|&q| low.quantile_ns(q)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn bucket_counts_round_trip_preserves_count_and_quantiles() {
        let mut h = Histogram::new();
        for us in 1..=200u64 {
            h.record_ns(us * 3_000);
        }
        let rebuilt = Histogram::from_bucket_counts(h.bucket_counts());
        assert_eq!(rebuilt.count(), h.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            // Quantiles agree to bucket resolution: both sides read the
            // same cumulative bucket walk; only the min/max clamp can
            // differ (the rebuilt side clamps to bucket floors).
            let a = h.quantile_ns(q) as f64;
            let b = rebuilt.quantile_ns(q) as f64;
            assert!((a - b).abs() / a.max(1.0) < 0.16, "q={q}: {a} vs {b}");
        }
        // Empty and out-of-range inputs are safe.
        assert_eq!(Histogram::from_bucket_counts(&[]).count(), 0);
        assert_eq!(Histogram::from_bucket_counts(&[0; 4096]).count(), 0);
        let single = Histogram::from_bucket_counts(&[0, 0, 0, 5]);
        assert_eq!(single.count(), 5);
        assert_eq!(single.quantile_ns(0.5), Histogram::bucket_floor_ns(3));
    }
}
