//! Exporters for recorded [`Span`]s: chrome-trace JSON (loadable in
//! `chrome://tracing` / Perfetto) and a text critical-path summary.
//!
//! The JSON writer is hand-rolled and fully deterministic: spans are
//! sorted by `(trace, id)`, timestamps are fixed-point microseconds
//! (`ns/1000` with three decimals — no float formatting noise), and
//! label order is preserved. Two identical runs therefore export
//! byte-identical documents, which `tests/determinism.rs` relies on.
//!
//! A minimal JSON reader ([`parse_chrome_trace`]) is included so smoke
//! tests (and the `loader_pipeline --trace` bench) can validate an
//! emitted document and walk its parent/child structure without any
//! external JSON dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::fmt_ns;
use crate::trace::Span;

/// Render spans as a chrome-trace ("Trace Event Format") JSON document.
///
/// Each span becomes one complete (`ph:"X"`) event. Traces map to
/// `tid` tracks (densely renumbered so ids stay small); the full
/// trace/span/parent ids ride in `args` as strings, alongside the
/// span's labels.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.trace, s.id));
    let mut tids: BTreeMap<u64, usize> = BTreeMap::new();
    for s in &sorted {
        let next = tids.len() + 1;
        tids.entry(s.trace).or_insert(next);
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str("\",\"cat\":\"diesel\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", tids.get(&s.trace).copied().unwrap_or(0));
        out.push_str(",\"ts\":");
        push_us(s.start_ns, &mut out);
        out.push_str(",\"dur\":");
        push_us(s.duration_ns(), &mut out);
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"trace\":\"{}\",\"span\":\"{}\"", s.trace, s.id);
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent\":\"{p}\"");
        }
        for (k, v) in &s.labels {
            out.push_str(",\"");
            escape_json(k, &mut out);
            out.push_str("\":\"");
            escape_json(v, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Fixed-point microseconds: `ns/1000` with exactly three decimals.
fn push_us(ns: u64, out: &mut String) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// One event read back out of a chrome-trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedSpan {
    /// Event name (the span name).
    pub name: String,
    /// Trace id from `args.trace`.
    pub trace: u64,
    /// Span id from `args.span`.
    pub span: u64,
    /// Parent span id from `args.parent`, when present.
    pub parent: Option<u64>,
    /// Duration in nanoseconds, reconstructed from the `dur` field.
    pub dur_ns: u64,
}

impl ExportedSpan {
    /// Is `self` a descendant of `of` within `all` (same trace,
    /// following parent links)?
    pub fn is_descendant_of(&self, of: &ExportedSpan, all: &[ExportedSpan]) -> bool {
        if self.trace != of.trace {
            return false;
        }
        let mut cursor = self.parent;
        // Bounded walk: parent chains are acyclic, but cap anyway.
        for _ in 0..all.len() + 1 {
            match cursor {
                None => return false,
                Some(p) if p == of.span => return true,
                Some(p) => {
                    cursor = all
                        .iter()
                        .find(|s| s.trace == self.trace && s.span == p)
                        .and_then(|s| s.parent);
                }
            }
        }
        false
    }
}

/// Parse a chrome-trace document produced by [`chrome_trace_json`]
/// (or any structurally valid trace-event JSON whose events carry
/// `args.trace`/`args.span`). Returns `None` on malformed JSON or a
/// missing `traceEvents` array.
pub fn parse_chrome_trace(json: &str) -> Option<Vec<ExportedSpan>> {
    let value = Parser { b: json.as_bytes(), i: 0 }.document()?;
    let events = value.get("traceEvents")?.as_array()?;
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        let name = ev.get("name")?.as_str()?.to_owned();
        let args = ev.get("args")?;
        let trace = args.get("trace")?.as_str()?.parse::<u64>().ok()?;
        let span = args.get("span")?.as_str()?.parse::<u64>().ok()?;
        let parent = match args.get("parent") {
            Some(p) => Some(p.as_str()?.parse::<u64>().ok()?),
            None => None,
        };
        let dur_ns = ev.get("dur").and_then(Json::as_us_ns).unwrap_or(0);
        out.push(ExportedSpan { name, trace, span, parent, dur_ns });
    }
    Some(out)
}

/// A parsed JSON value — only what the trace reader needs.
enum Json {
    Null,
    Bool,
    /// Numbers are kept as their source text (we only ever need the
    /// fixed-point µs fields, parsed losslessly as integers).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A fixed-point microsecond number (`123.456`) as nanoseconds.
    fn as_us_ns(&self) -> Option<u64> {
        let text = match self {
            Json::Num(n) => n.as_str(),
            _ => return None,
        };
        let (whole, frac) = match text.split_once('.') {
            Some((w, f)) => (w, f),
            None => (text, ""),
        };
        let us = whole.parse::<u64>().ok()?;
        let mut ns = 0u64;
        let mut scale = 100;
        for c in frac.chars().take(3) {
            ns += (c.to_digit(10)? as u64) * scale;
            scale /= 10;
        }
        Some(us.saturating_mul(1_000).saturating_add(ns))
    }
}

/// Minimal recursive-descent JSON parser. Depth-limited, allocation
/// conscious, and panic-free (diesel-lint R1 applies to this module).
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn document(mut self) -> Option<Json> {
        let v = self.value(0)?;
        self.skip_ws();
        if self.i == self.b.len() {
            Some(v)
        } else {
            None
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Option<()> {
        if self.b.get(self.i..self.i + lit.len()) == Some(lit.as_bytes()) {
            self.i += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_DEPTH {
            return None;
        }
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(depth),
            b'[' => self.array(depth),
            b'"' => Some(Json::Str(self.string()?)),
            b't' => self.eat_literal("true").map(|()| Json::Bool),
            b'f' => self.eat_literal("false").map(|()| Json::Bool),
            b'n' => self.eat_literal("null").map(|()| Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Some(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Some(Json::Obj(fields)),
                _ => return None,
            }
        }
    }

    fn array(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Some(Json::Arr(items)),
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bump()? != b'"' {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = self.b.get(self.i..self.i + 4)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        self.i += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return None,
                },
                c if c < 0x20 => return None,
                c => {
                    // Re-assemble multi-byte UTF-8 sequences byte-wise.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    let chunk = self.b.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.i = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        let text = std::str::from_utf8(self.b.get(start..self.i)?).ok()?;
        Some(Json::Num(text.to_owned()))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// A text "critical path" summary: for every trace, the chain formed
/// by repeatedly descending into the longest child span — the answer
/// to "where did this request spend its time".
pub fn critical_path(spans: &[Span]) -> String {
    let mut by_trace: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().push(s);
    }
    let mut out = String::new();
    let _ = writeln!(out, "{} spans across {} traces", spans.len(), by_trace.len());
    for (trace, members) in &by_trace {
        let ids: std::collections::BTreeSet<u64> = members.iter().map(|s| s.id).collect();
        // Roots: no parent, or a parent recorded elsewhere (e.g. the
        // client half of a trace drained from only the server side).
        let mut roots: Vec<&&Span> = members
            .iter()
            .filter(|s| s.parent.map(|p| !ids.contains(&p)).unwrap_or(true))
            .collect();
        roots.sort_by_key(|s| s.id);
        for root in roots {
            let _ = writeln!(
                out,
                "trace {trace}: {} ({} spans, {})",
                root.display_name(),
                members.len(),
                fmt_ns(root.duration_ns())
            );
            let mut depth = 1usize;
            let mut cursor = *root;
            loop {
                let mut children: Vec<&&Span> =
                    members.iter().filter(|s| s.parent == Some(cursor.id)).collect();
                // Longest child wins; ties break on id for determinism.
                children.sort_by_key(|s| (std::cmp::Reverse(s.duration_ns()), s.id));
                let Some(next) = children.first() else { break };
                let _ = writeln!(
                    out,
                    "{:indent$}-> {:<44} {}",
                    "",
                    next.display_name(),
                    fmt_ns(next.duration_ns()),
                    indent = depth * 2
                );
                cursor = **next;
                depth += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> Span {
        Span {
            trace,
            id,
            parent,
            name: name.into(),
            labels: Vec::new(),
            start_ns: start,
            end_ns: end,
        }
    }

    fn tree() -> Vec<Span> {
        vec![
            span(1, 1, None, "client.read", 0, 48_200_000),
            span(1, 2, Some(1), "net.attempt", 100_000, 48_000_000),
            span(1, 3, Some(2), "server.handle", 200_000, 40_100_000),
            span(1, 4, Some(3), "store.get_range", 300_000, 39_000_000),
        ]
    }

    #[test]
    fn export_parse_roundtrip_preserves_structure() {
        let json = chrome_trace_json(&tree());
        let parsed = parse_chrome_trace(&json).expect("emitted JSON must parse");
        assert_eq!(parsed.len(), 4);
        let client = parsed.iter().find(|s| s.name == "client.read").unwrap();
        let handle = parsed.iter().find(|s| s.name == "server.handle").unwrap();
        assert_eq!(client.parent, None);
        assert!(handle.is_descendant_of(client, &parsed));
        assert!(!client.is_descendant_of(handle, &parsed));
        assert_eq!(client.dur_ns, 48_200_000);
    }

    #[test]
    fn export_is_deterministic_and_order_insensitive() {
        let a = chrome_trace_json(&tree());
        let mut shuffled = tree();
        shuffled.reverse();
        assert_eq!(a, chrome_trace_json(&shuffled), "writer sorts spans itself");
    }

    #[test]
    fn timestamps_are_fixed_point_microseconds() {
        let spans = vec![span(1, 1, None, "t", 1_234, 2_468)];
        let json = chrome_trace_json(&spans);
        assert!(json.contains("\"ts\":1.234"), "{json}");
        assert!(json.contains("\"dur\":1.234"), "{json}");
    }

    #[test]
    fn labels_and_escaping_survive() {
        let mut s = span(1, 1, None, "odd\"name", 0, 10);
        s.labels.push(("path".into(), "a/b\\c".into()));
        let json = chrome_trace_json(&[s]);
        assert!(json.contains("odd\\\"name"), "{json}");
        assert!(json.contains("a/b\\\\c"), "{json}");
        let parsed = parse_chrome_trace(&json).unwrap();
        assert_eq!(parsed.first().map(|e| e.name.as_str()), Some("odd\"name"));
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        for bad in ["", "{", "[1,2", "{\"traceEvents\":}", "{\"traceEvents\":[{]}]}", "nul"] {
            assert!(parse_chrome_trace(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn critical_path_follows_longest_children() {
        let mut spans = tree();
        // A short sibling that must NOT be on the path.
        spans.push(span(1, 5, Some(1), "client.stat", 0, 1_000));
        let text = critical_path(&spans);
        assert!(text.contains("trace 1: client.read"), "{text}");
        assert!(text.contains("-> net.attempt"), "{text}");
        assert!(text.contains("-> server.handle"), "{text}");
        assert!(text.contains("-> store.get_range"), "{text}");
        assert!(!text.contains("-> client.stat"), "{text}");
        assert!(text.contains("48.20ms"), "{text}");
    }

    #[test]
    fn orphan_parents_are_treated_as_roots() {
        // Server-side drain only: parent points at a client span that
        // is not in the set.
        let spans = vec![span(9, 20, Some(11), "server.handle", 0, 5_000)];
        let text = critical_path(&spans);
        assert!(text.contains("trace 9: server.handle"), "{text}");
    }
}
