//! Prometheus text exposition for [`RegistrySnapshot`]s.
//!
//! Renders any snapshot — single-node or pool-merged — in the
//! Prometheus text format (version 0.0.4), so the fleet can be scraped
//! by stock tooling via `dlcmd scrape` / `ServerRequest::Scrape`:
//!
//! * metric ids `name{k=v,…}` split back into name + labels; dots in
//!   names become underscores (`cache.chunk_hits` →
//!   `cache_chunk_hits`), label values are escaped per the spec
//!   (backslash, double-quote, newline).
//! * counters and gauges render as one sample per label set under a
//!   shared `# TYPE` header.
//! * histograms render as cumulative `_bucket{le="…"}` samples (only
//!   occupied buckets plus `+Inf` — the fixed geometry of
//!   [`crate::histogram`] makes sparse `le` sets exact), plus `_sum`
//!   and `_count`. Values stay in nanoseconds; names already carry
//!   their unit (`…_ns`, `…_latency`).
//!
//! [`parse_prometheus`] is the round-trip half: it reads the rendered
//! text back into samples so tests (and `scripts/ci.sh`) can assert
//! that exposition loses nothing.

use std::collections::BTreeMap;

use crate::registry::RegistrySnapshot;

/// One parsed exposition line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Mangled metric name (dots already replaced by underscores).
    pub name: String,
    /// Label pairs in rendered order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Kinds a rendered metric can have (mirrors the `# TYPE` header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromValue {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Bucketed histogram (`_bucket`/`_sum`/`_count` family).
    Histogram,
}

/// `cache.chunk_hits` → `cache_chunk_hits`. Any character outside
/// `[a-zA-Z0-9_:]` becomes an underscore, and a leading digit gets a
/// `_` prefix, per the exposition grammar.
fn mangle_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escape a label value per the exposition spec.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Unescape a label value (inverse of [`escape_label`]).
fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Split a full metric id `name{k=v,…}` into (name, label pairs).
/// Shared with `dlcmd`'s per-dataset slicing so both sides agree on
/// what a label is.
pub fn split_metric_id(id: &str) -> (&str, Vec<(&str, &str)>) {
    let Some((name, rest)) = id.split_once('{') else {
        return (id, Vec::new());
    };
    let body = rest.strip_suffix('}').unwrap_or(rest);
    let labels = body
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k, v),
            None => (pair, ""),
        })
        .collect();
    (name, labels)
}

fn render_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&mangle_name(k));
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
}

fn render_labels_with(out: &mut String, labels: &[(&str, &str)], extra: (&str, &str)) {
    out.push('{');
    for (k, v) in labels {
        out.push_str(&mangle_name(k));
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push_str("\",");
    }
    out.push_str(extra.0);
    out.push_str("=\"");
    out.push_str(&escape_label(extra.1));
    out.push_str("\"}");
}

/// One family's cells: (label pairs, value) in metric-id order.
type FamilyCells<'a, V> = Vec<(Vec<(&'a str, &'a str)>, V)>;

/// Group ids of one metric family by mangled name, keeping label sets
/// in deterministic (id-sorted) order.
fn group_by_name<'a, V>(
    cells: impl Iterator<Item = (&'a String, V)>,
) -> BTreeMap<String, FamilyCells<'a, V>> {
    let mut grouped: BTreeMap<String, FamilyCells<'a, V>> = BTreeMap::new();
    for (id, v) in cells {
        let (name, labels) = split_metric_id(id);
        grouped.entry(mangle_name(name)).or_default().push((labels, v));
    }
    grouped
}

/// Render a snapshot in the Prometheus text exposition format.
/// Deterministic: families sorted by mangled name within each type
/// section (counters, then gauges, then histograms), label sets in
/// metric-id order.
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, cells) in group_by_name(snap.counters.iter().map(|(id, v)| (id, *v))) {
        let _ = writeln!(out, "# TYPE {name} counter");
        for (labels, v) in cells {
            out.push_str(&name);
            render_labels(&mut out, &labels);
            let _ = writeln!(out, " {v}");
        }
    }
    for (name, cells) in group_by_name(snap.gauges.iter().map(|(id, v)| (id, *v))) {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (labels, v) in cells {
            out.push_str(&name);
            render_labels(&mut out, &labels);
            let _ = writeln!(out, " {v}");
        }
    }
    for (name, cells) in group_by_name(snap.histograms.iter()) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (labels, h) in cells {
            let mut cumulative = 0u64;
            for (idx, &c) in h.bucket_counts().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                out.push_str(&name);
                out.push_str("_bucket");
                let le = crate::histogram::Histogram::bucket_floor_ns(idx + 1).to_string();
                render_labels_with(&mut out, &labels, ("le", &le));
                let _ = writeln!(out, " {cumulative}");
            }
            out.push_str(&name);
            out.push_str("_bucket");
            render_labels_with(&mut out, &labels, ("le", "+Inf"));
            let _ = writeln!(out, " {}", h.count());
            out.push_str(&name);
            out.push_str("_sum");
            render_labels(&mut out, &labels);
            let _ = writeln!(out, " {}", h.sum_ns());
            out.push_str(&name);
            out.push_str("_count");
            render_labels(&mut out, &labels);
            let _ = writeln!(out, " {}", h.count());
        }
    }
    out
}

/// Parse exposition text back into samples. Comment (`#`) and blank
/// lines are skipped; any other malformed line is an error naming the
/// offending content — what lets CI validate an archived scrape.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line)?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let name_end = line.find(['{', ' ']).ok_or_else(|| format!("missing value: {line}"))?;
    let name = line.get(..name_end).unwrap_or_default().to_owned();
    let mut rest = line.get(name_end..).unwrap_or_default();
    if name.is_empty() {
        return Err(format!("empty metric name: {line}"));
    }
    let mut labels = Vec::new();
    if let Some(body) = rest.strip_prefix('{') {
        rest = body;
        loop {
            if rest.is_empty() {
                return Err(format!("unclosed label braces: {line}"));
            }
            if let Some(after) = rest.strip_prefix('}') {
                rest = after;
                break;
            }
            let eq = rest.find('=').ok_or_else(|| format!("bad label pair: {line}"))?;
            let key = rest.get(..eq).unwrap_or_default().to_owned();
            let val = rest
                .get(eq + 1..)
                .unwrap_or_default()
                .strip_prefix('"')
                .ok_or_else(|| format!("unquoted label value: {line}"))?;
            // Scan to the closing quote, honouring escapes — a label
            // value may legitimately contain `}` or `,`.
            let bytes = val.as_bytes();
            let mut j = 0;
            while let Some(&b) = bytes.get(j) {
                match b {
                    b'\\' => j += 2,
                    b'"' => break,
                    _ => j += 1,
                }
            }
            if bytes.get(j) != Some(&b'"') {
                return Err(format!("unterminated label value: {line}"));
            }
            labels.push((key, unescape_label(val.get(..j).unwrap_or_default())));
            rest = val.get(j + 1..).unwrap_or_default();
            rest = rest.strip_prefix(',').unwrap_or(rest);
        }
    }
    let value_str = rest.trim();
    let value: f64 = if value_str == "+Inf" {
        f64::INFINITY
    } else {
        value_str.parse().map_err(|_| format!("bad sample value: {line}"))?
    };
    Ok(PromSample { name, labels, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use diesel_util::MockClock;
    use std::sync::Arc;

    fn snapshot() -> RegistrySnapshot {
        let reg = Registry::new(Arc::new(MockClock::new()));
        reg.counter("cache.chunk_hits", &[("dataset", "imagenet")]).add(42);
        reg.counter("cache.chunk_hits", &[("dataset", "laion")]).add(7);
        reg.counter("kv.gets", &[]).add(1000);
        reg.gauge("server.tenant.qps_ceiling", &[("dataset", "imagenet")]).set(500);
        let h = reg.histogram("server.read_latency", &[("dataset", "imagenet")]);
        h.record_ns(1_000);
        h.record_ns(1_000);
        h.record_ns(900_000);
        reg.snapshot()
    }

    #[test]
    fn renders_counters_gauges_and_histogram_families() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE cache_chunk_hits counter"), "{text}");
        assert!(text.contains("cache_chunk_hits{dataset=\"imagenet\"} 42"), "{text}");
        assert!(text.contains("cache_chunk_hits{dataset=\"laion\"} 7"), "{text}");
        assert!(text.contains("kv_gets 1000"), "{text}");
        assert!(text.contains("# TYPE server_tenant_qps_ceiling gauge"), "{text}");
        assert!(text.contains("# TYPE server_read_latency histogram"), "{text}");
        assert!(
            text.contains("server_read_latency_bucket{dataset=\"imagenet\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("server_read_latency_sum{dataset=\"imagenet\"} 902000"), "{text}");
        assert!(text.contains("server_read_latency_count{dataset=\"imagenet\"} 3"), "{text}");
        // Bucket samples are cumulative: the low-latency bucket holds 2,
        // the +Inf family total 3.
        let two_then_three = text
            .lines()
            .filter(|l| l.starts_with("server_read_latency_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().to_owned())
            .collect::<Vec<_>>();
        assert_eq!(two_then_three, vec!["2", "3", "3"], "{text}");
    }

    #[test]
    fn round_trip_preserves_values_and_labels() {
        let snap = snapshot();
        let text = render_prometheus(&snap);
        let samples = parse_prometheus(&text).expect("rendered text parses");
        let find = |name: &str, dataset: Option<&str>| -> f64 {
            samples
                .iter()
                .find(|s| s.name == name && s.label("dataset") == dataset)
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert_eq!(find("cache_chunk_hits", Some("imagenet")), 42.0);
        assert_eq!(find("cache_chunk_hits", Some("laion")), 7.0);
        assert_eq!(find("kv_gets", None), 1000.0);
        assert_eq!(find("server_read_latency_count", Some("imagenet")), 3.0);
        assert_eq!(find("server_read_latency_sum", Some("imagenet")), 902_000.0);
        // The +Inf bucket equals _count.
        let inf = samples
            .iter()
            .find(|s| s.name == "server_read_latency_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 3.0);
    }

    #[test]
    fn label_escaping_round_trips() {
        // Note: `,` can't appear in a label value — the registry's
        // metric-id format uses it as the pair separator.
        let hostile = "a\\b\"c\nd}e";
        let reg = Registry::new(Arc::new(MockClock::new()));
        reg.counter("x.ops", &[("path", hostile)]).inc();
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("x_ops{path=\"a\\\\b\\\"c\\nd}e\"} 1"), "{text}");
        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].label("path"), Some(hostile));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("name_only").is_err());
        assert!(parse_prometheus("x{unclosed=\"v\" 1").is_err());
        assert!(parse_prometheus("x{k=unquoted} 1").is_err());
        assert!(parse_prometheus("x nan-ish-garbage").is_err());
        // Comments and blanks are fine.
        assert_eq!(parse_prometheus("# HELP x\n\n# TYPE x counter\nx 1\n").unwrap().len(), 1);
    }

    #[test]
    fn name_mangling_covers_dots_and_leading_digits() {
        assert_eq!(mangle_name("cache.chunk_hits"), "cache_chunk_hits");
        assert_eq!(mangle_name("9lives"), "_9lives");
        assert_eq!(mangle_name("a-b c"), "a_b_c");
    }

    #[test]
    fn split_metric_id_handles_bare_and_labelled_ids() {
        assert_eq!(split_metric_id("kv.gets"), ("kv.gets", vec![]));
        let (name, labels) = split_metric_id("net.requests{endpoint=s@0,node=1}");
        assert_eq!(name, "net.requests");
        assert_eq!(labels, vec![("endpoint", "s@0"), ("node", "1")]);
    }
}
