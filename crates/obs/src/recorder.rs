//! Flight recorder: fixed-interval registry sampling into a bounded,
//! delta-encoded ring of frames.
//!
//! A [`Registry`] snapshot is a single frame — it can say *how many*
//! cache hits have ever happened, but not whether the hit rate cratered
//! for thirty seconds during a rebalance. The [`FlightRecorder`] closes
//! that gap: a Clock-driven sampler scrapes the registry at a fixed
//! interval and appends one [`Frame`] per tick, keeping a bounded
//! window of recent history inside the process itself (the "black box"
//! a post-incident `dlcmd` can still read).
//!
//! # Frame format
//!
//! Frames are delta-encoded against the previous tick, so a steady
//! process records almost nothing:
//!
//! * **counters** — stored as the per-tick delta; zero deltas omitted.
//! * **gauges** — stored as the absolute value; unchanged gauges
//!   omitted (the latest value is always available from the baseline).
//! * **histograms** — stored as per-bucket count deltas (sparse
//!   `(bucket, +n)` pairs), so a window of frames sums back into an
//!   exact [`Histogram`] via [`Histogram::from_bucket_counts`].
//!
//! Memory is hard-capped twice over: at most [`RecorderConfig::max_frames`]
//! frames and at most [`RecorderConfig::max_bytes`] of estimated frame
//! payload; the oldest frames are evicted first. Everything is driven
//! by the registry's injected [`Clock`], so a recording produced under
//! `MockClock` is byte-identical across runs ([`FlightRecorder::encode`]
//! is the canonical serialization CI asserts on).
//!
//! # Window queries
//!
//! [`delta`](FlightRecorder::delta) / [`rate`](FlightRecorder::rate) /
//! [`percentile_over`](FlightRecorder::percentile_over) answer "over
//! the last W of recorder time" questions for any full metric id
//! (`name{k=v,…}`). Windows are anchored at the newest frame, so the
//! queries are deterministic functions of the recording alone.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use diesel_util::{Clock, Mutex};

use crate::histogram::{Histogram, NBUCKETS};
use crate::registry::Registry;

/// Default sampling interval: 1 s of clock time.
pub const DEFAULT_INTERVAL_NS: u64 = 1_000_000_000;
/// Default frame bound: 10 min of history at the default interval.
pub const DEFAULT_MAX_FRAMES: usize = 600;
/// Default memory hard-cap on buffered frames (estimated payload).
pub const DEFAULT_MAX_BYTES: usize = 4 << 20;

/// Recorder tuning, normally read from `DIESEL_RECORDER_*`.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Sampling interval in nanoseconds of clock time.
    pub interval_ns: u64,
    /// Maximum frames retained (oldest evicted).
    pub max_frames: usize,
    /// Maximum estimated bytes across retained frames (oldest evicted).
    pub max_bytes: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            interval_ns: DEFAULT_INTERVAL_NS,
            max_frames: DEFAULT_MAX_FRAMES,
            max_bytes: DEFAULT_MAX_BYTES,
        }
    }
}

impl RecorderConfig {
    /// Read `DIESEL_RECORDER_INTERVAL_MS`, `DIESEL_RECORDER_FRAMES`,
    /// and `DIESEL_RECORDER_MAX_BYTES`, defaulting each knob
    /// independently.
    pub fn from_env() -> Self {
        fn parsed<T: std::str::FromStr>(key: &str) -> Option<T> {
            std::env::var(key).ok().and_then(|v| v.trim().parse::<T>().ok())
        }
        let mut cfg = RecorderConfig::default();
        if let Some(ms) = parsed::<u64>("DIESEL_RECORDER_INTERVAL_MS") {
            cfg.interval_ns = ms.max(1).saturating_mul(1_000_000);
        }
        if let Some(frames) = parsed::<usize>("DIESEL_RECORDER_FRAMES") {
            cfg.max_frames = frames.max(1);
        }
        if let Some(bytes) = parsed::<usize>("DIESEL_RECORDER_MAX_BYTES") {
            cfg.max_bytes = bytes.max(1024);
        }
        cfg
    }
}

/// One recorded tick: what changed since the previous tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Clock reading (`now_ns`) when the tick was sampled.
    pub t_ns: u64,
    /// Non-zero counter deltas, sorted by metric id.
    pub counters: Vec<(String, u64)>,
    /// Changed gauge values (absolute), sorted by metric id.
    pub gauges: Vec<(String, u64)>,
    /// Sparse histogram bucket deltas, sorted by metric id.
    pub hists: Vec<(String, Vec<(u32, u64)>)>,
    /// Estimated payload size used for the memory cap.
    bytes: usize,
}

impl Frame {
    fn estimate_bytes(&self) -> usize {
        let mut n = 24;
        for (id, _) in &self.counters {
            n += id.len() + 16;
        }
        for (id, _) in &self.gauges {
            n += id.len() + 16;
        }
        for (id, buckets) in &self.hists {
            n += id.len() + 16 + buckets.len() * 12;
        }
        n
    }
}

/// Absolute values as of the newest frame — the delta baseline.
struct Baseline {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, Vec<u64>>,
}

struct Ring {
    frames: VecDeque<Frame>,
    base: Baseline,
    bytes: usize,
    evicted: u64,
    ticks: u64,
}

/// The flight recorder. Cheap to share behind an `Arc`; one per
/// registry (a server pool runs one per node and merges at scrape
/// time, exactly like `stats`).
pub struct FlightRecorder {
    registry: Arc<Registry>,
    clock: Arc<dyn Clock>,
    cfg: RecorderConfig,
    frames: Mutex<Ring>,
    stop: AtomicBool,
}

impl FlightRecorder {
    /// A recorder sampling `registry` on its own injected clock.
    pub fn new(registry: Arc<Registry>, cfg: RecorderConfig) -> Self {
        let clock = Arc::clone(registry.clock());
        FlightRecorder {
            registry,
            clock,
            cfg,
            frames: Mutex::named(
                "obs.recorder_frames",
                Ring {
                    frames: VecDeque::new(),
                    base: Baseline {
                        counters: BTreeMap::new(),
                        gauges: BTreeMap::new(),
                        hists: BTreeMap::new(),
                    },
                    bytes: 0,
                    evicted: 0,
                    ticks: 0,
                },
            ),
            stop: AtomicBool::new(false),
        }
    }

    /// The configuration this recorder runs with.
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    /// Sample the registry once: append one delta frame and advance the
    /// baseline. Called by the background driver on live clocks, or
    /// directly by deterministic harnesses (simnet, CI) under
    /// `MockClock`.
    pub fn tick(&self) {
        let t_ns = self.clock.now_ns();
        // Snapshot before touching the ring lock: snapshot() nests
        // gate → inner → events internally and must never sit inside
        // the recorder's own mutex.
        let snap = self.registry.snapshot();
        let mut ring = self.frames.lock();
        let mut frame =
            Frame { t_ns, counters: Vec::new(), gauges: Vec::new(), hists: Vec::new(), bytes: 0 };
        for (id, &v) in &snap.counters {
            let prev = ring.base.counters.get(id).copied().unwrap_or(0);
            let delta = v.saturating_sub(prev);
            if delta > 0 {
                frame.counters.push((id.clone(), delta));
            }
            ring.base.counters.insert(id.clone(), v);
        }
        for (id, &v) in &snap.gauges {
            if ring.base.gauges.get(id).copied() != Some(v) {
                frame.gauges.push((id.clone(), v));
                ring.base.gauges.insert(id.clone(), v);
            }
        }
        for (id, h) in &snap.histograms {
            let counts = h.bucket_counts();
            let deltas: Vec<(u32, u64)> = match ring.base.hists.get(id) {
                Some(prev) => counts
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &c)| {
                        let d = c.saturating_sub(prev.get(i).copied().unwrap_or(0));
                        (d > 0).then_some((i as u32, d))
                    })
                    .collect(),
                None => counts
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &c)| (c > 0).then_some((i as u32, c)))
                    .collect(),
            };
            if !deltas.is_empty() {
                frame.hists.push((id.clone(), deltas));
            }
            // diesel-lint: allow(R6) u64 bucket counts for delta baselines, not payload bytes
            ring.base.hists.insert(id.clone(), counts.to_vec());
        }
        frame.bytes = frame.estimate_bytes();
        ring.bytes += frame.bytes;
        ring.frames.push_back(frame);
        ring.ticks += 1;
        while ring.frames.len() > 1
            && (ring.frames.len() > self.cfg.max_frames || ring.bytes > self.cfg.max_bytes)
        {
            if let Some(old) = ring.frames.pop_front() {
                ring.bytes -= old.bytes;
                ring.evicted += 1;
            }
        }
    }

    /// Frames currently retained.
    pub fn frame_count(&self) -> usize {
        self.frames.lock().frames.len()
    }

    /// Estimated bytes across retained frames.
    pub fn bytes(&self) -> usize {
        self.frames.lock().bytes
    }

    /// Frames evicted by the caps since the recorder was built.
    pub fn frames_evicted(&self) -> u64 {
        self.frames.lock().evicted
    }

    /// Ticks sampled since the recorder was built.
    pub fn ticks(&self) -> u64 {
        self.frames.lock().ticks
    }

    /// Clock reading of the newest frame (`None` before the first tick).
    pub fn latest_t_ns(&self) -> Option<u64> {
        self.frames.lock().frames.back().map(|f| f.t_ns)
    }

    /// Sum of a counter's deltas over the trailing `window_ns` of
    /// recorder time (anchored at the newest frame). `id` is the full
    /// metric id, e.g. `server.file_reads{dataset=imagenet}`.
    pub fn delta(&self, id: &str, window_ns: u64) -> u64 {
        let ring = self.frames.lock();
        let Some(end) = ring.frames.back().map(|f| f.t_ns) else {
            return 0;
        };
        let start = end.saturating_sub(window_ns);
        ring.frames
            .iter()
            .filter(|f| f.t_ns > start)
            .flat_map(|f| f.counters.iter())
            .filter(|(fid, _)| fid == id)
            .map(|(_, d)| d)
            .sum()
    }

    /// Per-second rate of a counter over the trailing window.
    pub fn rate(&self, id: &str, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        self.delta(id, window_ns) as f64 * 1e9 / window_ns as f64
    }

    /// Exact histogram of the observations that landed in the trailing
    /// window (bucket deltas summed across frames).
    pub fn histogram_over(&self, id: &str, window_ns: u64) -> Histogram {
        let ring = self.frames.lock();
        let Some(end) = ring.frames.back().map(|f| f.t_ns) else {
            return Histogram::new();
        };
        let start = end.saturating_sub(window_ns);
        let mut counts = [0u64; NBUCKETS];
        for frame in ring.frames.iter().filter(|f| f.t_ns > start) {
            for (fid, deltas) in &frame.hists {
                if fid == id {
                    for &(bucket, d) in deltas {
                        if let Some(slot) = counts.get_mut(bucket as usize) {
                            *slot += d;
                        }
                    }
                }
            }
        }
        drop(ring);
        Histogram::from_bucket_counts(&counts)
    }

    /// Quantile (in nanoseconds) of a histogram series over the
    /// trailing window; 0 when no observation landed in it.
    pub fn percentile_over(&self, id: &str, q: f64, window_ns: u64) -> u64 {
        self.histogram_over(id, window_ns).quantile_ns(q)
    }

    /// Latest absolute gauge value the recorder has seen (baseline, so
    /// it survives frame eviction). `None` before the gauge existed.
    pub fn gauge_last(&self, id: &str) -> Option<u64> {
        self.frames.lock().base.gauges.get(id).copied()
    }

    /// Canonical text serialization of the retained frames — the byte
    /// string CI asserts is identical across identical `MockClock`
    /// runs. One `frame t_ns=…` header per tick, entries sorted by
    /// metric id within each section.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let ring = self.frames.lock();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diesel-recorder v1 frames={} evicted={}",
            ring.frames.len(),
            ring.evicted
        );
        for frame in &ring.frames {
            let _ = writeln!(out, "frame t_ns={}", frame.t_ns);
            for (id, d) in &frame.counters {
                let _ = writeln!(out, "  c {id} +{d}");
            }
            for (id, v) in &frame.gauges {
                let _ = writeln!(out, "  g {id} ={v}");
            }
            for (id, deltas) in &frame.hists {
                let cells: Vec<String> = deltas.iter().map(|(b, d)| format!("{b}:+{d}")).collect();
                let _ = writeln!(out, "  h {id} {}", cells.join(","));
            }
        }
        out
    }

    /// Ask a running driver to stop after its current sleep.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Spawn the background driver: sleep one interval on the
    /// registry's clock, then [`tick`](Self::tick), until stopped.
    /// Intended for live clocks — deterministic harnesses call `tick`
    /// themselves (under `MockClock`, `sleep_ns` returns instantly and
    /// the loop would spin).
    pub fn spawn(self: &Arc<Self>) -> RecorderDriver {
        self.spawn_with(|| {})
    }

    /// Like [`spawn`](Self::spawn), but run `after_tick` after every
    /// sample — the hook a server uses to evaluate its SLO monitor on
    /// each recorder tick.
    pub fn spawn_with(self: &Arc<Self>, after_tick: impl Fn() + Send + 'static) -> RecorderDriver {
        self.stop.store(false, Ordering::Relaxed);
        let rec = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            while !rec.stop.load(Ordering::Relaxed) {
                rec.clock.sleep_ns(rec.cfg.interval_ns);
                if rec.stop.load(Ordering::Relaxed) {
                    break;
                }
                rec.tick();
                after_tick();
            }
        });
        RecorderDriver { rec: Arc::clone(self), handle: Some(handle) }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.frames.lock();
        f.debug_struct("FlightRecorder")
            .field("frames", &ring.frames.len())
            .field("bytes", &ring.bytes)
            .field("evicted", &ring.evicted)
            .field("interval_ns", &self.cfg.interval_ns)
            .finish()
    }
}

/// Join guard for the background sampling thread; stops and joins the
/// driver on drop (or explicitly via [`stop`](RecorderDriver::stop)).
pub struct RecorderDriver {
    rec: Arc<FlightRecorder>,
    handle: Option<JoinHandle<()>>,
}

impl RecorderDriver {
    /// Stop the driver and wait for its thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.rec.request_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RecorderDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_util::MockClock;

    fn recorder(cfg: RecorderConfig) -> (Arc<MockClock>, Arc<Registry>, FlightRecorder) {
        let clock = Arc::new(MockClock::new());
        let reg = Arc::new(Registry::new(clock.clone() as Arc<dyn Clock>));
        let rec = FlightRecorder::new(Arc::clone(&reg), cfg);
        (clock, reg, rec)
    }

    #[test]
    fn frames_are_delta_encoded_and_windows_query_back() {
        let (clock, reg, rec) = recorder(RecorderConfig::default());
        let reads = reg.counter("server.file_reads", &[("dataset", "a")]);
        let lat = reg.histogram("server.read_latency", &[("dataset", "a")]);
        let depth = reg.gauge("server.queue_depth", &[]);

        reads.add(5);
        lat.record_ns(1_000);
        depth.set(3);
        clock.advance(1_000_000_000);
        rec.tick();

        reads.add(7);
        lat.record_ns(1_000_000);
        clock.advance(1_000_000_000);
        rec.tick();

        // Unchanged gauge is omitted from the second frame.
        let text = rec.encode();
        assert_eq!(text.matches("g server.queue_depth =3").count(), 1, "{text}");
        assert_eq!(rec.frame_count(), 2);

        // Window spanning both frames sums both deltas; a 1 s window
        // anchored at the newest frame sees only the second.
        let id = "server.file_reads{dataset=a}";
        assert_eq!(rec.delta(id, 3_000_000_000), 12);
        assert_eq!(rec.delta(id, 1_000_000_000), 7);
        assert!((rec.rate(id, 1_000_000_000) - 7.0).abs() < 1e-9);

        let hid = "server.read_latency{dataset=a}";
        let h = rec.histogram_over(hid, 3_000_000_000);
        assert_eq!(h.summary().count, 2);
        assert_eq!(rec.percentile_over(hid, 0.99, 1_000_000_000), 1_000_000);
        assert_eq!(rec.gauge_last("server.queue_depth"), Some(3));
    }

    #[test]
    fn caps_evict_oldest_frames() {
        let cfg = RecorderConfig { max_frames: 3, ..RecorderConfig::default() };
        let (clock, reg, rec) = recorder(cfg);
        let c = reg.counter("x.ops", &[]);
        for i in 0..5u64 {
            c.add(i + 1);
            clock.advance(1_000_000_000);
            rec.tick();
        }
        assert_eq!(rec.frame_count(), 3);
        assert_eq!(rec.frames_evicted(), 2);
        assert_eq!(rec.ticks(), 5);
        // Only the last three deltas (3+4+5) remain queryable.
        assert_eq!(rec.delta("x.ops", u64::MAX), 12);

        let tight = RecorderConfig { max_bytes: 1024, ..RecorderConfig::default() };
        let (clock, reg, rec) = recorder(tight);
        for i in 0..64u64 {
            reg.counter("series.with.a.rather.long.metric.name", &[("n", &i.to_string())]).inc();
            clock.advance(1_000_000_000);
            rec.tick();
        }
        assert!(rec.bytes() <= 1024, "bytes={}", rec.bytes());
        assert!(rec.frames_evicted() > 0);
    }

    #[test]
    fn identical_mock_runs_encode_identically() {
        let run = || {
            let (clock, reg, rec) = recorder(RecorderConfig::default());
            for i in 1..=4u64 {
                reg.counter("kv.gets", &[("instance", "0")]).add(i);
                reg.histogram("kv.get_latency", &[]).record_ns(i * 500);
                reg.gauge("cache.bytes_resident", &[]).set(i * 4096);
                clock.advance(250_000_000);
                rec.tick();
            }
            rec.encode()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.starts_with("diesel-recorder v1 frames=4 evicted=0\n"), "{a}");
    }

    #[test]
    fn env_config_parses_each_knob_independently() {
        // Serialize env mutation within this test only.
        std::env::set_var("DIESEL_RECORDER_INTERVAL_MS", "250");
        std::env::set_var("DIESEL_RECORDER_FRAMES", "42");
        std::env::remove_var("DIESEL_RECORDER_MAX_BYTES");
        let cfg = RecorderConfig::from_env();
        assert_eq!(cfg.interval_ns, 250_000_000);
        assert_eq!(cfg.max_frames, 42);
        assert_eq!(cfg.max_bytes, DEFAULT_MAX_BYTES);
        std::env::remove_var("DIESEL_RECORDER_INTERVAL_MS");
        std::env::remove_var("DIESEL_RECORDER_FRAMES");
    }

    #[test]
    fn background_driver_ticks_and_stops() {
        let clock = Arc::new(diesel_util::SystemClock::new());
        let reg = Arc::new(Registry::new(Arc::clone(&clock) as Arc<dyn Clock>));
        let cfg = RecorderConfig { interval_ns: 1_000_000, ..RecorderConfig::default() };
        let rec = Arc::new(FlightRecorder::new(Arc::clone(&reg), cfg));
        let driver = rec.spawn();
        let deadline = clock.now_ns() + 5_000_000_000;
        while rec.ticks() == 0 && clock.now_ns() < deadline {
            std::thread::yield_now();
        }
        driver.stop();
        assert!(rec.ticks() > 0);
    }
}
