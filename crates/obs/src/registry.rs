//! The metric registry: named handles, consistent snapshots, events.
//!
//! # Consistency semantics
//!
//! Handles update raw atomics with `Relaxed` ordering — the hot path
//! takes no lock. Consistency is opt-in and batch-grained:
//!
//! * [`Registry::batch`] runs a closure under the registry's *read*
//!   gate. Any number of batches run concurrently.
//! * [`Registry::snapshot`] takes the *write* gate, so it observes
//!   **all or none** of every `batch` — related counters updated inside
//!   one batch can never tear apart in a snapshot.
//! * Metrics updated outside a batch are only guaranteed to be
//!   monotonic (a snapshot may land between two bare increments).
//!
//! The gate handoff (read-release → write-acquire) establishes the
//! happens-before edge that makes the `Relaxed` stores visible to the
//! snapshot loads.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diesel_util::{Clock, Mutex, RwLock, SystemClock};

use crate::histogram::{Histogram, Summary};

/// Default bound on the structured-event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// A monotonically increasing counter handle. Cheap to clone; all
/// clones share one cell registered in the [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter not registered anywhere (placeholder/testing).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value handle (set/add/sub).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle. Recording takes the histogram's own mutex — a
/// few nanoseconds uncontended, never the registry gate.
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Record one duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.0.lock().record_ns(ns);
    }

    /// Copy out the current histogram.
    pub fn read(&self) -> Histogram {
        self.0.lock().clone()
    }

    /// Point statistics for the samples so far.
    pub fn summary(&self) -> Summary {
        self.0.lock().summary()
    }
}

/// One structured event: a timestamp, a scope, and key/value pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Milliseconds since the Unix epoch, stamped by the registry's
    /// injected [`Clock`] (deterministic under `MockClock`).
    pub ts_ms: u64,
    /// Dotted scope, e.g. `cache.recover`.
    pub scope: String,
    /// Free-form dimensions.
    pub kv: Vec<(String, String)>,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.ts_ms, self.scope)?;
        for (k, v) in &self.kv {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

struct EventRing {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Mutex<Histogram>>>,
}

/// The registry: a namespace of metric cells plus the event ring.
///
/// Metric identity is the full id `name{label=value,…}` with labels
/// sorted by key; requesting the same id twice returns a handle to the
/// same cell.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use diesel_obs::Registry;
///
/// let reg = Registry::new(Arc::new(diesel_util::MockClock::new()));
/// let hits = reg.counter("cache.chunk_hits", &[]);
/// let loads = reg.counter("cache.chunk_loads", &[]);
/// reg.batch(|| {
///     hits.inc();
///     loads.inc();
/// });
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("cache.chunk_hits"), 1);
/// assert_eq!(snap.counter("cache.chunk_loads"), 1);
/// ```
pub struct Registry {
    clock: Arc<dyn Clock>,
    gate: RwLock<()>,
    inner: Mutex<Inner>,
    events: Mutex<EventRing>,
}

impl Registry {
    /// A registry with the default event-ring bound.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Registry::with_event_capacity(clock, DEFAULT_EVENT_CAPACITY)
    }

    /// A registry keeping at most `capacity` events (oldest dropped).
    pub fn with_event_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Self {
        // Every serving component builds a registry, so this is the
        // natural choke point to wire the lockdep→obs bridge.
        crate::lockdep::install();
        Registry {
            clock,
            // snapshot() nests gate → inner → events; the class ranks
            // in crates/lint/src/rules.rs encode the same order.
            gate: RwLock::named("obs.gate", ()),
            inner: Mutex::named(
                "obs.metrics",
                Inner {
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    histograms: BTreeMap::new(),
                },
            ),
            events: Mutex::named(
                "obs.events",
                EventRing { ring: VecDeque::new(), capacity, dropped: 0 },
            ),
        }
    }

    /// The injected time source (for callers that time around calls).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Counter handle for `name` with static label dimensions.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = metric_id(name, labels);
        Counter(self.inner.lock().counters.entry(id).or_default().clone())
    }

    /// Gauge handle for `name` with static label dimensions.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = metric_id(name, labels);
        Gauge(self.inner.lock().gauges.entry(id).or_default().clone())
    }

    /// Histogram handle for `name` with static label dimensions.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        let id = metric_id(name, labels);
        HistogramHandle(self.inner.lock().histograms.entry(id).or_default().clone())
    }

    /// Append one event to the bounded ring, stamped with the
    /// registry clock's epoch reading. Overflow evicts the oldest
    /// event and counts into `obs.events_dropped{ring=event}` (the
    /// tracer's span buffer reports into the `ring=trace` cell of the
    /// same name, so `sum_counter("obs.events_dropped")` is the total
    /// across rings while neither ring's drops can mask the other's).
    pub fn event(&self, scope: &str, kv: &[(&str, &str)]) {
        let ev = Event {
            ts_ms: self.clock.epoch_ms(),
            scope: scope.to_owned(),
            kv: kv.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
        };
        let mut ring = self.events.lock();
        let evicted = if ring.capacity == 0 {
            ring.dropped += 1;
            true
        } else {
            let full = ring.ring.len() >= ring.capacity;
            if full {
                ring.ring.pop_front();
                ring.dropped += 1;
            }
            ring.ring.push_back(ev);
            full
        };
        // The counter is registered lazily on the first drop (so a
        // drop-free registry's metric namespace is unchanged), and only
        // after the ring lock is released — `counter` takes the inner
        // lock, and snapshot() holds inner before events.
        drop(ring);
        if evicted {
            self.counter("obs.events_dropped", &[("ring", "event")]).inc();
        }
    }

    /// Run `f` atomically with respect to [`snapshot`](Self::snapshot):
    /// a snapshot sees all of the closure's metric updates or none.
    /// Batches do not exclude each other — only snapshots.
    pub fn batch<R>(&self, f: impl FnOnce() -> R) -> R {
        let _gate = self.gate.read();
        f()
    }

    /// A consistent point-in-time copy of every metric and the event
    /// ring. Excludes all in-flight [`batch`](Self::batch)es.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let _gate = self.gate.write();
        let inner = self.inner.lock();
        let counters =
            inner.counters.iter().map(|(k, c)| (k.clone(), c.load(Ordering::Acquire))).collect();
        let gauges =
            inner.gauges.iter().map(|(k, g)| (k.clone(), g.load(Ordering::Acquire))).collect();
        let histograms = inner
            .histograms
            .iter()
            // diesel-lint: allow(R5) histogram cells are leaf locks taken only under obs.metrics
            .map(|(k, h)| (k.clone(), h.lock().clone()))
            .collect();
        drop(inner);
        let ring = self.events.lock();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
            events: ring.ring.iter().cloned().collect(),
            dropped_events: ring.dropped,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(Arc::new(SystemClock::new()))
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// Canonical metric id: `name{k=v,…}` with labels sorted by key.
fn metric_id(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let dims: Vec<String> = sorted.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", dims.join(","))
}

/// True when `id` is `name` itself or a labelled variant `name{…}`.
fn name_matches(id: &str, name: &str) -> bool {
    match id.strip_prefix(name) {
        Some(rest) => rest.is_empty() || rest.starts_with('{'),
        None => false,
    }
}

/// The dotted-prefix section a metric renders under (`net.requests` →
/// `net`).
fn section_of(id: &str) -> &str {
    id.split(['.', '{']).next().unwrap_or(id)
}

/// A point-in-time copy of a [`Registry`]. Mergeable, so pool-level
/// aggregation is just `merge` over per-node snapshots.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter values keyed by full metric id.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values keyed by full metric id.
    pub gauges: BTreeMap<String, u64>,
    /// Full histograms keyed by full metric id (kept whole so merges
    /// stay exact).
    pub histograms: BTreeMap<String, Histogram>,
    /// The event ring, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring since the registry was built.
    pub dropped_events: u64,
}

impl RegistrySnapshot {
    /// Counter value for a full metric id; 0 when absent.
    pub fn counter(&self, id: &str) -> u64 {
        self.counters.get(id).copied().unwrap_or(0)
    }

    /// Gauge value for a full metric id; 0 when absent.
    pub fn gauge(&self, id: &str) -> u64 {
        self.gauges.get(id).copied().unwrap_or(0)
    }

    /// Histogram for a full metric id.
    pub fn histogram(&self, id: &str) -> Option<&Histogram> {
        self.histograms.get(id)
    }

    /// Summary for a histogram id (empty summary when absent).
    pub fn histogram_summary(&self, id: &str) -> Summary {
        self.histograms.get(id).map(|h| h.summary()).unwrap_or_default()
    }

    /// Sum of a counter across all its label sets (`name` plus every
    /// `name{…}` variant) — e.g. total KV gets over per-instance cells.
    pub fn sum_counter(&self, name: &str) -> u64 {
        self.counters.iter().filter(|(id, _)| name_matches(id, name)).map(|(_, v)| v).sum()
    }

    /// Fold another snapshot into this one: counters and gauges add,
    /// histograms merge bucket-wise, events interleave by timestamp.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (id, v) in &other.counters {
            *self.counters.entry(id.clone()).or_insert(0) += v;
        }
        for (id, v) in &other.gauges {
            *self.gauges.entry(id.clone()).or_insert(0) += v;
        }
        for (id, h) in &other.histograms {
            self.histograms.entry(id.clone()).or_default().merge(h);
        }
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.ts_ms);
        self.dropped_events += other.dropped_events;
    }

    /// Human-readable rendering grouped by leading dotted segment.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut sections: BTreeMap<&str, Vec<String>> = BTreeMap::new();
        for (id, v) in &self.counters {
            sections.entry(section_of(id)).or_default().push(format!("{id:<44} {v}"));
        }
        for (id, v) in &self.gauges {
            sections.entry(section_of(id)).or_default().push(format!("{id:<44} {v} (gauge)"));
        }
        for (id, h) in &self.histograms {
            sections.entry(section_of(id)).or_default().push(format!("{id:<44} {}", h.summary()));
        }
        let mut out = String::new();
        for (section, mut lines) in sections {
            let _ = writeln!(out, "[{section}]");
            lines.sort();
            for line in lines {
                let _ = writeln!(out, "  {line}");
            }
        }
        if !self.events.is_empty() || self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "[events] {} kept, {} dropped",
                self.events.len(),
                self.dropped_events
            );
            for ev in &self.events {
                let _ = writeln!(out, "  {ev}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_util::MockClock;

    fn registry() -> Registry {
        Registry::new(Arc::new(MockClock::new()))
    }

    #[test]
    fn handles_share_cells_by_id() {
        let reg = registry();
        let a = reg.counter("x.ops", &[]);
        let b = reg.counter("x.ops", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counter("x.ops"), 3);
    }

    #[test]
    fn label_order_does_not_split_cells() {
        let reg = registry();
        let a = reg.counter("net.requests", &[("node", "0"), ("endpoint", "peer")]);
        let b = reg.counter("net.requests", &[("endpoint", "peer"), ("node", "0")]);
        a.inc();
        b.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net.requests{endpoint=peer,node=0}"), 2);
        assert_eq!(snap.counters.len(), 1);
    }

    #[test]
    fn sum_counter_spans_label_sets() {
        let reg = registry();
        reg.counter("kv.gets", &[("instance", "0")]).add(3);
        reg.counter("kv.gets", &[("instance", "1")]).add(4);
        reg.counter("kv.gets_total", &[]).add(100); // must NOT match "kv.gets"
        let snap = reg.snapshot();
        assert_eq!(snap.sum_counter("kv.gets"), 7);
    }

    #[test]
    fn gauges_set_add_sub() {
        let reg = registry();
        let g = reg.gauge("cache.bytes_resident", &[]);
        g.set(100);
        g.add(50);
        g.sub(200); // saturates
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(reg.snapshot().gauge("cache.bytes_resident"), 7);
    }

    #[test]
    fn events_are_clock_stamped_and_bounded() {
        let clock = Arc::new(MockClock::at_epoch_ms(1_000));
        let reg = Registry::with_event_capacity(clock.clone(), 3);
        for i in 0..5u64 {
            clock.advance(1_000_000); // 1 ms
            reg.event("cache.recover", &[("node", &i.to_string())]);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped_events, 2);
        // Oldest two were evicted; timestamps are deterministic.
        let ts: Vec<u64> = snap.events.iter().map(|e| e.ts_ms).collect();
        assert_eq!(ts, vec![1_003, 1_004, 1_005]);
        assert_eq!(
            snap.events.first().map(|e| e.kv.clone()),
            Some(vec![("node".into(), "2".into())])
        );
    }

    #[test]
    fn snapshot_is_atomic_with_respect_to_batches() {
        let reg = registry();
        let a = reg.counter("pair.first", &[]);
        let b = reg.counter("pair.second", &[]);
        reg.batch(|| {
            a.inc();
            b.inc();
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pair.first"), snap.counter("pair.second"));
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let reg1 = registry();
        let reg2 = registry();
        reg1.counter("server.reads", &[]).add(2);
        reg2.counter("server.reads", &[]).add(3);
        reg1.histogram("server.latency", &[]).record_ns(1_000);
        reg2.histogram("server.latency", &[]).record_ns(9_000);
        let mut total = reg1.snapshot();
        total.merge(&reg2.snapshot());
        assert_eq!(total.counter("server.reads"), 5);
        let s = total.histogram_summary("server.latency");
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, 9_000);
    }

    #[test]
    fn render_groups_by_leading_segment() {
        let reg = registry();
        reg.counter("cache.chunk_hits", &[]).inc();
        reg.counter("net.requests", &[("endpoint", "s@0")]).inc();
        reg.histogram("net.latency", &[("endpoint", "s@0")]).record_ns(5_000);
        reg.event("cache.evict", &[("chunk", "c1")]);
        let text = reg.snapshot().render();
        assert!(text.contains("[cache]"), "{text}");
        assert!(text.contains("[net]"), "{text}");
        assert!(text.contains("cache.chunk_hits"), "{text}");
        assert!(text.contains("net.requests{endpoint=s@0}"), "{text}");
        assert!(text.contains("[events] 1 kept, 0 dropped"), "{text}");
    }

    #[test]
    fn zero_capacity_ring_only_counts_drops() {
        let reg = Registry::with_event_capacity(Arc::new(MockClock::new()), 0);
        reg.event("x", &[]);
        let snap = reg.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped_events, 1);
        assert_eq!(snap.counter("obs.events_dropped{ring=event}"), 1);
    }

    #[test]
    fn event_drops_surface_as_a_counter_and_in_render() {
        let reg = Registry::with_event_capacity(Arc::new(MockClock::new()), 2);
        reg.event("a", &[]);
        reg.event("b", &[]);
        // No drops yet: the counter must not even exist.
        assert_eq!(reg.snapshot().sum_counter("obs.events_dropped"), 0);
        for _ in 0..3 {
            reg.event("c", &[]);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.dropped_events, 3);
        // Ring-labelled cell, and the cross-ring total stays compatible.
        assert_eq!(snap.counter("obs.events_dropped{ring=event}"), 3);
        assert_eq!(snap.sum_counter("obs.events_dropped"), 3);
        let text = snap.render();
        assert!(text.contains("[obs]"), "{text}");
        assert!(text.contains("obs.events_dropped"), "{text}");
        assert!(text.contains("[events] 2 kept, 3 dropped"), "{text}");
    }
}
