//! `bytes.copied{site=…}` — the payload plane's copy ledger.
//!
//! The zero-copy refactor's contract (DESIGN.md §11) is that payload
//! bytes are copied only at a handful of *deliberate* sites: ingest
//! (client-side chunk aggregation), corruption injection, the
//! decode-into-tensor boundary, and chunk rewrites (file deletion /
//! compaction). Every such site reports here, so "a cache-hit read
//! performs zero payload memcpy" is an asserted invariant — a test
//! snapshots the ledger, drives a traced cache-hit epoch, and demands a
//! zero delta — instead of prose that silently rots.
//!
//! The ledger is process-global on purpose: copy sites live in crates
//! that must not know which `Registry` a caller wired up (e.g.
//! `ChunkBuilder` has no registry at all), and the invariant being
//! asserted is "no copies *anywhere* in the process during a cache-hit
//! read", which a per-component registry could not see.

use std::sync::{Arc, OnceLock};

use diesel_util::SystemClock;

use crate::registry::{Registry, RegistrySnapshot};

/// Metric name for the ledger's counter cells.
pub const BYTES_COPIED: &str = "bytes.copied";

fn ledger() -> &'static Registry {
    static LEDGER: OnceLock<Registry> = OnceLock::new();
    // Counters don't read the clock; SystemClock is just the required
    // stamp source for the (unused) event ring.
    LEDGER.get_or_init(|| Registry::new(Arc::new(SystemClock::new())))
}

/// Record `n` payload bytes copied at `site` (e.g. `ingest`, `decode`,
/// `corruption`, `delete_rewrite`). Cheap: one map lookup plus an
/// atomic add.
pub fn record_copy(site: &str, n: u64) {
    ledger().counter(BYTES_COPIED, &[("site", site)]).add(n);
}

/// Total payload bytes copied so far across every site.
pub fn copied_total() -> u64 {
    ledger().snapshot().sum_counter(BYTES_COPIED)
}

/// Bytes copied so far at one site (`bytes.copied{site=…}`).
pub fn copied_at(site: &str) -> u64 {
    ledger().snapshot().counter(&format!("{BYTES_COPIED}{{site={site}}}"))
}

/// A consistent snapshot of the whole ledger, for delta assertions:
/// capture, run the workload, capture again, compare per-cell.
pub fn copies_snapshot() -> RegistrySnapshot {
    ledger().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_per_site() {
        // The ledger is global and tests run in one process, so assert
        // on deltas of a site no other test writes to.
        let before = copied_at("obs-test-site");
        record_copy("obs-test-site", 128);
        record_copy("obs-test-site", 2);
        assert_eq!(copied_at("obs-test-site") - before, 130);
        assert!(copied_total() >= copied_at("obs-test-site"));
        let snap = copies_snapshot();
        assert!(snap.sum_counter(BYTES_COPIED) >= 130);
    }
}
