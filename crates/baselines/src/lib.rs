//! # diesel-baselines — the comparison systems of the evaluation
//!
//! The paper compares DIESEL against two deployed systems; both are
//! rebuilt here as calibrated timing models over `diesel-simnet`
//! resources (see DESIGN.md §2 for the substitution argument):
//!
//! * [`LustreSim`] — a Lustre-like distributed file system: a central
//!   metadata server (MDS) with a measured QPS ceiling (§6.3 reports
//!   ~68 k QPS), object-storage servers (OSS) holding file bodies, and
//!   the per-file open/lock/read RPC pattern that makes small random
//!   reads slow (Figs. 9, 10c, 11a, 12, 14). `ls -lR` pays an extra
//!   per-file RPC because sizes live on the OSS, reproducing the 170 s
//!   row of Fig. 10c.
//! * [`MemcachedSim`] — a Memcached + twemproxy cluster: consistent-hash
//!   key placement ([`ring::ConsistentHashRing`]), one network RPC per
//!   operation (libMemcached has no write batching, §6.2), per-server
//!   thread pools, and node-failure injection that redirects misses to
//!   the backing Lustre — the mechanism behind the Fig. 6 collapse.
//! * [`XfsSim`] — a local-XFS-on-NVMe model for the single-node metadata
//!   comparison of Fig. 10c.

pub mod lustre;
pub mod memcached;
pub mod ring;

pub use lustre::{LustreConfig, LustreSim, XfsSim};
pub use memcached::{MemcachedConfig, MemcachedSim, ReadSource};
pub use ring::ConsistentHashRing;
