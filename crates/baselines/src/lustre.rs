//! Lustre-like distributed file system timing model.
//!
//! Calibration anchors from the paper:
//!
//! * §6.3: the Lustre MDS sustains ≈ 68 k metadata QPS.
//! * Fig. 12: 160 threads reading 4 KB files get ≈ 15.4 k files/s;
//!   128 KB files reach ≈ 2.0 GB/s.
//! * Fig. 9: 64 processes writing 4 KB files manage only a few thousand
//!   creates/s (DIESEL is 366× faster at 2 M/s).
//! * Fig. 10c: single-threaded `ls -R` of ImageNet-1K ≈ 30–40 s;
//!   `ls -lR` ≈ 170 s because file sizes live on the OSS, costing an
//!   extra RPC per file.
//!
//! The model: a central MDS [`Resource`] whose per-op service time sets
//! the QPS ceiling, an OSS pool (k-server resource with per-request
//! overhead + streaming bandwidth), and per-operation RPC round trips.

use diesel_simnet::{Resource, SimTime};

/// Tunables for [`LustreSim`].
#[derive(Debug, Clone)]
pub struct LustreConfig {
    /// MDS service time per metadata op (1/68k s ≈ 14.7 µs by default).
    pub mds_service: SimTime,
    /// Extra MDS work for a create (journal + layout allocation): makes
    /// small-file writes far slower than reads, per Fig. 9.
    pub mds_create_service: SimTime,
    /// OSS per-request overhead (RPC + disk dispatch) for data reads.
    pub oss_request_overhead: SimTime,
    /// Aggregate OSS streaming bandwidth (bytes/s).
    pub oss_bytes_per_sec: f64,
    /// OSS service width (number of concurrent requests at full speed).
    pub oss_parallelism: usize,
    /// Client-observed RPC round-trip floor (network + client stack).
    pub rpc_round_trip: SimTime,
    /// Directory entries returned per readdir RPC page.
    pub readdir_page: usize,
    /// Per-entry client+MDS processing cost during readdir (dcache
    /// population, dentry marshalling) — this is what makes a
    /// single-threaded `ls -R` of 1.28 M files take ~30 s (Fig. 10c).
    pub readdir_per_entry: SimTime,
    /// OSS service time for a size-only getattr (no data moved).
    pub oss_getattr_service: SimTime,
}

impl Default for LustreConfig {
    fn default() -> Self {
        LustreConfig {
            mds_service: SimTime::from_nanos(14_700),
            mds_create_service: SimTime::from_micros(175),
            oss_request_overhead: SimTime::from_micros(380),
            oss_bytes_per_sec: 2.6e9,
            oss_parallelism: 8,
            rpc_round_trip: SimTime::from_micros(45),
            readdir_page: 1024,
            readdir_per_entry: SimTime::from_micros(25),
            oss_getattr_service: SimTime::from_micros(30),
        }
    }
}

/// The Lustre baseline.
#[derive(Debug)]
pub struct LustreSim {
    config: LustreConfig,
    mds: Resource,
    oss: Resource,
}

impl LustreSim {
    /// Build with `config`.
    pub fn new(config: LustreConfig) -> Self {
        let oss_parallelism = config.oss_parallelism;
        LustreSim {
            mds: Resource::new("lustre-mds", 1),
            oss: Resource::new("lustre-oss", oss_parallelism),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LustreConfig {
        &self.config
    }

    /// Simulated completion time of one whole-file read issued at `now`:
    /// open/lookup on the MDS, then the data transfer on the OSS pool.
    pub fn read_file_at(&self, now: SimTime, size: u64) -> SimTime {
        let meta = self.mds.acquire(now, self.config.mds_service).end + self.config.rpc_round_trip;
        let service = self.config.oss_request_overhead
            + SimTime::for_bytes(size, self.config.oss_bytes_per_sec);
        self.oss.acquire(meta, service).end + self.config.rpc_round_trip
    }

    /// Simulated completion time of one small-file create+write: MDS
    /// create (with lock/journal cost) then the OSS write.
    pub fn write_file_at(&self, now: SimTime, size: u64) -> SimTime {
        let meta =
            self.mds.acquire(now, self.config.mds_create_service).end + self.config.rpc_round_trip;
        let service = self.config.oss_request_overhead
            + SimTime::for_bytes(size, self.config.oss_bytes_per_sec);
        self.oss.acquire(meta, service).end + self.config.rpc_round_trip
    }

    /// One pure metadata query (e.g. getattr served from the MDS).
    pub fn stat_at(&self, now: SimTime) -> SimTime {
        self.mds.acquire(now, self.config.mds_service).end + self.config.rpc_round_trip
    }

    /// `readdir` of a directory with `entries` children: paged RPCs to
    /// the MDS.
    pub fn readdir_at(&self, now: SimTime, entries: usize) -> SimTime {
        let pages = entries.div_ceil(self.config.readdir_page).max(1);
        let mut t = now;
        for _ in 0..pages {
            t = self.mds.acquire(t, self.config.mds_service).end + self.config.rpc_round_trip;
        }
        // Per-entry processing happens on the client, off the MDS.
        t + SimTime::from_nanos(entries as u64 * self.config.readdir_per_entry.as_nanos())
    }

    /// A stat that must consult the OSS for the file size (`ls -lR`,
    /// Fig. 10c: "getting a file size will involve multiple RPC calls").
    pub fn stat_with_size_at(&self, now: SimTime) -> SimTime {
        let t = self.stat_at(now);
        // Size query hits the OSS front-end; no data moves.
        self.oss.acquire(t, self.config.oss_getattr_service).end + self.config.rpc_round_trip
    }

    /// Reset resource clocks between experiments.
    pub fn reset(&self) {
        self.mds.reset();
        self.oss.reset();
    }
}

/// A local XFS-on-NVMe model for Fig. 10c's single-node comparison.
///
/// Metadata is served from the in-kernel dcache/icache after first touch;
/// costs are per-syscall, not per-RPC.
#[derive(Debug)]
pub struct XfsSim {
    /// Cost of one readdir entry (getdents amortized).
    pub per_entry: SimTime,
    /// Cost of one stat syscall.
    pub per_stat: SimTime,
}

impl Default for XfsSim {
    fn default() -> Self {
        XfsSim { per_entry: SimTime::from_nanos(2_500), per_stat: SimTime::from_nanos(3_500) }
    }
}

impl XfsSim {
    /// Elapsed time for `ls -R` (names only) over `files` files in
    /// `dirs` directories.
    pub fn ls_recursive(&self, files: u64, dirs: u64) -> SimTime {
        SimTime::from_nanos((files + dirs) * self.per_entry.as_nanos())
    }

    /// Elapsed time for `ls -lR` (names + stat).
    pub fn ls_recursive_with_sizes(&self, files: u64, dirs: u64) -> SimTime {
        self.ls_recursive(files, dirs) + SimTime::from_nanos(files * self.per_stat.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_simnet::{run_actors, SimActor};

    fn drive_reads(l: &LustreSim, clients: usize, reads_each: usize, size: u64) -> f64 {
        let mut actors: Vec<Box<dyn FnMut(SimTime) -> Option<SimTime>>> = (0..clients)
            .map(|_| {
                let mut left = reads_each;
                Box::new(move |now: SimTime| {
                    if left == 0 {
                        return None;
                    }
                    left -= 1;
                    Some(l.read_file_at(now, size))
                }) as Box<dyn FnMut(SimTime) -> Option<SimTime>>
            })
            .collect();
        let mut refs: Vec<&mut dyn SimActor> =
            actors.iter_mut().map(|b| b as &mut dyn SimActor).collect();
        let report = run_actors(&mut refs);
        (clients * reads_each) as f64 / report.makespan().as_secs_f64()
    }

    #[test]
    fn small_random_reads_match_fig12_scale() {
        // Fig. 12: 160 threads, 4 KB files → ≈ 15.4 k files/s.
        let l = LustreSim::new(LustreConfig::default());
        let fps = drive_reads(&l, 160, 100, 4 << 10);
        assert!(
            (10_000.0..30_000.0).contains(&fps),
            "4 KB read throughput {fps:.0} files/s out of the paper's ballpark"
        );
    }

    #[test]
    fn large_reads_reach_gbps_bandwidth() {
        // Fig. 12: 128 KB files → ≈ 2 GB/s.
        let l = LustreSim::new(LustreConfig::default());
        let fps = drive_reads(&l, 160, 50, 128 << 10);
        let gbps = fps * (128 << 10) as f64 / 1e9;
        assert!((1.0..3.5).contains(&gbps), "128 KB bandwidth {gbps:.2} GB/s");
    }

    #[test]
    fn mds_qps_ceiling_holds() {
        // Pure stats from many clients cannot exceed the MDS ceiling.
        let l = LustreSim::new(LustreConfig::default());
        let mut actors: Vec<Box<dyn FnMut(SimTime) -> Option<SimTime>>> = (0..64)
            .map(|_| {
                let mut left = 2000;
                let l = &l;
                Box::new(move |now: SimTime| {
                    if left == 0 {
                        return None;
                    }
                    left -= 1;
                    Some(l.stat_at(now))
                }) as Box<dyn FnMut(SimTime) -> Option<SimTime>>
            })
            .collect();
        let mut refs: Vec<&mut dyn SimActor> =
            actors.iter_mut().map(|b| b as &mut dyn SimActor).collect();
        let report = run_actors(&mut refs);
        let qps = (64.0 * 2000.0) / report.makespan().as_secs_f64();
        assert!(qps < 70_000.0, "MDS ceiling violated: {qps:.0} QPS");
        assert!(qps > 55_000.0, "MDS badly underutilized: {qps:.0} QPS");
    }

    #[test]
    fn writes_are_much_slower_than_reads() {
        let l = LustreSim::new(LustreConfig::default());
        let read_fps = drive_reads(&l, 64, 200, 4 << 10);
        l.reset();
        let mut actors: Vec<Box<dyn FnMut(SimTime) -> Option<SimTime>>> = (0..64)
            .map(|_| {
                let mut left = 200;
                let l = &l;
                Box::new(move |now: SimTime| {
                    if left == 0 {
                        return None;
                    }
                    left -= 1;
                    Some(l.write_file_at(now, 4 << 10))
                }) as Box<dyn FnMut(SimTime) -> Option<SimTime>>
            })
            .collect();
        let mut refs: Vec<&mut dyn SimActor> =
            actors.iter_mut().map(|b| b as &mut dyn SimActor).collect();
        let report = run_actors(&mut refs);
        let write_fps = (64.0 * 200.0) / report.makespan().as_secs_f64();
        assert!(
            write_fps * 2.0 < read_fps,
            "writes ({write_fps:.0}/s) should be far slower than reads ({read_fps:.0}/s)"
        );
        assert!((3_000.0..9_000.0).contains(&write_fps), "create rate {write_fps:.0}/s");
    }

    #[test]
    fn ls_lr_pays_per_file_oss_rpc() {
        // Fig. 10c: ls -R ≈ 30-40 s; ls -lR ≈ 170 s on 1.28 M files.
        let l = LustreSim::new(LustreConfig::default());
        let files = 1_281_167u64;
        let dirs = 1000u64;
        // ls -R: paged readdirs, single-threaded.
        let mut t = SimTime::ZERO;
        for _ in 0..dirs {
            t = l.readdir_at(t, (files / dirs) as usize);
        }
        let ls_r = t;
        assert!((15.0..60.0).contains(&ls_r.as_secs_f64()), "ls -R took {ls_r}");
        // Per-file stat latency, measured on an idle system (the client
        // is single-threaded, so each stat sees an unloaded server).
        let fresh = LustreSim::new(LustreConfig::default());
        let per_stat = fresh.stat_with_size_at(SimTime::ZERO).as_nanos();
        let ls_lr = ls_r + SimTime::from_nanos(per_stat * files);
        assert!(ls_lr.as_secs_f64() > 3.0 * ls_r.as_secs_f64(), "ls -lR {ls_lr} vs ls -R {ls_r}");
        assert!((100.0..260.0).contains(&ls_lr.as_secs_f64()), "ls -lR took {ls_lr}");
    }

    #[test]
    fn xfs_is_fast_but_not_instant() {
        let x = XfsSim::default();
        let ls = x.ls_recursive(1_281_167, 1001);
        let lslr = x.ls_recursive_with_sizes(1_281_167, 1001);
        assert!(ls.as_secs_f64() > 1.0 && ls.as_secs_f64() < 15.0, "{ls}");
        assert!(lslr > ls);
    }
}
