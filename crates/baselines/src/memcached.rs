//! Memcached + twemproxy cluster timing model.
//!
//! Structure follows the paper's deployment (§6.1): per-node Memcached
//! servers with a thread pool, twemproxy providing consistent hashing and
//! a unified namespace, and libMemcached clients. The behaviours the
//! evaluation depends on:
//!
//! * **Per-op RPC cost on reads** — every `get` is one round trip through
//!   the proxy; with hundreds of clients this caps aggregate QPS well
//!   below DIESEL's local/one-hop path (Fig. 11a: ≈ 0.56 M QPS).
//! * **Pipelined writes** — twemproxy merges requests from multiple
//!   clients, so bulk loads amortize the round trip (Fig. 9's write
//!   rates), but each value still crosses the wire individually —
//!   file-granular cache fill is what makes Fig. 11b recovery slow.
//! * **Node failure ⇒ misses** — a dead server's key range misses and
//!   the read falls back to the backing store (Fig. 6).

use diesel_util::RwLock;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use diesel_simnet::{Resource, SimTime};

use crate::ring::ConsistentHashRing;

/// Where a read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// Served from a live Memcached server holding the key.
    Hit,
    /// Key absent or its server dead — the caller must fetch from the
    /// backing store (and usually re-`set` the key).
    Miss,
}

/// Tunables for [`MemcachedSim`].
#[derive(Debug, Clone)]
pub struct MemcachedConfig {
    /// Number of server instances (the paper uses one per node).
    pub servers: usize,
    /// Worker threads per server (paper: 16).
    pub threads_per_server: usize,
    /// Server-side CPU time per op (hash lookup + kernel send).
    pub service_per_op: SimTime,
    /// Client-observed round trip through twemproxy for one op.
    pub rpc_round_trip: SimTime,
    /// Write pipelining factor: twemproxy merges roughly this many
    /// client requests per upstream round trip.
    pub write_pipeline_depth: u32,
    /// Per-server value-transfer bandwidth (bytes/s) shared by its
    /// threads.
    pub value_bytes_per_sec: f64,
    /// Virtual nodes per server on the hash ring.
    pub vnodes: usize,
}

impl Default for MemcachedConfig {
    fn default() -> Self {
        MemcachedConfig {
            servers: 10,
            threads_per_server: 16,
            service_per_op: SimTime::from_micros(15),
            rpc_round_trip: SimTime::from_micros(260),
            write_pipeline_depth: 8,
            value_bytes_per_sec: 1.6e9,
            vnodes: 160,
        }
    }
}

struct ServerState {
    alive: AtomicBool,
    keys: RwLock<HashSet<String>>,
    cpu: Resource,
}

/// The Memcached-cluster baseline.
pub struct MemcachedSim {
    config: MemcachedConfig,
    ring: ConsistentHashRing,
    servers: Vec<ServerState>,
}

impl MemcachedSim {
    /// Build a cluster.
    pub fn new(config: MemcachedConfig) -> Self {
        let ring = ConsistentHashRing::new(config.servers, config.vnodes);
        let servers = (0..config.servers)
            .map(|_| ServerState {
                alive: AtomicBool::new(true),
                keys: RwLock::named("baselines.memcached_keys", HashSet::new()),
                cpu: Resource::new("memcached-cpu", config.threads_per_server),
            })
            .collect();
        MemcachedSim { config, ring, servers }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemcachedConfig {
        &self.config
    }

    /// The server index a key routes to.
    pub fn server_of(&self, key: &str) -> usize {
        self.ring.lookup(key)
    }

    fn transfer_time(&self, bytes: u64) -> SimTime {
        SimTime::for_bytes(bytes, self.config.value_bytes_per_sec)
    }

    /// `set` one key of `bytes` (pipelined path). Returns completion
    /// time; the key becomes resident if its server is alive.
    pub fn write_at(&self, now: SimTime, key: &str, bytes: u64) -> SimTime {
        let s = &self.servers[self.server_of(key)];
        let amortized_rtt = SimTime::from_nanos(
            self.config.rpc_round_trip.as_nanos() / self.config.write_pipeline_depth as u64,
        );
        if !s.alive.load(Ordering::Acquire) {
            // Proxy timeout/ejection path: charge the round trip only.
            return now + self.config.rpc_round_trip;
        }
        let service = self.config.service_per_op + self.transfer_time(bytes);
        let done = s.cpu.acquire(now + amortized_rtt, service).end;
        s.keys.write().insert(key.to_owned());
        done
    }

    /// `get` one key of `bytes`. On [`ReadSource::Miss`] the returned
    /// time covers only the failed lookup; the caller adds its fallback.
    pub fn read_at(&self, now: SimTime, key: &str, bytes: u64) -> (SimTime, ReadSource) {
        let s = &self.servers[self.server_of(key)];
        if !s.alive.load(Ordering::Acquire) {
            // Connection refused / proxy ejection: quick failure.
            return (now + self.config.rpc_round_trip, ReadSource::Miss);
        }
        if !s.keys.read().contains(key) {
            let service = self.config.service_per_op;
            let done = s.cpu.acquire(now + self.config.rpc_round_trip, service).end;
            return (done, ReadSource::Miss);
        }
        let service = self.config.service_per_op + self.transfer_time(bytes);
        let done = s.cpu.acquire(now + self.config.rpc_round_trip, service).end;
        (done, ReadSource::Hit)
    }

    /// Kill a server: its keys are lost immediately.
    pub fn kill_server(&self, idx: usize) {
        self.servers[idx].alive.store(false, Ordering::Release);
        self.servers[idx].keys.write().clear();
    }

    /// Revive a server (empty, as after a restart).
    pub fn revive_server(&self, idx: usize) {
        self.servers[idx].alive.store(true, Ordering::Release);
    }

    /// Is the server alive?
    pub fn is_alive(&self, idx: usize) -> bool {
        self.servers[idx].alive.load(Ordering::Acquire)
    }

    /// Total resident keys.
    pub fn cached_keys(&self) -> usize {
        self.servers.iter().map(|s| s.keys.read().len()).sum()
    }

    /// Fraction of `universe` keys that would hit right now.
    pub fn hit_fraction(&self, universe: &[String]) -> f64 {
        if universe.is_empty() {
            return 1.0;
        }
        let hits = universe
            .iter()
            .filter(|k| {
                let s = &self.servers[self.server_of(k)];
                s.alive.load(Ordering::Acquire) && s.keys.read().contains(*k)
            })
            .count();
        hits as f64 / universe.len() as f64
    }

    /// Reset all resource clocks (between experiment phases).
    pub fn reset_clocks(&self) {
        for s in &self.servers {
            s.cpu.reset();
        }
    }
}

impl std::fmt::Debug for MemcachedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemcachedSim")
            .field("servers", &self.servers.len())
            .field("cached_keys", &self.cached_keys())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_simnet::{run_actors, SimActor};

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("file/{i:06}")).collect()
    }

    fn load_all(mc: &MemcachedSim, ks: &[String], size: u64) -> SimTime {
        let mut t = SimTime::ZERO;
        for k in ks {
            t = mc.write_at(t, k, size).max_of(t);
        }
        t
    }

    #[test]
    fn write_then_read_hits() {
        let mc = MemcachedSim::new(MemcachedConfig::default());
        mc.write_at(SimTime::ZERO, "k1", 4096);
        let (_, src) = mc.read_at(SimTime::ZERO, "k1", 4096);
        assert_eq!(src, ReadSource::Hit);
        let (_, src) = mc.read_at(SimTime::ZERO, "absent", 4096);
        assert_eq!(src, ReadSource::Miss);
    }

    #[test]
    fn dead_server_causes_misses_for_its_share_only() {
        let mc = MemcachedSim::new(MemcachedConfig::default());
        let ks = keys(5000);
        load_all(&mc, &ks, 4096);
        assert!((mc.hit_fraction(&ks) - 1.0).abs() < 1e-9);
        mc.kill_server(3);
        let frac = mc.hit_fraction(&ks);
        assert!(
            (0.80..0.95).contains(&frac),
            "one of ten servers dead should cost ≈10% hits, got {frac:.3}"
        );
        for k in &ks {
            let (_, src) = mc.read_at(SimTime::ZERO, k, 4096);
            let expect = if mc.server_of(k) == 3 { ReadSource::Miss } else { ReadSource::Hit };
            assert_eq!(src, expect);
        }
        mc.revive_server(3);
        assert!(mc.is_alive(3));
        // Revived empty: its keys still miss until re-written.
        assert!((mc.hit_fraction(&ks) - frac).abs() < 1e-9);
    }

    #[test]
    fn read_qps_matches_fig11a_ballpark() {
        // 160 clients reading cached 4 KB values → ≈ 0.5-0.7 M QPS.
        let mc = MemcachedSim::new(MemcachedConfig::default());
        let ks = keys(20_000);
        load_all(&mc, &ks, 4096);
        mc.reset_clocks();
        let n_reads = 200;
        let mut actors: Vec<Box<dyn FnMut(SimTime) -> Option<SimTime>>> = (0..160)
            .map(|c| {
                let mut i = 0usize;
                let mc = &mc;
                let ks = &ks;
                Box::new(move |now: SimTime| {
                    if i == n_reads {
                        return None;
                    }
                    let k = &ks[(c * 7919 + i * 104729) % ks.len()];
                    i += 1;
                    Some(mc.read_at(now, k, 4096).0)
                }) as Box<dyn FnMut(SimTime) -> Option<SimTime>>
            })
            .collect();
        let mut refs: Vec<&mut dyn SimActor> =
            actors.iter_mut().map(|b| b as &mut dyn SimActor).collect();
        let report = run_actors(&mut refs);
        let qps = (160 * n_reads) as f64 / report.makespan().as_secs_f64();
        assert!(
            (400_000.0..750_000.0).contains(&qps),
            "memcached read QPS {qps:.0} out of Fig. 11a's ballpark"
        );
    }

    #[test]
    fn pipelined_writes_are_faster_than_reads() {
        // Fig. 9 vs Fig. 11a: bulk writes outpace random reads thanks to
        // proxy pipelining.
        let mc = MemcachedSim::new(MemcachedConfig::default());
        let per_write = {
            let t = mc.write_at(SimTime::ZERO, "w", 4096);
            t.as_nanos()
        };
        let per_read = {
            let (t, _) = mc.read_at(SimTime::ZERO, "w", 4096);
            t.as_nanos()
        };
        assert!(per_write < per_read, "write {per_write}ns vs read {per_read}ns");
    }

    #[test]
    fn large_values_pay_transfer_time() {
        let mc = MemcachedSim::new(MemcachedConfig::default());
        mc.write_at(SimTime::ZERO, "small", 4 << 10);
        mc.write_at(SimTime::ZERO, "big", 1 << 20);
        mc.reset_clocks();
        let (t_small, _) = mc.read_at(SimTime::ZERO, "small", 4 << 10);
        let (t_big, _) = mc.read_at(SimTime::ZERO, "big", 1 << 20);
        assert!(t_big.as_nanos() > t_small.as_nanos() + 500_000, "1 MiB ≈ +625 µs transfer");
    }

    #[test]
    fn writes_to_dead_server_are_dropped() {
        let mc = MemcachedSim::new(MemcachedConfig::default());
        let ks = keys(2000);
        mc.kill_server(0);
        load_all(&mc, &ks, 128);
        let frac = mc.hit_fraction(&ks);
        assert!(frac < 1.0, "dead server's keys cannot be resident");
        assert!(mc.cached_keys() < ks.len());
    }
}
