//! Consistent hashing with virtual nodes — the key-placement scheme of
//! the Memcached/twemproxy cluster (Karger et al., referenced by the
//! paper as reference 6).

use diesel_kv::hash::fnv1a_64;

/// splitmix64 finalizer: FNV-1a alone clusters on short structured
/// strings (poor high-bit avalanche), which skews ring placement; this
/// mixer restores uniformity.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn point_hash(s: &str) -> u64 {
    mix64(fnv1a_64(s.as_bytes()))
}

/// A consistent-hash ring mapping keys to server indices.
#[derive(Debug, Clone)]
pub struct ConsistentHashRing {
    /// Sorted (point, server) pairs.
    points: Vec<(u64, usize)>,
    servers: usize,
}

impl ConsistentHashRing {
    /// A ring over `servers` servers with `vnodes` virtual nodes each
    /// (twemproxy defaults to a few hundred; 160 is the ketama classic).
    pub fn new(servers: usize, vnodes: usize) -> Self {
        assert!(servers >= 1 && vnodes >= 1);
        let mut points = Vec::with_capacity(servers * vnodes);
        for s in 0..servers {
            for v in 0..vnodes {
                let h = point_hash(&format!("server-{s}#vnode-{v}"));
                points.push((h, s));
            }
        }
        points.sort_unstable();
        ConsistentHashRing { points, servers }
    }

    /// Number of servers in the ring.
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// The server owning `key`: the first ring point at or after the
    /// key's hash, wrapping around.
    pub fn lookup(&self, key: &str) -> usize {
        let h = point_hash(key);
        match self.points.binary_search_by(|&(p, _)| p.cmp(&h)) {
            Ok(i) => self.points[i].1,
            Err(i) if i == self.points.len() => self.points[0].1,
            Err(i) => self.points[i].1,
        }
    }

    /// Fraction of sampled keys owned by each server (diagnostics).
    pub fn load_distribution(&self, sample_keys: usize) -> Vec<f64> {
        let mut counts = vec![0usize; self.servers];
        for i in 0..sample_keys {
            counts[self.lookup(&format!("sample/{i}"))] += 1;
        }
        counts.into_iter().map(|c| c as f64 / sample_keys as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_stable() {
        let ring = ConsistentHashRing::new(10, 160);
        for i in 0..100 {
            let k = format!("file/{i}");
            assert_eq!(ring.lookup(&k), ring.lookup(&k));
            assert!(ring.lookup(&k) < 10);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let ring = ConsistentHashRing::new(8, 160);
        let dist = ring.load_distribution(40_000);
        for (s, share) in dist.iter().enumerate() {
            assert!((0.06..0.20).contains(share), "server {s} holds {:.1}% of keys", share * 100.0);
        }
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn removing_a_server_moves_only_its_keys() {
        // Consistent hashing's defining property: with server s removed
        // (rebuilt ring of n−1), keys previously owned by others keep
        // their owner index modulo renumbering. We test via ownership
        // *sets*: keys that did not map to the removed server must not
        // shuffle among the survivors.
        let before = ConsistentHashRing::new(5, 200);
        // Build an "after" ring reusing the same vnode labels for servers
        // 0..4 minus server 4 (so labels are unchanged for survivors).
        let after = {
            let mut points: Vec<(u64, usize)> = Vec::new();
            for s in 0..4 {
                for v in 0..200 {
                    points.push((point_hash(&format!("server-{s}#vnode-{v}")), s));
                }
            }
            points.sort_unstable();
            ConsistentHashRing { points, servers: 4 }
        };
        let mut moved = 0;
        let mut total = 0;
        for i in 0..20_000 {
            let k = format!("k/{i}");
            let b = before.lookup(&k);
            if b == 4 {
                continue; // its keys must move, by definition
            }
            total += 1;
            if after.lookup(&k) != b {
                moved += 1;
            }
        }
        assert_eq!(moved, 0, "{moved}/{total} surviving keys moved");
    }

    #[test]
    fn more_vnodes_smooth_the_distribution() {
        let rough = ConsistentHashRing::new(8, 4);
        let smooth = ConsistentHashRing::new(8, 512);
        let spread = |r: &ConsistentHashRing| {
            let d = r.load_distribution(20_000);
            let max = d.iter().cloned().fold(0.0, f64::max);
            let min = d.iter().cloned().fold(1.0, f64::min);
            max - min
        };
        assert!(spread(&smooth) < spread(&rough));
    }
}
