//! Shuffle-order generation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use diesel_chunk::ChunkId;

/// The files of one chunk, in chunk order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFiles {
    /// The chunk's ID.
    pub chunk: ChunkId,
    /// Total chunk size in bytes (for working-set accounting).
    pub chunk_bytes: u64,
    /// File paths stored in this chunk (live files only).
    pub files: Vec<String>,
}

/// The dataset layout the shuffler works over: one entry per chunk.
///
/// Built once per task from a metadata snapshot; epochs reuse it.
#[derive(Debug, Clone, Default)]
pub struct DatasetIndex {
    /// Chunk entries, in write order.
    pub chunks: Vec<ChunkFiles>,
}

impl DatasetIndex {
    /// Build from chunk entries.
    pub fn new(chunks: Vec<ChunkFiles>) -> Self {
        DatasetIndex { chunks }
    }

    /// Total number of files.
    pub fn file_count(&self) -> usize {
        self.chunks.iter().map(|c| c.files.len()).sum()
    }

    /// Resolve an item to its `(chunk id, path)`.
    pub fn resolve(&self, item: ShuffleItem) -> (&ChunkId, &str) {
        let c = &self.chunks[item.chunk_index as usize];
        (&c.chunk, c.files[item.file_index as usize].as_str())
    }
}

/// One position in a shuffled order: `(chunk, file-within-chunk)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShuffleItem {
    /// Index into [`DatasetIndex::chunks`].
    pub chunk_index: u32,
    /// Index into that chunk's `files`.
    pub file_index: u32,
}

/// Which shuffle strategy to use for an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleKind {
    /// The conventional baseline: one uniform shuffle over all files
    /// ("shuffle dataset" in Fig. 13).
    DatasetShuffle,
    /// DIESEL's chunk-wise shuffle with groups of `group_size` chunks.
    ChunkWise {
        /// Number of chunks per group (paper uses 100/500 for
        /// ImageNet-1K and 15/30 for CIFAR-10).
        group_size: usize,
    },
}

/// A generated epoch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShufflePlan {
    /// The file order for this epoch.
    pub items: Vec<ShuffleItem>,
    /// Start index of each group within `items` (always begins with 0
    /// when non-empty; a dataset shuffle is a single group spanning
    /// everything).
    pub group_starts: Vec<usize>,
}

impl ShufflePlan {
    /// Number of files in the epoch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate groups as item slices.
    pub fn groups(&self) -> impl Iterator<Item = &[ShuffleItem]> {
        let n = self.items.len();
        self.group_starts.iter().enumerate().map(move |(g, &start)| {
            let end = self.group_starts.get(g + 1).copied().unwrap_or(n);
            &self.items[start..end]
        })
    }

    /// Distinct chunks touched by each group (the cache working set while
    /// that group is being consumed).
    pub fn group_chunk_sets(&self) -> Vec<Vec<u32>> {
        self.groups()
            .map(|g| {
                let mut chunks: Vec<u32> = g.iter().map(|i| i.chunk_index).collect();
                chunks.sort_unstable();
                chunks.dedup();
                chunks
            })
            .collect()
    }

    /// Peak working-set size in bytes: the largest per-group sum of
    /// distinct chunk sizes. This is the "memory footprint" the paper
    /// reports (~2 GB for ImageNet-1K vs the 150 GB dataset).
    pub fn peak_working_set_bytes(&self, index: &DatasetIndex) -> u64 {
        self.group_chunk_sets()
            .iter()
            .map(|chunks| chunks.iter().map(|&c| index.chunks[c as usize].chunk_bytes).sum())
            .max()
            .unwrap_or(0)
    }
}

/// Generate the file order for `(seed, epoch)` under `kind`.
///
/// Deterministic: the same inputs give the same order, and different
/// epochs give independent orders — matching a training framework that
/// re-seeds its sampler per epoch.
///
/// # Examples
///
/// ```
/// use diesel_chunk::{ChunkId, MachineId};
/// use diesel_shuffle::{epoch_order, ChunkFiles, DatasetIndex, ShuffleKind};
///
/// let index = DatasetIndex::new(
///     (0..8u32)
///         .map(|c| ChunkFiles {
///             chunk: ChunkId::new(c, MachineId::from_seed(1), 1, c),
///             chunk_bytes: 4 << 20,
///             files: (0..10).map(|f| format!("c{c}/f{f}")).collect(),
///         })
///         .collect(),
/// );
/// let plan = epoch_order(&index, ShuffleKind::ChunkWise { group_size: 2 }, 7, 0);
/// assert_eq!(plan.len(), 80);                 // a permutation of all files
/// assert_eq!(plan.group_starts.len(), 4);     // 8 chunks / groups of 2
/// // Reading a group touches at most `group_size` chunks at a time.
/// assert!(plan.group_chunk_sets().iter().all(|s| s.len() <= 2));
/// ```
pub fn epoch_order(index: &DatasetIndex, kind: ShuffleKind, seed: u64, epoch: u64) -> ShufflePlan {
    let mut rng = StdRng::seed_from_u64(seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    match kind {
        ShuffleKind::DatasetShuffle => {
            let mut items: Vec<ShuffleItem> = all_items(index);
            items.shuffle(&mut rng);
            let group_starts = if items.is_empty() { vec![] } else { vec![0] };
            ShufflePlan { items, group_starts }
        }
        ShuffleKind::ChunkWise { group_size } => {
            assert!(group_size >= 1, "group size must be at least 1");
            // Step 1: shuffle chunk IDs.
            let mut chunk_order: Vec<u32> = (0..index.chunks.len() as u32).collect();
            chunk_order.shuffle(&mut rng);
            // Step 2: split into groups; step 3: shuffle files per group.
            let mut items = Vec::with_capacity(index.file_count());
            let mut group_starts = Vec::new();
            for group in chunk_order.chunks(group_size) {
                group_starts.push(items.len());
                let start = items.len();
                for &ci in group {
                    let files = index.chunks[ci as usize].files.len() as u32;
                    items.extend(
                        (0..files).map(|fi| ShuffleItem { chunk_index: ci, file_index: fi }),
                    );
                }
                items[start..].shuffle(&mut rng);
            }
            // Drop trailing empty groups (possible when chunks held no files).
            while let Some(&last) = group_starts.last() {
                if last >= items.len() && group_starts.len() > 1 {
                    group_starts.pop();
                } else {
                    break;
                }
            }
            if items.is_empty() {
                group_starts.clear();
            }
            ShufflePlan { items, group_starts }
        }
    }
}

fn all_items(index: &DatasetIndex) -> Vec<ShuffleItem> {
    let mut items = Vec::with_capacity(index.file_count());
    for (ci, c) in index.chunks.iter().enumerate() {
        items.extend(
            (0..c.files.len() as u32)
                .map(|fi| ShuffleItem { chunk_index: ci as u32, file_index: fi }),
        );
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::MachineId;
    use std::collections::HashSet;

    fn index(chunks: usize, files_per_chunk: usize) -> DatasetIndex {
        DatasetIndex::new(
            (0..chunks)
                .map(|c| ChunkFiles {
                    chunk: ChunkId::new(c as u32, MachineId::from_seed(1), 1, c as u32),
                    chunk_bytes: 4 << 20,
                    files: (0..files_per_chunk).map(|f| format!("c{c}/f{f}")).collect(),
                })
                .collect(),
        )
    }

    fn is_permutation(plan: &ShufflePlan, index: &DatasetIndex) -> bool {
        let set: HashSet<ShuffleItem> = plan.items.iter().copied().collect();
        set.len() == plan.items.len() && plan.items.len() == index.file_count()
    }

    #[test]
    fn dataset_shuffle_is_a_permutation() {
        let idx = index(10, 50);
        let plan = epoch_order(&idx, ShuffleKind::DatasetShuffle, 1, 0);
        assert!(is_permutation(&plan, &idx));
        assert_eq!(plan.group_starts, vec![0]);
    }

    #[test]
    fn chunk_wise_is_a_permutation_with_groups() {
        let idx = index(10, 50);
        let plan = epoch_order(&idx, ShuffleKind::ChunkWise { group_size: 3 }, 1, 0);
        assert!(is_permutation(&plan, &idx));
        assert_eq!(plan.group_starts.len(), 4, "10 chunks / groups of 3 = 4 groups");
        let sizes: Vec<usize> = plan.groups().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![150, 150, 150, 50]);
    }

    #[test]
    fn group_working_set_is_bounded_by_group_size() {
        let idx = index(20, 10);
        let g = 4;
        let plan = epoch_order(&idx, ShuffleKind::ChunkWise { group_size: g }, 7, 3);
        for set in plan.group_chunk_sets() {
            assert!(set.len() <= g, "group touches {} chunks > {g}", set.len());
        }
        assert_eq!(plan.peak_working_set_bytes(&idx), (g as u64) * (4 << 20));
    }

    #[test]
    fn working_set_is_tiny_compared_to_dataset() {
        // The paper's headline: 2 GB footprint for a 150 GB dataset.
        let idx = index(1000, 30); // 1000 × 4 MB ≈ 4 GB dataset
        let plan = epoch_order(&idx, ShuffleKind::ChunkWise { group_size: 10 }, 5, 0);
        let total: u64 = idx.chunks.iter().map(|c| c.chunk_bytes).sum();
        let ws = plan.peak_working_set_bytes(&idx);
        assert!(ws * 50 <= total, "working set {ws} vs dataset {total}");
    }

    #[test]
    fn deterministic_per_seed_and_epoch() {
        let idx = index(8, 20);
        let k = ShuffleKind::ChunkWise { group_size: 2 };
        assert_eq!(epoch_order(&idx, k, 42, 1), epoch_order(&idx, k, 42, 1));
        assert_ne!(epoch_order(&idx, k, 42, 1).items, epoch_order(&idx, k, 42, 2).items);
        assert_ne!(epoch_order(&idx, k, 42, 1).items, epoch_order(&idx, k, 43, 1).items);
    }

    #[test]
    fn group_size_larger_than_chunks_degenerates_to_one_group() {
        let idx = index(5, 10);
        let plan = epoch_order(&idx, ShuffleKind::ChunkWise { group_size: 100 }, 1, 0);
        assert!(is_permutation(&plan, &idx));
        assert_eq!(plan.group_starts, vec![0]);
    }

    #[test]
    fn group_size_one_keeps_chunks_contiguous() {
        let idx = index(6, 25);
        let plan = epoch_order(&idx, ShuffleKind::ChunkWise { group_size: 1 }, 9, 0);
        assert!(is_permutation(&plan, &idx));
        // Every group must touch exactly one chunk.
        for set in plan.group_chunk_sets() {
            assert_eq!(set.len(), 1);
        }
    }

    #[test]
    fn empty_dataset() {
        let idx = DatasetIndex::default();
        for kind in [ShuffleKind::DatasetShuffle, ShuffleKind::ChunkWise { group_size: 4 }] {
            let plan = epoch_order(&idx, kind, 1, 0);
            assert!(plan.is_empty());
            assert!(plan.group_starts.is_empty());
        }
    }

    #[test]
    fn uneven_chunks_are_covered() {
        let mut idx = index(3, 0);
        idx.chunks[0].files = vec!["a".into(), "b".into()];
        idx.chunks[2].files = vec!["c".into()];
        let plan = epoch_order(&idx, ShuffleKind::ChunkWise { group_size: 2 }, 3, 0);
        assert_eq!(plan.len(), 3);
        assert!(is_permutation(&plan, &idx));
    }

    #[test]
    fn resolve_maps_back_to_names() {
        let idx = index(2, 2);
        let plan = epoch_order(&idx, ShuffleKind::DatasetShuffle, 1, 0);
        let names: HashSet<&str> = plan.items.iter().map(|&i| idx.resolve(i).1).collect();
        assert_eq!(names.len(), 4);
        assert!(names.contains("c1/f0"));
    }
}
