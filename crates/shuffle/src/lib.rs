//! # diesel-shuffle — chunk-wise shuffle (paper §4.3, Fig. 8)
//!
//! DLT frameworks read the dataset in a freshly shuffled order every
//! epoch. A fully random order turns every read into a random small-file
//! read — the worst case for any storage system (Table 2). DIESEL's
//! *chunk-wise shuffle* generates orders that are random enough for SGD
//! but storage-friendly:
//!
//! 1. shuffle the dataset's **chunk IDs**;
//! 2. split the shuffled chunk list into **groups** of `G` chunks;
//! 3. within each group, shuffle the **files** of those chunks;
//! 4. concatenate the per-group file lists.
//!
//! Reading the resulting list touches at most `G` chunks at a time, so a
//! client caches `G × chunk_size` bytes (≈ 2 GB for ImageNet-1K with
//! `G = 500`, vs the 150 GB dataset) and every backing-store read is a
//! full-chunk read.
//!
//! This crate provides:
//!
//! * [`epoch_order`] — generate an epoch's file order for either
//!   strategy ([`ShuffleKind::DatasetShuffle`] baseline or
//!   [`ShuffleKind::ChunkWise`]), deterministically from `(seed, epoch)`.
//! * [`ShufflePlan`] — the generated order plus group boundaries, the
//!   working-set accounting, and conversion of file reads into
//!   chunk-wise reads.
//! * [`quality`] — statistical randomness measures used to validate that
//!   chunk-wise orders stay "random enough" (backing Fig. 13's claim
//!   that accuracy is unaffected).

pub mod plan;
pub mod quality;

pub use plan::{epoch_order, ChunkFiles, DatasetIndex, ShuffleItem, ShuffleKind, ShufflePlan};
