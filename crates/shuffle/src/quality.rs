//! Statistical quality measures for shuffled orders.
//!
//! Fig. 13's empirical claim is that chunk-wise orders train as well as
//! fully shuffled orders. These metrics give the order-level view used
//! by tests and the ablation bench:
//!
//! * [`mean_normalized_displacement`] — how far items move from their
//!   canonical position (1/3 for a uniform permutation, → uniform-like
//!   mixing).
//! * [`epoch_correlation`] — rank correlation between two epochs' orders
//!   (≈ 0 when epochs are independent).
//! * [`chunk_run_fraction`] — fraction of adjacent pairs coming from the
//!   same chunk (reveals how "chunky" an order is; the dataset shuffle is
//!   ≈ 1/#chunks, chunk-wise is ≈ 1/group-chunks).

use crate::plan::{ShuffleItem, ShufflePlan};

/// Mean |position − canonical position| / n over all items, where the
/// canonical position is the item's index in the unshuffled order.
///
/// A uniform random permutation converges to 1/3; a fully sorted order
/// gives 0.
pub fn mean_normalized_displacement(plan: &ShufflePlan, canonical: &[ShuffleItem]) -> f64 {
    let n = plan.items.len();
    if n == 0 {
        return 0.0;
    }
    assert_eq!(canonical.len(), n, "orders must cover the same items");
    let mut canon_pos = std::collections::HashMap::with_capacity(n);
    for (i, &item) in canonical.iter().enumerate() {
        canon_pos.insert(item, i);
    }
    let mut total = 0.0;
    for (i, item) in plan.items.iter().enumerate() {
        let c = canon_pos[item];
        total += (i as f64 - c as f64).abs();
    }
    total / (n as f64 * n as f64)
}

/// Spearman-style rank correlation between the positions of items in two
/// epochs. Independent shuffles give ≈ 0; identical orders give 1.
pub fn epoch_correlation(a: &ShufflePlan, b: &ShufflePlan) -> f64 {
    let n = a.items.len();
    assert_eq!(n, b.items.len(), "epochs must cover the same items");
    if n < 2 {
        return 1.0;
    }
    let mut pos_b = std::collections::HashMap::with_capacity(n);
    for (i, &item) in b.items.iter().enumerate() {
        pos_b.insert(item, i as f64);
    }
    // Pearson correlation of (position in a, position in b).
    let mean = (n as f64 - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (i, item) in a.items.iter().enumerate() {
        let x = i as f64 - mean;
        let y = pos_b[item] - mean;
        cov += x * y;
        var += x * x;
    }
    cov / var
}

/// Fraction of adjacent pairs in the order that come from the same chunk.
pub fn chunk_run_fraction(plan: &ShufflePlan) -> f64 {
    let n = plan.items.len();
    if n < 2 {
        return 0.0;
    }
    let same = plan.items.windows(2).filter(|w| w[0].chunk_index == w[1].chunk_index).count();
    same as f64 / (n - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{epoch_order, ChunkFiles, DatasetIndex, ShuffleKind};
    use diesel_chunk::{ChunkId, MachineId};

    fn index(chunks: usize, files: usize) -> DatasetIndex {
        DatasetIndex::new(
            (0..chunks)
                .map(|c| ChunkFiles {
                    chunk: ChunkId::new(c as u32, MachineId::from_seed(2), 1, c as u32),
                    chunk_bytes: 1 << 20,
                    files: (0..files).map(|f| format!("c{c}/f{f}")).collect(),
                })
                .collect(),
        )
    }

    fn canonical(idx: &DatasetIndex) -> Vec<ShuffleItem> {
        let mut v = Vec::new();
        for (ci, c) in idx.chunks.iter().enumerate() {
            for fi in 0..c.files.len() as u32 {
                v.push(ShuffleItem { chunk_index: ci as u32, file_index: fi });
            }
        }
        v
    }

    #[test]
    fn dataset_shuffle_mixes_like_uniform() {
        let idx = index(40, 100);
        let canon = canonical(&idx);
        let plan = epoch_order(&idx, ShuffleKind::DatasetShuffle, 11, 0);
        let d = mean_normalized_displacement(&plan, &canon);
        assert!((d - 1.0 / 3.0).abs() < 0.02, "displacement {d}");
    }

    #[test]
    fn chunk_wise_also_mixes_globally() {
        // Because *chunks* are globally shuffled before grouping, files
        // still travel across the whole epoch — displacement stays near
        // the uniform 1/3 even though reads are chunk-local.
        let idx = index(40, 100);
        let canon = canonical(&idx);
        let plan = epoch_order(&idx, ShuffleKind::ChunkWise { group_size: 5 }, 11, 0);
        let d = mean_normalized_displacement(&plan, &canon);
        assert!((d - 1.0 / 3.0).abs() < 0.05, "displacement {d}");
    }

    #[test]
    fn epochs_are_decorrelated_for_both_strategies() {
        // The effective sample size of the correlation estimate is the
        // number of independently-placed units: files for the dataset
        // shuffle, chunks for the chunk-wise shuffle. Tolerances are set
        // to ≈ 3/√units.
        let idx = index(200, 25);
        for (kind, tol) in [
            (ShuffleKind::DatasetShuffle, 0.05),
            (ShuffleKind::ChunkWise { group_size: 6 }, 3.0 / (200f64).sqrt()),
        ] {
            let e1 = epoch_order(&idx, kind, 5, 1);
            let e2 = epoch_order(&idx, kind, 5, 2);
            let r = epoch_correlation(&e1, &e2);
            assert!(r.abs() < tol, "epochs correlated: r={r} for {kind:?}");
            let self_r = epoch_correlation(&e1, &e1);
            assert!((self_r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn chunk_runs_reflect_group_size() {
        let idx = index(64, 32);
        let full = epoch_order(&idx, ShuffleKind::DatasetShuffle, 3, 0);
        // Uniform: P(same chunk adjacent) ≈ 1/64.
        let f_full = chunk_run_fraction(&full);
        assert!(f_full < 0.05, "full shuffle runs {f_full}");
        // Group of 4 chunks: ≈ 1/4.
        let cw = epoch_order(&idx, ShuffleKind::ChunkWise { group_size: 4 }, 3, 0);
        let f_cw = chunk_run_fraction(&cw);
        assert!((f_cw - 0.25).abs() < 0.05, "chunk-wise runs {f_cw}");
        // Larger groups look more like the full shuffle.
        let cw16 = epoch_order(&idx, ShuffleKind::ChunkWise { group_size: 16 }, 3, 0);
        assert!(chunk_run_fraction(&cw16) < f_cw);
    }

    #[test]
    fn degenerate_inputs() {
        let idx = index(1, 1);
        let plan = epoch_order(&idx, ShuffleKind::DatasetShuffle, 1, 0);
        assert_eq!(chunk_run_fraction(&plan), 0.0);
        assert_eq!(mean_normalized_displacement(&plan, &canonical(&idx)), 0.0);
        assert_eq!(epoch_correlation(&plan, &plan), 1.0);
    }
}
