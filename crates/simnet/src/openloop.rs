//! Open-loop workload driver: Poisson arrivals at a fixed offered rate.
//!
//! The closed-loop driver in [`crate::driver`] models N synchronous
//! clients (the paper's MPI readers). An *open-loop* driver instead
//! offers work at a rate independent of completions — the right model
//! for "many tenants share the storage cluster" questions, and the one
//! that exposes queueing collapse: at utilization ρ → 1 latency blows up
//! even though throughput looks fine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::{Histogram, Summary};
use crate::time::SimTime;

/// Result of an open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Number of operations issued.
    pub ops: u64,
    /// Completion time of the last operation.
    pub makespan: SimTime,
    /// Response-time distribution (completion − arrival).
    pub latency: Histogram,
}

impl OpenLoopReport {
    /// Achieved throughput in ops per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.makespan == SimTime::ZERO {
            0.0
        } else {
            self.ops as f64 / self.makespan.as_secs_f64()
        }
    }

    /// Latency summary.
    pub fn latency_summary(&self) -> Summary {
        self.latency.summary()
    }
}

/// Issue `ops` operations with exponential inter-arrival times at
/// `rate_per_sec`; `op(index, arrival) -> completion` runs each one
/// (typically acquiring shared [`Resource`](crate::resource::Resource)s).
/// Deterministic given `seed`.
pub fn run_open_loop(
    rate_per_sec: f64,
    ops: u64,
    seed: u64,
    mut op: impl FnMut(u64, SimTime) -> SimTime,
) -> OpenLoopReport {
    assert!(rate_per_sec > 0.0, "offered rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrival = SimTime::ZERO;
    let mut latency = Histogram::new();
    let mut makespan = SimTime::ZERO;
    for i in 0..ops {
        // Exponential inter-arrival: -ln(U)/λ.
        let u: f64 = rng.gen_range(1e-12..1.0);
        let gap = -u.ln() / rate_per_sec;
        arrival += SimTime::from_secs_f64(gap);
        let done = op(i, arrival);
        assert!(done >= arrival, "op {i} completed before it arrived");
        latency.record(done - arrival);
        makespan = makespan.max_of(done);
    }
    OpenLoopReport { ops, makespan, latency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;

    /// Analytic M/D/1 mean wait: ρ/(2(1−ρ)) × service.
    fn md1_mean_response(rate: f64, service_s: f64) -> f64 {
        let rho = rate * service_s;
        service_s + rho * service_s / (2.0 * (1.0 - rho))
    }

    #[test]
    fn uncontended_latency_equals_service_time() {
        let r = Resource::new("d", 1);
        // 10 ops/s against a 1 ms server: ρ = 0.01, queueing negligible.
        let report = run_open_loop(10.0, 2000, 1, |_, t| r.acquire(t, SimTime::from_millis(1)).end);
        let mean = report.latency_summary().mean.as_secs_f64();
        assert!((mean - 1e-3).abs() < 2e-4, "mean {mean}");
        let tput = report.throughput();
        assert!((tput - 10.0).abs() < 1.0, "throughput {tput}");
    }

    #[test]
    fn latency_matches_md1_at_moderate_load() {
        let r = Resource::new("d", 1);
        let service = SimTime::from_millis(1);
        // ρ = 0.5 ⇒ mean response = 1 ms + 0.5 ms = 1.5 ms.
        let report = run_open_loop(500.0, 50_000, 7, |_, t| r.acquire(t, service).end);
        let mean = report.latency_summary().mean.as_secs_f64();
        let analytic = md1_mean_response(500.0, 1e-3);
        assert!((mean - analytic).abs() / analytic < 0.15, "mean {mean:.6} vs M/D/1 {analytic:.6}");
    }

    #[test]
    fn saturation_blows_up_latency_not_throughput() {
        let run_at = |rate: f64| {
            let r = Resource::new("d", 1);
            run_open_loop(rate, 20_000, 3, |_, t| r.acquire(t, SimTime::from_millis(1)).end)
        };
        let light = run_at(300.0);
        let heavy = run_at(1_300.0); // ρ = 1.3: overloaded
                                     // Throughput caps at the 1000 ops/s service rate…
        assert!(heavy.throughput() < 1_050.0);
        assert!(heavy.throughput() > 950.0);
        // …while latency explodes relative to the light load.
        let l_light = light.latency_summary().mean.as_secs_f64();
        let l_heavy = heavy.latency_summary().mean.as_secs_f64();
        assert!(
            l_heavy > 50.0 * l_light,
            "overload must blow up latency: {l_light:.6} vs {l_heavy:.6}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let r = Resource::new("d", 2);
            run_open_loop(800.0, 5_000, seed, |_, t| r.acquire(t, SimTime::from_millis(2)).end)
                .latency_summary()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "completed before it arrived")]
    fn time_travel_rejected() {
        run_open_loop(10.0, 10, 1, |_, _| SimTime::ZERO);
    }
}
