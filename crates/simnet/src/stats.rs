//! Measurement utilities: `SimTime`-flavoured latency histograms.
//!
//! The bucket math lives in `diesel-obs` ([`diesel_obs::Histogram`],
//! the workspace's one histogram implementation); this module is the
//! simulator-facing view that speaks [`SimTime`] instead of raw
//! nanoseconds.

use crate::time::SimTime;

/// A histogram over durations with ~4 % relative-error log buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: diesel_obs::Histogram,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { inner: diesel_obs::Histogram::new() }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimTime) {
        self.inner.record_ns(d.as_nanos());
    }

    /// Record one duration given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.inner.record_ns(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.inner.merge(&other.inner);
    }

    /// Approximate quantile `q ∈ [0,1]` (bucket floor).
    pub fn quantile(&self, q: f64) -> SimTime {
        SimTime::from_nanos(self.inner.quantile_ns(q))
    }

    /// The underlying `diesel-obs` histogram (for registry export).
    pub fn as_obs(&self) -> &diesel_obs::Histogram {
        &self.inner
    }

    /// Mean, min, max and common quantiles.
    pub fn summary(&self) -> Summary {
        let s = self.inner.summary();
        Summary {
            count: s.count,
            mean: SimTime::from_nanos(s.mean_ns),
            min: SimTime::from_nanos(s.min_ns),
            p50: SimTime::from_nanos(s.p50_ns),
            p99: SimTime::from_nanos(s.p99_ns),
            max: SimTime::from_nanos(s.max_ns),
        }
    }
}

/// Point statistics extracted from a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimTime,
    /// Minimum sample.
    pub min: SimTime,
    /// Median (bucket-resolution).
    pub p50: SimTime,
    /// 99th percentile (bucket-resolution).
    pub p99: SimTime,
    /// Maximum sample.
    pub max: SimTime,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count, self.mean, self.p50, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, SimTime::ZERO);
        assert_eq!(h.quantile(0.5), SimTime::ZERO);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record(SimTime::from_micros(42));
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, SimTime::from_micros(42));
        assert_eq!(s.min, SimTime::from_micros(42));
        assert_eq!(s.max, SimTime::from_micros(42));
        // Quantiles land within the bucket (±~8 %).
        let p50 = h.quantile(0.5).as_nanos() as f64;
        assert!((p50 - 42_000.0).abs() / 42_000.0 < 0.1, "p50={p50}");
    }

    #[test]
    fn quantiles_are_ordered_and_close() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(SimTime::from_micros(us));
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p99 && s.p99 <= s.max);
        let p50 = s.p50.as_micros() as f64;
        let p99 = s.p99.as_micros() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.2, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.2, "p99={p99}");
        assert_eq!(s.mean, SimTime::from_nanos(500_500));
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for i in 0..500u64 {
            a.record(SimTime::from_nanos(i * 17 + 1));
            both.record(SimTime::from_nanos(i * 17 + 1));
            b.record(SimTime::from_micros(i + 1));
            both.record(SimTime::from_micros(i + 1));
        }
        a.merge(&b);
        assert_eq!(a.summary(), both.summary());
    }

    #[test]
    fn zero_duration_counts() {
        let mut h = Histogram::new();
        h.record(SimTime::ZERO);
        h.record(SimTime::ZERO);
        assert_eq!(h.count(), 2);
        assert_eq!(h.summary().max, SimTime::ZERO);
    }
}
