//! Measurement utilities: log-bucketed latency histograms and summaries.

use crate::time::SimTime;

/// A histogram over durations with ~4 % relative-error log buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    // bucket i covers [floor_i, floor_{i+1}) with geometric spacing.
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

const BUCKETS_PER_DECADE: usize = 16;
const DECADES: usize = 12; // 1ns .. 1000s
const NBUCKETS: usize = BUCKETS_PER_DECADE * DECADES + 1;

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    let log10 = (ns as f64).log10();
    let idx = (log10 * BUCKETS_PER_DECADE as f64) as usize;
    idx.min(NBUCKETS - 1)
}

fn bucket_floor(idx: usize) -> u64 {
    10f64.powf(idx as f64 / BUCKETS_PER_DECADE as f64) as u64
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; NBUCKETS], total: 0, sum_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimTime) {
        let ns = d.as_nanos();
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Record one duration given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.record(SimTime::from_nanos(ns));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Approximate quantile `q ∈ [0,1]` (bucket floor).
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.total == 0 {
            return SimTime::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return SimTime::from_nanos(bucket_floor(i).max(self.min_ns).min(self.max_ns));
            }
        }
        SimTime::from_nanos(self.max_ns)
    }

    /// Mean, min, max and common quantiles.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.total,
            mean: if self.total == 0 {
                SimTime::ZERO
            } else {
                SimTime::from_nanos((self.sum_ns / self.total as u128) as u64)
            },
            min: if self.total == 0 { SimTime::ZERO } else { SimTime::from_nanos(self.min_ns) },
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            max: SimTime::from_nanos(if self.total == 0 { 0 } else { self.max_ns }),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point statistics extracted from a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimTime,
    /// Minimum sample.
    pub min: SimTime,
    /// Median (bucket-resolution).
    pub p50: SimTime,
    /// 99th percentile (bucket-resolution).
    pub p99: SimTime,
    /// Maximum sample.
    pub max: SimTime,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count, self.mean, self.p50, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, SimTime::ZERO);
        assert_eq!(h.quantile(0.5), SimTime::ZERO);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record(SimTime::from_micros(42));
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, SimTime::from_micros(42));
        assert_eq!(s.min, SimTime::from_micros(42));
        assert_eq!(s.max, SimTime::from_micros(42));
        // Quantiles land within the bucket (±~8 %).
        let p50 = h.quantile(0.5).as_nanos() as f64;
        assert!((p50 - 42_000.0).abs() / 42_000.0 < 0.1, "p50={p50}");
    }

    #[test]
    fn quantiles_are_ordered_and_close() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(SimTime::from_micros(us));
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p99 && s.p99 <= s.max);
        let p50 = s.p50.as_micros() as f64;
        let p99 = s.p99.as_micros() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.2, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.2, "p99={p99}");
        assert_eq!(s.mean, SimTime::from_nanos(500_500));
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for i in 0..500u64 {
            a.record(SimTime::from_nanos(i * 17 + 1));
            both.record(SimTime::from_nanos(i * 17 + 1));
            b.record(SimTime::from_micros(i + 1));
            both.record(SimTime::from_micros(i + 1));
        }
        a.merge(&b);
        assert_eq!(a.summary(), both.summary());
    }

    #[test]
    fn zero_duration_counts() {
        let mut h = Histogram::new();
        h.record(SimTime::ZERO);
        h.record(SimTime::ZERO);
        assert_eq!(h.count(), 2);
        assert_eq!(h.summary().max, SimTime::ZERO);
    }
}
