//! Deterministic event-loop driver for simulated actors.
//!
//! [`run_actors`] repeatedly advances the actor with the smallest clock
//! (ties broken by actor index), so a simulation's outcome is independent
//! of host scheduling — the property that makes the benchmark harness
//! reproducible. This is the standard "next-event" loop of a discrete-
//! event simulator, specialized to actors that compute their own next
//! completion time by acquiring grants from shared [`Resource`]s.
//!
//! The loop ordering matters: because resources grant FIFO *in call
//! order*, always stepping the least-advanced actor first yields
//! arrival-order-consistent queueing.
//!
//! [`Resource`]: crate::resource::Resource

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::stats::Histogram;
use crate::time::SimTime;

/// An actor in a simulation: one I/O worker, one training process, …
pub trait SimActor {
    /// Perform the next operation starting at `now`. Return the simulated
    /// completion time of that operation, or `None` when the actor is
    /// done.
    ///
    /// The returned time must be ≥ `now` (time cannot run backwards);
    /// the driver panics otherwise, as that is a modeling bug.
    fn step(&mut self, now: SimTime) -> Option<SimTime>;
}

impl<F> SimActor for F
where
    F: FnMut(SimTime) -> Option<SimTime>,
{
    fn step(&mut self, now: SimTime) -> Option<SimTime> {
        self(now)
    }
}

/// Result of driving a set of actors to completion.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Completion time of each actor (index-aligned with the input).
    pub finish_times: Vec<SimTime>,
    /// Total steps executed across actors.
    pub steps: u64,
    /// Distribution of per-step durations.
    pub step_latency: Histogram,
}

impl SimReport {
    /// The simulation makespan (latest actor finish).
    pub fn makespan(&self) -> SimTime {
        self.finish_times.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Aggregate throughput in steps per simulated second.
    pub fn throughput(&self) -> f64 {
        let m = self.makespan().as_secs_f64();
        if m == 0.0 {
            0.0
        } else {
            self.steps as f64 / m
        }
    }
}

/// Drive `actors` to completion with the least-clock-first policy.
pub fn run_actors(actors: &mut [&mut dyn SimActor]) -> SimReport {
    let n = actors.len();
    let mut finish = vec![SimTime::ZERO; n];
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::with_capacity(n);
    for i in 0..n {
        heap.push(Reverse((SimTime::ZERO, i)));
    }
    let mut steps = 0u64;
    let mut lat = Histogram::new();
    while let Some(Reverse((now, idx))) = heap.pop() {
        match actors[idx].step(now) {
            Some(next) => {
                assert!(next >= now, "actor {idx} moved time backwards: {next} < {now}");
                steps += 1;
                lat.record(next - now);
                heap.push(Reverse((next, idx)));
            }
            None => {
                finish[idx] = now;
            }
        }
    }
    SimReport { finish_times: finish, steps, step_latency: lat }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;

    #[test]
    fn actors_finish_and_report_makespan() {
        // Two actors: one does 3 × 10 ms, the other 2 × 25 ms.
        let mut a_ops = 3;
        let mut a = move |now: SimTime| {
            if a_ops == 0 {
                return None;
            }
            a_ops -= 1;
            Some(now + SimTime::from_millis(10))
        };
        let mut b_ops = 2;
        let mut b = move |now: SimTime| {
            if b_ops == 0 {
                return None;
            }
            b_ops -= 1;
            Some(now + SimTime::from_millis(25))
        };
        let report = run_actors(&mut [&mut a, &mut b]);
        assert_eq!(report.finish_times[0], SimTime::from_millis(30));
        assert_eq!(report.finish_times[1], SimTime::from_millis(50));
        assert_eq!(report.makespan(), SimTime::from_millis(50));
        assert_eq!(report.steps, 5);
        let tput = report.throughput();
        assert!((tput - 100.0).abs() < 1.0, "tput={tput}");
    }

    #[test]
    fn shared_resource_contention_is_deterministic() {
        // 8 actors × 100 ops through a 2-server resource with 1 ms service:
        // makespan must be exactly 800/2 ms, every run.
        let run = || {
            let res = Resource::new("shared", 2);
            let mut actors: Vec<Box<dyn FnMut(SimTime) -> Option<SimTime>>> = (0..8)
                .map(|_| {
                    let mut left = 100;
                    let res = &res;
                    Box::new(move |now: SimTime| {
                        if left == 0 {
                            return None;
                        }
                        left -= 1;
                        Some(res.acquire(now, SimTime::from_millis(1)).end)
                    }) as Box<dyn FnMut(SimTime) -> Option<SimTime>>
                })
                .collect();
            let mut refs: Vec<&mut dyn SimActor> =
                actors.iter_mut().map(|b| b as &mut dyn SimActor).collect();
            run_actors(&mut refs).makespan()
        };
        let m1 = run();
        let m2 = run();
        assert_eq!(m1, m2, "simulation must be deterministic");
        assert_eq!(m1, SimTime::from_millis(400));
    }

    #[test]
    fn least_clock_first_fairness() {
        // A fast actor (1 ms ops) and a slow actor (10 ms ops) sharing a
        // single-server resource: the fast actor must not be starved —
        // its ops interleave between the slow ones.
        let res = Resource::new("r", 1);
        let mut fast_done = Vec::new();
        let mut fast_left = 5;
        let mut fast = |now: SimTime| {
            if fast_left == 0 {
                return None;
            }
            fast_left -= 1;
            let g = res.acquire(now, SimTime::from_millis(1));
            fast_done.push(g.end);
            Some(g.end)
        };
        let mut slow_left = 5;
        let mut slow = |now: SimTime| {
            if slow_left == 0 {
                return None;
            }
            slow_left -= 1;
            Some(res.acquire(now, SimTime::from_millis(10)).end)
        };
        let report = run_actors(&mut [&mut fast, &mut slow]);
        // Total service = 5×1 + 5×10 = 55 ms on one server.
        assert_eq!(report.makespan(), SimTime::from_millis(55));
    }

    #[test]
    #[should_panic(expected = "moved time backwards")]
    fn backwards_time_is_a_bug() {
        let mut first = true;
        let mut bad = move |_now: SimTime| {
            if first {
                first = false;
                Some(SimTime::from_secs(100))
            } else {
                Some(SimTime::from_secs(1)) // earlier than 100s: bug
            }
        };
        run_actors(&mut [&mut bad]);
    }

    #[test]
    fn empty_actor_set() {
        let report = run_actors(&mut []);
        assert_eq!(report.makespan(), SimTime::ZERO);
        assert_eq!(report.steps, 0);
    }
}
