//! Network cost model: per-node NICs plus a base latency.
//!
//! The paper's cluster uses 100 Gbps Infiniband. We model each node with
//! an ingress and an egress NIC [`Resource`] (bandwidth pipes) and charge
//! a fixed one-way latency per message. An RPC of `req` bytes out and
//! `resp` bytes back crosses: sender-egress → latency → receiver-ingress,
//! then the reverse. Contention appears when many flows share one NIC —
//! exactly the effect that penalizes Memcached's all-to-all topology in
//! Fig. 11a and motivates DIESEL's master-client topology (§4.2).

use std::sync::Arc;

use crate::resource::Resource;
use crate::time::SimTime;

/// Cluster-wide network constants.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// One-way message latency (switch + stack).
    pub one_way_latency: SimTime,
    /// Per-message CPU/software overhead charged to the sender (RPC
    /// serialization, syscalls). This is what batching amortizes.
    pub per_message_overhead: SimTime,
    /// NIC bandwidth in bytes/second (full duplex; each direction gets
    /// this much).
    pub nic_bytes_per_sec: f64,
}

impl NetworkModel {
    /// Constants approximating the paper's 100 Gbps IB fabric with a
    /// kernel TCP-ish software stack (DIESEL uses Thrift RPC, not RDMA).
    pub fn infiniband_100g() -> Self {
        NetworkModel {
            one_way_latency: SimTime::from_micros(5),
            per_message_overhead: SimTime::from_micros(8),
            nic_bytes_per_sec: 100.0e9 / 8.0 * 0.8, // ~10 GB/s effective
        }
    }

    /// A slower 10 Gbps Ethernet profile (ablations).
    pub fn ethernet_10g() -> Self {
        NetworkModel {
            one_way_latency: SimTime::from_micros(30),
            per_message_overhead: SimTime::from_micros(15),
            nic_bytes_per_sec: 10.0e9 / 8.0 * 0.8,
        }
    }
}

/// The pair of NIC resources belonging to one node.
#[derive(Debug)]
pub struct NodeNet {
    /// Egress pipe.
    pub tx: Resource,
    /// Ingress pipe.
    pub rx: Resource,
}

impl NodeNet {
    /// Fresh NICs for one node.
    pub fn new() -> Self {
        NodeNet { tx: Resource::new("nic-tx", 1), rx: Resource::new("nic-rx", 1) }
    }
}

impl Default for NodeNet {
    fn default() -> Self {
        Self::new()
    }
}

/// The network fabric of a simulated cluster: one [`NodeNet`] per node
/// plus the shared [`NetworkModel`] constants.
#[derive(Debug, Clone)]
pub struct Fabric {
    model: NetworkModel,
    nodes: Arc<Vec<NodeNet>>,
}

impl Fabric {
    /// A fabric over `nodes` nodes.
    pub fn new(model: NetworkModel, nodes: usize) -> Self {
        Fabric { model, nodes: Arc::new((0..nodes).map(|_| NodeNet::new()).collect()) }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The model constants.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Simulate a one-way message of `bytes` from `src` to `dst` starting
    /// at `now`; returns the arrival completion time.
    ///
    /// Loopback (src == dst) skips the NICs and wire latency but still
    /// pays a reduced software overhead.
    pub fn send(&self, now: SimTime, src: usize, dst: usize, bytes: u64) -> SimTime {
        if src == dst {
            return now + SimTime::from_nanos(self.model.per_message_overhead.as_nanos() / 4);
        }
        let after_sw = now + self.model.per_message_overhead;
        let tx = self.nodes[src].tx.acquire_bytes(after_sw, bytes, self.model.nic_bytes_per_sec);
        let arrive = tx.end + self.model.one_way_latency;
        let rx = self.nodes[dst].rx.acquire_bytes(arrive, bytes, self.model.nic_bytes_per_sec);
        rx.end
    }

    /// Simulate a request/response RPC; returns the time the response has
    /// fully arrived back at `src`.
    pub fn rpc(
        &self,
        now: SimTime,
        src: usize,
        dst: usize,
        req_bytes: u64,
        resp_bytes: u64,
    ) -> SimTime {
        let at_dst = self.send(now, src, dst, req_bytes);
        self.send(at_dst, dst, src, resp_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::new(NetworkModel::infiniband_100g(), 4)
    }

    #[test]
    fn loopback_is_nearly_free() {
        let f = fabric();
        let t = f.send(SimTime::ZERO, 1, 1, 1 << 20);
        assert!(t < SimTime::from_micros(5), "loopback took {t}");
    }

    #[test]
    fn small_message_dominated_by_latency_and_overhead() {
        let f = fabric();
        let t = f.send(SimTime::ZERO, 0, 1, 100);
        let floor = f.model().per_message_overhead + f.model().one_way_latency;
        assert!(t >= floor);
        assert!(t < floor + SimTime::from_micros(2));
    }

    #[test]
    fn large_message_dominated_by_bandwidth() {
        let f = fabric();
        let bytes = 1u64 << 30; // 1 GiB
        let t = f.send(SimTime::ZERO, 0, 1, bytes);
        let wire = 2.0 * bytes as f64 / f.model().nic_bytes_per_sec; // tx + rx pipes
        assert!((t.as_secs_f64() - wire).abs() / wire < 0.05, "t={t}");
    }

    #[test]
    fn rpc_is_two_messages() {
        let f = fabric();
        let t = f.rpc(SimTime::ZERO, 0, 1, 100, 100);
        let one = f.send(SimTime::ZERO, 2, 3, 100);
        assert!(t.as_nanos() >= 2 * (one.as_nanos() - 1), "t={t}, one={one}");
    }

    #[test]
    fn shared_nic_contention_delays_flows() {
        let f = fabric();
        // Ten 100 MB flows out of node 0 must serialize on its egress NIC.
        let mut ends = Vec::new();
        for dst in 1..4 {
            for _ in 0..4 {
                ends.push(f.send(SimTime::ZERO, 0, dst, 100 << 20));
            }
        }
        let makespan = ends.iter().max().unwrap().as_secs_f64();
        let serial = 12.0 * (100 << 20) as f64 / f.model().nic_bytes_per_sec;
        assert!(makespan >= serial * 0.95, "makespan {makespan} vs serial {serial}");
    }

    #[test]
    fn distinct_senders_do_not_contend() {
        let f = fabric();
        let t0 = f.send(SimTime::ZERO, 0, 1, 10 << 20);
        let t2 = f.send(SimTime::ZERO, 2, 3, 10 << 20);
        assert_eq!(t0, t2, "disjoint node pairs must not interfere");
    }
}
