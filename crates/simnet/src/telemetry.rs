//! Deterministic telemetry scenarios: replay a multi-tenant simulation
//! through the observability plane.
//!
//! The flight recorder, SLO monitor and Prometheus renderer
//! (`diesel-obs`) are all clock-driven, so a simulation on a `MockClock`
//! exercises the *entire* telemetry plane deterministically: the same
//! seed produces a byte-identical recording, the same breach/recover
//! event sequence, and the same final health gauges. That is what lets
//! CI assert telemetry behavior exactly instead of sleeping and hoping.
//!
//! [`run_telemetry`] merges the per-op stream of
//! [`run_multi_tenant_observed`]
//! into a [`Registry`]: each arrival advances the mock clock, records
//! `server.read_latency{dataset=…}` / admission counters, and every
//! `tick` of simulated time the recorder samples the registry and the
//! SLO monitor re-evaluates its burn rates. The acceptance scenario of
//! DESIGN.md §15 runs here: a light tenant beside a 10× neighbour keeps
//! `slo.health{dataset=light} == 1` when admission control caps the
//! neighbour, and goes to `0` when admission is disabled and the shared
//! pool collapses.

use std::collections::BTreeMap;
use std::sync::Arc;

use diesel_obs::{FlightRecorder, RecorderConfig, Registry, SloMonitor, SloReport, SloTarget};
use diesel_util::{Clock, MockClock};

use crate::multitenant::{run_multi_tenant_observed, MultiTenantConfig, MultiTenantReport};
use crate::time::SimTime;

/// A telemetry replay scenario: the simulation to run and the cadence /
/// windows of the observability plane, all in simulated time.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// The multi-tenant workload to simulate.
    pub sim: MultiTenantConfig,
    /// Recorder sampling cadence.
    pub tick: SimTime,
    /// Fast burn-rate window of the SLO monitor.
    pub fast_window: SimTime,
    /// Slow burn-rate window of the SLO monitor.
    pub slow_window: SimTime,
    /// Per-tenant SLO targets evaluated on every tick.
    pub targets: Vec<SloTarget>,
}

/// One `slo.breach` / `slo.recovered` transition, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloTransition {
    /// `"slo.breach"` or `"slo.recovered"`.
    pub scope: String,
    /// Tenant the transition belongs to.
    pub dataset: String,
    /// Objective name (`read_p99`, `error_ratio`, …).
    pub slo: String,
}

/// Everything a telemetry replay produced.
#[derive(Debug, Clone)]
pub struct TelemetryOutcome {
    /// The simulation's own per-tenant accounting.
    pub report: MultiTenantReport,
    /// The flight recorder's full encoded recording — byte-identical
    /// across runs of the same config.
    pub recording: String,
    /// Final `slo.health{dataset=…}` gauge per tenant (1 = healthy).
    pub health: BTreeMap<String, u64>,
    /// Every breach/recover transition, in emission order.
    pub transitions: Vec<SloTransition>,
    /// The monitor's reports from the final evaluation.
    pub final_reports: Vec<SloReport>,
    /// The Prometheus exposition of the final registry snapshot.
    pub scrape: String,
}

impl TelemetryOutcome {
    /// True when the tenant finished the run with every objective Ok.
    pub fn healthy(&self, dataset: &str) -> bool {
        self.health.get(dataset).copied() == Some(1)
    }
}

/// Replay `cfg.sim` through a registry + flight recorder + SLO monitor
/// on a fresh `MockClock`, ticking every `cfg.tick` of simulated time.
///
/// Per admitted op the replay records, labelled `{dataset=<tenant>}`:
/// `server.file_reads` and `server.tenant.admitted` counters and the
/// `server.read_latency` histogram (response = queueing + service, the
/// latency a client would see). Throttled arrivals increment
/// `server.tenant.throttled`. Those are exactly the series the
/// [`SloMonitor`] binds, so declarative targets drive real breaches.
///
/// Latency is recorded at *arrival* processing time (the simulation
/// streams ops in arrival order); a real server records at completion,
/// but for burn-rate windows much wider than one response time the
/// difference is immaterial — and arrival order is what keeps the
/// recording byte-identical.
pub fn run_telemetry(cfg: &TelemetryConfig) -> TelemetryOutcome {
    assert!(cfg.tick > SimTime::ZERO, "tick cadence must be positive");
    let clock = Arc::new(MockClock::new());
    let registry = Arc::new(Registry::new(clock.clone()));
    let recorder = Arc::new(FlightRecorder::new(
        registry.clone(),
        RecorderConfig { interval_ns: cfg.tick.as_nanos(), ..Default::default() },
    ));
    let monitor = SloMonitor::with_windows(
        registry.clone(),
        recorder.clone(),
        cfg.targets.clone(),
        cfg.fast_window.as_nanos(),
        cfg.slow_window.as_nanos(),
    );

    recorder.tick(); // baseline frame at t=0
    let mut next_tick = cfg.tick;
    let mut final_reports: Vec<SloReport> = monitor.evaluate();

    let report = run_multi_tenant_observed(&cfg.sim, |op| {
        // Sample the plane at every tick boundary the workload crossed;
        // idle gaps still produce (empty, delta-encoded) frames, exactly
        // like a wall-clock recorder would.
        while op.arrival >= next_tick {
            advance_to(&clock, next_tick);
            recorder.tick();
            final_reports = monitor.evaluate();
            next_tick += cfg.tick;
        }
        advance_to(&clock, op.arrival);
        let labels = &[("dataset", op.tenant)][..];
        if op.admitted {
            registry.counter("server.tenant.admitted", labels).inc();
            registry.counter("server.file_reads", labels).inc();
            registry.histogram("server.read_latency", labels).record_ns(op.response.as_nanos());
        } else {
            registry.counter("server.tenant.throttled", labels).inc();
        }
    });

    // One closing tick past the last arrival so the final window sees
    // the whole workload.
    advance_to(&clock, next_tick);
    recorder.tick();
    final_reports = monitor.evaluate();

    let snap = registry.snapshot();
    let mut health = BTreeMap::new();
    for target in &cfg.targets {
        health.insert(
            target.dataset.clone(),
            snap.gauge(&format!("slo.health{{dataset={}}}", target.dataset)),
        );
    }
    let transitions = snap
        .events
        .iter()
        .filter(|e| e.scope == "slo.breach" || e.scope == "slo.recovered")
        .map(|e| {
            let field = |k: &str| {
                e.kv.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone()).unwrap_or_default()
            };
            SloTransition { scope: e.scope.clone(), dataset: field("dataset"), slo: field("slo") }
        })
        .collect();

    TelemetryOutcome {
        report,
        recording: recorder.encode(),
        health,
        transitions,
        final_reports,
        scrape: diesel_obs::render_prometheus(&snap),
    }
}

/// Advance the mock clock forward to `t` of simulated time (no-op if
/// already there — the clock never moves backwards).
fn advance_to(clock: &MockClock, t: SimTime) {
    let now = clock.now_ns();
    if t.as_nanos() > now {
        clock.advance(t.as_nanos() - now);
    }
}

/// The canonical noisy-neighbour scenario (DESIGN.md §15): a light
/// tenant at `light_rate` ops/s beside a neighbour offering 10× that,
/// on a pool sized for roughly half the combined load. With `admission`
/// the per-tenant cap keeps the light tenant's read p99 inside `slo`;
/// without it the shared queue collapses and the p99 target burns.
pub fn noisy_neighbour_config(admission: bool) -> TelemetryConfig {
    use crate::multitenant::{ServiceModel, SimAdmission, TenantSpec};
    let slo = SimTime::from_millis(20);
    TelemetryConfig {
        sim: MultiTenantConfig {
            tenants: vec![
                TenantSpec::new("light", 800.0, 4_000),
                TenantSpec::new("heavy", 8_000.0, 40_000),
            ],
            servers: 4,
            service: ServiceModel::default(),
            slo,
            admission: admission.then_some(SimAdmission { rate_per_sec: 3_000.0, burst: 50.0 }),
            seed: 11,
        },
        tick: SimTime::from_millis(250),
        fast_window: SimTime::from_millis(1_000),
        slow_window: SimTime::from_millis(3_000),
        targets: vec![
            SloTarget { read_p99_ns: Some(slo.as_nanos()), ..SloTarget::new("light") },
            SloTarget { read_p99_ns: Some(slo.as_nanos()), ..SloTarget::new("heavy") },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_is_byte_identical_across_runs() {
        let cfg = noisy_neighbour_config(true);
        let a = run_telemetry(&cfg);
        let b = run_telemetry(&cfg);
        assert_eq!(a.recording, b.recording, "same seed must record identically");
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.health, b.health);
        assert!(a.recording.starts_with("diesel-recorder v1"));
    }

    #[test]
    fn admission_keeps_the_light_tenant_green() {
        let fair = run_telemetry(&noisy_neighbour_config(true));
        assert!(
            fair.healthy("light"),
            "light tenant must stay green under admission: {:?}",
            fair.final_reports
        );
        // The cap was actually active: the heavy tenant got throttled.
        let heavy = fair.report.tenant("heavy").unwrap();
        assert!(heavy.throttled > 0);
        // No breach event was ever emitted for the light tenant.
        assert!(!fair.transitions.iter().any(|t| t.dataset == "light" && t.scope == "slo.breach"));
    }

    #[test]
    fn without_admission_the_light_tenant_breaches() {
        let open = run_telemetry(&noisy_neighbour_config(false));
        assert!(
            !open.healthy("light"),
            "overloaded pool must breach the light tenant's p99: {:?}",
            open.final_reports
        );
        assert!(open
            .transitions
            .iter()
            .any(|t| t.dataset == "light" && t.scope == "slo.breach" && t.slo == "read_p99"));
        // The scrape carries the red gauge in Prometheus form.
        let samples = diesel_obs::parse_prometheus(&open.scrape).expect("scrape parses");
        let health = samples
            .iter()
            .find(|s| s.name == "slo_health" && s.label("dataset") == Some("light"))
            .expect("health gauge exported");
        assert_eq!(health.value, 0.0);
    }

    #[test]
    fn replayed_counters_match_simulation_accounting() {
        // The final scrape's counters must equal the simulation's own
        // per-tenant accounting — the replay loses nothing on the way
        // through registry, recorder and renderer.
        let out = run_telemetry(&noisy_neighbour_config(true));
        for t in &out.report.tenants {
            assert!(
                out.final_reports.iter().any(|r| r.dataset == t.name),
                "every tenant has a target in this scenario"
            );
            assert_eq!(scraped(&out, "server_tenant_admitted", &t.name), t.admitted, "{}", t.name);
            assert_eq!(
                scraped(&out, "server_tenant_throttled", &t.name),
                t.throttled,
                "{}",
                t.name
            );
        }
    }

    /// Value of a counter sample for one dataset in the outcome's scrape.
    fn scraped(out: &TelemetryOutcome, name: &str, dataset: &str) -> u64 {
        diesel_obs::parse_prometheus(&out.scrape)
            .expect("scrape parses")
            .into_iter()
            .find(|s| s.name == name && s.label("dataset") == Some(dataset))
            .map(|s| s.value as u64)
            .unwrap_or(0)
    }
}
