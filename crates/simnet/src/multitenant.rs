//! Multi-tenant open-loop workloads: merged Poisson streams, per-tenant
//! admission, goodput and fairness accounting.
//!
//! The single-stream driver in [`crate::openloop`] answers "what does one
//! offered rate do to one queue". The multi-tenant questions of §4 —
//! does one tenant's burst destroy another tenant's latency, and does
//! admission control put a floor under the light tenant — need several
//! independent arrival processes *merged in time order* against the same
//! shared serving pool. This module provides exactly that:
//!
//! * each [`TenantSpec`] is its own seeded Poisson stream with a
//!   read/write/metadata [`OpMix`];
//! * streams are merged by arrival time and executed against one shared
//!   k-server [`Resource`] (the exec pool of a DIESEL front-end);
//! * an optional [`SimAdmission`] token bucket models the server-side
//!   admission controller: arrivals that find an empty bucket are
//!   *throttled* (the real client backs off and retries; the open-loop
//!   model drops and counts them);
//! * *goodput* counts only admitted operations that finished inside the
//!   latency SLO, so queueing collapse shows up as lost goodput even
//!   though raw throughput looks fine.
//!
//! [`kv_closed_loop_qps`] is the companion closed-loop sweep for the KV
//! ceiling experiment (Fig. 10a): N synchronous clients hammering a
//! k-instance KV pool, advanced least-clock-first so results are
//! bit-reproducible at 10⁵–10⁶ simulated clients.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::resource::Resource;
use crate::stats::Histogram;
use crate::time::SimTime;

/// Relative weights of the three operation classes a tenant issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Weight of chunk/file reads.
    pub read: u32,
    /// Weight of writes (ingest).
    pub write: u32,
    /// Weight of metadata lookups.
    pub meta: u32,
}

impl Default for OpMix {
    /// Training traffic is read-dominated: 8 reads per write and per
    /// metadata lookup.
    fn default() -> Self {
        OpMix { read: 8, write: 1, meta: 1 }
    }
}

impl OpMix {
    fn total(&self) -> u32 {
        self.read + self.write + self.meta
    }
}

/// Service time of each operation class at the shared pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceModel {
    /// Service time of a read.
    pub read: SimTime,
    /// Service time of a write.
    pub write: SimTime,
    /// Service time of a metadata lookup.
    pub meta: SimTime,
}

impl Default for ServiceModel {
    /// Defaults shaped like the paper's single-node numbers: ~0.5 ms
    /// cached chunk read, ~2 ms write, ~0.1 ms KV metadata lookup.
    fn default() -> Self {
        ServiceModel {
            read: SimTime::from_micros(500),
            write: SimTime::from_millis(2),
            meta: SimTime::from_micros(100),
        }
    }
}

/// One tenant's offered workload.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (the dataset it trains over).
    pub name: String,
    /// Offered Poisson rate, operations per simulated second.
    pub rate_per_sec: f64,
    /// Number of operations offered.
    pub ops: u64,
    /// Read/write/metadata mix.
    pub mix: OpMix,
}

impl TenantSpec {
    /// A read-mostly tenant offering `ops` operations at `rate_per_sec`.
    pub fn new(name: impl Into<String>, rate_per_sec: f64, ops: u64) -> Self {
        TenantSpec { name: name.into(), rate_per_sec, ops, mix: OpMix::default() }
    }
}

/// Per-tenant token-bucket admission, mirroring the server-side
/// `AdmissionController`: a tenant may burst to `burst` operations and
/// sustain `rate_per_sec` thereafter; arrivals beyond that are throttled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimAdmission {
    /// Sustained per-tenant admitted rate.
    pub rate_per_sec: f64,
    /// Bucket depth (burst allowance).
    pub burst: f64,
}

/// Full scenario description for [`run_multi_tenant`].
#[derive(Debug, Clone)]
pub struct MultiTenantConfig {
    /// The tenants sharing the pool.
    pub tenants: Vec<TenantSpec>,
    /// Number of identical servers in the shared pool.
    pub servers: usize,
    /// Service times per operation class.
    pub service: ServiceModel,
    /// Latency SLO: an admitted op slower than this is not goodput.
    pub slo: SimTime,
    /// Optional per-tenant admission control (applied to every tenant).
    pub admission: Option<SimAdmission>,
    /// Master seed; each tenant derives an independent stream from it.
    pub seed: u64,
}

/// What one tenant experienced during a [`run_multi_tenant`] run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Operations offered (arrivals generated).
    pub offered: u64,
    /// Operations admitted past the token bucket.
    pub admitted: u64,
    /// Operations rejected by admission.
    pub throttled: u64,
    /// Admitted operations that completed within the SLO.
    pub good: u64,
    /// Response-time distribution of admitted operations.
    pub latency: Histogram,
    /// Completion time of this tenant's last admitted operation.
    pub last_completion: SimTime,
}

impl TenantReport {
    /// SLO-qualified operations per simulated second over this tenant's
    /// active window.
    pub fn goodput(&self) -> f64 {
        if self.last_completion == SimTime::ZERO {
            0.0
        } else {
            self.good as f64 / self.last_completion.as_secs_f64()
        }
    }
}

/// Result of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// Per-tenant outcomes, in the order the tenants were specified.
    pub tenants: Vec<TenantReport>,
    /// Completion time of the last admitted operation overall.
    pub makespan: SimTime,
}

impl MultiTenantReport {
    /// Look up one tenant's report by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Max/min per-tenant goodput ratio: 1.0 is perfectly even, large
    /// values mean skew translated into starvation. Tenants with zero
    /// goodput make the ratio infinite.
    pub fn fairness_ratio(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for t in &self.tenants {
            let g = t.goodput();
            min = min.min(g);
            max = max.max(g);
        }
        if self.tenants.is_empty() || max == 0.0 {
            1.0
        } else if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

/// Operation class of one simulated arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Chunk/file read.
    Read,
    /// Write (ingest).
    Write,
    /// Metadata lookup.
    Meta,
}

/// One simulated operation's outcome, streamed to the observer of
/// [`run_multi_tenant_observed`] in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome<'a> {
    /// Tenant that issued the operation.
    pub tenant: &'a str,
    /// Index of the tenant in the config's `tenants` list.
    pub tenant_index: usize,
    /// Operation class.
    pub class: OpClass,
    /// Arrival time.
    pub arrival: SimTime,
    /// False when the admission token bucket rejected the arrival.
    pub admitted: bool,
    /// Response time (queueing + service) of an admitted op;
    /// [`SimTime::ZERO`] when throttled.
    pub response: SimTime,
}

struct Bucket {
    tokens: f64,
    last: SimTime,
}

/// Run the merged multi-tenant open-loop scenario described by `cfg`.
///
/// Arrivals from all tenants are merged in time order (ties broken by
/// tenant index, then op index, so runs are deterministic given
/// `cfg.seed`) and executed FIFO against one shared pool.
pub fn run_multi_tenant(cfg: &MultiTenantConfig) -> MultiTenantReport {
    run_multi_tenant_observed(cfg, |_| {})
}

/// [`run_multi_tenant`] with an observer hook: `observe` is called once
/// per arrival, in arrival order, with the op's admission decision and
/// response time. This is how the telemetry plane ([`crate::telemetry`])
/// replays a simulation into a metric registry without the simulation
/// knowing about metrics.
pub fn run_multi_tenant_observed(
    cfg: &MultiTenantConfig,
    mut observe: impl FnMut(&OpOutcome<'_>),
) -> MultiTenantReport {
    assert!(!cfg.tenants.is_empty(), "need at least one tenant");
    assert!(cfg.servers >= 1, "need at least one server");

    // Pre-generate every tenant's arrival stream and op classes from an
    // independent derived seed, so adding a tenant never perturbs the
    // others' streams.
    let mut streams: Vec<Vec<(SimTime, OpClass)>> = Vec::with_capacity(cfg.tenants.len());
    for (i, spec) in cfg.tenants.iter().enumerate() {
        assert!(spec.rate_per_sec > 0.0, "tenant {} offered rate must be positive", spec.name);
        assert!(spec.mix.total() > 0, "tenant {} op mix is empty", spec.name);
        let derived = cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(derived);
        let mut arrival = SimTime::ZERO;
        let mut ops = Vec::with_capacity(spec.ops as usize);
        for _ in 0..spec.ops {
            let u: f64 = rng.gen_range(1e-12..1.0);
            arrival += SimTime::from_secs_f64(-u.ln() / spec.rate_per_sec);
            let pick = rng.gen_range(0..spec.mix.total());
            let class = if pick < spec.mix.read {
                OpClass::Read
            } else if pick < spec.mix.read + spec.mix.write {
                OpClass::Write
            } else {
                OpClass::Meta
            };
            ops.push((arrival, class));
        }
        streams.push(ops);
    }

    let pool = Resource::new("tenant-pool", cfg.servers);
    let mut buckets: Vec<Bucket> = cfg
        .tenants
        .iter()
        .map(|_| Bucket { tokens: cfg.admission.map_or(0.0, |a| a.burst), last: SimTime::ZERO })
        .collect();
    let mut reports: Vec<TenantReport> = cfg
        .tenants
        .iter()
        .map(|spec| TenantReport {
            name: spec.name.clone(),
            offered: spec.ops,
            admitted: 0,
            throttled: 0,
            good: 0,
            latency: Histogram::new(),
            last_completion: SimTime::ZERO,
        })
        .collect();

    // Merge all streams least-arrival-first; (arrival, tenant, op) keys
    // make the ordering total and deterministic.
    let mut heap: BinaryHeap<Reverse<(SimTime, usize, usize)>> = streams
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(t, s)| Reverse((s[0].0, t, 0)))
        .collect();
    let mut makespan = SimTime::ZERO;

    while let Some(Reverse((arrival, t, idx))) = heap.pop() {
        if idx + 1 < streams[t].len() {
            heap.push(Reverse((streams[t][idx + 1].0, t, idx + 1)));
        }
        let class = streams[t][idx].1;
        let admitted = match cfg.admission {
            None => true,
            Some(adm) => {
                let b = &mut buckets[t];
                let elapsed = (arrival - b.last).as_secs_f64();
                b.tokens = (b.tokens + elapsed * adm.rate_per_sec).min(adm.burst);
                b.last = arrival;
                if b.tokens >= 1.0 {
                    b.tokens -= 1.0;
                    true
                } else {
                    false
                }
            }
        };
        let report = &mut reports[t];
        if !admitted {
            report.throttled += 1;
            observe(&OpOutcome {
                tenant: &cfg.tenants[t].name,
                tenant_index: t,
                class,
                arrival,
                admitted: false,
                response: SimTime::ZERO,
            });
            continue;
        }
        report.admitted += 1;
        let service = match class {
            OpClass::Read => cfg.service.read,
            OpClass::Write => cfg.service.write,
            OpClass::Meta => cfg.service.meta,
        };
        let grant = pool.acquire(arrival, service);
        let response = grant.end - arrival;
        report.latency.record(response);
        if response <= cfg.slo {
            report.good += 1;
        }
        report.last_completion = report.last_completion.max_of(grant.end);
        makespan = makespan.max_of(grant.end);
        observe(&OpOutcome {
            tenant: &cfg.tenants[t].name,
            tenant_index: t,
            class,
            arrival,
            admitted: true,
            response,
        });
    }

    MultiTenantReport { tenants: reports, makespan }
}

/// Closed-loop KV-ceiling sweep (Fig. 10a): `clients` synchronous
/// clients each issue `ops_per_client` metadata lookups against a pool
/// of `instances` KV instances, each serving `per_instance_qps`.
/// Clients advance least-clock-first, so the result is deterministic.
/// Returns the achieved aggregate QPS, which saturates near
/// `instances × per_instance_qps` once `clients` is large enough.
pub fn kv_closed_loop_qps(
    instances: usize,
    per_instance_qps: f64,
    clients: usize,
    ops_per_client: u64,
) -> f64 {
    assert!(instances >= 1, "need at least one KV instance");
    assert!(per_instance_qps > 0.0, "per-instance QPS must be positive");
    assert!(clients >= 1 && ops_per_client >= 1, "need work to measure");
    let service = SimTime::from_secs_f64(1.0 / per_instance_qps);
    let kv = Resource::new("kv-pool", instances);
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> =
        (0..clients).map(|c| Reverse((SimTime::ZERO, c))).collect();
    let mut remaining = vec![ops_per_client; clients];
    let mut makespan = SimTime::ZERO;
    let mut total = 0u64;
    while let Some(Reverse((now, c))) = heap.pop() {
        let grant = kv.acquire(now, service);
        total += 1;
        makespan = makespan.max_of(grant.end);
        remaining[c] -= 1;
        if remaining[c] > 0 {
            heap.push(Reverse((grant.end, c)));
        }
    }
    if makespan == SimTime::ZERO {
        0.0
    } else {
        total as f64 / makespan.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_cfg(admission: Option<SimAdmission>) -> MultiTenantConfig {
        MultiTenantConfig {
            tenants: vec![
                TenantSpec::new("light", 800.0, 4_000),
                TenantSpec::new("heavy", 8_000.0, 40_000),
            ],
            servers: 4,
            service: ServiceModel::default(),
            slo: SimTime::from_millis(20),
            admission,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut cfg = two_tenant_cfg(None);
            cfg.seed = seed;
            let r = run_multi_tenant(&cfg);
            (r.makespan, r.tenants.iter().map(|t| (t.good, t.admitted)).collect::<Vec<_>>())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn accounting_is_conserved() {
        let adm = SimAdmission { rate_per_sec: 3_000.0, burst: 50.0 };
        let r = run_multi_tenant(&two_tenant_cfg(Some(adm)));
        for t in &r.tenants {
            assert_eq!(t.offered, t.admitted + t.throttled, "tenant {}", t.name);
            assert!(t.good <= t.admitted);
            assert_eq!(t.latency.count(), t.admitted);
        }
        // The heavy tenant offers 10×; admission must actually bite it.
        let heavy = r.tenant("heavy").unwrap();
        assert!(heavy.throttled > heavy.offered / 2, "throttled {}", heavy.throttled);
        let light = r.tenant("light").unwrap();
        assert_eq!(light.throttled, 0, "light tenant under its cap is never throttled");
    }

    #[test]
    fn admission_puts_a_floor_under_the_light_tenant() {
        // Solo: the light tenant alone on the pool.
        let solo = run_multi_tenant(&MultiTenantConfig {
            tenants: vec![TenantSpec::new("light", 800.0, 4_000)],
            ..two_tenant_cfg(None)
        });
        let solo_good = solo.tenant("light").unwrap().goodput();
        assert!(solo_good > 700.0, "solo goodput {solo_good}");

        // Unthrottled 10× neighbour: the pool overloads (ρ > 1) and the
        // light tenant's SLO goodput collapses.
        let open = run_multi_tenant(&two_tenant_cfg(None));
        let open_good = open.tenant("light").unwrap().goodput();
        assert!(
            open_good < solo_good / 3.0,
            "unthrottled mix must degrade ≥3×: solo {solo_good} vs {open_good}"
        );

        // Throttled: per-tenant cap keeps ρ < 1; the light tenant stays
        // within 1.5× of its solo goodput.
        let adm = SimAdmission { rate_per_sec: 3_000.0, burst: 50.0 };
        let fair = run_multi_tenant(&two_tenant_cfg(Some(adm)));
        let fair_good = fair.tenant("light").unwrap().goodput();
        assert!(
            fair_good > solo_good / 1.5,
            "throttled mix must stay within 1.5×: solo {solo_good} vs {fair_good}"
        );
        // And fairness is finite/reported.
        assert!(fair.fairness_ratio().is_finite());
        assert!(fair.fairness_ratio() >= 1.0);
    }

    #[test]
    fn kv_ceiling_saturates_near_instance_sum() {
        // 16 instances × 60 kQPS ≈ 0.96 MQPS ceiling (Fig. 10a).
        let qps = kv_closed_loop_qps(16, 60_000.0, 100_000, 2);
        assert!(qps > 0.90e6 && qps < 0.98e6, "qps {qps}");
        // A single client cannot exceed one instance's rate.
        let one = kv_closed_loop_qps(16, 60_000.0, 1, 1_000);
        assert!(one < 61_000.0, "one client {one}");
    }

    #[test]
    fn kv_ceiling_is_deterministic() {
        let a = kv_closed_loop_qps(4, 10_000.0, 5_000, 3);
        let b = kv_closed_loop_qps(4, 10_000.0, 5_000, 3);
        assert_eq!(a, b);
    }
}
