//! Simulated time: a nanosecond-resolution monotonic timestamp.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) in simulated time, in nanoseconds.
///
/// `SimTime` is used both as an instant and as a duration; the arithmetic
/// is saturating on subtraction so models never wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Build from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Build from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Build from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Build from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Build from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Value in whole microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }
    /// Value in whole milliseconds.
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }
    /// Value in nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// The larger of two times.
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Time to move `bytes` at `bytes_per_sec` throughput.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> SimTime {
        assert!(bytes_per_sec > 0.0, "throughput must be positive");
        SimTime::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_secs(2));
        assert_eq!(SimTime(u64::MAX) + SimTime(5), SimTime(u64::MAX));
    }

    #[test]
    fn bytes_transfer_time() {
        // 1 MiB at 1 MiB/s = 1 s.
        let t = SimTime::for_bytes(1 << 20, (1 << 20) as f64);
        assert_eq!(t, SimTime::from_secs(1));
        // 4 KiB at 4 GiB/s ≈ 954 ns.
        let t = SimTime::for_bytes(4096, 4.0 * (1u64 << 30) as f64);
        assert!(t.as_nanos() > 900 && t.as_nanos() < 1000, "{t}");
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_micros(5)), "5.000µs");
        assert_eq!(format!("{}", SimTime::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000s");
    }

    #[test]
    fn max_of() {
        let a = SimTime(3);
        let b = SimTime(7);
        assert_eq!(a.max_of(b), b);
        assert_eq!(b.max_of(a), b);
    }
}
