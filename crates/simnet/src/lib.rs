//! # diesel-simnet — deterministic cluster simulation substrate
//!
//! The paper evaluates DIESEL on a 16-machine Infiniband cluster. This
//! crate replaces that hardware with a deterministic simulated-time model
//! so the cluster-scale experiments (Figs. 6, 9–12, 14, 15) reproduce the
//! paper's *shapes* on a laptop.
//!
//! Methodology (see DESIGN.md §6): every simulated actor (an I/O worker,
//! a training process) carries its own clock. Shared bottlenecks — a
//! metadata server, a KV instance, a NIC, a storage device — are
//! [`Resource`]s: k-server FIFO queues over simulated time. Executing an
//! operation means computing its *service time* from a device model and
//! asking each resource it crosses for a grant; queueing delays emerge
//! naturally when many actors hit one resource.
//!
//! Two drivers are provided:
//!
//! * [`run_actors`] — a deterministic event-loop that always advances the
//!   actor with the smallest clock; results are bit-reproducible.
//! * Resources are internally synchronized, so real-thread drivers (rayon)
//!   can share them too when determinism is not required.
//!
//! [`Histogram`] and [`Summary`] provide the latency statistics the
//! benchmark harness prints.

pub mod driver;
pub mod multitenant;
pub mod net;
pub mod openloop;
pub mod resource;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use driver::{run_actors, SimActor, SimReport};
pub use multitenant::{
    kv_closed_loop_qps, run_multi_tenant, run_multi_tenant_observed, MultiTenantConfig,
    MultiTenantReport, OpClass, OpMix, OpOutcome, ServiceModel, SimAdmission, TenantReport,
    TenantSpec,
};
pub use net::{Fabric, NetworkModel, NodeNet};
pub use openloop::{run_open_loop, OpenLoopReport};
pub use resource::{Grant, Resource};
pub use stats::{Histogram, Summary};
pub use telemetry::{
    noisy_neighbour_config, run_telemetry, SloTransition, TelemetryConfig, TelemetryOutcome,
};
pub use time::SimTime;
