//! k-server FIFO resources over simulated time.
//!
//! A [`Resource`] models a contended component — an MDS, one Redis
//! instance, a NIC, an NVMe device — as `k` identical servers. A request
//! arriving at simulated time `now` with service time `s` is granted the
//! earliest-free server: it starts at `max(now, earliest_free)` and ends
//! `s` later. With one server this is an M/D/1-style queue; with `k` it
//! approximates a thread pool or a striped device.
//!
//! The grant operation is O(log k) (binary heap of server-free times) and
//! internally synchronized, so resources can be shared by both the
//! deterministic event-loop driver and real-thread drivers.

use diesel_util::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::SimTime;

/// The time window granted to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (≥ the requested `now`).
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
}

impl Grant {
    /// Queueing delay experienced before service started.
    pub fn queue_delay(&self, now: SimTime) -> SimTime {
        self.start - now
    }
}

/// A k-server FIFO queueing resource.
///
/// # Examples
///
/// ```
/// use diesel_simnet::{Resource, SimTime};
///
/// // A metadata server handling one request at a time, 1 ms each.
/// let mds = Resource::new("mds", 1);
/// let g1 = mds.acquire(SimTime::ZERO, SimTime::from_millis(1));
/// let g2 = mds.acquire(SimTime::ZERO, SimTime::from_millis(1));
/// assert_eq!(g1.end, SimTime::from_millis(1));
/// assert_eq!(g2.start, g1.end, "second request queues behind the first");
/// ```
#[derive(Debug)]
pub struct Resource {
    name: &'static str,
    free_at: Mutex<BinaryHeap<Reverse<SimTime>>>,
    served: AtomicU64,
    busy_ns: AtomicU64,
}

impl Resource {
    /// A resource with `servers` identical servers, all free at t=0.
    pub fn new(name: &'static str, servers: usize) -> Self {
        assert!(servers >= 1, "resource {name} needs at least one server");
        let mut heap = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            heap.push(Reverse(SimTime::ZERO));
        }
        Resource {
            name,
            free_at: Mutex::named("simnet.resource_free", heap),
            served: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Request `service` time starting no earlier than `now`.
    pub fn acquire(&self, now: SimTime, service: SimTime) -> Grant {
        let mut heap = self.free_at.lock();
        let Reverse(free) = heap.pop().expect("heap always holds k entries");
        let start = now.max_of(free);
        let end = start + service;
        heap.push(Reverse(end));
        drop(heap);
        self.served.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(service.as_nanos(), Ordering::Relaxed);
        Grant { start, end }
    }

    /// Convenience: acquire for a byte transfer at `bytes_per_sec`.
    pub fn acquire_bytes(&self, now: SimTime, bytes: u64, bytes_per_sec: f64) -> Grant {
        self.acquire(now, SimTime::for_bytes(bytes, bytes_per_sec))
    }

    /// Total requests served.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Aggregate busy time across servers.
    pub fn busy_time(&self) -> SimTime {
        SimTime(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Utilization over `[0, horizon]` given `servers` servers.
    pub fn utilization(&self, horizon: SimTime, servers: usize) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_time().as_secs_f64() / (horizon.as_secs_f64() * servers as f64)
    }

    /// Reset all servers to free-at-zero and clear counters.
    pub fn reset(&self) {
        let mut heap = self.free_at.lock();
        let k = heap.len();
        heap.clear();
        for _ in 0..k {
            heap.push(Reverse(SimTime::ZERO));
        }
        drop(heap);
        self.served.store(0, Ordering::Relaxed);
        self.busy_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let r = Resource::new("disk", 1);
        let s = SimTime::from_millis(10);
        let g1 = r.acquire(SimTime::ZERO, s);
        let g2 = r.acquire(SimTime::ZERO, s);
        let g3 = r.acquire(SimTime::ZERO, s);
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g1.end, SimTime::from_millis(10));
        assert_eq!(g2.start, SimTime::from_millis(10));
        assert_eq!(g3.end, SimTime::from_millis(30));
        assert_eq!(g3.queue_delay(SimTime::ZERO), SimTime::from_millis(20));
    }

    #[test]
    fn k_servers_run_in_parallel() {
        let r = Resource::new("pool", 4);
        let s = SimTime::from_millis(10);
        let grants: Vec<Grant> = (0..4).map(|_| r.acquire(SimTime::ZERO, s)).collect();
        assert!(grants.iter().all(|g| g.start == SimTime::ZERO));
        // Fifth waits for a server.
        let g5 = r.acquire(SimTime::ZERO, s);
        assert_eq!(g5.start, SimTime::from_millis(10));
    }

    #[test]
    fn idle_server_starts_at_now() {
        let r = Resource::new("disk", 1);
        let g = r.acquire(SimTime::from_secs(5), SimTime::from_millis(1));
        assert_eq!(g.start, SimTime::from_secs(5));
    }

    #[test]
    fn throughput_matches_capacity() {
        // One server, 1 ms per op ⇒ 1000 ops/s regardless of arrival rate.
        let r = Resource::new("mds", 1);
        let mut end = SimTime::ZERO;
        for _ in 0..5000 {
            end = r.acquire(SimTime::ZERO, SimTime::from_millis(1)).end;
        }
        let qps = 5000.0 / end.as_secs_f64();
        assert!((qps - 1000.0).abs() < 1.0, "qps={qps}");
    }

    #[test]
    fn stats_and_reset() {
        let r = Resource::new("x", 2);
        r.acquire(SimTime::ZERO, SimTime::from_millis(4));
        r.acquire(SimTime::ZERO, SimTime::from_millis(6));
        assert_eq!(r.served(), 2);
        assert_eq!(r.busy_time(), SimTime::from_millis(10));
        let u = r.utilization(SimTime::from_millis(10), 2);
        assert!((u - 0.5).abs() < 1e-9);
        r.reset();
        assert_eq!(r.served(), 0);
        let g = r.acquire(SimTime::ZERO, SimTime::from_millis(1));
        assert_eq!(g.start, SimTime::ZERO);
    }

    #[test]
    fn concurrent_acquires_never_overbook() {
        // With k servers and uniform service s, N requests arriving at 0
        // must finish exactly at ceil(N/k)*s — regardless of thread
        // interleaving.
        let r = Resource::new("c", 3);
        let pool = diesel_exec::WorkPool::new(
            "simnet-test",
            diesel_exec::ExecConfig { workers: 6, queue_capacity: 0 },
        );
        let ends = pool.map((0..6).collect::<Vec<_>>(), |_, _| {
            (0..500).map(|_| r.acquire(SimTime::ZERO, SimTime::from_micros(10)).end).max().unwrap()
        });
        let max_end = ends.into_iter().max().unwrap();
        let expect = SimTime::from_micros(10 * 3000 / 3);
        assert_eq!(max_end, expect);
    }
}
