//! Hash functions for key routing.
//!
//! * [`crc16`] — CRC-16/CCITT (XModem), the function Redis Cluster uses to
//!   map keys to its 16384 hash slots. Implemented here so `KvCluster`
//!   routes exactly like the system the paper deployed.
//! * [`fnv1a_64`] — FNV-1a, used for shard striping inside one instance
//!   and for the `hash(dir)` component of metadata keys.

/// CRC-16/XMODEM (poly 0x1021, init 0): the Redis Cluster slot hash.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 { (crc << 1) ^ 0x1021 } else { crc << 1 };
        }
    }
    crc
}

/// Number of hash slots in a cluster (Redis constant).
pub const NUM_SLOTS: u16 = 16384;

/// Map a key to its hash slot, honoring Redis "hash tags": if the key
/// contains a `{...}` section, only the bytes inside the braces are
/// hashed, letting callers co-locate related keys on one instance.
pub fn key_slot(key: &str) -> u16 {
    let bytes = key.as_bytes();
    let hashed = match bytes.iter().position(|&b| b == b'{') {
        Some(open) => match bytes[open + 1..].iter().position(|&b| b == b'}') {
            Some(rel) if rel > 0 => &bytes[open + 1..open + 1 + rel],
            _ => bytes,
        },
        None => bytes,
    };
    crc16(hashed) % NUM_SLOTS
}

/// FNV-1a 64-bit hash.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/XMODEM of "123456789" is 0x31C3 (Redis documents this).
        assert_eq!(crc16(b"123456789"), 0x31C3);
        assert_eq!(crc16(b""), 0);
    }

    #[test]
    fn key_slot_in_range_and_stable() {
        for key in ["a", "foo/bar", "ds/imagenet/chunk/000", ""] {
            let s = key_slot(key);
            assert!(s < NUM_SLOTS);
            assert_eq!(s, key_slot(key), "slot must be deterministic");
        }
    }

    #[test]
    fn hash_tags_colocate_keys() {
        assert_eq!(key_slot("{user1}.a"), key_slot("{user1}.b"));
        assert_eq!(key_slot("{user1}.a"), key_slot("user1"));
        // Empty tag `{}` hashes the whole key.
        assert_eq!(key_slot("{}.a"), crc16(b"{}.a") % NUM_SLOTS);
        // Unclosed brace hashes the whole key.
        assert_eq!(key_slot("{abc"), crc16(b"{abc") % NUM_SLOTS);
    }

    #[test]
    fn fnv_distinguishes_inputs() {
        assert_ne!(fnv1a_64(b"a"), fnv1a_64(b"b"));
        assert_eq!(fnv1a_64(b"abc"), fnv1a_64(b"abc"));
    }

    #[test]
    fn slot_distribution_is_roughly_uniform() {
        let n = 4;
        let mut counts = vec![0usize; n];
        for i in 0..40_000 {
            let key = format!("file/{i}.jpg");
            counts[(key_slot(&key) as usize * n) / NUM_SLOTS as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed slot distribution: {counts:?}");
        }
    }
}
