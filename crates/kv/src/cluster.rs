//! A cluster of KV instances with Redis-style slot routing and failure
//! injection.
//!
//! Keys map to one of 16384 slots via CRC-16 (see [`crate::hash`]); slots
//! are assigned to instances in contiguous ranges, exactly like Redis
//! Cluster's default layout. The two §4.1.2 failure scenarios are exposed
//! directly:
//!
//! * **(a) node failure** — [`KvCluster::fail_instance`] marks one
//!   instance down; operations routed to it error with
//!   [`KvError::InstanceDown`]. [`KvCluster::recover_instance`] brings it
//!   back *empty* (its recent writes are lost), which is what the
//!   chunk-scan recovery then repairs.
//! * **(b) power loss** — [`KvCluster::power_loss`] clears every
//!   instance.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use diesel_obs::{Gauge, Registry, RegistrySnapshot};

use crate::hash::{key_slot, NUM_SLOTS};
use crate::shard::ShardedKv;
use crate::{Bytes, KvError, KvStore, Result};

/// Measured per-instance ceiling of the paper's Redis deployment
/// (§6.2: 16 instances saturate at ~0.97 M QPS ⇒ ~60 k each). Snapshot
/// readers divide observed op rates by `kv.qps_ceiling` to report
/// saturation.
pub const PAPER_QPS_PER_INSTANCE: u64 = 60_000;

/// Construction parameters for [`KvCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of instances (the paper runs 16 Redis instances on 4 nodes).
    pub instances: usize,
    /// Lock stripes inside each instance.
    pub shards_per_instance: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { instances: 16, shards_per_instance: ShardedKv::DEFAULT_SHARDS }
    }
}

/// A slot-routed cluster of [`ShardedKv`] instances.
///
/// # Examples
///
/// ```
/// use diesel_kv::{ClusterConfig, KvCluster, KvStore};
///
/// let cluster = KvCluster::new(ClusterConfig { instances: 4, shards_per_instance: 8 });
/// cluster.put("f/ds/train/cat/1.jpg", vec![1, 2, 3].into()).unwrap();
/// assert_eq!(cluster.get("f/ds/train/cat/1.jpg").unwrap(), Some(vec![1, 2, 3].into()));
///
/// // Kill the owning instance: its keys error, others keep working.
/// let owner = cluster.route("f/ds/train/cat/1.jpg");
/// cluster.fail_instance(owner);
/// assert!(cluster.get("f/ds/train/cat/1.jpg").is_err());
/// cluster.recover_instance(owner); // back, but empty — recovery rescans chunks
/// assert_eq!(cluster.get("f/ds/train/cat/1.jpg").unwrap(), None);
/// ```
pub struct KvCluster {
    instances: Vec<Arc<ShardedKv>>,
    down: Vec<AtomicBool>,
    registry: Arc<Registry>,
    instances_down: Gauge,
}

impl std::fmt::Debug for KvCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvCluster")
            .field("instances", &self.instances.len())
            .field("down", &self.down_instances())
            .finish()
    }
}

impl KvCluster {
    /// Build a cluster with its own metric registry.
    pub fn new(config: ClusterConfig) -> Self {
        Self::with_registry(config, Arc::new(Registry::default()))
    }

    /// Build a cluster recording into `registry`: every instance gets
    /// `kv.*{instance=N}` cells, and the cluster publishes its size and
    /// QPS ceiling as gauges.
    pub fn with_registry(config: ClusterConfig, registry: Arc<Registry>) -> Self {
        assert!(config.instances >= 1, "cluster needs at least one instance");
        let instances = (0..config.instances)
            .map(|i| {
                let label = i.to_string();
                Arc::new(ShardedKv::with_registry(
                    config.shards_per_instance,
                    registry.clone(),
                    &[("instance", label.as_str())],
                ))
            })
            .collect();
        registry.gauge("kv.instances", &[]).set(config.instances as u64);
        registry.gauge("kv.qps_ceiling", &[]).set(config.instances as u64 * PAPER_QPS_PER_INSTANCE);
        let instances_down = registry.gauge("kv.instances_down", &[]);
        KvCluster {
            instances,
            down: (0..config.instances).map(|_| AtomicBool::new(false)).collect(),
            registry,
            instances_down,
        }
    }

    /// The registry every instance records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Which instance owns `key` (contiguous slot ranges, Redis-style).
    pub fn route(&self, key: &str) -> usize {
        let slot = key_slot(key) as usize;
        (slot * self.instances.len()) / NUM_SLOTS as usize
    }

    fn instance(&self, idx: usize) -> Result<&ShardedKv> {
        if self.down[idx].load(Ordering::Acquire) {
            return Err(KvError::InstanceDown { instance: idx });
        }
        Ok(&self.instances[idx])
    }

    /// Take instance `idx` down; subsequent ops routed to it fail.
    pub fn fail_instance(&self, idx: usize) {
        if !self.down[idx].swap(true, Ordering::Release) {
            self.instances_down.add(1);
            self.registry.event("kv.fail_instance", &[("instance", &idx.to_string())]);
        }
    }

    /// Bring instance `idx` back up **empty** (its in-memory state was
    /// lost with the node).
    pub fn recover_instance(&self, idx: usize) {
        self.instances[idx].clear();
        if self.down[idx].swap(false, Ordering::Release) {
            self.instances_down.sub(1);
        }
        self.registry.event("kv.recover_instance", &[("instance", &idx.to_string())]);
    }

    /// Clear every instance (data-center power failure, scenario b).
    pub fn power_loss(&self) {
        for (i, inst) in self.instances.iter().enumerate() {
            inst.clear();
            if self.down[i].swap(false, Ordering::Release) {
                self.instances_down.sub(1);
            }
        }
        self.registry.event("kv.power_loss", &[]);
    }

    /// Indices of currently-down instances.
    pub fn down_instances(&self) -> Vec<usize> {
        self.down
            .iter()
            .enumerate()
            .filter(|(_, d)| d.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total operations across instances (sums the per-instance
    /// `kv.*{instance=N}` cells).
    pub fn ops_total(&self) -> u64 {
        self.instances.iter().map(|i| i.metrics().total()).sum()
    }

    /// Per-instance key counts (diagnostics / balance tests).
    pub fn key_distribution(&self) -> Vec<usize> {
        self.instances.iter().map(|i| i.len()).collect()
    }
}

impl KvStore for KvCluster {
    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        self.instance(self.route(key))?.get(key)
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.instance(self.route(key))?.put(key, value)
    }

    fn delete(&self, key: &str) -> Result<bool> {
        self.instance(self.route(key))?.delete(key)
    }

    fn update(&self, key: &str, f: &mut dyn FnMut(Option<Bytes>) -> Option<Bytes>) -> Result<()> {
        // The owning instance applies `f` under its shard lock, so the
        // update is atomic cluster-wide (each key has one owner).
        self.instance(self.route(key))?.update(key, f)
    }

    fn mput(&self, pairs: Vec<(String, Bytes)>) -> Result<()> {
        // Group by owning instance so each instance sees one batch — the
        // cluster-level analogue of Redis pipelining.
        let n = self.instances.len();
        let mut grouped: Vec<Vec<(String, Bytes)>> = (0..n).map(|_| Vec::new()).collect();
        for (k, v) in pairs {
            grouped[self.route(&k)].push((k, v));
        }
        for (idx, batch) in grouped.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.instance(idx)?.mput(batch)?;
        }
        Ok(())
    }

    fn pscan(&self, prefix: &str) -> Result<Vec<(String, Bytes)>> {
        // A prefix scan must see every owning instance; any down instance
        // makes the result incomplete, so surface the failure.
        let mut out = Vec::new();
        for idx in 0..self.instances.len() {
            out.extend(self.instance(idx)?.pscan(prefix)?);
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn len(&self) -> usize {
        self.instances.iter().map(|i| i.len()).sum()
    }

    fn obs_snapshot(&self) -> Option<RegistrySnapshot> {
        // Every instance records into the cluster's shared registry, so
        // one snapshot covers them all (no double counting).
        Some(self.registry.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> KvCluster {
        KvCluster::new(ClusterConfig { instances: n, shards_per_instance: 8 })
    }

    #[test]
    fn routes_are_stable_and_in_range() {
        let c = cluster(5);
        for i in 0..1000 {
            let key = format!("k/{i}");
            let r = c.route(&key);
            assert!(r < 5);
            assert_eq!(r, c.route(&key));
        }
    }

    #[test]
    fn keys_spread_across_instances() {
        let c = cluster(4);
        for i in 0..10_000 {
            c.put(&format!("file/{i}"), vec![0].into()).unwrap();
        }
        let dist = c.key_distribution();
        assert_eq!(dist.iter().sum::<usize>(), 10_000);
        for &d in &dist {
            assert!(d > 1500, "instance starved: {dist:?}");
        }
    }

    #[test]
    fn cluster_ops_roundtrip() {
        let c = cluster(3);
        c.put("x", vec![1].into()).unwrap();
        assert_eq!(c.get("x").unwrap(), Some(vec![1].into()));
        assert!(c.delete("x").unwrap());
        assert_eq!(c.get("x").unwrap(), None);
    }

    #[test]
    fn pscan_unions_instances_sorted() {
        let c = cluster(4);
        let mut keys: Vec<String> = (0..500).map(|i| format!("p/{i:04}")).collect();
        for k in &keys {
            c.put(k, Bytes::new()).unwrap();
        }
        c.put("q/other", Bytes::new()).unwrap();
        let hits = c.pscan("p/").unwrap();
        keys.sort();
        assert_eq!(hits.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(), keys);
    }

    #[test]
    fn failed_instance_errors_only_its_keys() {
        let c = cluster(4);
        for i in 0..2000 {
            c.put(&format!("k/{i}"), Bytes::new()).unwrap();
        }
        c.fail_instance(2);
        let mut down_errors = 0;
        let mut ok = 0;
        for i in 0..2000 {
            match c.get(&format!("k/{i}")) {
                Ok(Some(_)) => ok += 1,
                Err(KvError::InstanceDown { instance: 2 }) => down_errors += 1,
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(down_errors > 300, "instance 2 should own a fair share");
        assert_eq!(ok + down_errors, 2000);
        // pscan cannot complete with a down instance.
        assert!(c.pscan("k/").is_err());
        assert_eq!(c.down_instances(), vec![2]);
    }

    #[test]
    fn recovery_brings_instance_back_empty() {
        let c = cluster(2);
        for i in 0..100 {
            c.put(&format!("k/{i}"), vec![1].into()).unwrap();
        }
        let before = c.len();
        c.fail_instance(1);
        c.recover_instance(1);
        assert!(c.down_instances().is_empty());
        let after = c.len();
        assert!(after < before, "recovered instance must come back empty");
        // Writes to the recovered instance work again.
        c.put("fresh", vec![2].into()).unwrap();
        assert_eq!(c.get("fresh").unwrap(), Some(vec![2].into()));
    }

    #[test]
    fn power_loss_clears_everything() {
        let c = cluster(3);
        for i in 0..100 {
            c.put(&format!("k/{i}"), vec![1].into()).unwrap();
        }
        c.fail_instance(0);
        c.power_loss();
        assert_eq!(c.len(), 0);
        assert!(c.down_instances().is_empty(), "power cycle restarts all instances");
    }

    #[test]
    fn mput_batches_per_instance() {
        let c = cluster(4);
        let pairs: Vec<(String, Bytes)> =
            (0..1000).map(|i| (format!("b/{i}"), vec![i as u8].into())).collect();
        c.mput(pairs).unwrap();
        assert_eq!(c.len(), 1000);
        assert_eq!(c.get("b/500").unwrap(), Some(vec![244].into()));
    }

    #[test]
    fn metrics_are_labelled_per_instance_in_one_registry() {
        let c = cluster(4);
        for i in 0..1000 {
            c.put(&format!("m/{i}"), Bytes::new()).unwrap();
            c.get(&format!("m/{i}")).unwrap();
        }
        let snap = c.obs_snapshot().expect("cluster exposes its registry");
        assert_eq!(snap.sum_counter("kv.puts"), 1000);
        assert_eq!(snap.sum_counter("kv.gets"), 1000);
        // Each instance owns a share of the keyspace, so each has its
        // own labelled cell with a non-trivial count.
        for i in 0..4 {
            assert!(snap.counter(&format!("kv.puts{{instance={i}}}")) > 100, "{:?}", snap.counters);
        }
        assert_eq!(snap.gauge("kv.instances"), 4);
        assert_eq!(snap.gauge("kv.qps_ceiling"), 4 * PAPER_QPS_PER_INSTANCE);
        assert_eq!(c.ops_total(), 2000);
    }

    #[test]
    fn failure_injection_moves_the_down_gauge_and_logs_events() {
        let c = cluster(3);
        c.fail_instance(1);
        c.fail_instance(1); // idempotent: gauge must not double-count
        assert_eq!(c.registry().snapshot().gauge("kv.instances_down"), 1);
        c.recover_instance(1);
        let snap = c.obs_snapshot().expect("registry");
        assert_eq!(snap.gauge("kv.instances_down"), 0);
        let scopes: Vec<&str> = snap.events.iter().map(|e| e.scope.as_str()).collect();
        assert_eq!(scopes, vec!["kv.fail_instance", "kv.recover_instance"]);
    }

    #[test]
    fn mget_reports_misses_as_none() {
        let c = cluster(2);
        c.put("a", vec![1].into()).unwrap();
        let got = c.mget(&["a", "missing"]).unwrap();
        assert_eq!(got, vec![Some(Bytes::from(vec![1])), None]);
    }
}
