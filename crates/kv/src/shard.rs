//! One KV *instance*: a lock-striped, ordered, in-memory store.
//!
//! Keys are distributed over `S` shards by FNV hash; each shard is a
//! `RwLock<BTreeMap>` so point ops contend only within a shard while
//! prefix scans are ordered range scans unioned across shards. This
//! mirrors one Redis process: fast point ops, support for `SCAN`-style
//! prefix iteration, and zero durability.

use std::collections::BTreeMap;
use std::sync::Arc;

use diesel_obs::{trace, Registry, RegistrySnapshot};
use diesel_util::RwLock;

use crate::hash::fnv1a_64;
use crate::stats::KvMetrics;
use crate::{Bytes, KvStore, Result};

/// A single in-memory KV instance.
#[derive(Debug)]
pub struct ShardedKv {
    shards: Vec<RwLock<BTreeMap<String, Bytes>>>,
    registry: Arc<Registry>,
    metrics: KvMetrics,
}

impl ShardedKv {
    /// Default shard count: enough stripes that 16-thread writers rarely
    /// collide, without bloating scan fan-in.
    pub const DEFAULT_SHARDS: usize = 64;

    /// An empty instance with [`Self::DEFAULT_SHARDS`] stripes.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// An empty instance with an explicit stripe count (≥ 1) and its own
    /// metric registry.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_registry(shards, Arc::new(Registry::default()), &[])
    }

    /// An empty instance recording into a shared `registry`, its metric
    /// cells dimensioned by `labels` (how [`crate::KvCluster`] gives
    /// each instance an `{instance=N}` identity in one registry).
    pub fn with_registry(shards: usize, registry: Arc<Registry>, labels: &[(&str, &str)]) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let metrics = KvMetrics::new(&registry, labels);
        ShardedKv {
            shards: (0..shards).map(|_| RwLock::named("kv.shard", BTreeMap::new())).collect(),
            registry,
            metrics,
        }
    }

    fn shard_for(&self, key: &str) -> &RwLock<BTreeMap<String, Bytes>> {
        let idx = (fnv1a_64(key.as_bytes()) as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Operation-counter handles for this instance.
    pub fn metrics(&self) -> &KvMetrics {
        &self.metrics
    }

    /// The registry this instance records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Drop every key (simulated power loss / `FLUSHALL`).
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().clear();
        }
    }

    /// Remove all keys whose value fails `keep` — used by failure
    /// injection to model partial loss of recent writes.
    pub fn retain(&self, mut keep: impl FnMut(&str, &[u8]) -> bool) {
        for s in &self.shards {
            s.write().retain(|k, v| keep(k, v));
        }
    }
}

impl Default for ShardedKv {
    fn default() -> Self {
        Self::new()
    }
}

impl KvStore for ShardedKv {
    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        self.metrics.record_get();
        let _span = if trace::active() {
            trace::span("kv.get", &[("key", key)])
        } else {
            trace::SpanGuard::default()
        };
        // `Bytes` values make this clone a refcount bump, not a copy.
        Ok(self.shard_for(key).read().get(key).cloned())
    }

    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.metrics.record_put();
        self.shard_for(key).write().insert(key.to_owned(), value);
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<bool> {
        self.metrics.record_delete();
        Ok(self.shard_for(key).write().remove(key).is_some())
    }

    fn update(&self, key: &str, f: &mut dyn FnMut(Option<Bytes>) -> Option<Bytes>) -> Result<()> {
        self.metrics.record_put();
        let mut shard = self.shard_for(key).write();
        match f(shard.get(key).cloned()) {
            Some(v) => {
                shard.insert(key.to_owned(), v);
            }
            None => {
                shard.remove(key);
            }
        }
        Ok(())
    }

    fn pscan(&self, prefix: &str) -> Result<Vec<(String, Bytes)>> {
        self.metrics.record_scan();
        let _span = if trace::active() {
            trace::span("kv.scan", &[("prefix", prefix)])
        } else {
            trace::SpanGuard::default()
        };
        let mut out = Vec::new();
        for s in &self.shards {
            let guard = s.read();
            out.extend(
                guard
                    .range(prefix.to_owned()..)
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn obs_snapshot(&self) -> Option<RegistrySnapshot> {
        Some(self.registry.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn point_ops() {
        let kv = ShardedKv::new();
        assert_eq!(kv.get("k").unwrap(), None);
        kv.put("k", vec![1, 2, 3].into()).unwrap();
        assert_eq!(kv.get("k").unwrap(), Some(Bytes::from(vec![1, 2, 3])));
        kv.put("k", vec![9].into()).unwrap();
        assert_eq!(kv.get("k").unwrap(), Some(Bytes::from(vec![9])), "put overwrites");
        assert!(kv.delete("k").unwrap());
        assert!(!kv.delete("k").unwrap());
        assert_eq!(kv.len(), 0);
    }

    #[test]
    fn pscan_is_sorted_and_prefix_exact() {
        let kv = ShardedKv::with_shards(8);
        for k in ["a/1", "a/2", "a/10", "ab", "b/1", "a"] {
            kv.put(k, k.as_bytes().to_vec().into()).unwrap();
        }
        let hits = kv.pscan("a/").unwrap();
        let keys: Vec<&str> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a/1", "a/10", "a/2"]);
        // Prefix "a" also matches "ab" and "a" itself.
        assert_eq!(kv.pscan("a").unwrap().len(), 5);
        assert_eq!(kv.pscan("zzz").unwrap(), vec![]);
        // Empty prefix scans everything, sorted.
        let all = kv.pscan("").unwrap();
        assert_eq!(all.len(), 6);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn clear_and_retain() {
        let kv = ShardedKv::new();
        for i in 0..100 {
            kv.put(&format!("k{i}"), vec![i as u8].into()).unwrap();
        }
        kv.retain(|_, v| v[0] % 2 == 0);
        assert_eq!(kv.len(), 50);
        kv.clear();
        assert!(kv.is_empty());
    }

    #[test]
    fn stats_count_operations() {
        let kv = ShardedKv::new();
        kv.put("a", Bytes::new()).unwrap();
        kv.get("a").unwrap();
        kv.get("b").unwrap();
        kv.pscan("").unwrap();
        kv.delete("a").unwrap();
        let m = kv.metrics();
        assert_eq!((m.gets(), m.puts(), m.deletes(), m.scans()), (2, 1, 1, 1));
        let snap = kv.obs_snapshot().expect("sharded kv exposes its registry");
        assert_eq!(snap.counter("kv.gets"), 2);
        assert_eq!(snap.counter("kv.puts"), 1);
    }

    #[test]
    fn concurrent_writers_do_not_lose_keys() {
        let kv = Arc::new(ShardedKv::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let kv = kv.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        kv.put(&format!("t{t}/k{i}"), vec![t as u8].into()).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(kv.len(), 8000);
        for t in 0..8 {
            assert_eq!(kv.pscan(&format!("t{t}/")).unwrap().len(), 1000);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn matches_model_btreemap(
            ops in proptest::collection::vec(
                (0u8..3, "[a-c]{1,4}", proptest::collection::vec(any::<u8>(), 0..4)),
                1..200
            ),
            prefix in "[a-c]{0,2}",
        ) {
            let kv = ShardedKv::with_shards(4);
            let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        kv.put(&key, val.clone().into()).unwrap();
                        model.insert(key, val);
                    }
                    1 => {
                        prop_assert_eq!(kv.delete(&key).unwrap(), model.remove(&key).is_some());
                    }
                    _ => {
                        prop_assert_eq!(kv.get(&key).unwrap(), model.get(&key).cloned().map(Bytes::from));
                    }
                }
            }
            let scanned = kv.pscan(&prefix).unwrap();
            let expect: Vec<(String, Bytes)> = model
                .range(prefix.clone()..)
                .take_while(|(k, _)| k.starts_with(&prefix))
                .map(|(k, v)| (k.clone(), v.clone().into()))
                .collect();
            prop_assert_eq!(scanned, expect);
            prop_assert_eq!(kv.len(), model.len());
        }
    }
}
