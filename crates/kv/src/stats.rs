//! Operation counters for KV instances.
//!
//! Counters are relaxed atomics: they feed throughput reports, not
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live operation counters for one instance or cluster.
#[derive(Debug, Default)]
pub struct KvStats {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    scans: AtomicU64,
}

/// A point-in-time copy of [`KvStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvStatsSnapshot {
    /// Number of `get` calls (including misses).
    pub gets: u64,
    /// Number of `put` calls.
    pub puts: u64,
    /// Number of `delete` calls.
    pub deletes: u64,
    /// Number of `pscan` calls.
    pub scans: u64,
}

impl KvStatsSnapshot {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.scans
    }
}

impl KvStats {
    pub(crate) fn record_get(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_put(&self) {
        self.puts.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_scan(&self) {
        self.scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> KvStatsSnapshot {
        KvStatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.gets.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.scans.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = KvStats::default();
        s.record_get();
        s.record_get();
        s.record_put();
        s.record_scan();
        s.record_delete();
        let snap = s.snapshot();
        assert_eq!(snap.gets, 2);
        assert_eq!(snap.total(), 5);
        s.reset();
        assert_eq!(s.snapshot().total(), 0);
    }
}
