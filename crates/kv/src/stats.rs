//! Operation metrics for KV instances, backed by `diesel-obs`.
//!
//! Counters are registry cells updated with relaxed atomics: they feed
//! throughput reports, not synchronization. Inside a [`crate::KvCluster`]
//! every instance shares one registry and rides an `{instance=N}` label,
//! so a single snapshot shows both the per-instance spread and (via
//! [`diesel_obs::RegistrySnapshot::sum_counter`]) cluster totals.

use diesel_obs::{Counter, Registry};

/// Counter handles for one KV instance (`kv.gets` … `kv.scans`).
/// Cheap to clone; clones share the registry cells.
#[derive(Clone, Debug)]
pub struct KvMetrics {
    gets: Counter,
    puts: Counter,
    deletes: Counter,
    scans: Counter,
}

impl KvMetrics {
    /// Handles in `registry`, dimensioned by `labels` (e.g.
    /// `[("instance", "3")]` inside a cluster).
    pub fn new(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        KvMetrics {
            gets: registry.counter("kv.gets", labels),
            puts: registry.counter("kv.puts", labels),
            deletes: registry.counter("kv.deletes", labels),
            scans: registry.counter("kv.scans", labels),
        }
    }

    pub(crate) fn record_get(&self) {
        self.gets.inc();
    }
    pub(crate) fn record_put(&self) {
        self.puts.inc();
    }
    pub(crate) fn record_delete(&self) {
        self.deletes.inc();
    }
    pub(crate) fn record_scan(&self) {
        self.scans.inc();
    }

    /// Number of `get` calls (including misses).
    pub fn gets(&self) -> u64 {
        self.gets.get()
    }

    /// Number of `put`/`update` calls.
    pub fn puts(&self) -> u64 {
        self.puts.get()
    }

    /// Number of `delete` calls.
    pub fn deletes(&self) -> u64 {
        self.deletes.get()
    }

    /// Number of `pscan` calls.
    pub fn scans(&self) -> u64 {
        self.scans.get()
    }

    /// Total operations.
    pub fn total(&self) -> u64 {
        self.gets() + self.puts() + self.deletes() + self.scans()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_flow_into_the_registry() {
        let reg = Registry::new(Arc::new(diesel_util::MockClock::new()));
        let m = KvMetrics::new(&reg, &[("instance", "0")]);
        m.record_get();
        m.record_get();
        m.record_put();
        m.record_scan();
        m.record_delete();
        assert_eq!(m.gets(), 2);
        assert_eq!(m.total(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("kv.gets{instance=0}"), 2);
        assert_eq!(snap.sum_counter("kv.puts"), 1);
    }
}
