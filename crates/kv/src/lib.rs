//! # diesel-kv — distributed key-value metadata store
//!
//! DIESEL stores file/chunk metadata in a distributed in-memory key-value
//! database (a Redis cluster in the paper, §4/§5). This crate provides the
//! substitute substrate:
//!
//! * [`KvStore`] — the operation surface DIESEL needs: `get`, `put`,
//!   `delete`, batched `mget`/`mput`, and `pscan` (prefix scan — the paper
//!   translates `readdir` into `pscan hash(dir)/d ∪ pscan hash(dir)/f`).
//! * [`ShardedKv`] — a single "instance": an in-memory store sharded
//!   across lock-striped ordered maps, so prefix scans are range scans.
//! * [`KvCluster`] — N instances with Redis-style slot routing
//!   (CRC-16 of the key modulo 16384 slots, slots striped over
//!   instances), per-instance failure injection (node kill) and whole-
//!   cluster power-loss, mirroring the fault scenarios of §4.1.2.
//! * [`KvMetrics`] — operation-counter handles into a shared
//!   `diesel-obs` registry, used by the benchmarks to report QPS
//!   against the measured ceiling of the paper's Redis setup.
//!
//! The store is deliberately *not* persistent: the whole point of DIESEL's
//! self-contained chunks is that this database can be lost and rebuilt.

pub mod cluster;
pub mod hash;
pub mod shard;
pub mod stats;

pub use cluster::{ClusterConfig, KvCluster};
pub use diesel_util::Bytes;
pub use shard::ShardedKv;
pub use stats::KvMetrics;

/// Errors surfaced by KV operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The instance owning this key is down (simulated node failure).
    InstanceDown { instance: usize },
    /// The key does not exist. Batched calls report per-key misses as
    /// `None` instead.
    NotFound(String),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::InstanceDown { instance } => write!(f, "kv instance {instance} is down"),
            KvError::NotFound(k) => write!(f, "key not found: {k:?}"),
        }
    }
}

impl std::error::Error for KvError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, KvError>;

/// The key-value operation surface used by the DIESEL metadata layer.
///
/// Implementations must be safe for concurrent use (`&self` methods).
///
/// Values are [`Bytes`]: the payload plane's single currency. A `get`
/// is a refcount bump on the stored buffer, never a copy, and `put`
/// takes ownership of a buffer the caller usually just encoded (so
/// `record.encode().into()` moves, copying nothing).
pub trait KvStore: Send + Sync {
    /// Fetch the value for `key`, or `Ok(None)` when absent.
    fn get(&self, key: &str) -> Result<Option<Bytes>>;

    /// Store `value` under `key`, overwriting any previous value.
    fn put(&self, key: &str, value: Bytes) -> Result<()>;

    /// Remove `key`. Returns whether it existed.
    fn delete(&self, key: &str) -> Result<bool>;

    /// Batched get: one entry per requested key, `None` on miss.
    fn mget(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Batched put.
    fn mput(&self, pairs: Vec<(String, Bytes)>) -> Result<()> {
        for (k, v) in pairs {
            self.put(&k, v)?;
        }
        Ok(())
    }

    /// Atomically read-modify-write one key: `f` receives the current
    /// value (`None` when absent) and returns the replacement (`None`
    /// deletes the key). Implementations run `f` under the key's lock so
    /// concurrent updaters — including other front-end servers sharing
    /// the store — never lose writes (Redis would do this with a Lua
    /// script or `MULTI`/`EXEC`).
    ///
    /// The default implementation is a get-then-put and is *not* atomic;
    /// any store reachable from more than one thread must override it.
    fn update(&self, key: &str, f: &mut dyn FnMut(Option<Bytes>) -> Option<Bytes>) -> Result<()> {
        match f(self.get(key)?) {
            Some(v) => self.put(key, v),
            None => {
                self.delete(key)?;
                Ok(())
            }
        }
    }

    /// Scan all keys starting with `prefix`, in lexicographic key order.
    fn pscan(&self, prefix: &str) -> Result<Vec<(String, Bytes)>>;

    /// Number of stored keys (diagnostics; O(shards)).
    fn len(&self) -> usize;

    /// True when no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of this store's metric registry, when it keeps one.
    /// Front-end servers merge it into their own snapshot so one read
    /// shows the whole pipeline.
    fn obs_snapshot(&self) -> Option<diesel_obs::RegistrySnapshot> {
        None
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    /// Exercise the default batched implementations through a tiny adapter.
    struct Tiny(diesel_util::Mutex<std::collections::BTreeMap<String, Bytes>>);

    impl KvStore for Tiny {
        fn get(&self, key: &str) -> Result<Option<Bytes>> {
            Ok(self.0.lock().get(key).cloned())
        }
        fn put(&self, key: &str, value: Bytes) -> Result<()> {
            self.0.lock().insert(key.to_owned(), value);
            Ok(())
        }
        fn delete(&self, key: &str) -> Result<bool> {
            Ok(self.0.lock().remove(key).is_some())
        }
        fn pscan(&self, prefix: &str) -> Result<Vec<(String, Bytes)>> {
            Ok(self
                .0
                .lock()
                .range(prefix.to_owned()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }
        fn len(&self) -> usize {
            self.0.lock().len()
        }
    }

    #[test]
    fn default_mget_mput() {
        let kv = Tiny(diesel_util::Mutex::new(Default::default()));
        kv.mput(vec![("a".into(), vec![1].into()), ("b".into(), vec![2].into())]).unwrap();
        let got = kv.mget(&["a", "zz", "b"]).unwrap();
        assert_eq!(got, vec![Some(Bytes::from(vec![1])), None, Some(Bytes::from(vec![2]))]);
        assert!(!kv.is_empty());
    }
}
