//! [`PipelineIter`]: a pull-based pipeline stage that overlaps the
//! stage function with the consumer.
//!
//! [`WorkPool::pipeline`] turns any `Iterator` into a concurrently
//! produced one: stage workers pull `(seq, item)` records from the
//! shared source, apply the stage function, and push results into a
//! bounded channel; the consumer reorders by sequence number. Because
//! sequence numbers are assigned under the source lock and the consumer
//! yields strictly in order, the output stream is **identical to the
//! serial loop for any worker count** — concurrency changes wall-clock,
//! never bytes.
//!
//! Stages chain naturally: a `PipelineIter` is `Send`, so it can be the
//! source of the next `pipeline` call (fetch → decode → train). The
//! bounded channel between stages is the backpressure: a fast producer
//! blocks once `depth` results are waiting.
//!
//! Dropping the iterator mid-stream shuts the stage down gracefully —
//! workers observe the cancel flag / closed channel, stop pulling from
//! the source, and are joined before the drop returns.

use diesel_util::{Clock, Mutex};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::pool::WorkPool;
use crate::queue::Bounded;

type StageResult<T> = std::result::Result<T, Box<dyn std::any::Any + Send>>;

struct SourceState<I> {
    iter: Box<dyn Iterator<Item = I> + Send>,
    seq: u64,
}

struct StageCtx<I, T> {
    source: Arc<Mutex<SourceState<I>>>,
    out: Arc<Bounded<(u64, StageResult<T>)>>,
    f: Arc<dyn Fn(I) -> T + Send + Sync>,
    cancel: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    clock: Arc<dyn Clock>,
    items: diesel_obs::Counter,
    stage_ns: diesel_obs::HistogramHandle,
    /// Trace state captured when the pipeline was built, restored on
    /// the stage worker so `f` runs under the submitter's tracer.
    ambient: diesel_obs::AmbientTrace,
}

fn stage_loop<I, T>(ctx: StageCtx<I, T>) {
    let _trace = ctx.ambient.install();
    loop {
        if ctx.cancel.load(Ordering::Acquire) {
            break;
        }
        // Assign the sequence number under the same lock as the pull so
        // item order and numbering always agree.
        let next = {
            let mut g = ctx.source.lock();
            let item = g.iter.next();
            item.map(|it| {
                let seq = g.seq;
                g.seq += 1;
                (seq, it)
            })
        };
        let Some((seq, item)) = next else { break };
        let t0 = ctx.clock.now_ns();
        let out = catch_unwind(AssertUnwindSafe(|| (ctx.f)(item)));
        ctx.stage_ns.record_ns(ctx.clock.now_ns().saturating_sub(t0));
        ctx.items.inc();
        if ctx.out.push((seq, out)).is_err() {
            // Consumer dropped the iterator; stop producing.
            break;
        }
    }
    if ctx.active.fetch_sub(1, Ordering::AcqRel) == 1 {
        ctx.out.close();
    }
}

struct Threaded<T> {
    out: Arc<Bounded<(u64, StageResult<T>)>>,
    cancel: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Results that arrived ahead of `next_seq`, awaiting their turn.
    buf: BTreeMap<u64, StageResult<T>>,
    next_seq: u64,
}

impl<T> Drop for Threaded<T> {
    fn drop(&mut self) {
        self.cancel.store(true, Ordering::Release);
        self.out.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

enum Inner<T> {
    /// Deterministic mode: pull + apply lazily on the consumer thread.
    Inline(Box<dyn FnMut() -> Option<T> + Send>),
    Threaded(Threaded<T>),
}

/// A pipeline stage's output stream; see [`WorkPool::pipeline`].
pub struct PipelineIter<T> {
    inner: Inner<T>,
}

impl<T> Iterator for PipelineIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.inner {
            Inner::Inline(pull) => pull(),
            Inner::Threaded(t) => loop {
                if let Some(r) = t.buf.remove(&t.next_seq) {
                    t.next_seq += 1;
                    match r {
                        Ok(v) => return Some(v),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                match t.out.pop() {
                    Some((seq, r)) => {
                        t.buf.insert(seq, r);
                    }
                    // Closed and the next sequence number never arrived:
                    // the stage has shut down; end the stream.
                    None => return None,
                }
            },
        }
    }
}

impl<T> std::fmt::Debug for PipelineIter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Inline(_) => f.debug_struct("PipelineIter").field("mode", &"inline").finish(),
            Inner::Threaded(t) => f
                .debug_struct("PipelineIter")
                .field("mode", &"threaded")
                .field("workers", &t.handles.len())
                .field("buffered", &t.buf.len())
                .finish(),
        }
    }
}

impl WorkPool {
    /// Run `f` over `source` concurrently, yielding results in source
    /// order. `stage` names the stage in metrics
    /// (`exec.pipeline_items{pool=…,stage=…}`); `depth` bounds how many
    /// finished results may wait for the consumer (the inter-stage
    /// backpressure).
    ///
    /// On an inline pool (`workers <= 1`) no threads are spawned: each
    /// `next()` pulls one item and applies `f` on the calling thread,
    /// which keeps the stream — and everything downstream of it —
    /// deterministic.
    ///
    /// Stage workers are dedicated threads (the stage lives as long as
    /// the returned iterator, which must not tie up pool workers), but
    /// their count follows the pool's configured width.
    pub fn pipeline<SRC, I, T, F>(
        &self,
        stage: &str,
        depth: usize,
        source: SRC,
        f: F,
    ) -> PipelineIter<T>
    where
        SRC: Iterator<Item = I> + Send + 'static,
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        let labels = [("pool", self.name()), ("stage", stage)];
        let items = self.registry().counter("exec.pipeline_items", &labels);
        let stage_ns = self.registry().histogram("exec.pipeline_stage_ns", &labels);
        let clock = Arc::clone(self.clock());
        // Captured here (at build time) rather than at pull time: the
        // iterator may be consumed on a thread with no ambient tracer.
        let ambient = diesel_obs::AmbientTrace::capture();

        if self.workers() <= 1 {
            let mut source = source;
            let pull = Box::new(move || {
                let item = source.next()?;
                let _trace = ambient.install();
                let t0 = clock.now_ns();
                let out = f(item);
                stage_ns.record_ns(clock.now_ns().saturating_sub(t0));
                items.inc();
                Some(out)
            });
            return PipelineIter { inner: Inner::Inline(pull) };
        }

        let workers = self.workers();
        let out: Arc<Bounded<(u64, StageResult<T>)>> = Arc::new(Bounded::new(depth.max(1)));
        let source: Arc<Mutex<SourceState<I>>> = Arc::new(Mutex::named(
            "exec.pipeline_source",
            SourceState { iter: Box::new(source), seq: 0 },
        ));
        let cancel = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(workers));
        let f: Arc<dyn Fn(I) -> T + Send + Sync> = Arc::new(f);

        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let ctx = StageCtx {
                source: Arc::clone(&source),
                out: Arc::clone(&out),
                f: Arc::clone(&f),
                cancel: Arc::clone(&cancel),
                active: Arc::clone(&active),
                clock: Arc::clone(&clock),
                items: items.clone(),
                stage_ns: stage_ns.clone(),
                ambient: ambient.clone(),
            };
            let spawned = std::thread::Builder::new()
                .name(format!("{}-{stage}-{i}", self.name()))
                .spawn(move || stage_loop(ctx));
            match spawned {
                Ok(h) => handles.push(h),
                Err(_) => {
                    if active.fetch_sub(1, Ordering::AcqRel) == 1 {
                        out.close();
                    }
                }
            }
        }

        if handles.is_empty() {
            // Could not spawn a single stage thread (resource
            // exhaustion): degrade to pulling inline so no item is lost.
            let pull = Box::new(move || {
                let item = { source.lock().iter.next() }?;
                let _trace = ambient.install();
                let t0 = clock.now_ns();
                let result = f(item);
                stage_ns.record_ns(clock.now_ns().saturating_sub(t0));
                items.inc();
                Some(result)
            });
            return PipelineIter { inner: Inner::Inline(pull) };
        }

        PipelineIter {
            inner: Inner::Threaded(Threaded {
                out,
                cancel,
                handles,
                buf: BTreeMap::new(),
                next_seq: 0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecConfig;
    use std::time::Duration;

    fn pool(workers: usize) -> WorkPool {
        WorkPool::new("p", ExecConfig::workers(workers))
    }

    #[test]
    fn output_order_matches_source_for_any_worker_count() {
        let reference: Vec<u64> = (0..200u64).map(|x| x * 3 + 1).collect();
        for w in [1, 2, 8] {
            let p = pool(w);
            let got: Vec<u64> = p.pipeline("triple", 4, 0..200u64, |x| x * 3 + 1).collect();
            assert_eq!(got, reference, "workers={w}");
        }
    }

    #[test]
    fn order_survives_adversarial_stage_latency() {
        // Early items take longest, so completion order inverts arrival
        // order; the reorder buffer must restore it.
        let p = pool(4);
        let got: Vec<u64> = p
            .pipeline("slow", 8, 0..32u64, |x| {
                std::thread::sleep(Duration::from_millis(32 - x));
                x
            })
            .collect();
        assert_eq!(got, (0..32u64).collect::<Vec<_>>());
    }

    #[test]
    fn stages_chain() {
        for w in [1, 4] {
            let p = pool(w);
            let fetch = p.pipeline("fetch", 4, 0..50u64, |x| x + 1);
            let decode = p.pipeline("decode", 4, fetch, |x| x * 2);
            let got: Vec<u64> = decode.collect();
            let want: Vec<u64> = (0..50u64).map(|x| (x + 1) * 2).collect();
            assert_eq!(got, want, "workers={w}");
        }
    }

    #[test]
    fn drop_mid_stream_shuts_down_and_stops_pulling() {
        let p = pool(4);
        let pulled = Arc::new(AtomicUsize::new(0));
        let pulled2 = pulled.clone();
        let source = (0..10_000u64).inspect(move |_| {
            pulled2.fetch_add(1, Ordering::SeqCst);
        });
        let mut it = p.pipeline("partial", 2, source, |x| x);
        assert!(it.next().is_some());
        drop(it); // must join workers without hanging
        let seen = pulled.load(Ordering::SeqCst);
        assert!(seen < 10_000, "drop stopped the source early (pulled {seen})");
    }

    #[test]
    fn stage_panic_resumes_on_consumer_at_the_right_position() {
        for w in [1, 4] {
            let p = pool(w);
            let mut it = p.pipeline("explode", 4, 0..10u64, |x| {
                if x == 3 {
                    panic!("stage blew up on {x}");
                }
                x
            });
            let mut got = Vec::new();
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                for v in it.by_ref() {
                    got.push(v);
                }
            }));
            assert!(caught.is_err(), "workers={w}");
            // Everything before the faulty item was yielded in order.
            assert_eq!(got, vec![0, 1, 2], "workers={w}");
        }
    }

    #[test]
    fn inline_pipeline_is_lazy() {
        let p = pool(1);
        let pulled = Arc::new(AtomicUsize::new(0));
        let pulled2 = pulled.clone();
        let source = (0..100u64).inspect(move |_| {
            pulled2.fetch_add(1, Ordering::SeqCst);
        });
        let mut it = p.pipeline("lazy", 4, source, |x| x);
        assert_eq!(pulled.load(Ordering::SeqCst), 0, "nothing pulled before first next()");
        assert_eq!(it.next(), Some(0));
        assert_eq!(pulled.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn depth_bounds_readahead() {
        // With depth 2 and a stalled consumer, workers can complete at
        // most depth + workers items (depth queued + one in flight each).
        let p = pool(2);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let mut it = p.pipeline("bounded", 2, 0..1000u64, move |x| {
            done2.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(it.next(), Some(0));
        std::thread::sleep(Duration::from_millis(30));
        let completed = done.load(Ordering::SeqCst);
        assert!(completed <= 2 + 2 + 1, "readahead ran away: {completed}");
        drop(it);
    }

    #[test]
    fn pipeline_metrics_count_items() {
        let p = pool(2);
        let n: usize = p.pipeline("m", 4, 0..25u64, |x| x).count();
        assert_eq!(n, 25);
        let snap = p.registry().snapshot();
        assert_eq!(snap.counter("exec.pipeline_items{pool=p,stage=m}"), 25);
    }

    #[test]
    fn stage_spans_parent_the_span_that_built_the_pipeline() {
        use diesel_obs::{trace, Tracer};
        for w in [1, 4] {
            let p = pool(w);
            let tracer = Tracer::enabled(p.registry());
            let _t = trace::install_tracer(&tracer);
            let it = {
                let _epoch = trace::span("epoch", &[]);
                p.pipeline("traced", 4, 0..6u64, |x| {
                    let _s = trace::span("stage", &[]);
                    x
                })
            };
            assert_eq!(it.count(), 6);
            let spans = tracer.drain();
            let epoch = spans.iter().find(|s| s.name == "epoch").unwrap();
            let stages: Vec<_> = spans.iter().filter(|s| s.name == "stage").collect();
            assert_eq!(stages.len(), 6, "workers={w}");
            assert!(
                stages.iter().all(|s| s.trace == epoch.trace && s.parent == Some(epoch.id)),
                "workers={w}: stage spans belong to the builder's trace"
            );
        }
    }

    #[test]
    fn debug_formats() {
        let inline = pool(1).pipeline("d", 1, 0..1u64, |x| x);
        assert!(format!("{inline:?}").contains("inline"));
        let threaded = pool(2).pipeline("d", 1, 0..1u64, |x| x);
        assert!(format!("{threaded:?}").contains("threaded"));
    }
}
