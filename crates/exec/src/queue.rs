//! A bounded MPMC queue on the workspace's poison-recovering
//! [`Mutex`]/[`Condvar`] — the channel underneath [`WorkPool`] and
//! [`PipelineIter`](crate::PipelineIter).
//!
//! The capacity bound is what turns "spawn everything" into
//! backpressure: a producer that outruns the consumers blocks in
//! [`push`](Bounded::push) instead of growing an unbounded buffer, and
//! a closed queue wakes every waiter so shutdown never hangs.
//!
//! [`WorkPool`]: crate::WorkPool

use diesel_util::{Condvar, Mutex};
use std::collections::VecDeque;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Bounded {
            capacity,
            state: Mutex::named(
                "exec.queue",
                State { items: VecDeque::with_capacity(capacity), closed: false },
            ),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.state.lock().items.is_empty()
    }

    /// Enqueue, blocking while the queue is full. Returns the item back
    /// when the queue has been closed.
    pub fn push(&self, item: T) -> std::result::Result<(), T> {
        let mut g = self.state.lock();
        loop {
            if g.closed {
                return Err(item);
            }
            if g.items.len() < self.capacity {
                g.items.push_back(item);
                drop(g);
                self.not_empty.notify_one();
                return Ok(());
            }
            g = self.not_full.wait(g);
        }
    }

    /// Enqueue without blocking. Returns the item back when the queue
    /// is full or closed.
    pub fn try_push(&self, item: T) -> std::result::Result<(), T> {
        let mut g = self.state.lock();
        if g.closed || g.items.len() >= self.capacity {
            return Err(item);
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is empty. Returns `None` once
    /// the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.state.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g);
        }
    }

    /// Dequeue without blocking; `None` when nothing is queued.
    pub fn try_pop(&self) -> Option<T> {
        let mut g = self.state.lock();
        let item = g.items.pop_front()?;
        drop(g);
        self.not_full.notify_one();
        Some(item)
    }

    /// Close the queue: producers get their items back, consumers drain
    /// what is left and then see `None`. Idempotent.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](Bounded::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

impl<T> std::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bounded")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_len() {
        let q = Bounded::new(4);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_push_refuses_when_full() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        q.pop();
        q.try_push(3).unwrap();
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(9).unwrap();
        assert_eq!(q.try_push(10), Err(10));
    }

    #[test]
    fn close_unblocks_and_drains() {
        let q = Arc::new(Bounded::new(1));
        q.push(7).unwrap();
        // A producer blocked on a full queue gets its item back at close.
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.push(8));
        // Give the producer a moment to block on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(t.join().unwrap(), Err(8));
        // The queued item still drains; then consumers see the end.
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
        assert_eq!(q.push(9), Err(9));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(2));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop());
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn backpressure_blocks_until_space() {
        let q = Arc::new(Bounded::new(1));
        q.push(1).unwrap();
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.push(2).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(q.pop(), Some(1));
        assert!(t.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn debug_format() {
        let q = Bounded::new(3);
        q.push('x').unwrap();
        let s = format!("{q:?}");
        assert!(s.contains("capacity: 3") && s.contains("len: 1"), "{s}");
    }
}
