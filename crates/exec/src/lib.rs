//! # diesel-exec — the workspace's one way to run work in the background
//!
//! DIESEL's throughput story is overlap: the oneshot cache "prefetches
//! in the background" while the task trains (§4.2, Figs. 10a/11b), the
//! request executor merges and issues chunk reads concurrently, and the
//! data loader hides storage latency behind compute. Before this crate,
//! each of those used its own ad-hoc `std::thread::spawn`; now they all
//! share one executor with bounded queues, backpressure, panic
//! propagation, cancellation, and observability.
//!
//! Pieces:
//!
//! * [`WorkPool`] — a named pool of worker threads fed by a bounded
//!   queue ([`queue::Bounded`]). Submitting past the queue capacity
//!   blocks (backpressure) or runs inline (scoped fan-out), never grows
//!   an unbounded buffer.
//! * [`TaskHandle`] / [`CancelToken`] — detached background tasks
//!   ([`WorkPool::spawn`]): panics are captured and surface as
//!   [`ExecError::Panicked`] at [`TaskHandle::join`]; dropping an
//!   unjoined handle flips the task's [`CancelToken`] so cooperative
//!   sweeps stop instead of leaking.
//! * [`Scope`] + [`WorkPool::map`]/[`WorkPool::try_map`] — structured
//!   fan-out over borrowed data. Results are written into per-item
//!   slots, so the output order (and the first error, for `try_map`) is
//!   deterministic regardless of worker count or scheduling.
//! * [`PipelineIter`] ([`WorkPool::pipeline`]) — a bounded-channel
//!   pipeline stage: N workers pull `(seq, item)` records from a shared
//!   source, apply the stage function, and the consumer reorders by
//!   sequence number, so the stream is byte-identical to the serial
//!   loop for any worker count. Stages chain by using one pipeline as
//!   the next one's source.
//!
//! ## Determinism mode
//!
//! A pool built with `workers <= 1` runs everything inline on the
//! calling thread, in submission order — no threads, no interleaving.
//! [`ExecConfig::from_env`] reads `DIESEL_EXEC_WORKERS`, so
//! `DIESEL_EXEC_WORKERS=1 cargo test` exercises the whole tree in
//! deterministic mode, the same way an injected
//! [`MockClock`](diesel_util::MockClock) controls time.
//!
//! ## Observability
//!
//! Pools registered with a shared [`Registry`](diesel_obs::Registry)
//! export `exec.tasks_submitted`/`completed`/`panicked`/`cancelled`
//! counters, an `exec.queue_depth` gauge, and an `exec.task_ns`
//! latency histogram, all labelled `{pool=<name>}`.

pub mod pipeline;
pub mod pool;
pub mod queue;

pub use pipeline::PipelineIter;
pub use pool::{global, CancelToken, Scope, TaskHandle, WorkPool};
pub use queue::Bounded;

/// Errors surfaced by the executor itself (task bodies carry their own
/// error types through [`WorkPool::try_map`] and pipeline items).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The task panicked; the payload message is preserved.
    Panicked(String),
    /// The task was cancelled before it produced a result.
    Cancelled,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Panicked(msg) => write!(f, "task panicked: {msg}"),
            ExecError::Cancelled => write!(f, "task cancelled"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExecError>;

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads. `<= 1` selects the deterministic inline mode:
    /// every submission runs on the calling thread, in order.
    pub workers: usize,
    /// Bounded queue capacity; submissions past it block (backpressure)
    /// or run inline (scoped fan-out). `0` picks `4 × workers`.
    pub queue_capacity: usize,
}

impl ExecConfig {
    /// A pool of exactly `workers` threads.
    pub fn workers(workers: usize) -> Self {
        ExecConfig { workers, queue_capacity: 0 }
    }

    /// Deterministic inline mode (no worker threads).
    pub fn inline() -> Self {
        Self::workers(1)
    }

    /// Read `DIESEL_EXEC_WORKERS` from the environment; unset or
    /// unparsable falls back to the hardware default (capped at 8 so
    /// test machines with many cores don't fan out hundreds of
    /// threads).
    pub fn from_env() -> Self {
        let workers = std::env::var("DIESEL_EXEC_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or_else(default_workers);
        Self::workers(workers)
    }

    /// The effective queue capacity for this configuration.
    pub(crate) fn capacity(&self) -> usize {
        if self.queue_capacity > 0 {
            self.queue_capacity
        } else {
            (self.workers.max(1)) * 4
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        assert_eq!(ExecConfig::inline().workers, 1);
        assert_eq!(ExecConfig::workers(5).workers, 5);
        assert_eq!(ExecConfig::workers(3).capacity(), 12);
        assert_eq!(ExecConfig { workers: 2, queue_capacity: 7 }.capacity(), 7);
        // Zero workers still yields a sane capacity.
        assert_eq!(ExecConfig { workers: 0, queue_capacity: 0 }.capacity(), 4);
    }

    #[test]
    fn error_display() {
        assert_eq!(ExecError::Cancelled.to_string(), "task cancelled");
        assert!(ExecError::Panicked("boom".into()).to_string().contains("boom"));
    }
}
