//! [`WorkPool`]: named worker threads over a bounded queue, plus the
//! structured concurrency primitives built on it — detached tasks with
//! cancellation ([`WorkPool::spawn`]), scoped fan-out over borrowed
//! data ([`WorkPool::scope`], [`WorkPool::map`], [`WorkPool::try_map`])
//! and chunked data parallelism ([`WorkPool::for_each_chunk_mut`]).
//!
//! Two properties hold everywhere:
//!
//! * **Determinism** — results land in per-item slots, so fan-out
//!   output (and the first error of a fallible fan-out) is identical
//!   for any worker count, including the inline (`workers <= 1`) mode
//!   that runs everything on the calling thread.
//! * **No idle deadlock** — a thread waiting for a scope *helps*: it
//!   drains jobs from the pool queue while it waits, so nested fan-out
//!   (a pooled task that itself fans out on the same pool) cannot
//!   starve even when every worker is busy.

use diesel_obs::{AmbientTrace, Counter, Gauge, HistogramHandle, Registry};
use diesel_util::{Clock, Condvar, Mutex};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::queue::Bounded;
use crate::{ExecConfig, ExecError, Result};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Turn a panic payload into a printable message.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Registry handles for one pool's `exec.*` metrics, labelled
/// `{pool=<name>}`.
#[derive(Clone)]
pub(crate) struct PoolMetrics {
    submitted: Counter,
    completed: Counter,
    panicked: Counter,
    cancelled: Counter,
    queue_depth: Gauge,
    task_ns: HistogramHandle,
}

impl PoolMetrics {
    fn new(registry: &Registry, name: &str) -> Self {
        let labels = [("pool", name)];
        PoolMetrics {
            submitted: registry.counter("exec.tasks_submitted", &labels),
            completed: registry.counter("exec.tasks_completed", &labels),
            panicked: registry.counter("exec.tasks_panicked", &labels),
            cancelled: registry.counter("exec.tasks_cancelled", &labels),
            queue_depth: registry.gauge("exec.queue_depth", &labels),
            task_ns: registry.histogram("exec.task_ns", &labels),
        }
    }
}

/// Run one job: time it, count it, and contain any panic that escaped
/// the task wrappers (spawn/scope wrappers catch their own panics to
/// deliver the payload; this outer catch keeps worker threads alive no
/// matter what).
fn run_job(metrics: &PoolMetrics, clock: &Arc<dyn Clock>, job: Job) {
    let t0 = clock.now_ns();
    let out = catch_unwind(AssertUnwindSafe(job));
    metrics.task_ns.record_ns(clock.now_ns().saturating_sub(t0));
    metrics.completed.inc();
    if out.is_err() {
        metrics.panicked.inc();
    }
}

struct WorkerCtx {
    queue: Arc<Bounded<Job>>,
    metrics: PoolMetrics,
    clock: Arc<dyn Clock>,
}

fn worker_loop(ctx: WorkerCtx) {
    while let Some(job) = ctx.queue.pop() {
        ctx.metrics.queue_depth.set(ctx.queue.len() as u64);
        run_job(&ctx.metrics, &ctx.clock, job);
    }
}

struct PoolInner {
    name: String,
    workers: usize,
    queue: Arc<Bounded<Job>>,
    started: AtomicBool,
    spawned: AtomicUsize,
    start_lock: Mutex<()>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    registry: Arc<Registry>,
    clock: Arc<dyn Clock>,
    metrics: PoolMetrics,
}

impl PoolInner {
    /// Whether submissions must run on the calling thread right now:
    /// the pool is configured inline, or every worker failed to spawn.
    fn inline_now(&self) -> bool {
        self.workers <= 1
            || (self.started.load(Ordering::Acquire) && self.spawned.load(Ordering::Acquire) == 0)
    }

    /// Spawn the worker threads on first use (lazily, so pools embedded
    /// in servers and caches cost nothing until work arrives).
    fn ensure_started(&self) {
        if self.workers <= 1 || self.started.load(Ordering::Acquire) {
            return;
        }
        let _g = self.start_lock.lock();
        if self.started.load(Ordering::Acquire) {
            return;
        }
        let mut handles = self.handles.lock();
        for i in 0..self.workers {
            let ctx = WorkerCtx {
                queue: Arc::clone(&self.queue),
                metrics: self.metrics.clone(),
                clock: Arc::clone(&self.clock),
            };
            let spawned = std::thread::Builder::new()
                .name(format!("{}-{i}", self.name))
                .spawn(move || worker_loop(ctx));
            if let Ok(h) = spawned {
                handles.push(h);
                self.spawned.fetch_add(1, Ordering::AcqRel);
            }
        }
        drop(handles);
        self.started.store(true, Ordering::Release);
    }

    /// Submit with backpressure: block while the queue is full.
    fn submit(&self, job: Job) {
        self.metrics.submitted.inc();
        if self.inline_now() {
            run_job(&self.metrics, &self.clock, job);
            return;
        }
        self.ensure_started();
        if self.inline_now() {
            run_job(&self.metrics, &self.clock, job);
            return;
        }
        match self.queue.push(job) {
            Ok(()) => self.metrics.queue_depth.set(self.queue.len() as u64),
            // Closed mid-shutdown: run the straggler here rather than
            // dropping it.
            Err(job) => run_job(&self.metrics, &self.clock, job),
        }
    }

    /// Submit without blocking: a full (or closed) queue runs the job
    /// on the calling thread instead. Scoped fan-out uses this so a
    /// pooled task that fans out on its own pool can never deadlock on
    /// its own queue.
    fn submit_or_run(&self, job: Job) {
        self.metrics.submitted.inc();
        if self.inline_now() {
            run_job(&self.metrics, &self.clock, job);
            return;
        }
        self.ensure_started();
        match self.queue.try_push(job) {
            Ok(()) => self.metrics.queue_depth.set(self.queue.len() as u64),
            Err(job) => run_job(&self.metrics, &self.clock, job),
        }
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        self.queue.close();
        for h in self.handles.get_mut().drain(..) {
            let _ = h.join();
        }
    }
}

/// A named, shared worker pool with a bounded submission queue.
///
/// `WorkPool` is cheap to clone (all clones share the workers); inject
/// it the way a [`Clock`] is injected — construct
/// once per deployment (or take [`global()`]) and hand copies to every
/// layer that runs background work.
#[derive(Clone)]
pub struct WorkPool {
    inner: Arc<PoolInner>,
}

impl WorkPool {
    /// A pool with a private metrics registry.
    pub fn new(name: &str, config: ExecConfig) -> Self {
        Self::with_registry(name, config, Arc::new(Registry::default()))
    }

    /// A pool whose `exec.*` metrics land in a shared `registry`.
    pub fn with_registry(name: &str, config: ExecConfig, registry: Arc<Registry>) -> Self {
        let metrics = PoolMetrics::new(&registry, name);
        let clock = Arc::clone(registry.clock());
        WorkPool {
            inner: Arc::new(PoolInner {
                name: name.to_owned(),
                workers: config.workers.max(1),
                queue: Arc::new(Bounded::new(config.capacity())),
                started: AtomicBool::new(false),
                spawned: AtomicUsize::new(0),
                start_lock: Mutex::named("exec.pool_start", ()),
                handles: Mutex::named("exec.pool_handles", Vec::new()),
                registry,
                clock,
                metrics,
            }),
        }
    }

    /// A deterministic single-threaded pool: everything runs inline on
    /// the calling thread, in submission order.
    pub fn inline(name: &str) -> Self {
        Self::new(name, ExecConfig::inline())
    }

    /// The pool's name (its `{pool=…}` metric label).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Whether this pool runs submissions inline (deterministic mode).
    pub fn is_inline(&self) -> bool {
        self.inner.inline_now()
    }

    /// The registry holding this pool's `exec.*` metrics.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    pub(crate) fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    // ---- detached tasks ----

    /// Run `f` in the background. The handle's drop cancels the task's
    /// token (see [`TaskHandle`]); use
    /// [`spawn_cancellable`](Self::spawn_cancellable) when the task
    /// wants to observe that.
    pub fn spawn<T, F>(&self, f: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_cancellable(move |_| f())
    }

    /// Run `f` in the background with a [`CancelToken`] it can poll
    /// between units of work. Panics inside `f` are captured and
    /// surface as [`ExecError::Panicked`] from [`TaskHandle::join`].
    pub fn spawn_cancellable<T, F>(&self, f: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&CancelToken) -> T + Send + 'static,
    {
        let token = CancelToken::default();
        let shared = Arc::new(TaskShared {
            slot: Mutex::named("exec.task_slot", None),
            done: Condvar::new(),
        });
        let (token2, shared2) = (token.clone(), Arc::clone(&shared));
        let panicked = self.inner.metrics.panicked.clone();
        // Carry the submitter's ambient trace into the worker, so spans
        // opened by the task parent the span that spawned it.
        let ambient = AmbientTrace::capture();
        let job: Job = Box::new(move || {
            let _trace = ambient.install();
            let out = catch_unwind(AssertUnwindSafe(|| f(&token2)));
            let out = out.map_err(|p| {
                panicked.inc();
                panic_message(p.as_ref())
            });
            *shared2.slot.lock() = Some(out);
            shared2.done.notify_all();
        });
        self.inner.submit(job);
        TaskHandle {
            shared,
            token,
            cancelled_counter: self.inner.metrics.cancelled.clone(),
            joined: false,
        }
    }

    // ---- scoped fan-out ----

    /// Structured fan-out over borrowed data, like `std::thread::scope`
    /// but on the pool: every job spawned inside `f` completes before
    /// `scope` returns, and the first captured panic is re-raised on
    /// the caller.
    pub fn scope<'env, F, R>(&'env self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            core: Mutex::named("exec.scope", ScopeCore { pending: 0, panic: None }),
            done: Condvar::new(),
        });
        let scope = Scope { pool: self, state: Arc::clone(&state), _env: PhantomData };
        let result = {
            // Wait for every spawned job even if `f` itself unwinds, so
            // borrows captured by the jobs stay alive long enough.
            struct WaitGuard<'a> {
                pool: &'a WorkPool,
                state: &'a Arc<ScopeState>,
            }
            impl Drop for WaitGuard<'_> {
                fn drop(&mut self) {
                    self.pool.wait_scope(self.state);
                }
            }
            let _guard = WaitGuard { pool: self, state: &state };
            f(&scope)
        };
        if let Some(msg) = state.core.lock().panic.take() {
            std::panic::resume_unwind(Box::new(msg));
        }
        result
    }

    /// Block until `state.pending` reaches zero, draining pool jobs
    /// while waiting ("helping"), so scopes opened from inside pooled
    /// tasks make progress even when every worker is occupied.
    fn wait_scope(&self, state: &Arc<ScopeState>) {
        loop {
            if state.core.lock().pending == 0 {
                return;
            }
            if let Some(job) = self.inner.queue.try_pop() {
                self.inner.metrics.queue_depth.set(self.inner.queue.len() as u64);
                run_job(&self.inner.metrics, &self.inner.clock, job);
                continue;
            }
            let core = state.core.lock();
            if core.pending == 0 {
                return;
            }
            // The timeout re-checks the queue periodically; completion of
            // our own jobs notifies `done` directly.
            let (guard, _timed_out) = state.done.wait_timeout(core, Duration::from_millis(2));
            drop(guard);
        }
    }

    /// Fan `f` out over `items`; the result vector is index-aligned
    /// with the input regardless of worker count or scheduling.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        enum NoError {}
        let out: std::result::Result<Vec<T>, NoError> =
            self.try_map(items, |i, item| Ok(f(i, item)));
        match out {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    /// Fallible fan-out: runs `f` over every item, returns the results
    /// in input order, or the error of the *lowest-indexed* failing
    /// item — the same error the serial loop would have returned first,
    /// for any worker count.
    pub fn try_map<I, T, E, F>(&self, items: Vec<I>, f: F) -> std::result::Result<Vec<T>, E>
    where
        I: Send,
        T: Send,
        E: Send,
        F: Fn(usize, I) -> std::result::Result<T, E> + Sync,
    {
        let n = items.len();
        let mut slots: Vec<Option<std::result::Result<T, E>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        self.scope(|s| {
            let f = &f;
            for ((i, item), slot) in items.into_iter().enumerate().zip(slots.iter_mut()) {
                s.spawn(move || {
                    *slot = Some(f(i, item));
                });
            }
        });
        // Every slot is filled once the scope has waited; a panic would
        // have resumed above.
        let mut out = Vec::with_capacity(n);
        for r in slots.into_iter().flatten() {
            out.push(r?);
        }
        Ok(out)
    }

    /// Apply `f(chunk_index, chunk)` to every `size`-sized chunk of
    /// `data` (last chunk may be shorter) across the pool. Chunk
    /// indices are global and each chunk is exactly what `chunks_mut`
    /// would produce, so the result is identical to the serial loop.
    ///
    /// Panics if `size` is zero (same contract as `chunks_mut`).
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(size > 0, "for_each_chunk_mut: chunk size must be non-zero");
        let n_chunks = data.len().div_ceil(size);
        let workers = self.workers().min(n_chunks);
        if workers <= 1 {
            for (i, chunk) in data.chunks_mut(size).enumerate() {
                f(i, chunk);
            }
            return;
        }
        // One contiguous run of whole chunks per worker.
        let chunks_per_worker = n_chunks.div_ceil(workers);
        let stride = chunks_per_worker * size;
        self.scope(|s| {
            let f = &f;
            let mut rest = data;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = stride.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let first = base;
                s.spawn(move || {
                    for (i, chunk) in head.chunks_mut(size).enumerate() {
                        f(first + i, chunk);
                    }
                });
                base += chunks_per_worker;
            }
        });
    }
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("name", &self.inner.name)
            .field("workers", &self.inner.workers)
            .field("queued", &self.inner.queue.len())
            .finish()
    }
}

/// The process-wide default pool, sized by `DIESEL_EXEC_WORKERS` (see
/// [`ExecConfig::from_env`]). Created lazily; layers that are not
/// handed an explicit pool share this one.
pub fn global() -> &'static WorkPool {
    static GLOBAL: OnceLock<WorkPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkPool::new("global", ExecConfig::from_env()))
}

// ---- cancellation ----

/// A cooperative cancellation flag shared between a task and its
/// [`TaskHandle`]. Long-running tasks poll
/// [`is_cancelled`](CancelToken::is_cancelled) between units of work.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Request cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

// ---- task handles ----

struct TaskShared<T> {
    slot: Mutex<Option<std::result::Result<T, String>>>,
    done: Condvar,
}

/// Handle to a background task started by [`WorkPool::spawn`].
///
/// Unlike a raw `JoinHandle`, dropping this handle does not leak the
/// task: the drop flips the task's [`CancelToken`] so a cooperative
/// task winds down, and the pool still owns (and finishes) the
/// submitted job either way.
pub struct TaskHandle<T> {
    shared: Arc<TaskShared<T>>,
    token: CancelToken,
    cancelled_counter: Counter,
    joined: bool,
}

impl<T> TaskHandle<T> {
    /// Wait for the task and take its result. A panic inside the task
    /// surfaces as [`ExecError::Panicked`].
    pub fn join(mut self) -> Result<T> {
        self.joined = true;
        let mut g = self.shared.slot.lock();
        loop {
            if let Some(r) = g.take() {
                return r.map_err(ExecError::Panicked);
            }
            g = self.shared.done.wait(g);
        }
    }

    /// Has the task produced its result?
    pub fn is_finished(&self) -> bool {
        self.shared.slot.lock().is_some()
    }

    /// The task's cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.token
    }

    /// Request cancellation without waiting.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Let the task run unobserved: the drop will *not* cancel it.
    pub fn detach(mut self) {
        self.joined = true;
    }
}

impl<T> Drop for TaskHandle<T> {
    fn drop(&mut self) {
        if !self.joined {
            self.token.cancel();
            self.cancelled_counter.inc();
        }
    }
}

impl<T> std::fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("finished", &self.is_finished())
            .field("cancelled", &self.token.is_cancelled())
            .finish()
    }
}

// ---- scopes ----

struct ScopeCore {
    pending: usize,
    panic: Option<String>,
}

struct ScopeState {
    core: Mutex<ScopeCore>,
    done: Condvar,
}

/// A fan-out scope created by [`WorkPool::scope`]. Jobs may borrow
/// anything that outlives the scope (`'env`).
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope WorkPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Run `f` on the pool (or inline when the queue is full — the
    /// backpressure path). The closure may borrow from `'env`.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.core.lock().pending += 1;
        let state = Arc::clone(&self.state);
        let panicked = self.pool.inner.metrics.panicked.clone();
        // Restore the submitter's trace state in the worker (or inline
        // on the full-queue path — install is idempotent there).
        let ambient = AmbientTrace::capture();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let _trace = ambient.install();
            let out = catch_unwind(AssertUnwindSafe(f));
            let mut core = state.core.lock();
            if let Err(p) = out {
                panicked.inc();
                if core.panic.is_none() {
                    core.panic = Some(panic_message(p.as_ref()));
                }
            }
            core.pending -= 1;
            drop(core);
            state.done.notify_all();
        });
        // SAFETY: `WorkPool::scope` does not return (or resume an
        // unwind) until `pending` reaches zero, so every `'env` borrow
        // captured by the job strictly outlives its execution; the
        // transmute only erases that lifetime.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.inner.submit_or_run(job);
    }
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pool", &self.pool.name())
            .field("pending", &self.state.core.lock().pending)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(workers: usize) -> WorkPool {
        WorkPool::new("t", ExecConfig::workers(workers))
    }

    #[test]
    fn spawn_join_roundtrip() {
        for w in [1, 4] {
            let p = pool(w);
            let h = p.spawn(|| 6 * 7);
            assert_eq!(h.join().unwrap(), 42);
        }
    }

    #[test]
    fn spawn_panic_surfaces_at_join() {
        let p = pool(2);
        let h = p.spawn(|| -> u32 { panic!("kaboom {}", 9) });
        match h.join() {
            Err(ExecError::Panicked(msg)) => assert!(msg.contains("kaboom 9"), "{msg}"),
            other => panic!("expected panic error, got {other:?}"),
        }
        let snap = p.registry().snapshot();
        assert_eq!(snap.counter("exec.tasks_panicked{pool=t}"), 1);
        assert_eq!(snap.counter("exec.tasks_submitted{pool=t}"), 1);
    }

    #[test]
    fn drop_cancels_cooperative_task() {
        let p = pool(2);
        let seen = Arc::new(AtomicBool::new(false));
        let seen2 = seen.clone();
        let gate = Arc::new(Bounded::<()>::new(1));
        let gate2 = gate.clone();
        let h = p.spawn_cancellable(move |token| {
            gate2.pop(); // wait until the main thread dropped the handle
            seen2.store(token.is_cancelled(), Ordering::SeqCst);
        });
        let probe = h.cancel_token().clone();
        drop(h);
        assert!(probe.is_cancelled(), "drop must flip the token");
        gate.push(()).unwrap();
        // Wait for the task to record what it saw.
        for _ in 0..1000 {
            if seen.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(seen.load(Ordering::SeqCst), "task observed cancellation");
        assert_eq!(p.registry().snapshot().counter("exec.tasks_cancelled{pool=t}"), 1);
    }

    #[test]
    fn detach_does_not_cancel() {
        let p = pool(2);
        let h = p.spawn(|| ());
        let probe = h.cancel_token().clone();
        h.detach();
        assert!(!probe.is_cancelled());
    }

    #[test]
    fn scope_borrows_and_waits() {
        let p = pool(4);
        let mut hits = [0u8; 16];
        p.scope(|s| {
            for slot in hits.iter_mut() {
                s.spawn(move || *slot = 1);
            }
        });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn scope_propagates_panics() {
        let p = pool(3);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| {
                s.spawn(|| panic!("inner failure"));
            });
        }));
        let msg = panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("inner failure"), "{msg}");
    }

    #[test]
    fn map_is_index_aligned_for_any_worker_count() {
        let items: Vec<u64> = (0..100).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for w in [1, 2, 8] {
            let p = pool(w);
            let out = p.map(items.clone(), |_, x| x * x);
            assert_eq!(out, reference, "workers={w}");
        }
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        for w in [1, 2, 8] {
            let p = pool(w);
            let out: std::result::Result<Vec<u32>, String> =
                p.try_map((0..50).collect(), |i, x: u32| {
                    if x % 7 == 3 {
                        Err(format!("bad {i}"))
                    } else {
                        Ok(x)
                    }
                });
            // Items 3, 10, 17… fail; index 3 must win for every worker count.
            assert_eq!(out.unwrap_err(), "bad 3", "workers={w}");
        }
    }

    #[test]
    fn nested_fan_out_does_not_deadlock() {
        // Tasks that themselves fan out on the same (small) pool: the
        // scope helper drains the queue while waiting.
        let p = pool(2);
        let outer: Vec<u64> = p.map((0..4u64).collect(), |_, x| {
            let inner: Vec<u64> = p.map((0..8u64).collect(), |_, y| x * 100 + y);
            inner.iter().sum()
        });
        let expect: Vec<u64> = (0..4u64).map(|x| (0..8u64).map(|y| x * 100 + y).sum()).collect();
        assert_eq!(outer, expect);
    }

    #[test]
    fn inline_pool_runs_everything_on_the_caller() {
        let p = pool(1);
        assert!(p.is_inline());
        let tid = std::thread::current().id();
        let h = p.spawn(move || std::thread::current().id() == tid);
        assert!(h.is_finished(), "inline spawn completes synchronously");
        assert!(h.join().unwrap());
    }

    #[test]
    fn for_each_chunk_mut_matches_serial() {
        for len in [0usize, 1, 7, 64, 1003] {
            for size in [1usize, 3, 64, 2000] {
                for w in [1usize, 4] {
                    let p = pool(w);
                    let mut par: Vec<u64> = (0..len as u64).collect();
                    let mut ser = par.clone();
                    p.for_each_chunk_mut(&mut par, size, |i, c| {
                        for v in c.iter_mut() {
                            *v = v.wrapping_mul(31).wrapping_add(i as u64);
                        }
                    });
                    for (i, c) in ser.chunks_mut(size).enumerate() {
                        for v in c.iter_mut() {
                            *v = v.wrapping_mul(31).wrapping_add(i as u64);
                        }
                    }
                    assert_eq!(par, ser, "len={len} size={size} workers={w}");
                }
            }
        }
    }

    #[test]
    fn metrics_flow_into_the_shared_registry() {
        let registry = Arc::new(Registry::default());
        let p = WorkPool::with_registry("svc", ExecConfig::workers(2), registry.clone());
        p.map((0..10).collect::<Vec<u32>>(), |_, x| x + 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("exec.tasks_submitted{pool=svc}"), 10);
        assert_eq!(snap.counter("exec.tasks_completed{pool=svc}"), 10);
        assert_eq!(snap.counter("exec.tasks_panicked{pool=svc}"), 0);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert!(a.workers() >= 1);
    }

    #[test]
    fn fanned_out_tasks_inherit_the_submitters_trace() {
        use diesel_obs::{trace, Tracer};
        for w in [1, 4] {
            let p = pool(w);
            let tracer = Tracer::enabled(p.registry());
            let _t = trace::install_tracer(&tracer);
            {
                let _root = trace::span("fanout", &[]);
                p.map((0..4).collect::<Vec<u32>>(), |_, _| {
                    let _s = trace::span("task", &[]);
                });
            }
            let spans = tracer.drain();
            let root = spans.iter().find(|s| s.name == "fanout").unwrap();
            let tasks: Vec<_> = spans.iter().filter(|s| s.name == "task").collect();
            assert_eq!(tasks.len(), 4, "workers={w}");
            assert!(
                tasks.iter().all(|s| s.trace == root.trace && s.parent == Some(root.id)),
                "workers={w}: every task span hangs under the fanout span"
            );
        }
    }

    #[test]
    fn pool_debug_format() {
        let p = pool(3);
        let s = format!("{p:?}");
        assert!(s.contains("workers: 3"), "{s}");
    }
}
