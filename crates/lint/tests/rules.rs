//! Fixture-driven integration tests: each rule must fire on its
//! positive fixture, stay silent on the clean fixture, respect
//! suppressions, and honor the baseline. The fixtures live under
//! `tests/fixtures/` and are never compiled — they're scanned as if
//! they sat at serving-crate paths.

use diesel_lint::baseline::Baseline;
use diesel_lint::{scan_source, to_json, Rule};

/// Scan fixture `src` as if it were a serving-crate library file.
fn scan(src: &str) -> Vec<diesel_lint::Finding> {
    scan_source("crates/core/src/fixture.rs", src)
}

#[test]
fn r1_fires_on_each_panic_class() {
    let found = scan(include_str!("fixtures/r1_positive.rs"));
    let r1: Vec<_> = found.iter().filter(|f| f.rule == Rule::R1).collect();
    for needle in ["unwrap()", "expect()", "explicit panic", "unimplemented!", "todo!", "indexing"]
    {
        assert!(
            r1.iter().any(|f| f.message.contains(needle)),
            "no R1 finding mentions {needle}: {r1:?}"
        );
    }
    assert!(found.iter().all(|f| f.line < 23), "the #[cfg(test)] module must be exempt: {found:?}");
}

#[test]
fn r2_fires_on_time_and_entropy() {
    let found = scan(include_str!("fixtures/r2_positive.rs"));
    let mentioned: Vec<_> = found.iter().filter(|f| f.rule == Rule::R2).collect();
    for needle in ["Instant::now", "SystemTime::now", "thread_rng", "from_entropy"] {
        assert!(
            mentioned.iter().any(|f| f.message.contains(needle)),
            "no R2 finding mentions {needle}: {mentioned:?}"
        );
    }
}

#[test]
fn r2_exempt_in_clock_module_and_bin_targets() {
    let src = include_str!("fixtures/r2_positive.rs");
    for rel in
        ["crates/util/src/clock.rs", "crates/core/src/bin/tool.rs", "crates/bench/src/bin/fig.rs"]
    {
        let found = scan_source(rel, src);
        assert!(
            found.iter().all(|f| f.rule != Rule::R2),
            "{rel} must be exempt from R2: {found:?}"
        );
    }
}

#[test]
fn r3_fires_under_guard_but_not_after_release() {
    let found = scan(include_str!("fixtures/r3_positive.rs"));
    let r3: Vec<_> = found.iter().filter(|f| f.rule == Rule::R3).collect();
    assert_eq!(r3.len(), 2, "exactly the two held-guard sites: {r3:?}");
    assert!(r3[0].message.contains(".call()") && r3[0].message.contains("guard"));
    assert!(r3[1].message.contains("sleep_ns") && r3[1].message.contains("snapshot"));
}

#[test]
fn r4_fires_outside_format_module_only() {
    let src = include_str!("fixtures/r4_positive.rs");
    let found = scan(src);
    assert_eq!(found.iter().filter(|f| f.rule == Rule::R4).count(), 3, "{found:?}");
    let in_home = scan_source("crates/chunk/src/format.rs", src);
    assert!(in_home.iter().all(|f| f.rule != Rule::R4), "format.rs owns the constants");
}

#[test]
fn clean_fixture_is_silent() {
    let found = scan(include_str!("fixtures/clean.rs"));
    assert!(found.is_empty(), "clean fixture must produce no findings: {found:?}");
}

#[test]
fn suppressions_need_a_reason_and_the_right_rule() {
    let found = scan(include_str!("fixtures/suppressed.rs"));
    // Two justified suppressions silence their sites; the reason-free one
    // reports the missing reason; the wrong-rule one doesn't apply at all.
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found[0].message.contains("missing a reason"), "{}", found[0].message);
    assert!(found[1].message.contains("indexing"), "{}", found[1].message);
}

#[test]
fn baseline_filters_known_findings_and_ratchets() {
    let findings = scan(include_str!("fixtures/r1_positive.rs"));
    let n = findings.len();
    assert!(n >= 6);

    // The generated baseline swallows everything.
    let base = Baseline::from_findings(&findings);
    assert_eq!(base.len(), 1, "one (rule, file) entry");
    assert!(base.filter(findings.clone()).is_empty());

    // Parse the rendered form back and it still covers the findings.
    let reparsed = Baseline::parse(&base.render()).expect("rendered baseline parses");
    assert!(reparsed.filter(findings.clone()).is_empty());

    // A new finding in the same file reports the whole group.
    let tight =
        Baseline::parse(&format!("R1 crates/core/src/fixture.rs {}\n", n - 1)).expect("parses");
    assert_eq!(tight.filter(findings.clone()).len(), n);

    // The ratchet: an over-generous allowance is reported as stale.
    let loose =
        Baseline::parse(&format!("R1 crates/core/src/fixture.rs {}\n", n + 5)).expect("parses");
    assert!(loose.filter(findings.clone()).is_empty());
    let stale = loose.stale_entries(&findings);
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].2, n + 5);
    assert_eq!(stale[0].3, n);
}

#[test]
fn json_output_is_well_formed() {
    let findings = scan(include_str!("fixtures/r2_positive.rs"));
    let json = to_json(&findings);
    assert!(json.contains("\"rule\": \"R2\""));
    assert!(json.contains("\"path\": \"crates/core/src/fixture.rs\""));
    assert!(json.contains(&format!("\"total\": {}", findings.len())));
    assert_eq!(json.matches("{\"rule\"").count(), findings.len());
}

#[test]
fn the_repo_tree_passes_with_its_committed_baseline() {
    // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let findings = diesel_lint::scan_workspace(&root).expect("scan workspace");
    let text = std::fs::read_to_string(root.join("lint-baseline.txt")).expect("baseline file");
    let base = Baseline::parse(&text).expect("baseline parses");
    assert!(base.len() <= 150, "baseline must stay small, has {} entries", base.len());
    let remaining = base.filter(findings.clone());
    assert!(remaining.is_empty(), "non-baselined findings: {remaining:#?}");
    let stale = base.stale_entries(&findings);
    assert!(stale.is_empty(), "stale baseline entries (run --write-baseline): {stale:?}");
}
