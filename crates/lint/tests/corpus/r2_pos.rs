pub fn now_and_entropy(rng: R) -> u64 {
    let t = Instant::now();
    let s = SystemTime::now();
    let r = rng.from_entropy();
    let g = thread_rng();
    0
}
