pub fn f(data: &[u8], b: Bytes) -> Vec<u8> {
    let v = data.to_vec();
    record_copy("corpus.decode", v.len() as u64);
    let cheap = b.clone();
    v
}
