pub fn f(magic: &[u8]) -> bool {
    let ok = magic == CHUNK_MAGIC;
    let v = FORMAT_VERSION;
    let l = FIXED_HEADER_LEN;
    ok && v > 0 && l > 0
}
