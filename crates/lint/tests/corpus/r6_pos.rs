pub fn f(data: &[u8], b: Bytes) -> Vec<u8> {
    let v = data.to_vec();
    let w = Vec::from(data);
    let u = b.into_vec();
    v
}
