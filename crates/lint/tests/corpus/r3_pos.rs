pub fn f(&self) {
    let g = self.m.lock();
    self.chan.call(req);
    sleep_ns(10);
}
