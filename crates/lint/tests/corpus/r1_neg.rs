#[derive(Debug)]
pub struct S;
pub fn f(pair: (u8, u8)) -> u8 {
    let [a, b] = [pair.0, pair.1];
    let v = vec![a, b];
    v.first().copied().unwrap_or(0)
}
