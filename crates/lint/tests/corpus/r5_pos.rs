pub fn f(&self) {
    let e = self.events.lock();
    let g = self.gate.write();
    let x = self.other.lock();
}
