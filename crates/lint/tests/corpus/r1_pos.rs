pub fn f(x: Option<u8>, v: &[u8]) -> u8 {
    let a = x.unwrap();
    let b = x.expect("must be set");
    let c = v[0];
    if a > b { panic!("boom"); }
    todo!()
}
