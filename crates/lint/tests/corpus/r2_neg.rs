pub fn lookalikes() {
    let a = my_thread_rng();
    let b = thread_rng_2();
    let c = not_from_entropy();
    let d = "Instant::now inside a string literal";
    // Instant::now inside a comment.
}
