pub fn f(&self) {
    let g = self.gate.write();
    let i = self.inner.lock();
    let e = self.events.lock();
    drop(e);
    drop(i);
    drop(g);
    let a = self.start_lock.lock();
    let h = self.handles.lock();
    drop(h);
    drop(a);
    self.m.lock().push(1);
    self.n.lock().push(2);
}
