// CHUNK_MAGIC belongs to chunk::format alone; this mention is a comment.
pub fn f() -> &'static str {
    let shadow = MY_CHUNK_MAGIC;
    "CHUNK_MAGIC hides in a string"
}
