pub fn f(&self) {
    let g = self.m.lock();
    drop(g);
    self.chan.call(req);
    { let h = self.m.lock(); }
    sleep_ns(5);
    let n = self.m.lock().len();
    self.chan.call(req);
    let v = *self.m.lock();
    sleep_ns(7);
}
