//! The rule corpus: one known-positive and one known-negative fixture
//! per rule R1–R6 under `tests/corpus/`, asserted down to exact
//! `(rule, line)` pairs — so a rule that drifts (new false positive,
//! lost true positive) fails here before it ever touches the baseline.
//!
//! Fixtures are scanned under a *pretend* workspace path chosen to put
//! them in scope for the rule under test (serving-crate library code);
//! `workspace_files` skips the corpus directory, so the snippets never
//! leak into a real `--workspace` run.
//!
//! A proptest at the bottom fuzzes `guard_binding` — the one rule
//! helper that slices strings by byte position — with adversarial
//! lexeme soup to pin down that it never panics.

use diesel_lint::rules::guard_binding;
use diesel_lint::{scan_source, workspace_files, Rule};
use proptest::prelude::*;

/// Scan a corpus fixture as if it lived at `fake_rel` in the tree.
fn scan(file: &str, fake_rel: &str) -> Vec<(Rule, usize)> {
    let path = format!("{}/tests/corpus/{file}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    scan_source(fake_rel, &src).into_iter().map(|f| (f.rule, f.line)).collect()
}

const LIB: &str = "crates/kv/src/corpus.rs";

#[test]
fn r1_positive_counts_and_lines() {
    assert_eq!(
        scan("r1_pos.rs", LIB),
        vec![(Rule::R1, 2), (Rule::R1, 3), (Rule::R1, 4), (Rule::R1, 5), (Rule::R1, 6)]
    );
}

#[test]
fn r1_negative_is_clean() {
    assert_eq!(scan("r1_neg.rs", LIB), vec![]);
}

#[test]
fn r2_positive_counts_and_lines() {
    // Line 4 is the method-call form `rng.from_entropy()` — the
    // pre-PR-7 precedence bug in `token_lines` missed it.
    assert_eq!(
        scan("r2_pos.rs", LIB),
        vec![(Rule::R2, 2), (Rule::R2, 3), (Rule::R2, 4), (Rule::R2, 5)]
    );
}

#[test]
fn r2_negative_prefixed_suffixed_and_quoted_are_clean() {
    assert_eq!(scan("r2_neg.rs", LIB), vec![]);
}

#[test]
fn r3_positive_counts_and_lines() {
    assert_eq!(scan("r3_pos.rs", LIB), vec![(Rule::R3, 3), (Rule::R3, 4)]);
}

#[test]
fn r3_negative_is_clean() {
    assert_eq!(scan("r3_neg.rs", LIB), vec![]);
}

#[test]
fn r4_positive_counts_and_lines() {
    assert_eq!(scan("r4_pos.rs", LIB), vec![(Rule::R4, 2), (Rule::R4, 3), (Rule::R4, 4)]);
}

#[test]
fn r4_negative_comments_strings_and_lookalikes_are_clean() {
    assert_eq!(scan("r4_neg.rs", LIB), vec![]);
}

#[test]
fn r5_positive_inversion_then_unranked() {
    let found = scan("r5_pos.rs", LIB);
    assert_eq!(found, vec![(Rule::R5, 3), (Rule::R5, 4)]);
}

#[test]
fn r5_negative_rank_upward_and_sequential_are_clean() {
    assert_eq!(scan("r5_neg.rs", LIB), vec![]);
}

#[test]
fn r6_positive_counts_and_lines() {
    assert_eq!(scan("r6_pos.rs", LIB), vec![(Rule::R6, 2), (Rule::R6, 3), (Rule::R6, 4)]);
}

#[test]
fn r6_negative_ledgered_and_clone_are_clean() {
    assert_eq!(scan("r6_neg.rs", LIB), vec![]);
}

#[test]
fn corpus_is_invisible_to_workspace_scans() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_files(&root).unwrap();
    assert!(
        files.iter().all(|p| !p.to_string_lossy().contains("tests/corpus/")),
        "corpus fixtures must not be linted as workspace files"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `guard_binding` slices the statement by byte offsets around `=`
    /// and the lock-call suffixes; feed it lexeme soup (including
    /// multibyte UTF-8, stray `=`, unbalanced braces) and require it
    /// never panics.
    #[test]
    fn guard_binding_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        const PALETTE: &[&str] = &[
            "let ", "mut ", "=", ".lock()", ".read()", ".write()", "*", "{", "}",
            "(", ")", "[", "]", " ", "g", "_", ";", "é", "→", "\"", "'", "\n", ".",
        ];
        let mut stmt = String::new();
        for b in &bytes {
            stmt.push_str(PALETTE[*b as usize % PALETTE.len()]);
        }
        let _ = guard_binding(&stmt);
        // And the raw bytes as lossy UTF-8, for good measure.
        let _ = guard_binding(&String::from_utf8_lossy(&bytes));
    }
}
