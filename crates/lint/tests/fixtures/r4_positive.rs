// Fixture: R4 format-hygiene violations — on-disk constants referenced
// outside chunk::format.

pub fn sniff(data: &[u8]) -> bool {
    data.starts_with(&CHUNK_MAGIC)
}

pub fn version_ok(v: u16) -> bool {
    v <= FORMAT_VERSION
}

pub fn header_end() -> usize {
    FIXED_HEADER_LEN
}
