// Fixture: suppression directives — justified ones silence a finding,
// reason-free ones are themselves reported.

pub fn justified(v: &[u8], pairs: &[(u8, u8)]) -> u8 {
    // diesel-lint: allow(R1) index bounded by the is_empty check above
    let first = if v.is_empty() { 0 } else { v[0] };
    let second = pairs[0].1; // diesel-lint: allow(R1) caller guarantees non-empty
    first + second
}

pub fn unjustified(v: &[u8]) -> u8 {
    // diesel-lint: allow(R1)
    v[0]
}

pub fn wrong_rule(v: &[u8]) -> u8 {
    // diesel-lint: allow(R2) this reason is for the wrong rule
    v[0]
}
