// Fixture: R3 lock-discipline violations — blocking while holding a
// lock guard.

pub fn rpc_under_guard(table: &Mutex<Table>, chan: &Channel) -> Reply {
    let guard = table.lock();
    chan.call(guard.request()) // blocks every other locker
}

pub fn sleep_under_read_guard(state: &RwLock<State>, clock: &dyn Clock) {
    let snapshot = state.read();
    clock.sleep_ns(snapshot.backoff_ns);
}

pub fn fine_after_drop(table: &Mutex<Table>, chan: &Channel) -> Reply {
    let guard = table.lock();
    let req = guard.request();
    drop(guard);
    chan.call(req)
}

pub fn fine_in_inner_scope(table: &Mutex<Table>, chan: &Channel) -> Reply {
    let req = {
        let guard = table.lock();
        guard.request()
    };
    chan.call(req)
}
