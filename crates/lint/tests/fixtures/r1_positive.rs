// Fixture: every R1 panic-freedom violation class. Scanned by the
// integration tests as if it lived at crates/core/src/fixture.rs; never
// compiled.

pub fn violations(x: Option<u8>, v: &[u8]) -> u8 {
    let a = x.unwrap();
    let b = x.expect("boom");
    if v.is_empty() {
        panic!("empty");
    }
    let c = v[0];
    a + b + c
}

pub fn stubbed() {
    unimplemented!("later")
}

pub fn planned() {
    todo!()
}

#[cfg(test)]
mod tests {
    // Test code may panic freely; none of these count.
    fn fine() {
        None::<u8>.unwrap();
        let v = vec![1];
        let _ = v[0];
        panic!("tests assert by panicking");
    }
}
