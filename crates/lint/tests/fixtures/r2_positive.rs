// Fixture: R2 determinism violations — raw time and ambient entropy.

pub fn stamps() -> (u64, u64) {
    let a = std::time::Instant::now().elapsed().as_nanos() as u64;
    let b = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or_default();
    (a, b)
}

pub fn entropy() {
    let mut rng = rand::thread_rng();
    let seeded = rand::rngs::StdRng::from_entropy();
    let _ = (rng, seeded);
}
