// Fixture: idiomatic panic-free, deterministic serving-crate code — the
// negative case every rule must stay silent on.

pub fn checked(x: Option<u8>, v: &[u8]) -> Result<u8, String> {
    let a = x.ok_or_else(|| "missing".to_owned())?;
    let b = v.first().copied().unwrap_or_default();
    // Tokens inside strings and comments must not fire: unwrap() panic!(
    let s = "Instant::now() CHUNK_MAGIC v[0] .call() while m.lock()";
    let [hi, lo, ..] = [a, b, 0, 0]; // slice patterns are not indexing
    let arr: [u8; 2] = [hi, lo]; // array types/literals are not indexing
    let n = arr.len() + s.len();
    Ok(n as u8)
}

pub fn guard_dropped_before_call(m: &std::sync::Mutex<u8>, f: impl Fn(u8) -> u8) -> u8 {
    let held = *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    f(held)
}
