//! # diesel-lint — workspace invariant checker
//!
//! Enforces six repo-specific rules the compiler cannot see:
//!
//! * **R1 panic-freedom** — no `unwrap`/`expect`/panicking macros/slice
//!   indexing in the library code of the serving crates (`core`,
//!   `cache`, `meta`, `kv`, `net`, `store`, `chunk`). Poisoned locks are
//!   handled by `diesel_util::lock_or_recover`, so no lock-unwrap
//!   pattern needs to exist.
//! * **R2 determinism** — no `Instant::now`/`SystemTime::now`/
//!   `thread_rng`/`from_entropy` outside the clock module
//!   (`diesel_util::clock` and its `diesel_net::clock` re-export shim).
//!   Bench, bin and test targets are exempt.
//! * **R3 lock discipline** — no blocking `.call(…)` RPC or simulated
//!   `sleep_ns(…)` in a scope holding a lock guard (scope-level
//!   approximation of the cache peer fan-out deadlock hazard).
//! * **R4 format hygiene** — the chunk on-disk constants (`CHUNK_MAGIC`,
//!   `FORMAT_VERSION`, `FIXED_HEADER_LEN`) are referenced only from
//!   `chunk::format`.
//! * **R5 lock order** — a nested `.lock()`/`.read()`/`.write()` under a
//!   live guard must follow the declared rank manifest
//!   (`rules::LOCK_RANKS`): strictly rank-upward, no unranked nesting.
//!   The static half of the deadlock-freedom invariant; the runtime half
//!   is `diesel_util::lockdep` (DESIGN.md §12).
//! * **R6 copy hygiene** — payload byte copies (`.to_vec()`,
//!   `.into_vec()`, `Vec::from`) outside `util::bytes` must sit beside a
//!   `record_copy(…)` ledger call, keeping the zero-copy read path
//!   (DESIGN.md §11) shrink-only.
//!
//! Findings can be suppressed in place with
//! `// diesel-lint: allow(R1) <reason>` (the reason is mandatory), or
//! carried in a baseline file so adoption is incremental; the baseline
//! may only ever shrink (`--baseline-check`).
//!
//! The issue sketched this on top of `syn`; the build is offline and
//! dependency-free, so the rules instead run over a comment- and
//! literal-scrubbed view of the source (see [`lex`]) — cruder than an
//! AST, but exact about line numbers and immune to tokens hiding in
//! strings.

pub mod baseline;
pub mod lex;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// The rule a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Panic-freedom in serving crates.
    R1,
    /// Determinism: no raw time/entropy reads.
    R2,
    /// Lock discipline: no blocking calls under a guard.
    R3,
    /// Format hygiene: on-disk constants stay in `chunk::format`.
    R4,
    /// Lock order: nested acquisition follows the rank manifest.
    R5,
    /// Copy hygiene: payload byte copies are ledgered.
    R6,
}

impl Rule {
    /// All rules, in order.
    pub const ALL: [Rule; 6] = [Rule::R1, Rule::R2, Rule::R3, Rule::R4, Rule::R5, Rule::R6];

    /// Short code, e.g. `"R1"`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
        }
    }

    /// Parse `"R1"`…`"R4"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            _ => None,
        }
    }
}

impl Rule {
    /// A paragraph of context for `--explain`: what the rule protects,
    /// why it exists, and how to satisfy it.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::R1 => {
                "R1 panic-freedom: serving-crate library code must not unwrap/expect/panic \
                 or slice-index. A panic under load poisons locks and takes the whole \
                 multi-tenant process down; return a typed error instead. Poisoned-lock \
                 recovery already exists (diesel_util::lock_or_recover), so no lock-unwrap \
                 pattern is ever needed."
            }
            Rule::R2 => {
                "R2 determinism: no Instant::now/SystemTime::now/thread_rng/from_entropy \
                 outside the clock module. All time flows through the injectable Clock and \
                 all randomness through seeded RNGs, so simulations and tests replay \
                 bit-identically."
            }
            Rule::R3 => {
                "R3 lock discipline: no blocking .call(…) RPC or simulated sleep_ns(…) \
                 while a lock guard is live in the scope. Blocking under a lock turns one \
                 slow peer into a wedged shard; drop or scope the guard first."
            }
            Rule::R4 => {
                "R4 format hygiene: the chunk on-disk constants (CHUNK_MAGIC, \
                 FORMAT_VERSION, FIXED_HEADER_LEN) are referenced only from chunk::format. \
                 Every other reader goes through the parsed header, so the format can \
                 evolve in one place."
            }
            Rule::R5 => {
                "R5 lock order: acquiring a second lock while holding one is allowed only \
                 when both receivers appear in the LOCK_RANKS manifest \
                 (crates/lint/src/rules.rs) and rank strictly increases inward. This is \
                 the static half of deadlock-freedom; the runtime half is the \
                 diesel_util::lockdep witness (DIESEL_LOCKDEP=off|warn|fail). To bless a \
                 new nesting, add both receivers to the manifest with ranks matching the \
                 global order — never invert an existing pair."
            }
            Rule::R6 => {
                "R6 copy hygiene: .to_vec()/.into_vec()/Vec::from on bytes outside \
                 util::bytes must sit within 3 lines of a record_copy(…) call, so every \
                 payload copy lands in the bytes.copied{site=…} ledger and the zero-copy \
                 read path stays shrink-only. Non-payload copies (paths, ids, test \
                 fixtures) are suppressed in place with a reason."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Violated rule.
    pub rule: Rule,
    /// Workspace-relative path (set by the scanner; rule passes leave it
    /// empty).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// A finding with the path still unset.
    pub fn new(rule: Rule, line: usize, message: String) -> Self {
        Finding { rule, path: String::new(), line, message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}:{}: {}", self.rule, self.path, self.line, self.message)
    }
}

/// How a file participates in each rule, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Targets {
    /// R1 applies (serving-crate library code).
    pub r1: bool,
    /// R2 applies (library code outside the clock modules).
    pub r2: bool,
    /// R3 applies (library code).
    pub r3: bool,
    /// R4 applies (everything except `chunk::format`).
    pub r4: bool,
    /// R5 applies (library code).
    pub r5: bool,
    /// R6 applies (serving-crate library code outside `util::bytes`).
    pub r6: bool,
}

/// Classify a workspace-relative path (`crates/net/src/rpc.rs`).
///
/// Test targets (`tests/`, `benches/`, `*_test.rs`), bin targets
/// (`src/bin/`, `main.rs`) and bench bins are exempt from R1–R3;
/// `#[cfg(test)]` regions inside library files are handled separately
/// during scanning.
pub fn classify(rel: &str) -> Targets {
    let rel = rel.replace('\\', "/");
    let test_target = rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.ends_with("_test.rs");
    let bin_target = rel.contains("/bin/") || rel.ends_with("/main.rs") || rel == "src/main.rs";
    let lib_code = !test_target && !bin_target;

    let r1_crate = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .is_some_and(|c| rules::R1_CRATES.contains(&c));

    Targets {
        r1: lib_code && r1_crate,
        r2: lib_code && !rules::R2_EXEMPT.contains(&rel.as_str()),
        r3: lib_code,
        r4: rel != rules::R4_HOME && !test_target,
        r5: lib_code,
        r6: lib_code && r1_crate && rel != rules::R6_HOME,
    }
}

/// Lint one file's source. `rel` is the workspace-relative path used in
/// findings and for target classification.
pub fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    let targets = classify(rel);
    let scrubbed = lex::scrub(src);
    let test_regions = lex::test_regions(&scrubbed.code);
    let in_test = |line: usize| test_regions.iter().any(|&(lo, hi)| lo <= line && line <= hi);

    let mut raw = Vec::new();
    if targets.r1 {
        rules::r1_panic(&scrubbed.code, &mut raw);
    }
    if targets.r2 {
        rules::r2_determinism(&scrubbed.code, &mut raw);
    }
    if targets.r3 {
        rules::r3_lock_discipline(&scrubbed.code, &mut raw);
    }
    if targets.r4 {
        rules::r4_format_hygiene(&scrubbed.code, &mut raw);
    }
    if targets.r5 {
        rules::r5_lock_order(&scrubbed.code, &mut raw);
    }
    if targets.r6 {
        rules::r6_copy_hygiene(&scrubbed.code, &mut raw);
    }

    let mut out = Vec::new();
    for mut f in raw {
        // R4 applies to test code too (fixtures must not clone on-disk
        // constants); the panic/determinism/lock rules do not.
        if f.rule != Rule::R4 && in_test(f.line) {
            continue;
        }
        if let Some(sup) = scrubbed
            .suppressions
            .iter()
            .find(|s| s.rules.contains(&f.rule) && (s.line == f.line || s.line + 1 == f.line))
        {
            if sup.has_reason {
                continue;
            }
            f.message = format!(
                "suppression for {} is missing a reason (\"// diesel-lint: allow({}) <why>\")",
                f.rule, f.rule
            );
        }
        f.path = rel.to_owned();
        out.push(f);
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Recursively collect the workspace `.rs` files to lint, relative to
/// `root`: `crates/*/…` plus the root package's `src/` and `tests/`.
/// Skips `target/`, the offline dependency stand-ins in `.devstubs/`,
/// and diesel-lint's own rule fixtures (which violate on purpose).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut out)?;
        }
    }
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .filter(|p| {
            let s = p.to_string_lossy().replace('\\', "/");
            !s.starts_with(".devstubs/")
                && !s.contains("/target/")
                && !s.starts_with("crates/lint/tests/fixtures/")
                && !s.starts_with("crates/lint/tests/corpus/")
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == ".devstubs" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every workspace file under `root`; findings carry
/// root-relative paths.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    for rel in workspace_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        out.extend(scan_source(&rel.to_string_lossy().replace('\\', "/"), &src));
    }
    Ok(out)
}

/// Render findings as a machine-readable JSON document.
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            f.rule,
            esc(&f.path),
            f.line,
            esc(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!("  ],\n  \"total\": {}\n}}\n", findings.len()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_serving_crate_lib() {
        let t = classify("crates/net/src/rpc.rs");
        assert!(t.r1 && t.r2 && t.r3 && t.r4);
    }

    #[test]
    fn classify_exemptions() {
        assert!(classify("crates/train/src/tensor.rs").r1, "train joined R1 in PR 7");
        assert!(!classify("crates/bench/src/report.rs").r1, "bench tooling may unwrap");
        assert!(!classify("crates/util/src/bytes.rs").r6, "Bytes owns its copies");
        assert!(classify("crates/util/src/sync.rs").r6);
        assert!(!classify("crates/util/src/clock.rs").r2, "clock module reads real time");
        assert!(!classify("crates/net/src/clock.rs").r2, "re-export shim keeps old paths");
        let t = classify("crates/net/tests/integration.rs");
        assert!(!t.r1 && !t.r2 && !t.r3);
        let t = classify("crates/core/src/bin/dlcmd.rs");
        assert!(!t.r1 && !t.r2, "bin targets may unwrap and read time");
        assert!(!classify("crates/chunk/src/format.rs").r4, "format.rs owns the constants");
        assert!(classify("crates/chunk/src/reader.rs").r4);
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_r1() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() { None::<u8>.unwrap(); }\n}\n";
        let found = scan_source("crates/kv/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "fn f() { x.unwrap(); // diesel-lint: allow(R1) documented invariant\n}\n";
        assert!(scan_source("crates/kv/src/lib.rs", src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_reported() {
        let src = "fn f() {\n  // diesel-lint: allow(R1)\n  x.unwrap();\n}\n";
        let found = scan_source("crates/kv/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("missing a reason"), "{}", found[0].message);
    }

    #[test]
    fn json_escapes() {
        let f = vec![Finding {
            rule: Rule::R1,
            path: "a\"b.rs".into(),
            line: 3,
            message: "x\ny".into(),
        }];
        let j = to_json(&f);
        assert!(j.contains("a\\\"b.rs") && j.contains("x\\ny") && j.contains("\"total\": 1"));
    }
}
