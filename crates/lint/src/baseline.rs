//! Baseline handling: carry pre-existing findings so adoption is
//! incremental, while guaranteeing the debt only ever shrinks.
//!
//! The file is line-oriented — `<rule> <path> <count>` — keyed by
//! (rule, file) rather than by line number, so unrelated edits that
//! shift lines don't invalidate it. Semantics:
//!
//! * a file with *at most* the baselined count of findings for a rule
//!   passes (fixing some but not all sites never breaks CI);
//! * one finding *more* than the baseline reports every site in that
//!   file, so the regression is visible in full;
//! * `--baseline-check` additionally fails when an entry allows more
//!   findings than remain — the ratchet: once debt is paid, the
//!   baseline must be tightened (`--write-baseline`) so it can't grow
//!   back silently.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Finding, Rule};

/// Allowed finding counts, keyed by (rule, workspace-relative path).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(Rule, String), usize>,
}

/// A malformed baseline line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in the baseline file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Parse the `<rule> <path> <count>` lines of a baseline file.
    /// `#` comments and blank lines are ignored.
    pub fn parse(text: &str) -> Result<Baseline, ParseError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| ParseError { line: i + 1, message };
            let mut parts = line.split_whitespace();
            let rule = parts
                .next()
                .and_then(Rule::parse)
                .ok_or_else(|| err(format!("expected a rule code, got {line:?}")))?;
            let path = parts.next().ok_or_else(|| err("missing path".to_owned()))?.to_owned();
            let count: usize = parts
                .next()
                .and_then(|c| c.parse().ok())
                .filter(|&c| c > 0)
                .ok_or_else(|| err("missing or non-positive count".to_owned()))?;
            if parts.next().is_some() {
                return Err(err("trailing tokens".to_owned()));
            }
            if entries.insert((rule, path.clone()), count).is_some() {
                return Err(err(format!("duplicate entry for {} {}", rule.code(), path)));
            }
        }
        Ok(Baseline { entries })
    }

    /// Build the baseline that exactly covers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries = BTreeMap::new();
        for f in findings {
            *entries.entry((f.rule, f.path.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Number of entries (one per rule × file).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize in the format [`parse`](Baseline::parse) reads.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# diesel-lint baseline: pre-existing findings carried per (rule, file).\n\
             # Regenerate with `cargo run -p diesel-lint -- --workspace --write-baseline <path>`;\n\
             # CI runs --baseline-check, so this file may only ever shrink.\n",
        );
        for ((rule, path), count) in &self.entries {
            s.push_str(&format!("{} {} {}\n", rule.code(), path, count));
        }
        s
    }

    /// Drop findings covered by the baseline. Groups within their
    /// allowance disappear entirely; groups that exceed it are reported
    /// in full.
    pub fn filter(&self, findings: Vec<Finding>) -> Vec<Finding> {
        let current = Baseline::from_findings(&findings);
        findings
            .into_iter()
            .filter(|f| {
                let key = (f.rule, f.path.clone());
                let have = current.entries.get(&key).copied().unwrap_or(0);
                let allowed = self.entries.get(&key).copied().unwrap_or(0);
                have > allowed
            })
            .collect()
    }

    /// The ratchet: entries whose allowance exceeds the findings that
    /// remain. Each is a `(rule, path, allowed, actual)` that should be
    /// tightened out of the baseline.
    pub fn stale_entries(&self, findings: &[Finding]) -> Vec<(Rule, String, usize, usize)> {
        let current = Baseline::from_findings(findings);
        self.entries
            .iter()
            .filter_map(|((rule, path), &allowed)| {
                let actual = current.entries.get(&(*rule, path.clone())).copied().unwrap_or(0);
                (actual < allowed).then(|| (*rule, path.clone(), allowed, actual))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str, line: usize) -> Finding {
        Finding { rule, path: path.to_owned(), line, message: "m".to_owned() }
    }

    #[test]
    fn roundtrip() {
        let b = Baseline::from_findings(&[
            finding(Rule::R1, "a.rs", 1),
            finding(Rule::R1, "a.rs", 2),
            finding(Rule::R4, "b.rs", 9),
        ]);
        let b2 = Baseline::parse(&b.render()).unwrap();
        assert_eq!(b, b2);
        assert_eq!(b2.len(), 2);
    }

    #[test]
    fn within_allowance_is_silent_over_allowance_reports_all() {
        let base = Baseline::parse("R1 a.rs 2\n").unwrap();
        let two = vec![finding(Rule::R1, "a.rs", 1), finding(Rule::R1, "a.rs", 5)];
        assert!(base.filter(two.clone()).is_empty());
        let mut three = two;
        three.push(finding(Rule::R1, "a.rs", 7));
        assert_eq!(base.filter(three).len(), 3, "a regression surfaces every site");
    }

    #[test]
    fn other_rules_and_files_unaffected() {
        let base = Baseline::parse("R1 a.rs 1\n").unwrap();
        let f = vec![finding(Rule::R2, "a.rs", 1), finding(Rule::R1, "b.rs", 1)];
        assert_eq!(base.filter(f).len(), 2);
    }

    #[test]
    fn stale_entries_drive_the_ratchet() {
        let base = Baseline::parse("R1 a.rs 3\nR2 b.rs 1\n").unwrap();
        let f = vec![finding(Rule::R1, "a.rs", 1), finding(Rule::R2, "b.rs", 2)];
        let stale = base.stale_entries(&f);
        assert_eq!(stale, vec![(Rule::R1, "a.rs".to_owned(), 3, 1)]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("R9 a.rs 1\n").is_err());
        assert!(Baseline::parse("R1 a.rs 0\n").is_err());
        assert!(Baseline::parse("R1 a.rs\n").is_err());
        assert!(Baseline::parse("R1 a.rs 1 extra\n").is_err());
        assert!(Baseline::parse("R1 a.rs 1\nR1 a.rs 2\n").is_err());
        assert!(Baseline::parse("# comment\n\nR1 a.rs 1\n").is_ok());
    }
}
