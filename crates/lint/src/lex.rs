//! A small lexical front-end: scrub comments and literals out of Rust
//! source (preserving byte offsets and line structure) and collect
//! `// diesel-lint: allow(...)` suppression directives along the way.
//!
//! The issue called for `syn`, but the build must stay dependency-free
//! offline, so the rules run over this scrubbed text instead: every
//! comment, string, char and lifetime quirk is blanked to spaces, which
//! makes the later token scans immune to `"panic!("`-in-a-string false
//! positives while keeping line numbers exact.

use crate::Rule;

/// One `// diesel-lint: allow(<rules>) <reason>` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on. It suppresses findings on this
    /// line and on the following line (so it can trail the offending
    /// expression or sit on its own line above it).
    pub line: usize,
    /// Rules named inside `allow(...)`.
    pub rules: Vec<Rule>,
    /// Whether any justification text follows the closing paren.
    /// Reason-free suppressions are themselves reported.
    pub has_reason: bool,
}

/// Source with comments/strings blanked, plus the directives found.
#[derive(Debug)]
pub struct Scrubbed {
    /// Same length and line structure as the input; comment and literal
    /// bodies replaced by spaces.
    pub code: String,
    /// All suppression directives, in line order.
    pub suppressions: Vec<Suppression>,
}

/// Scrub `src`. Never fails: malformed source degrades to blanking the
/// rest of the file, which can only hide findings in unparseable code.
pub fn scrub(src: &str) -> Scrubbed {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut suppressions = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Keep newlines so line numbers survive scrubbing.
    macro_rules! keep_nl {
        ($idx:expr) => {
            if b[$idx] == b'\n' {
                out[$idx] = b'\n';
                line += 1;
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                if let Some(s) = parse_directive(text, line) {
                    suppressions.push(s);
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        keep_nl!(i);
                        i += 1;
                    }
                }
            }
            b'"' => {
                out[i] = b'"';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        keep_nl!(i + 1);
                        i += 2;
                        continue;
                    }
                    if b[i] == b'"' {
                        out[i] = b'"';
                        i += 1;
                        break;
                    }
                    keep_nl!(i);
                    i += 1;
                }
            }
            b'r' | b'b' if is_literal_prefix(b, i) => {
                i = scrub_prefixed_literal(b, i, &mut out, &mut line);
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with `'`
                // within a couple of characters; a lifetime never closes.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    // Escaped char literal: skip to the closing quote.
                    out[i] = b'\'';
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        keep_nl!(i);
                        i += 1;
                    }
                    if i < b.len() {
                        out[i] = b'\'';
                        i += 1;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out[i] = b'\'';
                    out[i + 2] = b'\'';
                    keep_nl!(i + 1);
                    i += 3;
                } else {
                    // Lifetime (or stray quote): drop the quote only.
                    i += 1;
                }
            }
            _ => {
                if c == b'\n' {
                    out[i] = b'\n';
                    line += 1;
                } else {
                    out[i] = c;
                }
                i += 1;
            }
        }
    }

    // `out` was built from ASCII-safe edits of valid UTF-8: multi-byte
    // characters are either copied verbatim or blanked byte-by-byte, and
    // blanking a continuation byte alone can't happen because we always
    // blank whole literal/comment spans.
    let code = String::from_utf8_lossy(&out).into_owned();
    Scrubbed { code, suppressions }
}

/// Does `b[i]` start a raw/byte string or byte-char prefix (`r"`, `r#"`,
/// `b"`, `b'`, `br"`, `rb` is not a thing)?
fn is_literal_prefix(b: &[u8], i: usize) -> bool {
    // Must not be the tail of a longer identifier (`attr"x"` etc.).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j < b.len() && (b[j] == b'"' || (b[j] == b'\'' && j == i + 1)) && j > i
}

/// Scrub a `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` literal
/// starting at `i`; returns the index just past it.
fn scrub_prefixed_literal(b: &[u8], mut i: usize, out: &mut [u8], line: &mut usize) -> usize {
    let mut raw = false;
    if b[i] == b'b' {
        i += 1;
    }
    let mut hashes = 0usize;
    if i < b.len() && b[i] == b'r' {
        raw = true;
        i += 1;
        while i < b.len() && b[i] == b'#' {
            hashes += 1;
            i += 1;
        }
    }
    if i >= b.len() {
        return i;
    }
    let quote = b[i];
    out[i] = quote;
    i += 1;
    while i < b.len() {
        if !raw && b[i] == b'\\' && i + 1 < b.len() {
            if b[i + 1] == b'\n' {
                out[i + 1] = b'\n';
                *line += 1;
            }
            i += 2;
            continue;
        }
        if b[i] == quote {
            if raw {
                // Need `quote` followed by `hashes` #'s.
                let mut j = i + 1;
                let mut seen = 0usize;
                while j < b.len() && b[j] == b'#' && seen < hashes {
                    j += 1;
                    seen += 1;
                }
                if seen == hashes {
                    out[i] = quote;
                    return j;
                }
            } else {
                out[i] = quote;
                return i + 1;
            }
        }
        if b[i] == b'\n' {
            out[i] = b'\n';
            *line += 1;
        }
        i += 1;
    }
    i
}

/// Parse a `// diesel-lint: allow(R1, R3) reason…` comment.
fn parse_directive(comment: &str, line: usize) -> Option<Suppression> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("diesel-lint:")?.trim();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        rules.push(Rule::parse(name.trim())?);
    }
    if rules.is_empty() {
        return None;
    }
    let has_reason = !rest[close + 1..].trim().is_empty();
    Some(Suppression { line, rules, has_reason })
}

/// 1-based line spans (inclusive) of `#[cfg(test)]`-gated items and
/// `#[test]` functions, computed by brace matching on scrubbed code.
pub fn test_regions(code: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(pos) = code[from..].find(marker) {
            let at = from + pos;
            from = at + marker.len();
            let start_line = 1 + code[..at].matches('\n').count();
            if let Some(end) = item_end(code, at + marker.len()) {
                let end_line = 1 + code[..end].matches('\n').count();
                regions.push((start_line, end_line));
            } else {
                // Unterminated item: exempt the rest of the file.
                regions.push((start_line, usize::MAX));
            }
        }
    }
    regions
}

/// Byte offset of the `}` closing the first brace block at or after
/// `from` (skipping over further attributes and the item header).
fn item_end(code: &str, from: usize) -> Option<usize> {
    let b = code.as_bytes();
    let open = b[from..].iter().position(|&c| c == b'{' || c == b';')? + from;
    if b[open] == b';' {
        return Some(open); // e.g. `#[cfg(test)] mod tests;`
    }
    let mut depth = 0usize;
    for (off, &c) in b[open..].iter().enumerate() {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scrub("let x = \"panic!(\"; // panic!()\nlet y = 1;");
        assert!(!s.code.contains("panic!"));
        assert!(s.code.contains("let y = 1;"));
        assert_eq!(s.code.len(), s.code.len());
    }

    #[test]
    fn raw_strings_and_chars() {
        let s = scrub(r####"let a = r#"unwrap()"#; let c = '{'; let l: &'static str = "x";"####);
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains('{'));
        assert!(s.code.contains("static"));
    }

    #[test]
    fn line_numbers_survive() {
        let s = scrub("a\n\"two\nthree\"\nb /* c\nd */ e\nf");
        assert_eq!(s.code.matches('\n').count(), 5);
    }

    #[test]
    fn directives_parse() {
        let s = scrub("x(); // diesel-lint: allow(R1) hot path, length checked above\ny();");
        assert_eq!(
            s.suppressions,
            vec![Suppression { line: 1, rules: vec![Rule::R1], has_reason: true }]
        );
        let s = scrub("// diesel-lint: allow(R2, R4)\n");
        assert_eq!(s.suppressions[0].rules, vec![Rule::R2, Rule::R4]);
        assert!(!s.suppressions[0].has_reason);
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let s = scrub(src);
        let regions = test_regions(&s.code);
        assert_eq!(regions, vec![(2, 5)]);
    }
}
