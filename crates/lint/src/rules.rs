//! The R1–R4 passes. Each pass walks the scrubbed source of one file
//! and emits findings; target/test exemptions and suppressions are
//! applied by the caller in `lib.rs`.

use crate::{Finding, Rule};

/// Crates whose library code must be panic-free (R1).
pub const R1_CRATES: &[&str] =
    &["core", "cache", "meta", "kv", "net", "store", "chunk", "obs", "exec"];

/// Modules allowed to read real time or entropy (R2): the one clock
/// implementation and its `diesel_net::clock` re-export shim.
pub const R2_EXEMPT: &[&str] = &["crates/util/src/clock.rs", "crates/net/src/clock.rs"];

/// The only module allowed to reference chunk on-disk constants (R4).
pub const R4_HOME: &str = "crates/chunk/src/format.rs";

/// Calls that read wall-clock time or ambient entropy.
const R2_TOKENS: &[&str] = &["Instant::now", "SystemTime::now", "thread_rng", "from_entropy"];

/// Chunk on-disk format constants.
const R4_TOKENS: &[&str] = &["CHUNK_MAGIC", "FORMAT_VERSION", "FIXED_HEADER_LEN"];

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whole-token occurrences of `token` in `code`, as 1-based lines.
fn token_lines(code: &str, token: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let t0 = token.as_bytes()[0];
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        from = at + token.len();
        let before_ok = at == 0 || !is_ident(b[at - 1]) && b[at - 1] != b'.' || t0 == b'.';
        let end = at + token.len();
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            out.push(1 + code[..at].matches('\n').count());
        }
    }
    out
}

/// R1 panic-freedom: `unwrap`/`expect`/panicking macros/slice indexing.
pub fn r1_panic(code: &str, out: &mut Vec<Finding>) {
    for (token, what) in [
        (".unwrap()", "unwrap() panics on the error path"),
        (".expect(", "expect() panics on the error path"),
        ("panic!(", "explicit panic"),
        ("unimplemented!(", "unimplemented!() panics"),
        ("todo!(", "todo!() panics"),
    ] {
        for line in token_lines(code, token) {
            out.push(Finding::new(Rule::R1, line, format!("{what}; return a typed error")));
        }
    }
    slice_index(code, out);
}

/// Flag `expr[...]` indexing: a `[` directly preceded by an identifier
/// character, `)` or `]`. Misses nothing a formatted tree produces and
/// skips array types (`[u8; 4]`), attributes (`#[…]`), macros (`vec![`)
/// and slice patterns (`let [a, b] = …`).
fn slice_index(code: &str, out: &mut Vec<Finding>) {
    let b = code.as_bytes();
    let mut line = 1usize;
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            line += 1;
            continue;
        }
        if c != b'[' || i == 0 {
            continue;
        }
        let p = b[i - 1];
        if is_ident(p) || p == b')' || p == b']' {
            out.push(Finding::new(
                Rule::R1,
                line,
                "slice/array indexing panics out of bounds; use get() or a checked pattern"
                    .to_owned(),
            ));
        }
    }
}

/// R2 determinism: raw time/entropy reads.
pub fn r2_determinism(code: &str, out: &mut Vec<Finding>) {
    for token in R2_TOKENS {
        for line in token_lines(code, token) {
            out.push(Finding::new(
                Rule::R2,
                line,
                format!("{token} bypasses the injectable Clock/seeded RNG"),
            ));
        }
    }
}

/// R3 lock discipline: a blocking RPC (`.call(`) or simulated sleep
/// (`sleep_ns(`) made while a `let`-bound lock guard is live in the
/// enclosing scope. Brace-depth approximation of guard lifetimes: a
/// guard dies when its block closes or when `drop(guard)` names it.
pub fn r3_lock_discipline(code: &str, out: &mut Vec<Finding>) {
    struct Guard {
        name: String,
        depth: usize,
    }
    let b = code.as_bytes();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                i += 1;
            }
            b'l' if code[i..].starts_with("let ") && (i == 0 || !is_ident(b[i - 1])) => {
                // `let [mut] NAME = …lock()/.read()/.write();`
                let stmt_end = code[i..].find(';').map(|p| i + p).unwrap_or(b.len());
                let stmt = &code[i..stmt_end];
                if let Some(name) = guard_binding(stmt) {
                    guards.push(Guard { name, depth });
                }
                i += 4;
            }
            b'd' if code[i..].starts_with("drop(") && (i == 0 || !is_ident(b[i - 1])) => {
                let arg_start = i + 5;
                let arg_end = code[arg_start..].find(')').map(|p| arg_start + p).unwrap_or(b.len());
                let arg = code[arg_start..arg_end].trim();
                guards.retain(|g| g.name != arg);
                i += 5;
            }
            b'.' if code[i..].starts_with(".call(") => {
                if let Some(g) = guards.last() {
                    out.push(Finding::new(
                        Rule::R3,
                        line,
                        format!("blocking RPC .call() while lock guard `{}` is held", g.name),
                    ));
                }
                i += 6;
            }
            b's' if code[i..].starts_with("sleep_ns(") && (i == 0 || !is_ident(b[i - 1])) => {
                if let Some(g) = guards.last() {
                    out.push(Finding::new(
                        Rule::R3,
                        line,
                        format!("sleep_ns() while lock guard `{}` is held", g.name),
                    ));
                }
                i += 9;
            }
            _ => i += 1,
        }
    }
}

/// If `stmt` (a `let …` statement without its `;`) binds a lock guard,
/// return the bound name. Only nullary `.lock()`, `.read()`, `.write()`
/// receivers count — `file.read(&mut buf)` takes arguments and doesn't
/// match.
fn guard_binding(stmt: &str) -> Option<String> {
    let eq = stmt.find('=')?;
    let rhs = &stmt[eq + 1..];
    if rhs.trim_start().starts_with('*') {
        return None; // `let x = *m.lock();` copies the value out; no guard lives
    }
    if rhs.contains('{') || rhs.contains("let ") {
        // `let x = { let g = m.lock(); … }` — the statement slice crossed
        // into a nested block; any guard in there is scoped to it.
        return None;
    }
    if !(rhs.contains(".lock()") || rhs.contains(".read()") || rhs.contains(".write()")) {
        return None;
    }
    // Guard must be the final value of the RHS, not a temporary inside a
    // longer chain (`map.lock().len()` yields usize, not a guard).
    let rhs_trim = rhs.trim_end();
    if !(rhs_trim.ends_with(".lock()")
        || rhs_trim.ends_with(".read()")
        || rhs_trim.ends_with(".write()"))
    {
        return None;
    }
    let mut lhs = stmt[..eq].trim_start_matches("let ").trim();
    if let Some(rest) = lhs.strip_prefix("mut ") {
        lhs = rest;
    }
    // Skip pattern/type bindings; a plain identifier is the common case.
    let name: String = lhs.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() || lhs.starts_with('(') || lhs.starts_with('[') {
        None
    } else {
        Some(name)
    }
}

/// R4 format hygiene: on-disk constants referenced outside
/// `chunk::format`.
pub fn r4_format_hygiene(code: &str, out: &mut Vec<Finding>) {
    for token in R4_TOKENS {
        for line in token_lines(code, token) {
            out.push(Finding::new(
                Rule::R4,
                line,
                format!("{token} is a chunk on-disk constant; only chunk::format may use it"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: fn(&str, &mut Vec<Finding>), code: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        f(code, &mut out);
        out
    }

    #[test]
    fn r1_catches_unwrap_and_indexing() {
        let hits = run(r1_panic, "let a = x.unwrap();\nlet b = v[0];\nlet t: [u8; 4] = y;\n");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
    }

    #[test]
    fn r1_skips_patterns_attrs_and_macros() {
        let hits = run(r1_panic, "#[derive(Debug)]\nlet [a, b] = pair;\nlet v = vec![1, 2];\n");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn r2_catches_raw_time() {
        let hits = run(r2_determinism, "let t = Instant::now();\nstd::time::SystemTime::now();\n");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn r3_flags_call_under_guard() {
        let src = "fn f() {\n  let g = m.lock();\n  chan.call(req);\n}\n";
        let hits = run(r3_lock_discipline, src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn r3_guard_dropped_before_call_is_fine() {
        for src in [
            "fn f() {\n  let g = m.lock();\n  drop(g);\n  chan.call(req);\n}\n",
            "fn f() {\n  { let g = m.lock(); }\n  chan.call(req);\n}\n",
            "fn f() {\n  let n = m.lock().len();\n  chan.call(req);\n}\n",
            "fn f() {\n  let v = *m.lock();\n  chan.call(req);\n}\n",
        ] {
            assert!(run(r3_lock_discipline, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn r4_flags_constants() {
        let hits = run(r4_format_hygiene, "if magic != CHUNK_MAGIC { }\n");
        assert_eq!(hits.len(), 1);
    }
}
