//! The R1–R6 passes. Each pass walks the scrubbed source of one file
//! and emits findings; target/test exemptions and suppressions are
//! applied by the caller in `lib.rs`.

use crate::{Finding, Rule};

/// Crates whose library code must be panic-free (R1).
pub const R1_CRATES: &[&str] =
    &["core", "cache", "meta", "kv", "net", "store", "chunk", "obs", "exec", "util", "train"];

/// Modules allowed to read real time or entropy (R2): the one clock
/// implementation and its `diesel_net::clock` re-export shim.
pub const R2_EXEMPT: &[&str] = &["crates/util/src/clock.rs", "crates/net/src/clock.rs"];

/// The only module allowed to reference chunk on-disk constants (R4).
pub const R4_HOME: &str = "crates/chunk/src/format.rs";

/// Calls that read wall-clock time or ambient entropy.
const R2_TOKENS: &[&str] = &["Instant::now", "SystemTime::now", "thread_rng", "from_entropy"];

/// Chunk on-disk format constants.
const R4_TOKENS: &[&str] = &["CHUNK_MAGIC", "FORMAT_VERSION", "FIXED_HEADER_LEN"];

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whole-token occurrences of `token` in `code`, as 1-based lines.
fn token_lines(code: &str, token: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let t0 = token.as_bytes()[0];
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        from = at + token.len();
        // Dot-initial tokens (`.unwrap()`) carry their own boundary; any
        // other token must not continue an identifier. The original
        // unparenthesized form bound as `a || (!b && c) || d`, which
        // silently *excluded* `.`-preceded matches for non-dot tokens —
        // a false negative for method-call forms like `rng.from_entropy()`.
        let before_ok = t0 == b'.' || at == 0 || !is_ident(b[at - 1]);
        let end = at + token.len();
        // The trailing boundary only matters when the token ends in an
        // identifier char; `.expect(` / `Vec::from(` end at punctuation,
        // which is a boundary no matter what follows (an ident argument
        // like `Vec::from(data)` must still match).
        let tn = token.as_bytes()[token.len() - 1];
        let after_ok = !is_ident(tn) || end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            out.push(1 + code[..at].matches('\n').count());
        }
    }
    out
}

/// R1 panic-freedom: `unwrap`/`expect`/panicking macros/slice indexing.
pub fn r1_panic(code: &str, out: &mut Vec<Finding>) {
    for (token, what) in [
        (".unwrap()", "unwrap() panics on the error path"),
        (".expect(", "expect() panics on the error path"),
        ("panic!(", "explicit panic"),
        ("unimplemented!(", "unimplemented!() panics"),
        ("todo!(", "todo!() panics"),
    ] {
        for line in token_lines(code, token) {
            out.push(Finding::new(Rule::R1, line, format!("{what}; return a typed error")));
        }
    }
    slice_index(code, out);
}

/// Flag `expr[...]` indexing: a `[` directly preceded by an identifier
/// character, `)` or `]`. Misses nothing a formatted tree produces and
/// skips array types (`[u8; 4]`), attributes (`#[…]`), macros (`vec![`)
/// and slice patterns (`let [a, b] = …`).
fn slice_index(code: &str, out: &mut Vec<Finding>) {
    let b = code.as_bytes();
    let mut line = 1usize;
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            line += 1;
            continue;
        }
        if c != b'[' || i == 0 {
            continue;
        }
        let p = b[i - 1];
        if is_ident(p) || p == b')' || p == b']' {
            out.push(Finding::new(
                Rule::R1,
                line,
                "slice/array indexing panics out of bounds; use get() or a checked pattern"
                    .to_owned(),
            ));
        }
    }
}

/// R2 determinism: raw time/entropy reads.
pub fn r2_determinism(code: &str, out: &mut Vec<Finding>) {
    for token in R2_TOKENS {
        for line in token_lines(code, token) {
            out.push(Finding::new(
                Rule::R2,
                line,
                format!("{token} bypasses the injectable Clock/seeded RNG"),
            ));
        }
    }
}

/// R3 lock discipline: a blocking RPC (`.call(`) or simulated sleep
/// (`sleep_ns(`) made while a `let`-bound lock guard is live in the
/// enclosing scope. Brace-depth approximation of guard lifetimes: a
/// guard dies when its block closes or when `drop(guard)` names it.
pub fn r3_lock_discipline(code: &str, out: &mut Vec<Finding>) {
    struct Guard {
        name: String,
        depth: usize,
    }
    let b = code.as_bytes();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                i += 1;
            }
            b'l' if code[i..].starts_with("let ") && (i == 0 || !is_ident(b[i - 1])) => {
                // `let [mut] NAME = …lock()/.read()/.write();`
                let stmt_end = code[i..].find(';').map(|p| i + p).unwrap_or(b.len());
                let stmt = &code[i..stmt_end];
                if let Some(name) = guard_binding(stmt) {
                    guards.push(Guard { name, depth });
                }
                i += 4;
            }
            b'd' if code[i..].starts_with("drop(") && (i == 0 || !is_ident(b[i - 1])) => {
                let arg_start = i + 5;
                let arg_end = code[arg_start..].find(')').map(|p| arg_start + p).unwrap_or(b.len());
                let arg = code[arg_start..arg_end].trim();
                guards.retain(|g| g.name != arg);
                i += 5;
            }
            b'.' if code[i..].starts_with(".call(") => {
                if let Some(g) = guards.last() {
                    out.push(Finding::new(
                        Rule::R3,
                        line,
                        format!("blocking RPC .call() while lock guard `{}` is held", g.name),
                    ));
                }
                i += 6;
            }
            b's' if code[i..].starts_with("sleep_ns(") && (i == 0 || !is_ident(b[i - 1])) => {
                if let Some(g) = guards.last() {
                    out.push(Finding::new(
                        Rule::R3,
                        line,
                        format!("sleep_ns() while lock guard `{}` is held", g.name),
                    ));
                }
                i += 9;
            }
            _ => i += 1,
        }
    }
}

/// If `stmt` (a `let …` statement without its `;`) binds a lock guard,
/// return the bound name. Only nullary `.lock()`, `.read()`, `.write()`
/// receivers count — `file.read(&mut buf)` takes arguments and doesn't
/// match. Public so the proptest harness can fuzz it directly.
pub fn guard_binding(stmt: &str) -> Option<String> {
    let eq = stmt.find('=')?;
    let rhs = &stmt[eq + 1..];
    if rhs.trim_start().starts_with('*') {
        return None; // `let x = *m.lock();` copies the value out; no guard lives
    }
    if rhs.contains('{') || rhs.contains("let ") {
        // `let x = { let g = m.lock(); … }` — the statement slice crossed
        // into a nested block; any guard in there is scoped to it.
        return None;
    }
    if !(rhs.contains(".lock()") || rhs.contains(".read()") || rhs.contains(".write()")) {
        return None;
    }
    // Guard must be the final value of the RHS, not a temporary inside a
    // longer chain (`map.lock().len()` yields usize, not a guard).
    let rhs_trim = rhs.trim_end();
    if !(rhs_trim.ends_with(".lock()")
        || rhs_trim.ends_with(".read()")
        || rhs_trim.ends_with(".write()"))
    {
        return None;
    }
    let mut lhs = stmt[..eq].trim_start_matches("let ").trim();
    if let Some(rest) = lhs.strip_prefix("mut ") {
        lhs = rest;
    }
    // Skip pattern/type bindings; a plain identifier is the common case.
    let name: String = lhs.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() || lhs.starts_with('(') || lhs.starts_with('[') {
        None
    } else {
        Some(name)
    }
}

/// R4 format hygiene: on-disk constants referenced outside
/// `chunk::format`.
pub fn r4_format_hygiene(code: &str, out: &mut Vec<Finding>) {
    for token in R4_TOKENS {
        for line in token_lines(code, token) {
            out.push(Finding::new(
                Rule::R4,
                line,
                format!("{token} is a chunk on-disk constant; only chunk::format may use it"),
            ));
        }
    }
}

/// The declared lock-rank manifest (R5). Receiver identifiers of every
/// lock that is ever acquired *inside* another guard's scope, ranked:
/// nesting must go strictly rank-upward (outer < inner). The runtime
/// witness (`diesel_util::lockdep`) learns orders empirically; this
/// manifest declares them, so an inversion is a finding even on paths
/// tests never execute. Receivers not listed here may only be acquired
/// un-nested — a nested acquisition of an unranked receiver is itself
/// a finding (add it here, deliberately, with the right rank).
pub const LOCK_RANKS: &[(&str, u32)] = &[
    // admission controller: the DRR lane mutex publishes per-tenant
    // gauges (obs registry `inner`) while held, so it ranks below the
    // registry.
    ("lanes", 5),
    // telemetry plane: the flight recorder's frame ring and the SLO
    // monitor's state map are designed to never hold a registry lock —
    // tick() snapshots *before* taking `frames`, evaluate() emits
    // events *after* dropping `slo_states` — so they rank below the
    // registry's gate and any nesting the other way is a finding.
    ("frames", 6),
    ("slo_states", 7),
    // tenant cache map: the tenant table is consulted before any
    // per-tenant cache work, so it ranks below the cache's membership
    // plane and the registry.
    ("tenants", 8),
    // obs registry: snapshot nests gate → metrics map → event ring.
    ("gate", 10),
    // cache elastic membership: a rebalance serializes on
    // rebalance_lock, swings the membership plane, then touches
    // per-node inners (cache.rebalance → cache.membership →
    // cache.node at runtime).
    ("rebalance_lock", 12),
    // The rebalance drain parks on this while re-reading the handoff
    // map, so it sits between the transition serializer and the
    // membership plane.
    ("drain_mutex", 13),
    ("membership", 15),
    ("inner", 20),
    ("events", 30),
    // exec pool: worker spawn serializes on start_lock, then appends
    // join handles.
    ("start_lock", 40),
    ("handles", 50),
];

/// Rank of `recv` per [`LOCK_RANKS`].
fn lock_rank(recv: &str) -> Option<u32> {
    LOCK_RANKS.iter().find(|(n, _)| *n == recv).map(|&(_, r)| r)
}

/// The receiver identifier of a `.lock()`/`.read()`/`.write()` call
/// whose dot sits at byte `dot`: the identifier just before the dot,
/// skipping one trailing index/call group (`shards[i]` → `shards`,
/// `node(n)` → `node`).
fn recv_ident(code: &str, dot: usize) -> Option<String> {
    let b = code.as_bytes();
    let mut j = dot;
    // Skip one bracket group: `self.shards[i].read()`, `shard(k).write()`.
    for (open, close) in [(b'[', b']'), (b'(', b')')] {
        if j > 0 && b[j - 1] == close {
            let mut depth = 0usize;
            while j > 0 {
                j -= 1;
                if b[j] == close {
                    depth += 1;
                } else if b[j] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        }
    }
    let end = j;
    while j > 0 && is_ident(b[j - 1]) {
        j -= 1;
    }
    if j == end {
        None
    } else {
        Some(code[j..end].to_owned())
    }
}

/// R5 lock order: a second `.lock()`/`.read()`/`.write()` made while a
/// guard bound in an *earlier statement* of the scope is still live.
/// Such a nesting is legal only when both receivers appear in
/// [`LOCK_RANKS`] and the rank strictly increases inward; anything else
/// — unranked receivers or a rank inversion — is a finding. Reuses the
/// brace-depth guard tracker of [`r3_lock_discipline`]; cross-function
/// nesting is the runtime witness's job (`diesel_util::lockdep`).
pub fn r5_lock_order(code: &str, out: &mut Vec<Finding>) {
    struct Guard {
        name: String,
        recv: String,
        depth: usize,
        /// Byte offset of the binding statement's `;` — acquisitions at
        /// or before it belong to this guard's own construction.
        end: usize,
    }
    let b = code.as_bytes();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                i += 1;
            }
            b'l' if code[i..].starts_with("let ") && (i == 0 || !is_ident(b[i - 1])) => {
                let stmt_end = code[i..].find(';').map(|p| i + p).unwrap_or(b.len());
                let stmt = &code[i..stmt_end];
                if let Some(name) = guard_binding(stmt) {
                    let recv = stmt
                        .rfind(".lock()")
                        .or_else(|| stmt.rfind(".read()"))
                        .or_else(|| stmt.rfind(".write()"))
                        .and_then(|p| recv_ident(stmt, p))
                        .unwrap_or_default();
                    guards.push(Guard { name, recv, depth, end: stmt_end });
                }
                i += 4;
            }
            b'd' if code[i..].starts_with("drop(") && (i == 0 || !is_ident(b[i - 1])) => {
                let arg_start = i + 5;
                let arg_end = code[arg_start..].find(')').map(|p| arg_start + p).unwrap_or(b.len());
                let arg = code[arg_start..arg_end].trim();
                guards.retain(|g| g.name != arg);
                i += 5;
            }
            b'.' if code[i..].starts_with(".lock()")
                || code[i..].starts_with(".read()")
                || code[i..].starts_with(".write()") =>
            {
                // Only guards born in *earlier* statements count as
                // outer; the binding that contains this very token is
                // still being constructed.
                if let Some(outer) = guards.iter().rfind(|g| g.end < i) {
                    let recv = recv_ident(code, i).unwrap_or_default();
                    match (lock_rank(&outer.recv), lock_rank(&recv)) {
                        (Some(o), Some(n)) if o < n => {}
                        (Some(o), Some(n)) => out.push(Finding::new(
                            Rule::R5,
                            line,
                            format!(
                                "lock rank inversion: acquiring `{recv}` (rank {n}) while holding `{}` (rank {o}); nesting must go strictly rank-upward",
                                outer.recv
                            ),
                        )),
                        _ => out.push(Finding::new(
                            Rule::R5,
                            line,
                            format!(
                                "nested lock acquisition of `{recv}` under guard `{}` (receiver `{}`) is not in the LOCK_RANKS manifest; declare both ranks or restructure",
                                outer.name, outer.recv
                            ),
                        )),
                    }
                }
                i += 6;
            }
            _ => i += 1,
        }
    }
}

/// The only module allowed raw byte copies without a ledger entry (R6):
/// `Bytes` itself materializes vecs in its slice/into_vec plumbing.
pub const R6_HOME: &str = "crates/util/src/bytes.rs";

/// Copy tokens R6 polices. `.clone()` is deliberately absent —
/// `Bytes::clone` is a refcount bump, cloning is the zero-copy idiom.
const R6_TOKENS: &[&str] = &[".to_vec()", ".into_vec()", "Vec::from("];

/// How far (in lines) a `record_copy(` call may sit from the copy it
/// ledgers and still count.
pub const R6_LEDGER_RADIUS: usize = 3;

/// R6 copy hygiene: payload-plane byte copies (`.to_vec()`,
/// `.into_vec()`, `Vec::from(`) must be *ledgered* — a
/// `record_copy(…)` call within ±[`R6_LEDGER_RADIUS`] lines — so the
/// zero-copy read path (DESIGN.md §11) stays shrink-only like the rest
/// of the baseline. Non-payload copies are suppressed in place with a
/// reason instead.
pub fn r6_copy_hygiene(code: &str, out: &mut Vec<Finding>) {
    let ledgered = token_lines(code, "record_copy(");
    for token in R6_TOKENS {
        for line in token_lines(code, token) {
            if ledgered.iter().any(|&l| l.abs_diff(line) <= R6_LEDGER_RADIUS) {
                continue;
            }
            out.push(Finding::new(
                Rule::R6,
                line,
                format!(
                    "{token} copies bytes outside the ledger; call record_copy beside it or keep the payload as Bytes"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: fn(&str, &mut Vec<Finding>), code: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        f(code, &mut out);
        out
    }

    #[test]
    fn r1_catches_unwrap_and_indexing() {
        let hits = run(r1_panic, "let a = x.unwrap();\nlet b = v[0];\nlet t: [u8; 4] = y;\n");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
    }

    #[test]
    fn r1_skips_patterns_attrs_and_macros() {
        let hits = run(r1_panic, "#[derive(Debug)]\nlet [a, b] = pair;\nlet v = vec![1, 2];\n");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn r2_catches_raw_time() {
        let hits = run(r2_determinism, "let t = Instant::now();\nstd::time::SystemTime::now();\n");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn r3_flags_call_under_guard() {
        let src = "fn f() {\n  let g = m.lock();\n  chan.call(req);\n}\n";
        let hits = run(r3_lock_discipline, src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn r3_guard_dropped_before_call_is_fine() {
        for src in [
            "fn f() {\n  let g = m.lock();\n  drop(g);\n  chan.call(req);\n}\n",
            "fn f() {\n  { let g = m.lock(); }\n  chan.call(req);\n}\n",
            "fn f() {\n  let n = m.lock().len();\n  chan.call(req);\n}\n",
            "fn f() {\n  let v = *m.lock();\n  chan.call(req);\n}\n",
        ] {
            assert!(run(r3_lock_discipline, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn r4_flags_constants() {
        let hits = run(r4_format_hygiene, "if magic != CHUNK_MAGIC { }\n");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn token_lines_rejects_prefixed_and_suffixed_identifiers() {
        // `my_thread_rng` and `thread_rng_2` must not match `thread_rng`.
        assert!(token_lines("let a = my_thread_rng();\n", "thread_rng").is_empty());
        assert!(token_lines("let a = thread_rng_2();\n", "thread_rng").is_empty());
        assert_eq!(token_lines("let a = thread_rng();\n", "thread_rng"), vec![1]);
    }

    #[test]
    fn token_lines_punctuation_tail_accepts_ident_arguments() {
        // A token ending in `(` is already bounded; the argument that
        // follows may start with an identifier char.
        assert_eq!(token_lines("let w = Vec::from(data);\n", "Vec::from("), vec![1]);
    }

    #[test]
    fn token_lines_matches_method_call_form() {
        // The pre-fix precedence bug dropped `.`-preceded matches of
        // non-dot tokens: `rng.from_entropy()` went unreported.
        assert_eq!(token_lines("let r = rng.from_entropy();\n", "from_entropy"), vec![1]);
    }

    #[test]
    fn r5_flags_unranked_nesting() {
        let src = "fn f() {\n  let g = a.lock();\n  let h = b.lock();\n}\n";
        let hits = run(r5_lock_order, src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("LOCK_RANKS"), "{}", hits[0].message);
    }

    #[test]
    fn r5_rank_upward_nesting_is_fine() {
        let src = "fn f() {\n  let g = self.gate.write();\n  let c = self.inner.lock();\n                     let e = self.events.lock();\n}\n";
        assert!(run(r5_lock_order, src).is_empty());
    }

    #[test]
    fn r5_flags_rank_inversion() {
        let src = "fn f() {\n  let e = self.events.lock();\n  let g = self.gate.write();\n}\n";
        let hits = run(r5_lock_order, src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("rank inversion"), "{}", hits[0].message);
    }

    #[test]
    fn r5_sequential_acquisition_is_fine() {
        for src in [
            // Temporary guards: no let-bound guard lives across the call.
            "fn f() {\n  a.lock().push(1);\n  b.lock().push(2);\n}\n",
            // Dropped before the second acquisition.
            "fn f() {\n  let g = a.lock();\n  drop(g);\n  let h = b.lock();\n}\n",
            // Scoped out before the second acquisition.
            "fn f() {\n  { let g = a.lock(); }\n  let h = b.lock();\n}\n",
        ] {
            assert!(run(r5_lock_order, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn r5_recv_ident_sees_through_index_and_call_groups() {
        let src = "fn f() {\n  let g = self.events.lock();\n                     let h = self.shards[i].read();\n}\n";
        let hits = run(r5_lock_order, src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("`shards`"), "{}", hits[0].message);
    }

    #[test]
    fn r6_flags_unledgered_copy() {
        let hits = run(r6_copy_hygiene, "let v = data.to_vec();\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn r6_ledgered_copy_within_radius_is_fine() {
        let src = "let v = data.to_vec();\nrecord_copy(\"site\", v.len() as u64);\n";
        assert!(run(r6_copy_hygiene, src).is_empty());
        let far = "let v = data.to_vec();\n\n\n\n\nrecord_copy(\"site\", 1);\n";
        assert_eq!(run(r6_copy_hygiene, far).len(), 1, "5 lines apart is outside the radius");
    }
}
