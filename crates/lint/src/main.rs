//! The `diesel-lint` command-line front end.
//!
//! ```text
//! diesel-lint --workspace [--root DIR] [--json] \
//!             [--baseline FILE] [--baseline-check] [--write-baseline FILE]
//! diesel-lint FILE…
//! diesel-lint --explain RULE
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or stale baseline under
//! `--baseline-check`), 2 usage/configuration error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use diesel_lint::baseline::Baseline;
use diesel_lint::{scan_source, to_json, workspace_files, Finding, Rule};

struct Options {
    explain: Option<Rule>,
    workspace: bool,
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    baseline_check: bool,
    write_baseline: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: diesel-lint (--workspace [--root DIR] | FILE... | --explain RULE) \
     [--json] [--baseline FILE] [--baseline-check] [--write-baseline FILE]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        explain: None,
        workspace: false,
        root: PathBuf::from("."),
        json: false,
        baseline: None,
        baseline_check: false,
        write_baseline: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut path_value = |name: &str| {
            it.next().map(PathBuf::from).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--explain" => {
                let code = it.next().ok_or("--explain needs a rule code (R1..R6)")?;
                opts.explain = Some(
                    Rule::parse(code).ok_or_else(|| format!("unknown rule {code:?} (R1..R6)"))?,
                );
            }
            "--json" => opts.json = true,
            "--baseline-check" => opts.baseline_check = true,
            "--root" => opts.root = path_value("--root")?,
            "--baseline" => opts.baseline = Some(path_value("--baseline")?),
            "--write-baseline" => opts.write_baseline = Some(path_value("--write-baseline")?),
            "--help" | "-h" => return Err(usage().to_owned()),
            f if !f.starts_with('-') => opts.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if opts.explain.is_none() && opts.workspace != opts.files.is_empty() {
        return Err(format!("pass exactly one of --workspace or file paths\n{}", usage()));
    }
    if opts.baseline_check && opts.baseline.is_none() {
        return Err("--baseline-check requires --baseline".to_owned());
    }
    Ok(opts)
}

fn scan(opts: &Options) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let rels: Vec<PathBuf> =
        if opts.workspace { workspace_files(&opts.root)? } else { opts.files.clone() };
    let root: &Path = &opts.root;
    for rel in rels {
        let full = if rel.is_absolute() { rel.clone() } else { root.join(&rel) };
        let src = std::fs::read_to_string(&full)?;
        findings.extend(scan_source(&rel.to_string_lossy().replace('\\', "/"), &src));
    }
    Ok(findings)
}

fn run() -> Result<bool, (String, u8)> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args).map_err(|e| (e, 2))?;

    if let Some(rule) = opts.explain {
        println!("{rule}: {}", rule.explain());
        return Ok(true);
    }

    let findings = scan(&opts).map_err(|e| (format!("scan failed: {e}"), 2))?;

    if let Some(path) = &opts.write_baseline {
        let base = Baseline::from_findings(&findings);
        std::fs::write(path, base.render())
            .map_err(|e| (format!("cannot write {}: {e}", path.display()), 2))?;
        eprintln!(
            "diesel-lint: wrote baseline {} ({} entries covering {} findings)",
            path.display(),
            base.len(),
            findings.len()
        );
        return Ok(true);
    }

    let (remaining, stale) = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| (format!("cannot read {}: {e}", path.display()), 2))?;
            let base = Baseline::parse(&text).map_err(|e| (e.to_string(), 2))?;
            let stale =
                if opts.baseline_check { base.stale_entries(&findings) } else { Vec::new() };
            (base.filter(findings), stale)
        }
        None => (findings, Vec::new()),
    };

    if opts.json {
        print!("{}", to_json(&remaining));
    } else {
        for f in &remaining {
            println!("{f}");
        }
        if !remaining.is_empty() {
            eprintln!("diesel-lint: {} finding(s)", remaining.len());
        }
    }
    for (rule, path, allowed, actual) in &stale {
        eprintln!(
            "diesel-lint: stale baseline entry: {} {path} allows {allowed} but only \
             {actual} remain — shrink the baseline (--write-baseline)",
            rule.code(),
        );
    }
    Ok(remaining.is_empty() && stale.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err((msg, code)) => {
            eprintln!("diesel-lint: {msg}");
            ExitCode::from(code)
        }
    }
}
