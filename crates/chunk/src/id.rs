//! Sortable chunk identifiers (paper Table 1).
//!
//! A chunk ID is 16 bytes:
//!
//! | field              | bytes  |
//! |--------------------|--------|
//! | timestamp (secs)   | 0–3    |
//! | machine identifier | 4–9    |
//! | process id         | 10–12  |
//! | counter            | 13–15  |
//!
//! Because the timestamp is the most significant field, sorting IDs
//! byte-lexicographically sorts chunks by creation time — the property the
//! recovery path (§4.1.2) relies on: "the data chunks can be sorted by
//! their IDs in their written order".
//!
//! The paper stores the *printable* form of the ID in the object store
//! ("converted into printable characters (e.g., using base64)"). Standard
//! base64 is **not** order-preserving (`'+' < '/' < digits < upper < lower`
//! in ASCII does not match the alphabet order), so [`ChunkId::encode`] uses
//! an order-preserving 64-character alphabet (`-`, `0-9`, `A-Z`, `_`,
//! `a-z`) in which alphabet order equals ASCII order. Sorting encoded
//! strings therefore equals sorting raw IDs. A standard-base64 codec is
//! also provided for interoperability tests.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diesel_util::{Clock, MockClock, SystemClock};

use crate::ChunkError;

/// Six-byte machine identifier (the paper uses the MAC address of the
/// Ethernet interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub [u8; 6]);

impl MachineId {
    /// Derive a machine ID from an arbitrary seed (useful in tests and in
    /// simulated clusters where no NIC exists).
    pub fn from_seed(seed: u64) -> Self {
        let mut b = [0u8; 6];
        b.copy_from_slice(&seed.to_be_bytes()[2..8]);
        MachineId(b)
    }

    /// Derive a machine ID for the current host. Without access to a NIC we
    /// hash the hostname-ish identity sources available to a pure-Rust
    /// library; collisions across simulated nodes are avoided by
    /// [`MachineId::from_seed`].
    pub fn local() -> Self {
        let pid = std::process::id() as u64;
        // FNV-1a over the pid and a fixed salt; deterministic per process.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in pid.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        MachineId::from_seed(h)
    }
}

/// A 16-byte sortable chunk identifier (Table 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub [u8; 16]);

impl ChunkId {
    /// Length of the textual encoding: ceil(16 × 4 / 3) = 22 characters
    /// (no padding).
    pub const ENCODED_LEN: usize = 22;

    /// Construct from raw parts.
    pub fn new(timestamp_secs: u32, machine: MachineId, pid: u32, counter: u32) -> Self {
        let mut b = [0u8; 16];
        b[0..4].copy_from_slice(&timestamp_secs.to_be_bytes());
        b[4..10].copy_from_slice(&machine.0);
        b[10..13].copy_from_slice(&pid.to_be_bytes()[1..4]);
        b[13..16].copy_from_slice(&counter.to_be_bytes()[1..4]);
        ChunkId(b)
    }

    /// Creation timestamp in seconds (big-endian bytes 0–3).
    pub fn timestamp_secs(&self) -> u32 {
        let [t0, t1, t2, t3, ..] = self.0;
        u32::from_be_bytes([t0, t1, t2, t3])
    }

    /// Machine identifier (bytes 4–9).
    pub fn machine(&self) -> MachineId {
        let [_, _, _, _, m0, m1, m2, m3, m4, m5, ..] = self.0;
        MachineId([m0, m1, m2, m3, m4, m5])
    }

    /// Process id (bytes 10–12, 24-bit).
    pub fn pid(&self) -> u32 {
        let b = &self.0[10..13];
        ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32
    }

    /// Per-process counter (bytes 13–15, 24-bit).
    pub fn counter(&self) -> u32 {
        let b = &self.0[13..16];
        ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32
    }

    /// Encode with the order-preserving alphabet. Sorting the resulting
    /// strings lexicographically sorts the IDs by their raw bytes, i.e. by
    /// creation time first.
    pub fn encode(&self) -> String {
        encode_sort64(&self.0)
    }

    /// Decode a string produced by [`ChunkId::encode`].
    pub fn decode(s: &str) -> crate::Result<Self> {
        let raw = decode_sort64(s)?;
        Ok(ChunkId(raw))
    }

    /// Encode with the *standard* base64 alphabet (not order-preserving);
    /// provided for interoperability and to document the pitfall.
    pub fn encode_std_base64(&self) -> String {
        encode_base64_alphabet(&self.0, STD64)
    }
}

impl fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ChunkId(ts={}, pid={}, ctr={}, {})",
            self.timestamp_secs(),
            self.pid(),
            self.counter(),
            self.encode()
        )
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

const STD64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
const ORD64: &[u8; 64] = b"-0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ_abcdefghijklmnopqrstuvwxyz";

fn encode_base64_alphabet(bytes: &[u8; 16], alphabet: &[u8; 64]) -> String {
    let mut out = String::with_capacity(ChunkId::ENCODED_LEN);
    let mut acc: u32 = 0;
    let mut nbits = 0u32;
    for &b in bytes.iter() {
        acc = (acc << 8) | b as u32;
        nbits += 8;
        while nbits >= 6 {
            nbits -= 6;
            out.push(alphabet[((acc >> nbits) & 0x3f) as usize] as char);
        }
    }
    if nbits > 0 {
        // Left-align the remaining bits, as standard base64 does. For
        // order preservation the padding bits must be zero (they are).
        out.push(alphabet[((acc << (6 - nbits)) & 0x3f) as usize] as char);
    }
    out
}

fn encode_sort64(bytes: &[u8; 16]) -> String {
    encode_base64_alphabet(bytes, ORD64)
}

fn decode_sort64(s: &str) -> crate::Result<[u8; 16]> {
    if s.len() != ChunkId::ENCODED_LEN {
        return Err(ChunkError::BadChunkId);
    }
    let mut rev = [0xffu8; 128];
    for (i, &c) in ORD64.iter().enumerate() {
        rev[c as usize] = i as u8;
    }
    let mut acc: u32 = 0;
    let mut nbits = 0u32;
    let mut out = [0u8; 16];
    let mut oi = 0usize;
    for c in s.bytes() {
        if c as usize >= 128 || rev[c as usize] == 0xff {
            return Err(ChunkError::BadChunkId);
        }
        acc = (acc << 6) | rev[c as usize] as u32;
        nbits += 6;
        if nbits >= 8 {
            nbits -= 8;
            if oi >= 16 {
                return Err(ChunkError::BadChunkId);
            }
            out[oi] = ((acc >> nbits) & 0xff) as u8;
            oi += 1;
        }
    }
    if oi != 16 {
        return Err(ChunkError::BadChunkId);
    }
    Ok(out)
}

/// Generates unique, time-sortable chunk IDs for one process.
///
/// The 24-bit counter lets each process mint ~16.7 M unique IDs per second
/// (paper §4.1.2). The counter is a single atomic; generation is lock-free
/// and safe to share across threads.
pub struct ChunkIdGenerator {
    machine: MachineId,
    pid: u32,
    /// Packs (timestamp_secs << 24 | counter) so that a compare-exchange can
    /// atomically roll the counter over into the next second.
    state: AtomicU64,
    /// Timestamp source. Production generators use [`SystemClock`];
    /// tests and simulations inject a mock so two builds of the same
    /// dataset mint identical IDs (recovery-scan ordering, §4.1.2).
    clock: Arc<dyn Clock>,
}

impl fmt::Debug for ChunkIdGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkIdGenerator")
            .field("machine", &self.machine)
            .field("pid", &self.pid)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl ChunkIdGenerator {
    /// A generator using the wall clock and the local machine identity.
    ///
    /// The 24-bit process-id field is split: the low 12 bits come from
    /// the OS process id, the high 12 bits from a per-process generator
    /// sequence number. The paper's field disambiguates *processes* on a
    /// machine; a library must also disambiguate multiple generator
    /// instances (one per client) inside one process, or concurrent
    /// clients started in the same second would mint colliding IDs and
    /// silently overwrite each other's chunks.
    pub fn new() -> Self {
        static GENERATOR_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = GENERATOR_SEQ.fetch_add(1, Ordering::Relaxed) as u32;
        let pid = (std::process::id() & 0x0fff) | ((seq & 0x0fff) << 12);
        Self::with_identity(MachineId::local(), pid)
    }

    /// A generator with an explicit machine identity and pid (pid is
    /// truncated to 24 bits, as in the on-disk format).
    pub fn with_identity(machine: MachineId, pid: u32) -> Self {
        Self::with_clock(machine, pid, Arc::new(SystemClock::new()))
    }

    /// A generator taking timestamps from an explicit [`Clock`].
    ///
    /// This is the determinism seam (rule R2): with a shared `MockClock`
    /// two generators with the same identity mint identical ID
    /// sequences, which is what makes chunk builds reproducible.
    pub fn with_clock(machine: MachineId, pid: u32, clock: Arc<dyn Clock>) -> Self {
        ChunkIdGenerator { machine, pid: pid & 0x00ff_ffff, state: AtomicU64::new(0), clock }
    }

    /// A deterministic generator whose timestamp field is frozen at
    /// `timestamp_secs`. Useful for tests and simulations.
    pub fn deterministic(machine_seed: u64, pid: u32, timestamp_secs: u32) -> Self {
        // A mock clock that is never advanced reads a constant time.
        let clock = Arc::new(MockClock::at_epoch_ms(timestamp_secs as u64 * 1000));
        Self::with_clock(MachineId::from_seed(machine_seed), pid, clock)
    }

    fn now_secs(&self) -> u32 {
        (self.clock.epoch_ms() / 1000) as u32
    }

    /// Mint the next unique chunk ID.
    ///
    /// IDs from one generator are strictly increasing. If the 24-bit counter
    /// overflows within one second the timestamp field is advanced by one
    /// second (logically borrowing from the future) so uniqueness and
    /// monotonicity are preserved even past 16.7 M IDs/sec.
    pub fn next_id(&self) -> ChunkId {
        let wall = self.now_secs() as u64;
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let ts = cur >> 24;
            let ctr = cur & 0x00ff_ffff;
            let (new_ts, new_ctr) = if wall > ts {
                (wall, 0u64)
            } else if ctr < 0x00ff_ffff {
                (ts, ctr + 1)
            } else {
                (ts + 1, 0)
            };
            let new = (new_ts << 24) | new_ctr;
            match self.state.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    return ChunkId::new(new_ts as u32, self.machine, self.pid, new_ctr as u32)
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Default for ChunkIdGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn id_field_roundtrip() {
        let id = ChunkId::new(0x1234_5678, MachineId::from_seed(42), 0x00ab_cdef, 0x0012_3456);
        assert_eq!(id.timestamp_secs(), 0x1234_5678);
        assert_eq!(id.machine(), MachineId::from_seed(42));
        assert_eq!(id.pid(), 0x00ab_cdef);
        assert_eq!(id.counter(), 0x0012_3456);
    }

    #[test]
    fn pid_truncated_to_24_bits() {
        let id = ChunkId::new(1, MachineId::from_seed(1), 0xffff_ffff, 0);
        assert_eq!(id.pid(), 0x00ff_ffff);
    }

    #[test]
    fn encode_roundtrip() {
        let id = ChunkId::new(1_600_000_000, MachineId::from_seed(7), 4242, 99);
        let s = id.encode();
        assert_eq!(s.len(), ChunkId::ENCODED_LEN);
        assert_eq!(ChunkId::decode(&s).unwrap(), id);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ChunkId::decode("").is_err());
        assert!(ChunkId::decode("!!!!!!!!!!!!!!!!!!!!!!").is_err());
        assert!(ChunkId::decode("abc").is_err());
        // correct length, invalid char
        assert!(ChunkId::decode("++++++++++++++++++++++").is_err());
    }

    #[test]
    fn sort_order_preserving_encoding() {
        // Encoded order must equal raw byte order (and thus time order).
        let gen = ChunkIdGenerator::deterministic(1, 1, 100);
        let mut ids: Vec<ChunkId> = (0..1000).map(|_| gen.next_id()).collect();
        let later = ChunkIdGenerator::deterministic(1, 1, 200);
        ids.extend((0..100).map(|_| later.next_id()));
        let mut encoded: Vec<String> = ids.iter().map(|i| i.encode()).collect();
        let mut raw_sorted = ids.clone();
        raw_sorted.sort();
        encoded.sort();
        let decoded: Vec<ChunkId> = encoded.iter().map(|s| ChunkId::decode(s).unwrap()).collect();
        assert_eq!(decoded, raw_sorted);
    }

    #[test]
    fn std_base64_is_not_order_preserving() {
        // Documents why the ordered alphabet exists: find two IDs whose raw
        // order and std-base64 string order disagree.
        let a = ChunkId::new(0, MachineId::from_seed(0x3e), 0, 0); // byte 0x00 ...
        let b = ChunkId::new(0x0400_0000, MachineId::from_seed(0), 0, 0);
        assert!(a.0 < b.0);
        // '+' and '/' sort before alphanumerics in ASCII but come last in the
        // standard alphabet, so there exist inversions; assert the specific
        // global property instead: the mapping is not monotone over a sweep.
        let mut inversions = 0;
        let mut prev_raw = ChunkId::new(0, MachineId::from_seed(0), 0, 0);
        let mut prev_s = prev_raw.encode_std_base64();
        for ts in 1..2048u32 {
            let id = ChunkId::new(ts, MachineId::from_seed(ts as u64 * 977), 0, 0);
            let s = id.encode_std_base64();
            if (id.0 > prev_raw.0) != (s > prev_s) {
                inversions += 1;
            }
            prev_raw = id;
            prev_s = s;
        }
        assert!(inversions > 0, "expected std base64 to break ordering");
        let _ = (a, b);
    }

    #[test]
    fn generator_unique_and_monotone() {
        let gen = ChunkIdGenerator::deterministic(9, 77, 1000);
        let ids: Vec<ChunkId> = (0..10_000).map(|_| gen.next_id()).collect();
        let set: HashSet<ChunkId> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "ids must be strictly increasing");
        }
    }

    #[test]
    fn generator_unique_across_threads() {
        let gen = std::sync::Arc::new(ChunkIdGenerator::deterministic(3, 5, 50));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = gen.clone();
            handles.push(std::thread::spawn(move || {
                (0..5000).map(|_| g.next_id()).collect::<Vec<_>>()
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let set: HashSet<ChunkId> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "ids must be unique across threads");
    }

    #[test]
    fn counter_overflow_borrows_next_second() {
        let gen = ChunkIdGenerator::deterministic(1, 1, 10);
        // Force the internal state near overflow.
        gen.state.store((10u64 << 24) | 0x00ff_fffe, Ordering::Relaxed);
        let a = gen.next_id();
        let b = gen.next_id();
        assert_eq!(a.timestamp_secs(), 10);
        assert_eq!(a.counter(), 0x00ff_ffff);
        assert_eq!(b.timestamp_secs(), 11);
        assert_eq!(b.counter(), 0);
        assert!(a < b);
    }

    #[test]
    fn distinct_generators_in_one_process_never_collide() {
        // Regression test: two clients in one process, created in the
        // same wall-clock second, must not mint overlapping IDs.
        let a = ChunkIdGenerator::new();
        let b = ChunkIdGenerator::new();
        let mut all = HashSet::new();
        for _ in 0..1000 {
            assert!(all.insert(a.next_id()));
            assert!(all.insert(b.next_id()));
        }
    }

    #[test]
    fn machine_id_from_seed_is_stable() {
        assert_eq!(MachineId::from_seed(123), MachineId::from_seed(123));
        assert_ne!(MachineId::from_seed(1), MachineId::from_seed(2));
    }
}
