//! Chunk compaction — the `DL_purge` housekeeping operation (§5).
//!
//! File modification/deletion in DIESEL marks entries in a chunk's
//! deletion bitmap, leaving holes in the payload. `compact_chunk` rewrites
//! a chunk keeping only live files, assigning a fresh chunk ID (the
//! compacted chunk is a new write, so it must sort after existing chunks
//! for recovery correctness).

use crate::builder::ChunkBuilder;
use crate::format::ChunkHeader;
use crate::id::ChunkIdGenerator;
use crate::reader::ChunkReader;
use crate::{ChunkBuilderConfig, Result};

/// Statistics from one compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Files kept (live before compaction).
    pub live_files: usize,
    /// Files dropped (deleted before compaction).
    pub dropped_files: usize,
    /// Payload bytes reclaimed.
    pub reclaimed_bytes: u64,
}

/// Rewrite `chunk` without its deleted files.
///
/// Returns `None` when the chunk has no deleted files (nothing to do) —
/// callers should keep the original chunk in that case. Returns the new
/// chunk bytes, its header, and stats otherwise. If every file is deleted
/// the resulting chunk is empty (zero files) and callers typically delete
/// the object instead of storing it; the empty chunk is still returned so
/// the decision stays with the caller.
pub fn compact_chunk(
    chunk: &[u8],
    ids: &ChunkIdGenerator,
    updated_ms: u64,
) -> Result<Option<(ChunkHeader, Vec<u8>, CompactionStats)>> {
    let reader = ChunkReader::parse(chunk)?;
    let header = reader.header();
    let dropped = header.deleted_count();
    if dropped == 0 {
        return Ok(None);
    }
    let mut builder = ChunkBuilder::new(ChunkBuilderConfig {
        // Compaction never splits a chunk: keep everything together.
        target_chunk_size: usize::MAX,
        max_file_size: usize::MAX,
    });
    let mut reclaimed = 0u64;
    for (i, f) in header.files.iter().enumerate() {
        if header.bitmap.is_deleted(i) {
            reclaimed += f.length;
        } else {
            builder.add_file(&f.name, reader.read_file_at(i)?)?;
        }
    }
    let live = builder.file_count();
    let (new_header, bytes) = builder.seal(ids.next_id(), updated_ms);
    Ok(Some((
        new_header,
        bytes,
        CompactionStats { live_files: live, dropped_files: dropped, reclaimed_bytes: reclaimed },
    )))
}

/// Mark a file deleted inside a sealed chunk, in place.
///
/// Rewrites only the deletion bitmap, the deleted-count field and the
/// header CRC; payload bytes are untouched, so this is O(header).
/// Returns `true` if the file existed and was live.
pub fn mark_deleted(chunk: &mut [u8], name: &str) -> Result<bool> {
    let mut header = ChunkHeader::decode(chunk)?;
    let Some(idx) = header.files.iter().position(|f| f.name == name) else {
        return Ok(false);
    };
    if header.bitmap.is_deleted(idx) {
        return Ok(false);
    }
    header.bitmap.set_deleted(idx);
    // Re-encode the header; its length is unchanged because only bit
    // content changed.
    let hlen = header.header_len as usize;
    let mut buf = Vec::with_capacity(hlen);
    header.encode(&mut buf);
    debug_assert_eq!(buf.len(), hlen);
    chunk[..hlen].copy_from_slice(&buf);
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChunkBuilder;

    fn gen() -> ChunkIdGenerator {
        ChunkIdGenerator::deterministic(4, 4, 400)
    }

    fn chunk_with(files: &[(&str, &[u8])]) -> Vec<u8> {
        let mut b = ChunkBuilder::with_default_config();
        for (n, d) in files {
            b.add_file(n, d).unwrap();
        }
        b.seal(gen().next_id(), 1).1
    }

    #[test]
    fn mark_deleted_flips_bitmap_only() {
        let mut chunk = chunk_with(&[("a", b"111"), ("b", b"222")]);
        let before_len = chunk.len();
        assert!(mark_deleted(&mut chunk, "a").unwrap());
        assert_eq!(chunk.len(), before_len);
        let r = ChunkReader::parse(&chunk).unwrap();
        assert!(matches!(r.read_file("a"), Err(crate::ChunkError::FileDeleted(_))));
        assert_eq!(r.read_file("b").unwrap(), b"222");
        // Deleting again or deleting a missing file is a no-op.
        assert!(!mark_deleted(&mut chunk, "a").unwrap());
        assert!(!mark_deleted(&mut chunk, "zz").unwrap());
    }

    #[test]
    fn compact_drops_deleted_files() {
        let mut chunk = chunk_with(&[("a", b"aaaa"), ("b", b"bbbbbbbb"), ("c", b"cc")]);
        mark_deleted(&mut chunk, "b").unwrap();
        let ids = gen();
        let (header, bytes, stats) = compact_chunk(&chunk, &ids, 99).unwrap().unwrap();
        assert_eq!(stats.live_files, 2);
        assert_eq!(stats.dropped_files, 1);
        assert_eq!(stats.reclaimed_bytes, 8);
        assert_eq!(header.updated_ms, 99);
        assert_eq!(header.deleted_count(), 0);
        let r = ChunkReader::parse(&bytes).unwrap();
        assert_eq!(r.read_file("a").unwrap(), b"aaaa");
        assert_eq!(r.read_file("c").unwrap(), b"cc");
        assert!(r.read_file("b").is_err());
        assert!(bytes.len() < chunk.len());
    }

    #[test]
    fn compact_noop_without_deletions() {
        let chunk = chunk_with(&[("a", b"x")]);
        let ids = gen();
        assert!(compact_chunk(&chunk, &ids, 1).unwrap().is_none());
    }

    #[test]
    fn compact_all_deleted_yields_empty_chunk() {
        let mut chunk = chunk_with(&[("a", b"x"), ("b", b"y")]);
        mark_deleted(&mut chunk, "a").unwrap();
        mark_deleted(&mut chunk, "b").unwrap();
        let ids = gen();
        let (header, bytes, stats) = compact_chunk(&chunk, &ids, 1).unwrap().unwrap();
        assert_eq!(stats.live_files, 0);
        assert_eq!(header.file_count(), 0);
        ChunkReader::parse(&bytes).unwrap();
    }

    #[test]
    fn compacted_chunk_id_sorts_after_original() {
        let ids = gen();
        let mut b = ChunkBuilder::with_default_config();
        b.add_file("a", b"1").unwrap();
        b.add_file("b", b"2").unwrap();
        let (orig_header, mut chunk) = b.seal(ids.next_id(), 1);
        mark_deleted(&mut chunk, "a").unwrap();
        let (new_header, _, _) = compact_chunk(&chunk, &ids, 2).unwrap().unwrap();
        assert!(new_header.id > orig_header.id, "compaction must sort later for recovery");
    }
}
