//! Packing small files into chunks (the client-side write path of Fig. 3).
//!
//! `ChunkBuilder` accumulates files until the configured target size is
//! reached, then seals a self-contained chunk. A higher-level
//! [`ChunkWriter`] streams an arbitrary sequence of files into a sequence
//! of chunks, minting IDs from a [`ChunkIdGenerator`].

use diesel_util::Clock;

use crate::bitmap::DeletionBitmap;
use crate::crc::crc32;
use crate::format::{ChunkHeader, FileEntry};
use crate::id::{ChunkId, ChunkIdGenerator};
use crate::{ChunkError, Result, DEFAULT_CHUNK_SIZE};

/// Configuration for chunk building.
#[derive(Debug, Clone)]
pub struct ChunkBuilderConfig {
    /// Seal the chunk once payload + header would exceed this size.
    /// DIESEL uses ≥ 4 MB chunks; the default is [`DEFAULT_CHUNK_SIZE`].
    pub target_chunk_size: usize,
    /// Hard cap for a single file (a file larger than the payload capacity
    /// gets its own oversized chunk rather than being split — matching the
    /// paper, which packs whole files).
    pub max_file_size: usize,
}

impl Default for ChunkBuilderConfig {
    fn default() -> Self {
        ChunkBuilderConfig { target_chunk_size: DEFAULT_CHUNK_SIZE, max_file_size: 256 << 20 }
    }
}

/// Builds one chunk by appending files.
///
/// # Examples
///
/// ```
/// use diesel_chunk::{ChunkBuilder, ChunkIdGenerator, ChunkReader};
///
/// let mut builder = ChunkBuilder::with_default_config();
/// builder.add_file("train/cat/1.jpg", b"jpeg bytes").unwrap();
/// builder.add_file("train/dog/2.jpg", b"more bytes").unwrap();
///
/// let ids = ChunkIdGenerator::deterministic(1, 1, 1_600_000_000);
/// let (header, bytes) = builder.seal(ids.next_id(), 42);
/// assert_eq!(header.file_count(), 2);
///
/// // The chunk is self-contained: parse it back with no other state.
/// let reader = ChunkReader::parse(&bytes).unwrap();
/// assert_eq!(reader.read_file("train/cat/1.jpg").unwrap(), b"jpeg bytes");
/// ```
#[derive(Debug)]
pub struct ChunkBuilder {
    config: ChunkBuilderConfig,
    files: Vec<FileEntry>,
    payload: Vec<u8>,
}

impl ChunkBuilder {
    /// An empty builder with the given config.
    pub fn new(config: ChunkBuilderConfig) -> Self {
        ChunkBuilder { config, files: Vec::new(), payload: Vec::new() }
    }

    /// An empty builder with default (4 MB) sizing.
    pub fn with_default_config() -> Self {
        Self::new(ChunkBuilderConfig::default())
    }

    /// Number of files appended so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Current payload size in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Estimated total chunk size (header + payload) if sealed now.
    pub fn estimated_len(&self) -> usize {
        ChunkHeader::wire_len(&self.files) + self.payload.len()
    }

    /// Would appending a file of `name_len`/`data_len` exceed the target?
    pub fn would_overflow(&self, name_len: usize, data_len: usize) -> bool {
        if self.files.is_empty() {
            return false; // always accept at least one file
        }
        let entry_overhead = 2 + name_len + 20;
        self.estimated_len() + entry_overhead + data_len + 8 /* bitmap slack */
            > self.config.target_chunk_size
    }

    /// Append a file. Returns its index within the chunk.
    pub fn add_file(&mut self, name: &str, data: &[u8]) -> Result<usize> {
        if data.len() > self.config.max_file_size {
            return Err(ChunkError::FileTooLarge {
                size: data.len(),
                max: self.config.max_file_size,
            });
        }
        let idx = self.files.len();
        self.files.push(FileEntry {
            name: name.to_owned(),
            offset: self.payload.len() as u64,
            length: data.len() as u64,
            crc32: crc32(data),
        });
        // The write path's deliberate copy: aggregating small files
        // into the chunk's contiguous payload (DESIGN.md §11).
        diesel_obs::record_copy("ingest", data.len() as u64);
        self.payload.extend_from_slice(data);
        Ok(idx)
    }

    /// True when the builder holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Seal the chunk: serialize `header ‖ payload` and return the bytes
    /// along with the decoded header. `updated_ms` stamps the chunk's
    /// update time (Fig. 5b metadata).
    pub fn seal(self, id: ChunkId, updated_ms: u64) -> (ChunkHeader, Vec<u8>) {
        let header = ChunkHeader {
            id,
            updated_ms,
            bitmap: DeletionBitmap::new(self.files.len()),
            files: self.files,
            payload_len: self.payload.len() as u64,
            header_len: 0, // recomputed by encode()
        };
        let mut buf = Vec::with_capacity(ChunkHeader::wire_len(&header.files) + self.payload.len());
        let mut fixed = header.clone();
        fixed.header_len = ChunkHeader::wire_len(&header.files) as u32;
        fixed.encode(&mut buf);
        // Serializing `header ‖ payload` copies the payload once more;
        // from here on the buffer travels as shared `Bytes`.
        diesel_obs::record_copy("seal", self.payload.len() as u64);
        buf.extend_from_slice(&self.payload);
        (fixed, buf)
    }
}

/// A sealed chunk ready to ship to the DIESEL server.
///
/// `bytes` is already the payload plane's shared
/// [`Bytes`](diesel_util::Bytes) currency: shipping, storing and
/// caching the chunk from here on are refcount bumps on this one
/// allocation.
#[derive(Debug, Clone)]
pub struct SealedChunk {
    /// Decoded header (also embedded at the front of `bytes`).
    pub header: ChunkHeader,
    /// Full chunk bytes (`header ‖ payload`).
    pub bytes: diesel_util::Bytes,
}

/// Streams files into a sequence of chunks.
///
/// This is what `libDIESEL`/`DLCMD` run client-side during the write flow
/// (Fig. 3): files are buffered locally and flushed as ≥ 4 MB chunks.
pub struct ChunkWriter<'a> {
    config: ChunkBuilderConfig,
    ids: &'a ChunkIdGenerator,
    clock_ms: Box<dyn Fn() -> u64 + Send + 'a>,
    current: ChunkBuilder,
    sealed: Vec<SealedChunk>,
}

impl<'a> std::fmt::Debug for ChunkWriter<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkWriter")
            .field("config", &self.config)
            .field("pending_files", &self.current.file_count())
            .field("sealed", &self.sealed.len())
            .finish()
    }
}

impl<'a> ChunkWriter<'a> {
    /// A writer minting IDs from `ids`, stamping chunks with wall-clock ms
    /// read from a [`diesel_util::SystemClock`].
    pub fn new(config: ChunkBuilderConfig, ids: &'a ChunkIdGenerator) -> Self {
        let clock = diesel_util::SystemClock::new();
        Self::with_clock_fn(config, ids, move || clock.epoch_ms())
    }

    /// A writer stamping chunks from an explicit timestamp source (the
    /// determinism seam, rule R2): pass a closure over a shared
    /// [`Clock`] so rebuilt datasets carry identical
    /// timestamps.
    pub fn with_clock_fn(
        config: ChunkBuilderConfig,
        ids: &'a ChunkIdGenerator,
        clock_ms: impl Fn() -> u64 + Send + 'a,
    ) -> Self {
        ChunkWriter {
            config: config.clone(),
            ids,
            clock_ms: Box::new(clock_ms),
            current: ChunkBuilder::new(config),
            sealed: Vec::new(),
        }
    }

    /// Replace the timestamp source (deterministic tests / simulations).
    pub fn with_clock(mut self, clock_ms: impl Fn() -> u64 + Send + 'a) -> Self {
        self.clock_ms = Box::new(clock_ms);
        self
    }

    /// Add a file; seals and starts a new chunk when the current one is full.
    pub fn add_file(&mut self, name: &str, data: &[u8]) -> Result<()> {
        if self.current.would_overflow(name.len(), data.len()) {
            self.seal_current();
        }
        self.current.add_file(name, data)?;
        Ok(())
    }

    fn seal_current(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let builder = std::mem::replace(&mut self.current, ChunkBuilder::new(self.config.clone()));
        let (header, bytes) = builder.seal(self.ids.next_id(), (self.clock_ms)());
        self.sealed.push(SealedChunk { header, bytes: bytes.into() });
    }

    /// Seal any partial chunk and return all sealed chunks
    /// (the `DL_flush` operation).
    pub fn finish(mut self) -> Vec<SealedChunk> {
        self.seal_current();
        self.sealed
    }

    /// Drain chunks sealed so far without finishing (streaming upload).
    pub fn take_sealed(&mut self) -> Vec<SealedChunk> {
        std::mem::take(&mut self.sealed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::ChunkReader;

    fn gen() -> ChunkIdGenerator {
        ChunkIdGenerator::deterministic(1, 1, 1000)
    }

    #[test]
    fn single_chunk_roundtrip() {
        let mut b = ChunkBuilder::with_default_config();
        b.add_file("x/a", b"hello").unwrap();
        b.add_file("x/b", b"world!").unwrap();
        let ids = gen();
        let (header, bytes) = b.seal(ids.next_id(), 777);
        assert_eq!(header.updated_ms, 777);
        assert_eq!(header.file_count(), 2);
        let r = ChunkReader::parse(&bytes).unwrap();
        assert_eq!(r.read_file("x/a").unwrap(), b"hello");
        assert_eq!(r.read_file("x/b").unwrap(), b"world!");
    }

    #[test]
    fn writer_splits_at_target_size() {
        let ids = gen();
        let cfg = ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
        let data = vec![0xabu8; 1000];
        for i in 0..20 {
            w.add_file(&format!("f{i:03}"), &data).unwrap();
        }
        let chunks = w.finish();
        assert!(chunks.len() > 1, "20 KB of files must not fit one 4 KB chunk");
        let total_files: usize = chunks.iter().map(|c| c.header.file_count()).sum();
        assert_eq!(total_files, 20);
        for c in &chunks {
            assert!(c.bytes.len() <= 4096 + 1100, "chunk {} too big", c.bytes.len());
            // Chunks must be independently parseable (self-contained).
            ChunkReader::parse(&c.bytes).unwrap();
        }
        // IDs must be strictly increasing (sortable write order).
        for w in chunks.windows(2) {
            assert!(w[0].header.id < w[1].header.id);
        }
    }

    #[test]
    fn oversized_file_gets_own_chunk() {
        let ids = gen();
        let cfg = ChunkBuilderConfig { target_chunk_size: 1024, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
        w.add_file("small", b"abc").unwrap();
        w.add_file("big", &[7u8; 10_000]).unwrap();
        w.add_file("small2", b"xyz").unwrap();
        let chunks = w.finish();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[1].header.files[0].name, "big");
        assert_eq!(chunks[1].header.payload_len, 10_000);
    }

    #[test]
    fn file_too_large_is_rejected() {
        let cfg = ChunkBuilderConfig { target_chunk_size: 1024, max_file_size: 100 };
        let mut b = ChunkBuilder::new(cfg);
        let err = b.add_file("f", &[0u8; 101]).unwrap_err();
        assert!(matches!(err, ChunkError::FileTooLarge { size: 101, max: 100 }));
    }

    #[test]
    fn empty_writer_produces_no_chunks() {
        let ids = gen();
        let w = ChunkWriter::new(Default::default(), &ids);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn take_sealed_streams_incrementally() {
        let ids = gen();
        let cfg = ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
        let data = vec![1u8; 900];
        w.add_file("a", &data).unwrap();
        w.add_file("b", &data).unwrap();
        w.add_file("c", &data).unwrap(); // seals first chunk
        let first = w.take_sealed();
        assert_eq!(first.len(), 1);
        assert!(w.take_sealed().is_empty());
        let rest = w.finish();
        assert_eq!(rest.len(), 1);
        let total: usize = first.iter().chain(rest.iter()).map(|c| c.header.file_count()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn same_mock_clock_builds_identical_chunk_ids() {
        // §4.1.2: recovery scans order chunks by the timestamp embedded
        // in the ID, so a rebuild driven by the same clock must
        // reproduce IDs — and therefore whole chunks — bit for bit.
        let build = || {
            let clock = std::sync::Arc::new(diesel_util::MockClock::at_epoch_ms(1_600_000_000_000));
            let ids = ChunkIdGenerator::with_clock(
                crate::id::MachineId::from_seed(7),
                4242,
                clock.clone(),
            );
            let cfg = ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() };
            let mut w = ChunkWriter::with_clock_fn(cfg, &ids, move || clock.epoch_ms());
            for i in 0..10u8 {
                let data = vec![i; 700];
                w.add_file(&format!("f{i}"), &data).unwrap();
            }
            w.finish()
        };
        let (a, b) = (build(), build());
        assert!(a.len() >= 3, "several chunks sealed: {}", a.len());
        let ids_a: Vec<ChunkId> = a.iter().map(|c| c.header.id).collect();
        let ids_b: Vec<ChunkId> = b.iter().map(|c| c.header.id).collect();
        assert_eq!(ids_a, ids_b, "chunk IDs must be reproducible");
        let bytes_a: Vec<&[u8]> = a.iter().map(|c| c.bytes.as_slice()).collect();
        let bytes_b: Vec<&[u8]> = b.iter().map(|c| c.bytes.as_slice()).collect();
        assert_eq!(bytes_a, bytes_b, "entire chunks must be byte-identical");
    }

    #[test]
    fn zero_length_files_are_supported() {
        let mut b = ChunkBuilder::with_default_config();
        b.add_file("empty", b"").unwrap();
        b.add_file("after", b"data").unwrap();
        let ids = gen();
        let (_, bytes) = b.seal(ids.next_id(), 0);
        let r = ChunkReader::parse(&bytes).unwrap();
        assert_eq!(r.read_file("empty").unwrap(), b"");
        assert_eq!(r.read_file("after").unwrap(), b"data");
    }
}
