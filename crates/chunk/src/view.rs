//! An owned, zero-copy view over one sealed chunk.
//!
//! [`ChunkReader`](crate::ChunkReader) borrows the raw buffer and hands
//! out `&[u8]` — perfect for parse/verify, useless for a cache that
//! must return payloads outliving any borrow. [`ChunkView`] is the
//! owned counterpart for the payload plane: it wraps the chunk's
//! [`Bytes`] and every file/range read is a refcount bump plus offset
//! arithmetic, yielding `Bytes` sub-slices that share the chunk's one
//! allocation. A cache hit is therefore pointer handoff, never memcpy —
//! the invariant the `bytes.copied{site=…}` ledger asserts.
//!
//! Semantics mirror `ChunkReader` method-for-method (same errors, same
//! CRC and deletion checks, same range clamping); a proptest below
//! holds the two byte-identical and checks the returned slices really
//! share the parent allocation.

use std::collections::HashMap;

use diesel_util::Bytes;

use crate::format::{ChunkHeader, FileEntry};
use crate::{ChunkError, Result};

/// A parsed, owned view over one chunk (`header ‖ payload`).
#[derive(Debug, Clone)]
pub struct ChunkView {
    bytes: Bytes,
    header: ChunkHeader,
    by_name: HashMap<String, usize>,
}

impl ChunkView {
    /// Parse a chunk buffer. Verifies header integrity and that the
    /// payload is fully present — the same contract as
    /// [`ChunkReader::parse`](crate::ChunkReader::parse), without
    /// copying any payload bytes.
    pub fn parse(bytes: Bytes) -> Result<Self> {
        let header = ChunkHeader::decode(&bytes)?;
        Self::from_parts(bytes, header)
    }

    /// Build a view from a buffer and its already-decoded header
    /// (callers like the task cache decode the header once on load and
    /// must not pay for a second decode per view).
    pub fn from_parts(bytes: Bytes, header: ChunkHeader) -> Result<Self> {
        let need = header.header_len as usize + header.payload_len as usize;
        if bytes.len() < need {
            return Err(ChunkError::Truncated { need, have: bytes.len() });
        }
        // The name map owns `String` keys cloned from the decoded
        // header — a one-time metadata allocation per chunk load, not a
        // payload copy (payload bytes are never touched).
        let by_name = header.files.iter().enumerate().map(|(i, f)| (f.name.clone(), i)).collect();
        Ok(ChunkView { bytes, header, by_name })
    }

    /// The decoded header.
    pub fn header(&self) -> &ChunkHeader {
        &self.header
    }

    /// Serialized header length (the payload starts here).
    pub fn header_len(&self) -> u32 {
        self.header.header_len
    }

    /// The whole chunk buffer (`header ‖ payload`), shared not copied.
    pub fn chunk_bytes(&self) -> Bytes {
        self.bytes.clone()
    }

    /// Total chunk size in bytes (what the cache accounts against its
    /// capacity).
    pub fn chunk_len(&self) -> usize {
        self.bytes.len()
    }

    /// Number of files (live + deleted).
    pub fn file_count(&self) -> usize {
        self.header.files.len()
    }

    /// Find a file's index by exact name, whether live or deleted.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Slice `offset ‖ length` out of the payload region — the
    /// `FileMeta`-driven read the task cache serves hits from. Bounds
    /// are checked against the payload, not trusted from the caller.
    pub fn slice_payload(&self, offset: u64, length: u64) -> Result<Bytes> {
        let start = self.header.header_len as usize + offset as usize;
        let end = start + length as usize;
        let payload_end = self.header.header_len as usize + self.header.payload_len as usize;
        if end > payload_end {
            return Err(ChunkError::Truncated { need: end, have: payload_end });
        }
        Ok(self.bytes.slice(start..end))
    }

    /// The content of the file at `idx` without checksum verification.
    pub fn file_bytes(&self, idx: usize) -> Result<Bytes> {
        let f =
            self.header.files.get(idx).ok_or_else(|| ChunkError::NoSuchFile(format!("#{idx}")))?;
        self.slice_payload(f.offset, f.length)
            .map_err(|_| ChunkError::CorruptEntry { file: f.name.clone() })
    }

    /// Read a live file by name, verifying its CRC.
    pub fn read_file(&self, name: &str) -> Result<Bytes> {
        let idx = self.find(name).ok_or_else(|| ChunkError::NoSuchFile(name.to_owned()))?;
        if self.header.bitmap.is_deleted(idx) {
            return Err(ChunkError::FileDeleted(name.to_owned()));
        }
        self.read_file_at(idx)
    }

    /// Read the file at `idx` (even if deleted), verifying its CRC.
    pub fn read_file_at(&self, idx: usize) -> Result<Bytes> {
        let bytes = self.file_bytes(idx)?;
        let f =
            self.header.files.get(idx).ok_or_else(|| ChunkError::NoSuchFile(format!("#{idx}")))?;
        if crate::crc::crc32(&bytes) != f.crc32 {
            return Err(ChunkError::ChecksumMismatch { file: f.name.clone() });
        }
        Ok(bytes)
    }

    /// Read a byte range of a live file (FUSE-style partial reads,
    /// clamped to the file's end).
    pub fn read_file_range(&self, name: &str, offset: u64, len: usize) -> Result<Bytes> {
        let idx = self.find(name).ok_or_else(|| ChunkError::NoSuchFile(name.to_owned()))?;
        if self.header.bitmap.is_deleted(idx) {
            return Err(ChunkError::FileDeleted(name.to_owned()));
        }
        let whole = self.file_bytes(idx)?;
        let start = (offset as usize).min(whole.len());
        let end = (start + len).min(whole.len());
        Ok(whole.slice(start..end))
    }

    /// Iterate `(entry, live, bytes)` over all files in payload order.
    pub fn iter_files(&self) -> impl Iterator<Item = (&FileEntry, bool, Bytes)> + '_ {
        self.header.files.iter().enumerate().map(move |(i, f)| {
            let live = !self.header.bitmap.is_deleted(i);
            let bytes = self.file_bytes(i).unwrap_or_default();
            (f, live, bytes)
        })
    }

    /// Verify every file checksum; returns names of corrupt files.
    pub fn verify_all(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for (i, f) in self.header.files.iter().enumerate() {
            match self.file_bytes(i) {
                Ok(b) if crate::crc::crc32(&b) == f.crc32 => {}
                _ => bad.push(f.name.clone()),
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChunkBuilder;
    use crate::id::ChunkIdGenerator;
    use crate::reader::ChunkReader;
    use proptest::prelude::*;

    fn build(files: &[(&str, &[u8])]) -> Bytes {
        let mut b = ChunkBuilder::with_default_config();
        for (n, d) in files {
            b.add_file(n, d).unwrap();
        }
        let ids = ChunkIdGenerator::deterministic(1, 1, 10);
        Bytes::from(b.seal(ids.next_id(), 1).1)
    }

    #[test]
    fn reads_match_reader_and_share_the_allocation() {
        let bytes = build(&[("a", b"one"), ("b/c", b"two"), ("d", b"three")]);
        let v = ChunkView::parse(bytes.clone()).unwrap();
        let got = v.read_file("b/c").unwrap();
        assert_eq!(got, b"two"[..]);
        assert!(got.shares_allocation(&bytes), "file read must be a view, not a copy");
        assert_eq!(v.read_file_at(2).unwrap(), b"three"[..]);
        assert!(matches!(v.read_file("zzz"), Err(ChunkError::NoSuchFile(_))));
        assert_eq!(v.chunk_len(), bytes.len());
        assert!(v.chunk_bytes().shares_allocation(&bytes));
    }

    #[test]
    fn range_reads_clamp_like_reader() {
        let bytes = build(&[("f", b"0123456789")]);
        let v = ChunkView::parse(bytes.clone()).unwrap();
        assert_eq!(v.read_file_range("f", 2, 3).unwrap(), b"234"[..]);
        assert_eq!(v.read_file_range("f", 8, 100).unwrap(), b"89"[..]);
        assert_eq!(v.read_file_range("f", 100, 5).unwrap(), b""[..]);
        assert!(v.read_file_range("f", 2, 3).unwrap().shares_allocation(&bytes));
    }

    #[test]
    fn corruption_and_truncation_mirror_reader() {
        let mut raw = build(&[("f", b"sensitive-data")]).into_vec();
        let n = raw.len();
        raw[n - 2] ^= 0x01;
        let v = ChunkView::parse(Bytes::from(raw.clone())).unwrap();
        assert!(matches!(v.read_file("f"), Err(ChunkError::ChecksumMismatch { .. })));
        assert_eq!(v.verify_all(), vec!["f".to_string()]);
        assert!(matches!(
            ChunkView::parse(Bytes::from(raw[..n - 4].to_vec())),
            Err(ChunkError::Truncated { .. })
        ));
    }

    #[test]
    fn slice_payload_bounds_checked() {
        let bytes = build(&[("f", b"0123456789")]);
        let v = ChunkView::parse(bytes.clone()).unwrap();
        let whole = v.slice_payload(0, 10).unwrap();
        assert_eq!(whole, b"0123456789"[..]);
        assert!(whole.shares_allocation(&bytes));
        assert!(matches!(v.slice_payload(5, 100), Err(ChunkError::Truncated { .. })));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn view_is_byte_identical_to_reader_and_zero_copy(
            files in proptest::collection::vec(
                ("[a-z]{1,12}(/[a-z]{1,8}){0,3}", proptest::collection::vec(any::<u8>(), 0..2000)),
                1..20
            ),
            range in (0u64..3000, 0usize..3000),
        ) {
            let mut seen = std::collections::HashSet::new();
            let files: Vec<(String, Vec<u8>)> = files
                .into_iter()
                .filter(|(n, _)| seen.insert(n.clone()))
                .collect();
            let mut b = ChunkBuilder::with_default_config();
            for (n, d) in &files {
                b.add_file(n, d).unwrap();
            }
            let ids = ChunkIdGenerator::deterministic(2, 2, 20);
            let (_, raw) = b.seal(ids.next_id(), 5);
            let bytes = Bytes::from(raw);
            let v = ChunkView::parse(bytes.clone()).unwrap();
            let r = ChunkReader::parse(&bytes).unwrap();
            prop_assert!(v.verify_all().is_empty());
            prop_assert_eq!(v.header(), r.header());
            for (i, (n, _)) in files.iter().enumerate() {
                prop_assert_eq!(v.find(n), r.find(n));
                // Whole-file reads agree byte for byte…
                let owned = v.read_file(n).unwrap();
                prop_assert_eq!(owned.as_slice(), r.read_file(n).unwrap());
                // …and the owned read is a true view: it shares the
                // parent allocation and its pointers land inside the
                // parent's buffer (never a fresh copy).
                prop_assert!(owned.shares_allocation(&bytes));
                let parent = bytes.as_slice().as_ptr_range();
                let sub = owned.as_slice().as_ptr_range();
                prop_assert!(sub.start >= parent.start && sub.end <= parent.end);
                // Range reads clamp identically.
                let (off, len) = range;
                prop_assert_eq!(
                    v.read_file_range(n, off, len).unwrap().as_slice(),
                    r.read_file_range(n, off, len).unwrap()
                );
                // Unverified index reads agree too.
                prop_assert_eq!(v.file_bytes(i).unwrap().as_slice(), r.file_bytes(i).unwrap());
            }
        }

        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..600)) {
            let _ = ChunkView::parse(Bytes::from(data));
        }
    }
}
