//! Deletion bitmap for files inside a chunk.
//!
//! The chunk metadata (Fig. 5b) records "the number of deleted files and
//! the deletion bitmap". DIESEL deletes/modifies a file by marking it
//! deleted in its old chunk and (for modify) writing a new copy; the
//! `DL_purge` housekeeping call later compacts chunks with holes.

/// A fixed-capacity bitmap with one bit per file slot in a chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletionBitmap {
    bits: Vec<u64>,
    len: usize,
}

impl DeletionBitmap {
    /// A bitmap for `len` files, all live.
    pub fn new(len: usize) -> Self {
        DeletionBitmap { bits: vec![0u64; len.div_ceil(64)], len }
    }

    /// Number of file slots covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mark file `idx` deleted. Returns the previous state.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn set_deleted(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bitmap index {idx} out of range {}", self.len);
        let w = idx / 64;
        let mask = 1u64 << (idx % 64);
        let was = self.bits[w] & mask != 0;
        self.bits[w] |= mask;
        was
    }

    /// Un-delete file `idx` (used when rebuilding bitmaps during compaction).
    pub fn clear_deleted(&mut self, idx: usize) {
        assert!(idx < self.len, "bitmap index {idx} out of range {}", self.len);
        self.bits[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Is file `idx` deleted?
    pub fn is_deleted(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bitmap index {idx} out of range {}", self.len);
        self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of deleted files.
    pub fn deleted_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of live files.
    pub fn live_count(&self) -> usize {
        self.len - self.deleted_count()
    }

    /// Iterate indices of live (non-deleted) files.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.is_deleted(i))
    }

    /// Serialize to the on-chunk wire form (little-endian u64 words).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bits.len() * 8);
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Wire length in bytes for a bitmap covering `len` slots.
    pub fn wire_len(len: usize) -> usize {
        len.div_ceil(64) * 8
    }

    /// Deserialize from the wire form.
    pub fn from_bytes(data: &[u8], len: usize) -> Option<Self> {
        let words = len.div_ceil(64);
        if data.len() < words * 8 {
            return None;
        }
        let mut bits = Vec::with_capacity(words);
        for i in 0..words {
            bits.push(u64::from_le_bytes(data[i * 8..(i + 1) * 8].try_into().ok()?));
        }
        // Bits past `len` must be zero for equality/count invariants.
        if !len.is_multiple_of(64) {
            if let Some(last) = bits.last() {
                if last >> (len % 64) != 0 {
                    return None;
                }
            }
        }
        Some(DeletionBitmap { bits, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_set_and_query() {
        let mut bm = DeletionBitmap::new(130);
        assert_eq!(bm.len(), 130);
        assert_eq!(bm.deleted_count(), 0);
        assert!(!bm.set_deleted(0));
        assert!(bm.set_deleted(0), "second delete reports prior state");
        bm.set_deleted(64);
        bm.set_deleted(129);
        assert!(bm.is_deleted(0));
        assert!(bm.is_deleted(64));
        assert!(bm.is_deleted(129));
        assert!(!bm.is_deleted(1));
        assert_eq!(bm.deleted_count(), 3);
        assert_eq!(bm.live_count(), 127);
        bm.clear_deleted(64);
        assert!(!bm.is_deleted(64));
        assert_eq!(bm.deleted_count(), 2);
    }

    #[test]
    fn live_indices_skips_deleted() {
        let mut bm = DeletionBitmap::new(10);
        bm.set_deleted(2);
        bm.set_deleted(7);
        let live: Vec<usize> = bm.live_indices().collect();
        assert_eq!(live, vec![0, 1, 3, 4, 5, 6, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut bm = DeletionBitmap::new(8);
        bm.set_deleted(8);
    }

    #[test]
    fn empty_bitmap() {
        let bm = DeletionBitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.to_bytes().len(), 0);
        assert_eq!(DeletionBitmap::wire_len(0), 0);
        assert_eq!(DeletionBitmap::from_bytes(&[], 0).unwrap(), bm);
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage_bits() {
        // 1 slot but high bits set in the word.
        let mut raw = [0u8; 8];
        raw[0] = 0b10; // bit 1 set, but len == 1
        assert!(DeletionBitmap::from_bytes(&raw, 1).is_none());
    }

    proptest! {
        #[test]
        fn roundtrip(len in 0usize..500, dels in proptest::collection::vec(0usize..500, 0..64)) {
            let mut bm = DeletionBitmap::new(len);
            for d in dels {
                if d < len { bm.set_deleted(d); }
            }
            let bytes = bm.to_bytes();
            prop_assert_eq!(bytes.len(), DeletionBitmap::wire_len(len));
            let back = DeletionBitmap::from_bytes(&bytes, len).unwrap();
            prop_assert_eq!(back, bm);
        }

        #[test]
        fn counts_are_consistent(len in 1usize..300, dels in proptest::collection::vec(0usize..300, 0..300)) {
            let mut bm = DeletionBitmap::new(len);
            for d in dels {
                if d < len { bm.set_deleted(d); }
            }
            prop_assert_eq!(bm.deleted_count() + bm.live_count(), len);
            prop_assert_eq!(bm.live_indices().count(), bm.live_count());
        }
    }
}
