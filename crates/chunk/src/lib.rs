//! # diesel-chunk — self-contained data chunks
//!
//! DIESEL (ICPP 2020, §4.1) stores datasets as large (≥ 4 MB) *data chunks*.
//! Each chunk is **self-contained**: a header at the front of the chunk
//! carries the metadata of every file packed inside it (name, offset,
//! length, checksum) plus a deletion bitmap. The DIESEL server can rebuild
//! the entire key-value metadata database from nothing but the chunks
//! themselves (fault recovery, §4.1.2).
//!
//! This crate implements:
//!
//! * [`ChunkId`] — the 16-byte sortable chunk identifier of Table 1
//!   (timestamp ‖ machine id ‖ process id ‖ counter) together with an
//!   **order-preserving** base64-style text encoding, so that
//!   lexicographically sorting encoded IDs sorts chunks by creation time.
//! * [`ChunkBuilder`] — packs small files into a chunk until a target size
//!   (default 4 MB) is reached.
//! * [`ChunkReader`] — zero-copy parsing of a chunk: iterate files, extract
//!   one file, verify per-file CRC32 checksums.
//! * [`ChunkView`] — the owned counterpart over a shared
//!   [`diesel_util::Bytes`] buffer: file/range reads are `Bytes`
//!   sub-slices of the chunk's single allocation, which is what the
//!   caching layers hand to trainers (DESIGN.md §11, payload plane).
//! * [`DeletionBitmap`] — tracks logically deleted files inside a chunk;
//!   [`compact`](compact::compact_chunk) rewrites a chunk without its holes
//!   (the `DL_purge` housekeeping function of §5).
//!
//! The binary layout is versioned and documented in [`mod@format`].

pub mod bitmap;
pub mod builder;
pub mod compact;
pub mod crc;
pub mod format;
pub mod id;
pub mod reader;
pub mod view;

pub use bitmap::DeletionBitmap;
pub use builder::{ChunkBuilder, ChunkBuilderConfig, ChunkWriter, SealedChunk};
pub use compact::{compact_chunk, mark_deleted, CompactionStats};
// diesel-lint: allow(R4) crate-root re-export: external header tools name the constants via here
pub use format::{ChunkHeader, FileEntry, CHUNK_MAGIC, FORMAT_VERSION};
pub use id::{ChunkId, ChunkIdGenerator, MachineId};
pub use reader::ChunkReader;
pub use view::ChunkView;

/// Default target chunk size used throughout DIESEL (§4: "files are
/// aggregated into large data chunks (≥ 4MB) on the client-side").
pub const DEFAULT_CHUNK_SIZE: usize = 4 << 20;

/// Errors produced while building or parsing chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// The buffer does not start with [`CHUNK_MAGIC`].
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The buffer is shorter than the structures it claims to contain.
    Truncated { need: usize, have: usize },
    /// A per-file CRC32 checksum did not match the payload.
    ChecksumMismatch { file: String },
    /// The header CRC32 did not match.
    HeaderChecksumMismatch,
    /// A file name was not valid UTF-8.
    BadFileName,
    /// No file with the requested name exists in this chunk.
    NoSuchFile(String),
    /// The requested file exists but is marked deleted.
    FileDeleted(String),
    /// A chunk-ID string could not be decoded.
    BadChunkId,
    /// A single file is larger than the maximum chunk payload.
    FileTooLarge { size: usize, max: usize },
    /// An entry in the file table has an out-of-range offset/length.
    CorruptEntry { file: String },
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::BadMagic => write!(f, "buffer is not a DIESEL chunk (bad magic)"),
            ChunkError::UnsupportedVersion(v) => write!(f, "unsupported chunk format version {v}"),
            ChunkError::Truncated { need, have } => {
                write!(f, "chunk truncated: need {need} bytes, have {have}")
            }
            ChunkError::ChecksumMismatch { file } => {
                write!(f, "checksum mismatch for file {file:?}")
            }
            ChunkError::HeaderChecksumMismatch => write!(f, "chunk header checksum mismatch"),
            ChunkError::BadFileName => write!(f, "file name is not valid UTF-8"),
            ChunkError::NoSuchFile(name) => write!(f, "no such file in chunk: {name:?}"),
            ChunkError::FileDeleted(name) => write!(f, "file is deleted: {name:?}"),
            ChunkError::BadChunkId => write!(f, "malformed chunk id"),
            ChunkError::FileTooLarge { size, max } => {
                write!(f, "file of {size} bytes exceeds chunk payload limit {max}")
            }
            ChunkError::CorruptEntry { file } => {
                write!(f, "file table entry out of range for {file:?}")
            }
        }
    }
}

impl std::error::Error for ChunkError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ChunkError>;
