//! CRC-32 (IEEE 802.3 polynomial, reflected) used for per-file and header
//! checksums in the chunk format.
//!
//! Implemented in-crate to avoid an external dependency; uses the classic
//! 256-entry lookup table built at first use. Matches the `crc32` of zlib /
//! `cksum -o 3`-style tools (polynomial 0xEDB88320, init 0xFFFFFFFF,
//! final xor 0xFFFFFFFF).

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// A fresh hasher (state = all ones).
    pub fn new() -> Self {
        Hasher { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finish and return the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| i.wrapping_mul(2654435761) as u8).collect();
        let mut h = Hasher::new();
        for part in data.chunks(97) {
            h.update(part);
        }
        assert_eq!(h.finalize(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        let orig = crc32(&data);
        data[1234] ^= 0x10;
        assert_ne!(crc32(&data), orig);
    }
}
