//! Reading files out of a sealed chunk.
//!
//! `ChunkReader` borrows the raw chunk bytes; file extraction is a bounds
//! check plus a slice — no copies until the caller decides to own the data.

use std::collections::HashMap;

use crate::format::{ChunkHeader, FileEntry};
use crate::{ChunkError, Result};

/// A parsed, borrowed view over one chunk.
#[derive(Debug)]
pub struct ChunkReader<'a> {
    header: ChunkHeader,
    payload: &'a [u8],
    by_name: HashMap<&'a str, usize>,
}

impl<'a> ChunkReader<'a> {
    /// Parse a chunk buffer (`header ‖ payload`). Verifies header integrity
    /// and that the payload is fully present.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        let header = ChunkHeader::decode(data)?;
        let start = header.header_len as usize;
        let need = start + header.payload_len as usize;
        if data.len() < need {
            return Err(ChunkError::Truncated { need, have: data.len() });
        }
        let payload = &data[start..need];
        // Key the lookup map by name slices borrowed from `data` (the names
        // are embedded verbatim in the header region), avoiding a self-
        // referential struct while keeping lookups allocation-free. The
        // file-table layout gives each name's exact position — entry i is
        // `name_len u16 ‖ name ‖ offset u64 ‖ length u64 ‖ crc u32` — so
        // this is one O(header) walk (a substring search here would make
        // parse O(files × chunk_size); caught by the criterion benches).
        let mut by_name: HashMap<&'a str, usize> = HashMap::with_capacity(header.files.len());
        let mut pos = crate::format::file_table_offset(header.files.len());
        for (i, f) in header.files.iter().enumerate() {
            let name_start = pos + 2;
            let name_end = name_start + f.name.len();
            debug_assert!(name_end <= header.header_len as usize);
            if let Ok(s) = std::str::from_utf8(&data[name_start..name_end]) {
                debug_assert_eq!(s, f.name);
                // Names are unique per chunk by construction; last-wins
                // otherwise (matching delete-then-rewrite semantics).
                by_name.insert(s, i);
            }
            pos = name_end + 20;
        }
        Ok(ChunkReader { header, payload, by_name })
    }

    /// The decoded header.
    pub fn header(&self) -> &ChunkHeader {
        &self.header
    }

    /// Number of files (live + deleted).
    pub fn file_count(&self) -> usize {
        self.header.files.len()
    }

    /// Find a file's index by exact name, whether live or deleted.
    pub fn find(&self, name: &str) -> Option<usize> {
        match self.by_name.get(name) {
            Some(&i) => Some(i),
            // Fallback linear scan covers the (never expected) case where a
            // name could not be located in the raw buffer.
            None => self.header.files.iter().position(|f| f.name == name),
        }
    }

    /// Borrow the content of the file at `idx` without checksum
    /// verification.
    pub fn file_bytes(&self, idx: usize) -> Result<&'a [u8]> {
        let f =
            self.header.files.get(idx).ok_or_else(|| ChunkError::NoSuchFile(format!("#{idx}")))?;
        let start = f.offset as usize;
        let end = start + f.length as usize;
        if end > self.payload.len() {
            return Err(ChunkError::CorruptEntry { file: f.name.clone() });
        }
        Ok(&self.payload[start..end])
    }

    /// Read a live file by name, verifying its CRC.
    pub fn read_file(&self, name: &str) -> Result<&'a [u8]> {
        let idx = self.find(name).ok_or_else(|| ChunkError::NoSuchFile(name.to_owned()))?;
        if self.header.bitmap.is_deleted(idx) {
            return Err(ChunkError::FileDeleted(name.to_owned()));
        }
        self.read_file_at(idx)
    }

    /// Read the file at `idx` (even if deleted), verifying its CRC.
    pub fn read_file_at(&self, idx: usize) -> Result<&'a [u8]> {
        let bytes = self.file_bytes(idx)?;
        let f = &self.header.files[idx];
        if crate::crc::crc32(bytes) != f.crc32 {
            return Err(ChunkError::ChecksumMismatch { file: f.name.clone() });
        }
        Ok(bytes)
    }

    /// Read a byte range of a live file (FUSE-style partial reads).
    pub fn read_file_range(&self, name: &str, offset: u64, len: usize) -> Result<&'a [u8]> {
        let idx = self.find(name).ok_or_else(|| ChunkError::NoSuchFile(name.to_owned()))?;
        if self.header.bitmap.is_deleted(idx) {
            return Err(ChunkError::FileDeleted(name.to_owned()));
        }
        let whole = self.file_bytes(idx)?;
        let start = (offset as usize).min(whole.len());
        let end = (start + len).min(whole.len());
        Ok(&whole[start..end])
    }

    /// Iterate `(entry, live, bytes)` over all files in payload order.
    pub fn iter_files(&self) -> impl Iterator<Item = (&FileEntry, bool, &'a [u8])> + '_ {
        self.header.files.iter().enumerate().map(move |(i, f)| {
            let live = !self.header.bitmap.is_deleted(i);
            let bytes = self.file_bytes(i).unwrap_or(&[]);
            (f, live, bytes)
        })
    }

    /// Verify every file checksum; returns names of corrupt files.
    pub fn verify_all(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for (i, f) in self.header.files.iter().enumerate() {
            match self.file_bytes(i) {
                Ok(b) if crate::crc::crc32(b) == f.crc32 => {}
                _ => bad.push(f.name.clone()),
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChunkBuilder;
    use crate::id::ChunkIdGenerator;
    use proptest::prelude::*;

    fn build(files: &[(&str, &[u8])]) -> Vec<u8> {
        let mut b = ChunkBuilder::with_default_config();
        for (n, d) in files {
            b.add_file(n, d).unwrap();
        }
        let ids = ChunkIdGenerator::deterministic(1, 1, 10);
        b.seal(ids.next_id(), 1).1
    }

    #[test]
    fn read_by_name_and_index() {
        let bytes = build(&[("a", b"one"), ("b/c", b"two"), ("d", b"three")]);
        let r = ChunkReader::parse(&bytes).unwrap();
        assert_eq!(r.read_file("b/c").unwrap(), b"two");
        assert_eq!(r.read_file_at(2).unwrap(), b"three");
        assert!(matches!(r.read_file("zzz"), Err(ChunkError::NoSuchFile(_))));
    }

    #[test]
    fn range_reads() {
        let bytes = build(&[("f", b"0123456789")]);
        let r = ChunkReader::parse(&bytes).unwrap();
        assert_eq!(r.read_file_range("f", 2, 3).unwrap(), b"234");
        assert_eq!(r.read_file_range("f", 8, 100).unwrap(), b"89");
        assert_eq!(r.read_file_range("f", 100, 5).unwrap(), b"");
    }

    #[test]
    fn payload_corruption_detected_by_crc() {
        let mut bytes = build(&[("f", b"sensitive-data")]);
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        let r = ChunkReader::parse(&bytes).unwrap();
        assert!(matches!(r.read_file("f"), Err(ChunkError::ChecksumMismatch { .. })));
        assert_eq!(r.verify_all(), vec!["f".to_string()]);
    }

    #[test]
    fn truncated_payload_rejected_at_parse() {
        let bytes = build(&[("f", b"0123456789")]);
        assert!(matches!(
            ChunkReader::parse(&bytes[..bytes.len() - 4]),
            Err(ChunkError::Truncated { .. })
        ));
    }

    #[test]
    fn iter_files_reports_live_flags() {
        let bytes = build(&[("a", b"1"), ("b", b"2")]);
        let r = ChunkReader::parse(&bytes).unwrap();
        let flags: Vec<bool> = r.iter_files().map(|(_, live, _)| live).collect();
        assert_eq!(flags, vec![true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn roundtrip_arbitrary_files(
            files in proptest::collection::vec(
                ("[a-z]{1,12}(/[a-z]{1,8}){0,3}", proptest::collection::vec(any::<u8>(), 0..2000)),
                1..20
            )
        ) {
            // De-duplicate names (chunk semantics assume unique names).
            let mut seen = std::collections::HashSet::new();
            let files: Vec<(String, Vec<u8>)> = files
                .into_iter()
                .filter(|(n, _)| seen.insert(n.clone()))
                .collect();
            let mut b = ChunkBuilder::with_default_config();
            for (n, d) in &files {
                b.add_file(n, d).unwrap();
            }
            let ids = ChunkIdGenerator::deterministic(2, 2, 20);
            let (_, bytes) = b.seal(ids.next_id(), 5);
            let r = ChunkReader::parse(&bytes).unwrap();
            prop_assert!(r.verify_all().is_empty());
            for (n, d) in &files {
                prop_assert_eq!(r.read_file(n).unwrap(), &d[..]);
            }
        }

        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..600)) {
            // Parsing must fail gracefully on fuzz input, never panic.
            let _ = ChunkReader::parse(&data);
        }
    }
}
