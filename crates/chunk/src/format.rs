//! Binary layout of a DIESEL data chunk (paper Fig. 5a).
//!
//! A chunk is `header ‖ payload`. The header is fully self-describing so
//! that the metadata KV database can be rebuilt from chunks alone
//! (§4.1.2). All integers are little-endian.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic "DSLC"
//!      4     2  format version (currently 1)
//!      6     4  header length H (bytes 0..H are the header)
//!     10     4  header CRC-32 (over bytes 0..H with this field zeroed)
//!     14    16  chunk id (Table 1 layout, raw bytes)
//!     30     8  update timestamp (unix milliseconds)
//!     38     4  file count N
//!     42     4  deleted count (must equal bitmap popcount)
//!     46     8  payload length P
//!     54     *  deletion bitmap (ceil(N/64) × 8 bytes)
//!      *     *  file table: N × { name_len u16, name, offset u64,
//!                                 length u64, crc32 u32 }
//!      H     P  payload (file contents back to back)
//! ```

use crate::bitmap::DeletionBitmap;
use crate::crc::crc32;
use crate::id::ChunkId;
use crate::{ChunkError, Result};

/// Magic bytes at the start of every chunk.
pub const CHUNK_MAGIC: [u8; 4] = *b"DSLC";
/// Current chunk format version.
pub const FORMAT_VERSION: u16 = 1;
/// Byte offset of the fixed part described above.
pub const FIXED_HEADER_LEN: usize = 54;

/// Byte offset of the file table within an encoded header: the fixed
/// header followed by the deletion bitmap for `file_count` files. Other
/// modules use this instead of touching the layout constants directly
/// (format-hygiene rule R4).
pub fn file_table_offset(file_count: usize) -> usize {
    FIXED_HEADER_LEN + crate::bitmap::DeletionBitmap::wire_len(file_count)
}

/// Metadata of one file stored inside a chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Full path of the file inside the dataset (e.g. `train/cat/001.jpg`).
    pub name: String,
    /// Byte offset of the file content within the chunk *payload*.
    pub offset: u64,
    /// Length of the file content in bytes.
    pub length: u64,
    /// CRC-32 of the file content.
    pub crc32: u32,
}

impl FileEntry {
    fn wire_len(&self) -> usize {
        2 + self.name.len() + 8 + 8 + 4
    }
}

/// Decoded chunk header: everything the server needs to construct the
/// key-value metadata for this chunk and its files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkHeader {
    /// The chunk's sortable identifier.
    pub id: ChunkId,
    /// Update timestamp (unix milliseconds).
    pub updated_ms: u64,
    /// Per-file deletion state.
    pub bitmap: DeletionBitmap,
    /// File table, in payload order.
    pub files: Vec<FileEntry>,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// Total header length in bytes (== payload start offset).
    pub header_len: u32,
}

impl ChunkHeader {
    /// Number of files (live + deleted) in the chunk.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of deleted files.
    pub fn deleted_count(&self) -> usize {
        self.bitmap.deleted_count()
    }

    /// Total chunk length (header + payload).
    pub fn chunk_len(&self) -> usize {
        self.header_len as usize + self.payload_len as usize
    }

    /// Serialized wire length of a header with these files.
    pub fn wire_len(files: &[FileEntry]) -> usize {
        file_table_offset(files.len()) + files.iter().map(FileEntry::wire_len).sum::<usize>()
    }

    /// Encode this header into `out` (which should be empty). `header_len`
    /// is recomputed; the CRC field is filled in.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let hlen = Self::wire_len(&self.files);
        out.reserve(hlen);
        out.extend_from_slice(&CHUNK_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(hlen as u32).to_le_bytes());
        let crc_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // placeholder CRC
        out.extend_from_slice(&self.id.0);
        out.extend_from_slice(&self.updated_ms.to_le_bytes());
        out.extend_from_slice(&(self.files.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.bitmap.deleted_count() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload_len.to_le_bytes());
        out.extend_from_slice(&self.bitmap.to_bytes());
        for f in &self.files {
            out.extend_from_slice(&(f.name.len() as u16).to_le_bytes());
            out.extend_from_slice(f.name.as_bytes());
            out.extend_from_slice(&f.offset.to_le_bytes());
            out.extend_from_slice(&f.length.to_le_bytes());
            out.extend_from_slice(&f.crc32.to_le_bytes());
        }
        debug_assert_eq!(out.len(), hlen);
        let crc = crc32(out);
        out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
    }

    /// Decode a header from the front of `data` (a whole chunk or at least
    /// its header bytes). Verifies magic, version, structural bounds, the
    /// header CRC and the bitmap/deleted-count consistency.
    pub fn decode(data: &[u8]) -> Result<ChunkHeader> {
        // Fixed-width read at `at`. Every offset below is pre-checked
        // against the lengths, but a typed error beats a panic if that
        // invariant ever slips (panic-freedom rule R1).
        fn fixed<const N: usize>(data: &[u8], at: usize) -> Result<[u8; N]> {
            data.get(at..at + N)
                .and_then(|s| s.try_into().ok())
                .ok_or(ChunkError::Truncated { need: at + N, have: data.len() })
        }
        if data.len() < FIXED_HEADER_LEN {
            return Err(ChunkError::Truncated { need: FIXED_HEADER_LEN, have: data.len() });
        }
        if data[0..4] != CHUNK_MAGIC {
            return Err(ChunkError::BadMagic);
        }
        let version = u16::from_le_bytes(fixed(data, 4)?);
        if version > FORMAT_VERSION {
            return Err(ChunkError::UnsupportedVersion(version));
        }
        let hlen = u32::from_le_bytes(fixed(data, 6)?) as usize;
        if hlen < FIXED_HEADER_LEN {
            return Err(ChunkError::Truncated { need: FIXED_HEADER_LEN, have: hlen });
        }
        if data.len() < hlen {
            return Err(ChunkError::Truncated { need: hlen, have: data.len() });
        }
        let stored_crc = u32::from_le_bytes(fixed(data, 10)?);
        // Recompute with the CRC field zeroed.
        let mut hasher = crate::crc::Hasher::new();
        hasher.update(&data[0..10]);
        hasher.update(&[0u8; 4]);
        hasher.update(&data[14..hlen]);
        if hasher.finalize() != stored_crc {
            return Err(ChunkError::HeaderChecksumMismatch);
        }

        let id = ChunkId(fixed(data, 14)?);
        let updated_ms = u64::from_le_bytes(fixed(data, 30)?);
        let file_count = u32::from_le_bytes(fixed(data, 38)?) as usize;
        let deleted_count = u32::from_le_bytes(fixed(data, 42)?) as usize;
        let payload_len = u64::from_le_bytes(fixed(data, 46)?);

        let bm_len = DeletionBitmap::wire_len(file_count);
        let mut pos = FIXED_HEADER_LEN;
        if hlen < pos + bm_len {
            return Err(ChunkError::Truncated { need: pos + bm_len, have: hlen });
        }
        let bitmap = DeletionBitmap::from_bytes(&data[pos..pos + bm_len], file_count)
            .ok_or(ChunkError::Truncated { need: pos + bm_len, have: data.len() })?;
        pos += bm_len;
        if bitmap.deleted_count() != deleted_count {
            return Err(ChunkError::HeaderChecksumMismatch);
        }

        let mut files = Vec::with_capacity(file_count);
        for _ in 0..file_count {
            if hlen < pos + 2 {
                return Err(ChunkError::Truncated { need: pos + 2, have: hlen });
            }
            let nlen = u16::from_le_bytes(fixed(data, pos)?) as usize;
            pos += 2;
            if hlen < pos + nlen + 20 {
                return Err(ChunkError::Truncated { need: pos + nlen + 20, have: hlen });
            }
            let name = std::str::from_utf8(&data[pos..pos + nlen])
                .map_err(|_| ChunkError::BadFileName)?
                .to_owned();
            pos += nlen;
            let offset = u64::from_le_bytes(fixed(data, pos)?);
            let length = u64::from_le_bytes(fixed(data, pos + 8)?);
            let crc = u32::from_le_bytes(fixed(data, pos + 16)?);
            pos += 20;
            if offset.checked_add(length).is_none_or(|end| end > payload_len) {
                return Err(ChunkError::CorruptEntry { file: name });
            }
            files.push(FileEntry { name, offset, length, crc32: crc });
        }

        Ok(ChunkHeader { id, updated_ms, bitmap, files, payload_len, header_len: hlen as u32 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::MachineId;

    fn sample_header() -> ChunkHeader {
        let files = vec![
            FileEntry { name: "a/b/one.bin".into(), offset: 0, length: 10, crc32: 1 },
            FileEntry { name: "a/two.bin".into(), offset: 10, length: 20, crc32: 2 },
            FileEntry { name: "three.bin".into(), offset: 30, length: 5, crc32: 3 },
        ];
        let mut bitmap = DeletionBitmap::new(3);
        bitmap.set_deleted(1);
        let hlen = ChunkHeader::wire_len(&files) as u32;
        ChunkHeader {
            id: ChunkId::new(1234, MachineId::from_seed(9), 77, 5),
            updated_ms: 1_600_000_000_123,
            bitmap,
            files,
            payload_len: 35,
            header_len: hlen,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), h.header_len as usize);
        let back = ChunkHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.deleted_count(), 1);
        assert_eq!(back.file_count(), 3);
    }

    #[test]
    fn rejects_bad_magic() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf[0] = b'X';
        assert_eq!(ChunkHeader::decode(&buf), Err(ChunkError::BadMagic));
    }

    #[test]
    fn rejects_future_version() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert!(matches!(
            ChunkHeader::decode(&buf),
            Err(ChunkError::UnsupportedVersion(99)) | Err(ChunkError::HeaderChecksumMismatch)
        ));
    }

    #[test]
    fn rejects_header_corruption() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        // Flip a byte inside the file table.
        let n = buf.len();
        buf[n - 3] ^= 0xff;
        assert_eq!(ChunkHeader::decode(&buf), Err(ChunkError::HeaderChecksumMismatch));
    }

    #[test]
    fn rejects_truncation() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        for cut in [0, 4, 13, FIXED_HEADER_LEN, buf.len() - 1] {
            let res = ChunkHeader::decode(&buf[..cut]);
            assert!(res.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_entry_past_payload() {
        let mut h = sample_header();
        h.files[2].length = 1000; // extends past payload_len 35
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert!(matches!(ChunkHeader::decode(&buf), Err(ChunkError::CorruptEntry { .. })));
    }

    #[test]
    fn empty_chunk_header() {
        let h = ChunkHeader {
            id: ChunkId::new(1, MachineId::from_seed(1), 1, 0),
            updated_ms: 42,
            bitmap: DeletionBitmap::new(0),
            files: vec![],
            payload_len: 0,
            header_len: ChunkHeader::wire_len(&[]) as u32,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let back = ChunkHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
    }
}
