//! # diesel-core — the DIESEL server and client (libDIESEL)
//!
//! This crate assembles the substrates into the system of Fig. 2:
//!
//! * [`DieselServer`] — "hides the details of the underlying systems and
//!   provides a unified interface to access data as well as metadata":
//!   chunk ingest (write flow, Fig. 3), the read flow of Fig. 4, and the
//!   housekeeping operations (`DL_purge`, `DL_delete_dataset`).
//! * [`executor`] — the *request executor* that "sorts and merges small
//!   file requests to chunk-wise operations".
//! * [`DieselClient`] — libDIESEL (Table 3): `DL_connect`, `DL_put`,
//!   `DL_flush`, `DL_get`, `DL_stat`, `DL_ls`, `DL_delete`,
//!   `DL_save_meta`, `DL_load_meta`, `DL_shuffle`, `DL_close`, expressed
//!   as idiomatic Rust methods. The client holds the metadata snapshot /
//!   namespace ("metadata cache and interpreter") and optionally attaches
//!   to a task-grained distributed cache.
//! * [`fuse`] — the FUSE-style VFS facade: POSIX-ish `open`/`read`/
//!   `readdir` over a client, with kernel-style request splitting and the
//!   per-request overhead accounting behind the DIESEL-FUSE curves.
//! * [`dlcmd`] — the `DLCMD` dataset-management tool (import a directory
//!   tree, export, purge), mirroring `s3cmd`-style usage; the `dlcmd`
//!   binary wraps it as a CLI.
//! * [`config`] — the ETCD stand-in of Fig. 2: versioned configuration
//!   KV with compare-and-swap and blocking watches.

pub mod admission;
pub mod api;
pub mod client;
pub mod config;
pub mod dlcmd;
pub mod executor;
pub mod fuse;
pub mod pool;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController, Permit};
pub use api::{ServerConn, ServerReply, ServerRequest, ServerResponse};
pub use client::{ClientConfig, DieselClient};
pub use config::{ConfigEntry, ConfigService};
pub use executor::{plan_chunk_reads, ChunkReadPlan};
pub use fuse::{FuseConfig, FuseMount, FuseStats};
pub use pool::ServerPool;
pub use server::DieselServer;

// Telemetry-plane types callers wire through the server builders
// (`with_slo_targets`, `with_recorder_config`), re-exported so
// downstream crates don't need a direct diesel-obs dependency edge
// just to declare targets.
pub use diesel_obs::{FlightRecorder, RecorderConfig, SloMonitor, SloReport, SloTarget};

/// Errors from the core layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DieselError {
    /// Metadata layer failure.
    Meta(diesel_meta::MetaError),
    /// Object-store failure.
    Store(diesel_store::StoreError),
    /// Chunk parse/build failure.
    Chunk(diesel_chunk::ChunkError),
    /// Distributed-cache failure that could not be recovered by falling
    /// back to the server.
    Cache(diesel_cache::CacheError),
    /// RPC transport failure (timeout, disconnect) talking to a server.
    Net(diesel_net::NetError),
    /// Client misuse (e.g. reading before loading metadata).
    Client(String),
}

impl std::fmt::Display for DieselError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DieselError::Meta(e) => write!(f, "metadata: {e}"),
            DieselError::Store(e) => write!(f, "store: {e}"),
            DieselError::Chunk(e) => write!(f, "chunk: {e}"),
            DieselError::Cache(e) => write!(f, "cache: {e}"),
            DieselError::Net(e) => write!(f, "net: {e}"),
            DieselError::Client(e) => write!(f, "client: {e}"),
        }
    }
}

impl std::error::Error for DieselError {}

impl From<diesel_meta::MetaError> for DieselError {
    fn from(e: diesel_meta::MetaError) -> Self {
        DieselError::Meta(e)
    }
}
impl From<diesel_store::StoreError> for DieselError {
    fn from(e: diesel_store::StoreError) -> Self {
        DieselError::Store(e)
    }
}
impl From<diesel_chunk::ChunkError> for DieselError {
    fn from(e: diesel_chunk::ChunkError) -> Self {
        DieselError::Chunk(e)
    }
}
impl From<diesel_cache::CacheError> for DieselError {
    fn from(e: diesel_cache::CacheError) -> Self {
        DieselError::Cache(e)
    }
}
impl From<diesel_net::NetError> for DieselError {
    fn from(e: diesel_net::NetError) -> Self {
        DieselError::Net(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DieselError>;
