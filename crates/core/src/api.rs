//! The server's wire API: every operation a client can ask of a
//! [`DieselServer`], expressed as one request enum so client↔server
//! traffic flows through a `diesel-net` [`Channel`] instead of direct
//! method calls on a concrete `Arc<DieselServer>`.
//!
//! The paper's deployment puts Thrift between libDIESEL and the server
//! (Fig. 2); this enum is that interface. A [`DirectChannel`] keeps the
//! co-located case free of queues and copies, while the same call sites
//! can be pointed at a thread transport, a load-balanced pool
//! ([`ServerPool`](crate::ServerPool)), or a simnet-cost-modeled wrapper
//! without touching client code.

use std::sync::Arc;

use diesel_chunk::{ChunkId, SealedChunk};
use diesel_kv::KvStore;
use diesel_meta::{DatasetRecord, DirEntry, FileMeta, MetaSnapshot};
use diesel_net::{Channel, DirectChannel, Endpoint};
use diesel_obs::{trace, RegistrySnapshot, Span};
use diesel_store::{Bytes, ObjectStore};

use crate::server::{DieselServer, PurgeReport};
use crate::{DieselError, Result};

/// One request to a DIESEL server.
#[derive(Debug, Clone)]
pub enum ServerRequest {
    /// Persist one sealed chunk and ingest its metadata (write flow).
    IngestChunk {
        /// Target dataset.
        dataset: String,
        /// The sealed chunk.
        chunk: SealedChunk,
    },
    /// Read one file by path (server-side metadata lookup).
    ReadFile {
        /// Dataset.
        dataset: String,
        /// File path.
        path: String,
    },
    /// Read one file from caller-held metadata (snapshot fast path).
    ReadByMeta {
        /// Dataset.
        dataset: String,
        /// The file's location.
        meta: FileMeta,
    },
    /// Read a whole chunk.
    ReadChunk {
        /// Dataset.
        dataset: String,
        /// Chunk to read.
        chunk: ChunkId,
    },
    /// Batched read, merged chunk-wise by the request executor.
    ReadFilesMerged {
        /// Dataset.
        dataset: String,
        /// Requested paths, reply in the same order.
        paths: Vec<String>,
    },
    /// `stat` by path.
    Stat {
        /// Dataset.
        dataset: String,
        /// File path.
        path: String,
    },
    /// `readdir`.
    Readdir {
        /// Dataset.
        dataset: String,
        /// Directory path.
        dir: String,
    },
    /// Materialize the dataset's metadata snapshot.
    BuildSnapshot {
        /// Dataset.
        dataset: String,
    },
    /// The dataset's freshness record (§4.1.3 snapshot validation).
    DatasetRecord {
        /// Dataset.
        dataset: String,
    },
    /// Delete one file (metadata + in-chunk bitmap flip).
    DeleteFile {
        /// Dataset.
        dataset: String,
        /// File path.
        path: String,
        /// Deletion timestamp (ms).
        now_ms: u64,
    },
    /// `DL_purge`: compact chunks with deletion holes.
    PurgeDataset {
        /// Dataset.
        dataset: String,
        /// Purge timestamp (ms).
        now_ms: u64,
    },
    /// `DL_delete_dataset`: drop every chunk and metadata key.
    DeleteDataset {
        /// Dataset.
        dataset: String,
    },
    /// A point-in-time snapshot of the server's metric registry, merged
    /// with its KV and store backends (remote observability).
    Stats,
    /// The same merged snapshot as [`Stats`](ServerRequest::Stats),
    /// rendered in the Prometheus text exposition format
    /// ([`diesel_obs::prom`]) — what `dlcmd scrape` and external
    /// monitoring pull.
    Scrape,
    /// Drain the server-side tracer's recorded spans (remote tracing;
    /// see [`diesel_obs::trace`]). Draining empties the buffer, so each
    /// span is returned exactly once.
    Trace,
}

impl ServerRequest {
    /// The request's operation name — the `endpoint=…` label on the
    /// server-side `server.handle` span.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerRequest::IngestChunk { .. } => "IngestChunk",
            ServerRequest::ReadFile { .. } => "ReadFile",
            ServerRequest::ReadByMeta { .. } => "ReadByMeta",
            ServerRequest::ReadChunk { .. } => "ReadChunk",
            ServerRequest::ReadFilesMerged { .. } => "ReadFilesMerged",
            ServerRequest::Stat { .. } => "Stat",
            ServerRequest::Readdir { .. } => "Readdir",
            ServerRequest::BuildSnapshot { .. } => "BuildSnapshot",
            ServerRequest::DatasetRecord { .. } => "DatasetRecord",
            ServerRequest::DeleteFile { .. } => "DeleteFile",
            ServerRequest::PurgeDataset { .. } => "PurgeDataset",
            ServerRequest::DeleteDataset { .. } => "DeleteDataset",
            ServerRequest::Stats => "Stats",
            ServerRequest::Scrape => "Scrape",
            ServerRequest::Trace => "Trace",
        }
    }

    /// The tenant this request belongs to — the dataset it targets.
    /// Tenant identity *is* dataset identity in DIESEL (the paper's
    /// task-grained isolation, §4.2), so every data-plane request
    /// carries it already; only the control-plane requests
    /// ([`Stats`](ServerRequest::Stats)/[`Trace`](ServerRequest::Trace))
    /// are tenant-less and bypass admission control.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            ServerRequest::IngestChunk { dataset, .. }
            | ServerRequest::ReadFile { dataset, .. }
            | ServerRequest::ReadByMeta { dataset, .. }
            | ServerRequest::ReadChunk { dataset, .. }
            | ServerRequest::ReadFilesMerged { dataset, .. }
            | ServerRequest::Stat { dataset, .. }
            | ServerRequest::Readdir { dataset, .. }
            | ServerRequest::BuildSnapshot { dataset }
            | ServerRequest::DatasetRecord { dataset }
            | ServerRequest::DeleteFile { dataset, .. }
            | ServerRequest::PurgeDataset { dataset, .. }
            | ServerRequest::DeleteDataset { dataset } => Some(dataset),
            ServerRequest::Stats | ServerRequest::Scrape | ServerRequest::Trace => None,
        }
    }
}

/// A successful server reply; variants mirror [`ServerRequest`].
#[derive(Debug, Clone)]
pub enum ServerResponse {
    /// Operation completed with nothing to return.
    Unit,
    /// File or chunk bytes.
    Bytes(Bytes),
    /// Batched read results, in request order.
    BytesVec(Vec<Bytes>),
    /// A `stat` result.
    Meta(FileMeta),
    /// A `readdir` result.
    Entries(Vec<DirEntry>),
    /// A metadata snapshot.
    Snapshot(MetaSnapshot),
    /// A dataset freshness record.
    Record(DatasetRecord),
    /// A purge report.
    Purge(PurgeReport),
    /// Number of objects removed.
    Removed(u64),
    /// A metric-registry snapshot.
    Stats(RegistrySnapshot),
    /// Rendered text (a Prometheus scrape).
    Text(String),
    /// Spans drained from the server-side tracer.
    Trace(Vec<Span>),
}

/// Application-level outcome of one request. Transport failures live in
/// [`diesel_net::NetError`], below this layer.
pub type ServerReply = Result<ServerResponse>;

/// A connection to a DIESEL server (or pool of them).
pub type ServerConn = Channel<ServerRequest, ServerReply>;

fn unexpected(what: &str, got: &ServerResponse) -> DieselError {
    DieselError::Client(format!("server replied {got:?} where {what} was expected"))
}

impl ServerResponse {
    /// Unwrap [`ServerResponse::Bytes`].
    pub fn into_bytes(self) -> Result<Bytes> {
        match self {
            ServerResponse::Bytes(b) => Ok(b),
            other => Err(unexpected("bytes", &other)),
        }
    }

    /// Unwrap [`ServerResponse::BytesVec`].
    pub fn into_bytes_vec(self) -> Result<Vec<Bytes>> {
        match self {
            ServerResponse::BytesVec(v) => Ok(v),
            other => Err(unexpected("a bytes batch", &other)),
        }
    }

    /// Unwrap [`ServerResponse::Meta`].
    pub fn into_meta(self) -> Result<FileMeta> {
        match self {
            ServerResponse::Meta(m) => Ok(m),
            other => Err(unexpected("file metadata", &other)),
        }
    }

    /// Unwrap [`ServerResponse::Entries`].
    pub fn into_entries(self) -> Result<Vec<DirEntry>> {
        match self {
            ServerResponse::Entries(v) => Ok(v),
            other => Err(unexpected("directory entries", &other)),
        }
    }

    /// Unwrap [`ServerResponse::Snapshot`].
    pub fn into_snapshot(self) -> Result<MetaSnapshot> {
        match self {
            ServerResponse::Snapshot(s) => Ok(s),
            other => Err(unexpected("a snapshot", &other)),
        }
    }

    /// Unwrap [`ServerResponse::Record`].
    pub fn into_record(self) -> Result<DatasetRecord> {
        match self {
            ServerResponse::Record(r) => Ok(r),
            other => Err(unexpected("a dataset record", &other)),
        }
    }

    /// Unwrap [`ServerResponse::Purge`].
    pub fn into_purge(self) -> Result<PurgeReport> {
        match self {
            ServerResponse::Purge(p) => Ok(p),
            other => Err(unexpected("a purge report", &other)),
        }
    }

    /// Unwrap [`ServerResponse::Removed`].
    pub fn into_removed(self) -> Result<u64> {
        match self {
            ServerResponse::Removed(n) => Ok(n),
            other => Err(unexpected("a removal count", &other)),
        }
    }

    /// Unwrap [`ServerResponse::Stats`].
    pub fn into_stats(self) -> Result<RegistrySnapshot> {
        match self {
            ServerResponse::Stats(s) => Ok(s),
            other => Err(unexpected("a stats snapshot", &other)),
        }
    }

    /// Unwrap [`ServerResponse::Text`].
    pub fn into_text(self) -> Result<String> {
        match self {
            ServerResponse::Text(t) => Ok(t),
            other => Err(unexpected("rendered text", &other)),
        }
    }

    /// Unwrap [`ServerResponse::Trace`].
    pub fn into_trace(self) -> Result<Vec<Span>> {
        match self {
            ServerResponse::Trace(v) => Ok(v),
            other => Err(unexpected("drained trace spans", &other)),
        }
    }
}

impl<K: KvStore, S: ObjectStore> DieselServer<K, S> {
    /// Dispatch one wire request to the corresponding server method.
    pub fn handle(&self, req: ServerRequest) -> ServerReply {
        // Drains bypass the span machinery: the drain itself must not
        // append to the buffer it empties.
        if matches!(req, ServerRequest::Trace) {
            return Ok(ServerResponse::Trace(self.tracer().drain()));
        }
        // Scrapes render outside the span/admission machinery too: a
        // monitoring pull must not perturb (or be blocked by) the
        // tenant data plane it observes.
        if matches!(req, ServerRequest::Scrape) {
            return Ok(ServerResponse::Text(diesel_obs::render_prometheus(&self.stats_snapshot())));
        }
        // Installing a disabled tracer is one thread-local read; when a
        // caller context arrived in the envelope (or via a direct
        // channel), the handle span parents the caller's span.
        let _tracer = trace::install_tracer(self.tracer());
        let _span = trace::span("server.handle", &[("endpoint", req.kind())]);
        // Admission control (DESIGN.md §14): tenant-carrying requests
        // pass the per-tenant token bucket + DRR fair-share queue before
        // touching the exec pool; the permit is held for the whole
        // dispatch so the global concurrency cap bounds real work.
        let _permit = match (self.admission(), req.tenant()) {
            (Some(adm), Some(tenant)) => Some(adm.admit(tenant).map_err(DieselError::Cache)?),
            _ => None,
        };
        // Per-tenant telemetry around the dispatch: read-class requests
        // time into `server.read_latency{dataset=…}` (what the SLO
        // monitor's p99 objective reads) and any admitted request that
        // fails counts into `server.request_errors{dataset=…}`.
        // Throttles never reach this point — they are a separate budget
        // (`server.tenant.throttled`), not a request error.
        let read_class = matches!(
            req,
            ServerRequest::ReadFile { .. }
                | ServerRequest::ReadByMeta { .. }
                | ServerRequest::ReadChunk { .. }
                | ServerRequest::ReadFilesMerged { .. }
        );
        let dataset = req.tenant().map(str::to_owned);
        let start_ns = if read_class { Some(self.registry().clock().now_ns()) } else { None };
        let reply = match req {
            ServerRequest::IngestChunk { dataset, chunk } => {
                self.ingest_chunk(&dataset, chunk).map(|()| ServerResponse::Unit)
            }
            ServerRequest::ReadFile { dataset, path } => {
                self.read_file(&dataset, &path).map(ServerResponse::Bytes)
            }
            ServerRequest::ReadByMeta { dataset, meta } => {
                self.read_by_meta(&dataset, &meta).map(ServerResponse::Bytes)
            }
            ServerRequest::ReadChunk { dataset, chunk } => {
                self.read_chunk(&dataset, chunk).map(ServerResponse::Bytes)
            }
            ServerRequest::ReadFilesMerged { dataset, paths } => {
                let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
                self.read_files_merged(&dataset, &refs).map(ServerResponse::BytesVec)
            }
            ServerRequest::Stat { dataset, path } => {
                self.stat(&dataset, &path).map(ServerResponse::Meta)
            }
            ServerRequest::Readdir { dataset, dir } => {
                self.readdir(&dataset, &dir).map(ServerResponse::Entries)
            }
            ServerRequest::BuildSnapshot { dataset } => {
                self.build_snapshot(&dataset).map(ServerResponse::Snapshot)
            }
            ServerRequest::DatasetRecord { dataset } => {
                Ok(ServerResponse::Record(self.meta().dataset_record(&dataset)?))
            }
            ServerRequest::DeleteFile { dataset, path, now_ms } => {
                self.delete_file(&dataset, &path, now_ms).map(|()| ServerResponse::Unit)
            }
            ServerRequest::PurgeDataset { dataset, now_ms } => {
                self.purge_dataset(&dataset, now_ms).map(ServerResponse::Purge)
            }
            ServerRequest::DeleteDataset { dataset } => {
                self.delete_dataset(&dataset).map(ServerResponse::Removed)
            }
            ServerRequest::Stats => Ok(ServerResponse::Stats(self.stats_snapshot())),
            // Handled by the early returns above; kept for exhaustiveness.
            ServerRequest::Scrape => {
                Ok(ServerResponse::Text(diesel_obs::render_prometheus(&self.stats_snapshot())))
            }
            ServerRequest::Trace => Ok(ServerResponse::Trace(self.tracer().drain())),
        };
        if let Some(dataset) = dataset.as_deref() {
            if let Some(start) = start_ns {
                let elapsed = self.registry().clock().now_ns().saturating_sub(start);
                self.registry()
                    .histogram("server.read_latency", &[("dataset", dataset)])
                    .record_ns(elapsed);
            }
            if reply.is_err() {
                self.registry().counter("server.request_errors", &[("dataset", dataset)]).inc();
            }
        }
        reply
    }

    /// An in-process [`ServerConn`] to this server: direct dispatch, no
    /// queueing — the zero-overhead path for co-located clients.
    pub fn direct_channel(self: &Arc<Self>, node: usize) -> ServerConn
    where
        K: 'static,
        S: 'static,
    {
        let server = self.clone();
        Arc::new(DirectChannel::new(Endpoint::new("server", node), move |req| {
            Ok(server.handle(req))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::{ChunkBuilder, ChunkIdGenerator};
    use diesel_kv::ShardedKv;
    use diesel_net::Service;
    use diesel_store::MemObjectStore;

    fn server() -> Arc<DieselServer<ShardedKv, MemObjectStore>> {
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())))
    }

    fn sealed(files: &[(&str, &[u8])]) -> SealedChunk {
        let ids = ChunkIdGenerator::deterministic(3, 3, 30);
        let mut b = ChunkBuilder::with_default_config();
        for (n, d) in files {
            b.add_file(n, d).unwrap();
        }
        let (header, bytes) = b.seal(ids.next_id(), 1_000);
        SealedChunk { header, bytes: bytes.into() }
    }

    #[test]
    fn request_dispatch_covers_every_operation() {
        let s = server();
        let conn = s.direct_channel(0);
        let ds = || "ds".to_owned();
        conn.call(ServerRequest::IngestChunk {
            dataset: ds(),
            chunk: sealed(&[("a", b"alpha"), ("b", b"beta")]),
        })
        .unwrap()
        .unwrap();
        let data = conn
            .call(ServerRequest::ReadFile { dataset: ds(), path: "a".into() })
            .unwrap()
            .unwrap()
            .into_bytes()
            .unwrap();
        assert_eq!(data.as_ref(), b"alpha");
        let meta = conn
            .call(ServerRequest::Stat { dataset: ds(), path: "b".into() })
            .unwrap()
            .unwrap()
            .into_meta()
            .unwrap();
        let by_meta = conn
            .call(ServerRequest::ReadByMeta { dataset: ds(), meta })
            .unwrap()
            .unwrap()
            .into_bytes()
            .unwrap();
        assert_eq!(by_meta.as_ref(), b"beta");
        let merged = conn
            .call(ServerRequest::ReadFilesMerged {
                dataset: ds(),
                paths: vec!["a".into(), "b".into()],
            })
            .unwrap()
            .unwrap()
            .into_bytes_vec()
            .unwrap();
        assert_eq!(merged[0].as_ref(), b"alpha");
        assert_eq!(merged[1].as_ref(), b"beta");
        let snap = conn
            .call(ServerRequest::BuildSnapshot { dataset: ds() })
            .unwrap()
            .unwrap()
            .into_snapshot()
            .unwrap();
        assert_eq!(snap.files.len(), 2);
        let chunk = conn
            .call(ServerRequest::ReadChunk { dataset: ds(), chunk: snap.chunks[0] })
            .unwrap()
            .unwrap()
            .into_bytes()
            .unwrap();
        diesel_chunk::ChunkReader::parse(&chunk).unwrap();
        let rec = conn
            .call(ServerRequest::DatasetRecord { dataset: ds() })
            .unwrap()
            .unwrap()
            .into_record()
            .unwrap();
        assert_eq!(rec.file_count, 2);
        assert_eq!(
            conn.call(ServerRequest::Readdir { dataset: ds(), dir: "".into() })
                .unwrap()
                .unwrap()
                .into_entries()
                .unwrap()
                .len(),
            2
        );
        let stats = conn.call(ServerRequest::Stats).unwrap().unwrap().into_stats().unwrap();
        assert!(stats.sum_counter("server.file_reads") >= 2, "reads counted: {stats:?}");
        assert_eq!(stats.counter("server.chunks_ingested"), 1);
        assert!(stats.sum_counter("kv.puts") > 0, "kv backend metrics merged in");
        conn.call(ServerRequest::DeleteFile { dataset: ds(), path: "a".into(), now_ms: 2_000 })
            .unwrap()
            .unwrap();
        let purge = conn
            .call(ServerRequest::PurgeDataset { dataset: ds(), now_ms: 3_000 })
            .unwrap()
            .unwrap()
            .into_purge()
            .unwrap();
        assert_eq!(purge.bytes_reclaimed, 5);
        let removed = conn
            .call(ServerRequest::DeleteDataset { dataset: ds() })
            .unwrap()
            .unwrap()
            .into_removed()
            .unwrap();
        assert!(removed >= 1);
    }

    #[test]
    fn application_errors_travel_inside_the_reply() {
        let s = server();
        let conn = s.direct_channel(0);
        let reply = conn
            .call(ServerRequest::ReadFile { dataset: "ds".into(), path: "ghost".into() })
            .unwrap(); // transport succeeded
        assert!(matches!(reply, Err(DieselError::Meta(_))), "app error inside reply: {reply:?}");
    }

    #[test]
    fn wrong_variant_unwraps_are_typed_errors() {
        let err = ServerResponse::Unit.into_bytes().unwrap_err();
        assert!(matches!(err, DieselError::Client(_)));
        let err = ServerResponse::Removed(3).into_snapshot().unwrap_err();
        assert!(matches!(err, DieselError::Client(_)));
    }
}
