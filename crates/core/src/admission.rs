//! Server-side admission control and fair-share scheduling
//! (DESIGN.md §14).
//!
//! The multi-tenant front-end puts two gates between a request and the
//! exec pool:
//!
//! 1. **Per-tenant token bucket** — each tenant refills at
//!    [`AdmissionConfig::tenant_rate_per_sec`] up to
//!    [`AdmissionConfig::tenant_burst`]; an empty bucket rejects the
//!    request with [`CacheError::Throttled`] carrying the exact
//!    back-off the client should obey (`DieselClient` retries after it
//!    automatically). This is the per-tenant QPS ceiling — the knob the
//!    `server.tenant.qps_ceiling{dataset=…}` gauge exposes.
//! 2. **Global concurrency cap + deficit-round-robin queue** — at most
//!    [`AdmissionConfig::max_inflight`] admitted requests execute at
//!    once; excess requests park in per-tenant FIFO lanes and are woken
//!    in DRR order (each lane earns `weight` deficit per round, one
//!    unit per grant), so a hot tenant's backlog cannot starve a light
//!    tenant's occasional request.
//!
//! Both gates live in front of the dispatch match in
//! [`DieselServer::handle`](crate::DieselServer::handle): a granted
//! [`Permit`] is held across the whole dispatch and releases its
//! concurrency slot (granting the next DRR ticket) on drop.
//!
//! Lock order: the controller's single `lanes` mutex is a leaf — no
//! other lock in the workspace is ever taken under it (rank in
//! diesel-lint's `LOCK_RANKS`).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use diesel_cache::CacheError;
use diesel_obs::Registry;
use diesel_util::{Clock, Condvar, Mutex, SystemClock};

/// Admission outcome: a permit, or a typed throttle.
pub type AdmitResult = std::result::Result<Permit, CacheError>;

/// Admission-control parameters.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Token-bucket refill rate per tenant (requests/second) — the
    /// per-tenant QPS ceiling.
    pub tenant_rate_per_sec: f64,
    /// Token-bucket depth per tenant (burst allowance). Buckets start
    /// full.
    pub tenant_burst: f64,
    /// Global cap on concurrently executing admitted requests.
    pub max_inflight: usize,
    /// Per-tenant cap on *parked* requests; a lane at this depth
    /// rejects further arrivals immediately with
    /// [`CacheError::Throttled`] instead of queueing them.
    pub max_queue_per_tenant: usize,
    /// How long a parked request waits for a DRR grant before giving up
    /// as throttled.
    pub queue_timeout: Duration,
    /// Fair-share weights by tenant (DRR deficit earned per round).
    /// Tenants not listed get weight 1.
    pub weights: HashMap<String, u64>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            tenant_rate_per_sec: 10_000.0,
            tenant_burst: 1_000.0,
            max_inflight: 64,
            max_queue_per_tenant: 256,
            queue_timeout: Duration::from_secs(5),
            weights: HashMap::new(),
        }
    }
}

/// One tenant's bucket, queue lane, and DRR deficit.
#[derive(Debug)]
struct Lane {
    tokens: f64,
    last_refill_ns: u64,
    queue: VecDeque<u64>,
    deficit: u64,
    weight: u64,
    /// Is this lane in the DRR active rotation?
    active: bool,
}

#[derive(Debug, Default)]
struct DrrState {
    inflight: usize,
    lanes: HashMap<String, Lane>,
    /// DRR rotation of tenants with queued tickets.
    rotation: VecDeque<String>,
    next_ticket: u64,
    granted: std::collections::HashSet<u64>,
}

struct Inner {
    cfg: AdmissionConfig,
    clock: Arc<dyn Clock>,
    lanes: Mutex<DrrState>,
    cv: Condvar,
    registry: Arc<Registry>,
}

/// The server front-end's admission controller. Cheap to clone; clones
/// share state.
#[derive(Clone)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lanes.lock();
        f.debug_struct("AdmissionController")
            .field("inflight", &st.inflight)
            .field("tenants", &st.lanes.len())
            .finish()
    }
}

/// RAII admission grant: holding it occupies one global concurrency
/// slot; dropping it releases the slot and wakes the next DRR ticket.
pub struct Permit {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Permit")
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.inner.lanes.lock();
        st.inflight -= 1;
        self.inner.pump(&mut st);
    }
}

impl AdmissionController {
    /// A controller over a private registry and the system clock.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self::with_registry(cfg, Arc::default())
    }

    /// A controller whose `server.tenant.*` metrics land in `registry`.
    pub fn with_registry(cfg: AdmissionConfig, registry: Arc<Registry>) -> Self {
        AdmissionController {
            inner: Arc::new(Inner {
                cfg,
                clock: Arc::new(SystemClock::new()),
                lanes: Mutex::named("core.admission", DrrState::default()),
                cv: Condvar::new(),
                registry,
            }),
        }
    }

    /// Drive refills and queue timeouts from `clock` (a
    /// [`diesel_util::MockClock`] makes throttle schedules exactly
    /// assertable). Only effective at construction time — once the
    /// controller has been shared the swap is a no-op.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        if let Some(inner) = Arc::get_mut(&mut self.inner) {
            inner.clock = clock;
        }
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.inner.cfg
    }

    /// Admit one request for `tenant`: charge its token bucket, then
    /// take a concurrency slot (parking in the DRR queue when the
    /// global cap is saturated). Returns [`CacheError::Throttled`] with
    /// the back-off to obey when the bucket is empty, the lane is full,
    /// or the queue wait times out.
    pub fn admit(&self, tenant: &str) -> AdmitResult {
        let inner = &self.inner;
        let now = inner.clock.now_ns();
        let ticket = {
            let mut st = inner.lanes.lock();
            inner.ensure_lane(&mut st, tenant, now);
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            let Some(lane) = st.lanes.get_mut(tenant) else {
                // Unreachable — the lane was just ensured — but the
                // serving path must not panic: reject transiently.
                drop(st);
                inner.count(tenant, "throttled");
                return Err(CacheError::Throttled { retry_after_ms: 1 });
            };
            // Refill, then charge one token.
            let elapsed = now.saturating_sub(lane.last_refill_ns);
            lane.last_refill_ns = now;
            lane.tokens = (lane.tokens + elapsed as f64 / 1e9 * inner.cfg.tenant_rate_per_sec)
                .min(inner.cfg.tenant_burst);
            if lane.tokens < 1.0 {
                let retry_after_ms = inner.token_wait_ms(lane.tokens);
                drop(st);
                inner.count(tenant, "throttled");
                return Err(CacheError::Throttled { retry_after_ms });
            }
            lane.tokens -= 1.0;
            // Enqueue the ticket, then pump: when capacity is free and
            // no one is ahead in DRR order, the grant is immediate and
            // the wait below returns without parking.
            lane.queue.push_back(ticket);
            if !lane.active {
                lane.active = true;
                st.rotation.push_back(tenant.to_string());
            }
            inner.pump(&mut st);
            if st.granted.remove(&ticket) {
                inner.count(tenant, "admitted");
                return Ok(Permit { inner: Arc::clone(inner) });
            }
            // Not granted: this request would park. A lane deeper than
            // its cap rejects instead — withdraw the ticket and refund
            // the token (the request did no work).
            if let Some(lane) = st.lanes.get_mut(tenant) {
                if lane.queue.len() > inner.cfg.max_queue_per_tenant {
                    if let Some(pos) = lane.queue.iter().position(|&t| t == ticket) {
                        lane.queue.remove(pos);
                    }
                    lane.tokens = (lane.tokens + 1.0).min(inner.cfg.tenant_burst);
                    drop(st);
                    inner.count(tenant, "throttled");
                    // Back off for roughly one drain's worth of service
                    // rather than a token refill.
                    return Err(CacheError::Throttled { retry_after_ms: 10 });
                }
            }
            ticket
        };
        inner.count(tenant, "queued");
        self.wait_for_grant(tenant, ticket)
    }

    /// Park until `ticket` is granted or the queue timeout elapses.
    fn wait_for_grant(&self, tenant: &str, ticket: u64) -> AdmitResult {
        let inner = &self.inner;
        let deadline =
            inner.clock.now_ns().saturating_add(inner.cfg.queue_timeout.as_nanos() as u64);
        let mut st = inner.lanes.lock();
        loop {
            if st.granted.remove(&ticket) {
                drop(st);
                inner.count(tenant, "admitted");
                return Ok(Permit { inner: Arc::clone(inner) });
            }
            let now = inner.clock.now_ns();
            if now >= deadline {
                // Withdraw the ticket; it may have been granted in the
                // meantime (checked above), so reaching here means it is
                // still queued.
                if let Some(lane) = st.lanes.get_mut(tenant) {
                    if let Some(pos) = lane.queue.iter().position(|&t| t == ticket) {
                        lane.queue.remove(pos);
                    }
                }
                drop(st);
                inner.count(tenant, "throttled");
                return Err(CacheError::Throttled {
                    retry_after_ms: inner.cfg.queue_timeout.as_millis().max(1) as u64,
                });
            }
            let remaining = Duration::from_nanos(deadline - now).min(Duration::from_millis(50));
            let (g, _timed_out) = inner.cv.wait_timeout(st, remaining);
            st = g;
        }
    }
}

impl Inner {
    /// Milliseconds until a bucket at `tokens` accrues one token.
    fn token_wait_ms(&self, tokens: f64) -> u64 {
        if self.cfg.tenant_rate_per_sec <= 0.0 {
            return u64::MAX;
        }
        let secs = (1.0 - tokens).max(0.0) / self.cfg.tenant_rate_per_sec;
        ((secs * 1e3).ceil() as u64).max(1)
    }

    /// Create `tenant`'s lane on first sight (full bucket, weight from
    /// config) and publish its QPS ceiling gauge.
    fn ensure_lane(&self, st: &mut DrrState, tenant: &str, now: u64) {
        if st.lanes.contains_key(tenant) {
            return;
        }
        let weight = self.cfg.weights.get(tenant).copied().unwrap_or(1).max(1);
        st.lanes.insert(
            tenant.to_string(),
            Lane {
                tokens: self.cfg.tenant_burst,
                last_refill_ns: now,
                queue: VecDeque::new(),
                deficit: 0,
                weight,
                active: false,
            },
        );
        self.registry
            .gauge("server.tenant.qps_ceiling", &[("dataset", tenant)])
            .set(self.cfg.tenant_rate_per_sec as u64);
        self.registry.gauge("server.tenant.weight", &[("dataset", tenant)]).set(weight);
    }

    /// Grant queued tickets in DRR order while concurrency slots are
    /// free. Each visited lane earns `weight` deficit; each grant costs
    /// one. Call with the state lock held; wakes waiters when anything
    /// was granted.
    fn pump(&self, st: &mut DrrState) {
        let mut granted_any = false;
        while st.inflight < self.cfg.max_inflight {
            let Some(tenant) = st.rotation.front().cloned() else { break };
            let lane = match st.lanes.get_mut(&tenant) {
                Some(l) => l,
                None => {
                    st.rotation.pop_front();
                    continue;
                }
            };
            if lane.queue.is_empty() {
                // Lane drained: leave the rotation and forfeit leftover
                // deficit (classic DRR — an idle lane must not bank
                // credit).
                lane.active = false;
                lane.deficit = 0;
                st.rotation.pop_front();
                continue;
            }
            if lane.deficit == 0 {
                // Earn this round's quantum and go to the back; weight
                // ≥ 1 guarantees progress on the next visit.
                lane.deficit = lane.weight;
                st.rotation.rotate_left(1);
                continue;
            }
            let Some(ticket) = lane.queue.pop_front() else {
                // Unreachable: emptiness was handled above.
                continue;
            };
            lane.deficit -= 1;
            st.granted.insert(ticket);
            st.inflight += 1;
            granted_any = true;
        }
        if granted_any {
            self.cv.notify_all();
        }
    }

    fn count(&self, tenant: &str, what: &str) {
        self.registry.counter(&format!("server.tenant.{what}"), &[("dataset", tenant)]).inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_util::MockClock;

    fn controller(cfg: AdmissionConfig, clock: &Arc<MockClock>) -> AdmissionController {
        let c: Arc<dyn Clock> = Arc::clone(clock) as Arc<dyn Clock>;
        AdmissionController::new(cfg).with_clock(c)
    }

    #[test]
    fn bucket_empties_then_refills_on_schedule() {
        let clock = Arc::new(MockClock::default());
        let adm = controller(
            AdmissionConfig {
                tenant_rate_per_sec: 100.0,
                tenant_burst: 2.0,
                ..AdmissionConfig::default()
            },
            &clock,
        );
        // Burst of 2 admits, then throttled with the refill schedule.
        let p1 = adm.admit("a").unwrap();
        let p2 = adm.admit("a").unwrap();
        let err = adm.admit("a").unwrap_err();
        let CacheError::Throttled { retry_after_ms } = err else { panic!("{err}") };
        assert_eq!(retry_after_ms, 10, "1 token at 100/s is 10 ms away");
        drop((p1, p2));
        // Obeying the advice works: advance exactly retry_after.
        clock.advance(retry_after_ms * 1_000_000);
        adm.admit("a").unwrap();
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let clock = Arc::new(MockClock::default());
        let adm = controller(
            AdmissionConfig {
                tenant_rate_per_sec: 100.0,
                tenant_burst: 1.0,
                ..AdmissionConfig::default()
            },
            &clock,
        );
        let _p = adm.admit("a").unwrap();
        assert!(adm.admit("a").is_err(), "a's bucket is empty");
        adm.admit("b").unwrap();
    }

    #[test]
    fn inflight_cap_parks_and_drr_grants_fairly() {
        let clock = Arc::new(MockClock::default());
        let adm = controller(
            AdmissionConfig {
                tenant_rate_per_sec: 1e9,
                tenant_burst: 1e9,
                max_inflight: 2,
                ..AdmissionConfig::default()
            },
            &clock,
        );
        let p1 = adm.admit("hot").unwrap();
        let p2 = adm.admit("hot").unwrap();
        // Cap saturated: a third request parks; grant it by releasing.
        let adm2 = adm.clone();
        let waiter = std::thread::spawn(move || adm2.admit("light").map(drop).is_ok());
        // Let the waiter park, then free a slot.
        std::thread::sleep(Duration::from_millis(20));
        drop(p1);
        assert!(waiter.join().unwrap(), "parked request granted after release");
        drop(p2);
    }

    #[test]
    fn drr_interleaves_a_backlogged_and_a_light_tenant() {
        let clock = Arc::new(MockClock::default());
        let adm = controller(
            AdmissionConfig {
                tenant_rate_per_sec: 1e9,
                tenant_burst: 1e9,
                max_inflight: 1,
                ..AdmissionConfig::default()
            },
            &clock,
        );
        // Occupy the only slot, then queue hot×3 and light×1.
        let gate = adm.admit("warm").unwrap();
        let order = Arc::new(Mutex::named("test.order", Vec::<&'static str>::new()));
        let mut joins = Vec::new();
        for (tenant, tag) in [("hot", "hot"), ("hot", "hot"), ("hot", "hot"), ("light", "light")] {
            let adm = adm.clone();
            let order = Arc::clone(&order);
            joins.push(std::thread::spawn(move || {
                let p = adm.admit(tenant).unwrap();
                order.lock().push(tag);
                drop(p);
            }));
            // Deterministic queue order: let each request park before
            // submitting the next.
            std::thread::sleep(Duration::from_millis(15));
        }
        drop(gate);
        for j in joins {
            j.join().unwrap();
        }
        let order = order.lock().clone();
        // DRR alternates lanes: light's single request is served after
        // at most one hot grant, never behind the whole hot backlog.
        let light_pos = order.iter().position(|t| *t == "light").unwrap();
        assert!(light_pos <= 1, "light parked behind hot backlog: {order:?}");
    }

    #[test]
    fn full_lane_throttles_immediately() {
        let clock = Arc::new(MockClock::default());
        let adm = controller(
            AdmissionConfig {
                tenant_rate_per_sec: 1e9,
                tenant_burst: 1e9,
                max_inflight: 1,
                max_queue_per_tenant: 0,
                ..AdmissionConfig::default()
            },
            &clock,
        );
        let _p = adm.admit("a").unwrap();
        assert!(matches!(adm.admit("a"), Err(CacheError::Throttled { .. })));
    }

    #[test]
    fn metrics_carry_the_tenant_label() {
        let clock = Arc::new(MockClock::default());
        let registry = Arc::new(Registry::default());
        let adm = AdmissionController::with_registry(
            AdmissionConfig {
                tenant_rate_per_sec: 50.0,
                tenant_burst: 1.0,
                ..AdmissionConfig::default()
            },
            Arc::clone(&registry),
        )
        .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        adm.admit("a").map(drop).unwrap();
        adm.admit("a").map(drop).unwrap_err();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.tenant.admitted{dataset=a}"), 1);
        assert_eq!(snap.counter("server.tenant.throttled{dataset=a}"), 1);
        assert_eq!(snap.gauge("server.tenant.qps_ceiling{dataset=a}"), 50);
    }
}
