//! DLCMD — the dataset management tool (§5: "a separate command-line
//! tool (DLCMD, similar to s3cmd in Amazon S3) is provided to write and
//! manage the datasets in DIESEL").
//!
//! These functions are the tool's verbs; the `quickstart` example wires
//! them to a binary.

use std::path::Path;
use std::sync::Arc;

use diesel_kv::KvStore;
use diesel_store::ObjectStore;

use crate::client::DieselClient;
use crate::server::DieselServer;
use crate::{DieselError, Result};

/// Outcome of an import.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Files uploaded.
    pub files: u64,
    /// Bytes uploaded.
    pub bytes: u64,
}

/// `dlcmd put -r <dir> diesel://<dataset>/` — walk a local directory
/// tree and upload every regular file, preserving relative paths.
pub fn import_directory<K: KvStore + 'static, S: ObjectStore + 'static>(
    client: &DieselClient<K, S>,
    root: impl AsRef<Path>,
) -> Result<ImportReport> {
    let root = root.as_ref();
    let mut report = ImportReport::default();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| DieselError::Client(format!("read_dir {dir:?}: {e}")))?;
        // Sort for deterministic chunk packing.
        let mut entries: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.is_file() {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| DieselError::Client(e.to_string()))?
                    .to_string_lossy()
                    .replace('\\', "/");
                let data = std::fs::read(&path)
                    .map_err(|e| DieselError::Client(format!("read {path:?}: {e}")))?;
                report.bytes += data.len() as u64;
                report.files += 1;
                client.put(&rel, &data)?;
            }
        }
    }
    client.flush()?;
    Ok(report)
}

/// `dlcmd get -r diesel://<dataset>/ <dir>` — download every file of the
/// dataset into a local directory tree.
pub fn export_directory<K: KvStore + 'static, S: ObjectStore + 'static>(
    client: &DieselClient<K, S>,
    dest: impl AsRef<Path>,
) -> Result<u64> {
    let dest = dest.as_ref();
    let mut count = 0;
    for path in client.file_list()? {
        let data = client.get(&path)?;
        let target = dest.join(&path);
        if let Some(parent) = target.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| DieselError::Client(format!("mkdir {parent:?}: {e}")))?;
        }
        std::fs::write(&target, &data)
            .map_err(|e| DieselError::Client(format!("write {target:?}: {e}")))?;
        count += 1;
    }
    Ok(count)
}

/// `dlcmd purge diesel://<dataset>` — compact chunks with deletion holes.
pub fn purge<K: KvStore, S: ObjectStore>(
    server: &DieselServer<K, S>,
    dataset: &str,
    now_ms: u64,
) -> Result<crate::server::PurgeReport> {
    server.purge_dataset(dataset, now_ms)
}

/// `dlcmd du diesel://<dataset>` — dataset usage summary.
pub fn usage<K: KvStore, S: ObjectStore>(
    server: &Arc<DieselServer<K, S>>,
    dataset: &str,
) -> Result<(u64, u64, u64)> {
    let rec = server.meta().dataset_record(dataset)?;
    Ok((rec.chunk_count, rec.file_count, rec.total_bytes))
}

/// The `dataset` label of a canonical metric id (`name{…,dataset=x,…}`),
/// if present.
pub fn dataset_label(id: &str) -> Option<&str> {
    let open = id.find('{')?;
    let inner = id.get(open + 1..)?.strip_suffix('}')?;
    inner.split(',').find_map(|kv| kv.strip_prefix("dataset="))
}

/// `dlcmd stats --dataset <name>` — restrict a stats snapshot to the
/// metrics and events carrying `{dataset=<name>}`. Unlabelled
/// (cluster-wide) metrics are dropped, so the view shows exactly one
/// tenant's slice.
pub fn filter_stats(
    snap: &diesel_obs::RegistrySnapshot,
    dataset: &str,
) -> diesel_obs::RegistrySnapshot {
    let keep = |id: &str| dataset_label(id) == Some(dataset);
    let mut out = diesel_obs::RegistrySnapshot {
        counters: snap
            .counters
            .iter()
            .filter(|(id, _)| keep(id))
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        gauges: snap
            .gauges
            .iter()
            .filter(|(id, _)| keep(id))
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .filter(|(id, _)| keep(id))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        events: Vec::new(),
        dropped_events: snap.dropped_events,
    };
    out.events = snap
        .events
        .iter()
        .filter(|e| e.kv.iter().any(|(k, v)| k == "dataset" && v == dataset))
        .cloned()
        .collect();
    out
}

/// One tenant's line in `dlcmd tenants`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStatsRow {
    /// Tenant name (the dataset).
    pub dataset: String,
    /// Per-node cache byte budget (`cache.tenant.budget_bytes`).
    pub budget_bytes: u64,
    /// Bytes loaded into the tenant's cache so far.
    pub bytes_loaded: u64,
    /// File reads served through the tenant's cache.
    pub file_reads: u64,
    /// Reads satisfied by a resident chunk.
    pub chunk_hits: u64,
    /// Requests admitted by the server's admission controller.
    pub admitted: u64,
    /// Requests rejected with `Throttled`.
    pub throttled: u64,
}

impl TenantStatsRow {
    /// Cache hit rate over file reads, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.file_reads == 0 {
            0.0
        } else {
            self.chunk_hits as f64 / self.file_reads as f64
        }
    }
}

/// `dlcmd tenants` — collect every dataset that appears as a
/// `{dataset=…}` label anywhere in the snapshot and summarise its
/// cache footprint, hit rate and throttle counts.
pub fn tenant_stats(snap: &diesel_obs::RegistrySnapshot) -> Vec<TenantStatsRow> {
    let mut names: Vec<String> = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .filter_map(|id| dataset_label(id))
        .map(|d| d.to_owned())
        .collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|dataset| {
            let c = |name: &str| snap.counter(&format!("{name}{{dataset={dataset}}}"));
            let g = |name: &str| snap.gauge(&format!("{name}{{dataset={dataset}}}"));
            TenantStatsRow {
                budget_bytes: g("cache.tenant.budget_bytes"),
                bytes_loaded: c("cache.bytes_loaded"),
                file_reads: c("cache.file_reads"),
                chunk_hits: c("cache.chunk_hits"),
                admitted: c("server.tenant.admitted"),
                throttled: c("server.tenant.throttled"),
                dataset,
            }
        })
        .collect()
}

/// One tenant's line in `dlcmd top`: live rates and SLO posture from the
/// flight recorder over one query window.
#[derive(Debug, Clone, PartialEq)]
pub struct TopRow {
    /// Tenant name (the dataset).
    pub dataset: String,
    /// File reads per second served over the window.
    pub qps: f64,
    /// p99 read latency over the window, in nanoseconds (0 = no reads).
    pub p99_ns: u64,
    /// Cache hit rate over the window's file reads, in `[0, 1]`.
    pub hit_rate: f64,
    /// Worst fast-window burn rate across the tenant's objectives
    /// (1.0 = exactly at target).
    pub burn: f64,
    /// True when every objective is in the `Ok` state.
    pub healthy: bool,
}

/// `dlcmd top` — join recorder window queries with the latest SLO
/// reports into one row per tenant, busiest first.
pub fn top_rows(
    recorder: &diesel_obs::FlightRecorder,
    reports: &[diesel_obs::SloReport],
    window_ns: u64,
) -> Vec<TopRow> {
    let mut rows: Vec<TopRow> = reports
        .iter()
        .map(|report| {
            let d = &report.dataset;
            let hits = recorder.delta(&format!("cache.chunk_hits{{dataset={d}}}"), window_ns);
            let cached = recorder.delta(&format!("cache.file_reads{{dataset={d}}}"), window_ns);
            TopRow {
                dataset: d.clone(),
                qps: recorder.rate(&format!("server.file_reads{{dataset={d}}}"), window_ns),
                p99_ns: recorder.percentile_over(
                    &format!("server.read_latency{{dataset={d}}}"),
                    0.99,
                    window_ns,
                ),
                hit_rate: if cached == 0 { 0.0 } else { hits as f64 / cached as f64 },
                burn: report.objectives.iter().map(|o| o.fast_burn).fold(0.0, f64::max),
                healthy: report.healthy(),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.qps
            .partial_cmp(&a.qps)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.dataset.cmp(&b.dataset))
    });
    rows
}

/// Render `dlcmd top` rows as an aligned text table.
pub fn render_top(rows: &[TopRow]) -> String {
    let mut out = String::from("DATASET              QPS     P99_READ   HIT%   BURN  HEALTH\n");
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>7.1} {:>12} {:>5.1} {:>6.2}  {}\n",
            r.dataset,
            r.qps,
            diesel_obs::fmt_ns(r.p99_ns),
            r.hit_rate * 100.0,
            r.burn,
            if r.healthy { "ok" } else { "BREACH" },
        ));
    }
    out
}

/// Render one tenant's SLO report (`dlcmd slo <dataset>`): one line per
/// objective with both burn windows and the current state.
pub fn render_slo(report: &diesel_obs::SloReport) -> String {
    let mut out = format!(
        "dataset {}: {}\n",
        report.dataset,
        if report.healthy() { "healthy" } else { "BREACHED" }
    );
    for o in &report.objectives {
        out.push_str(&format!(
            "  {:<16} fast_burn={:>7.2} slow_burn={:>7.2}  {}\n",
            o.slo,
            o.fast_burn,
            o.slow_burn,
            match o.state {
                diesel_obs::SloState::Ok => "ok",
                diesel_obs::SloState::Breached => "BREACH",
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientConfig;
    use diesel_chunk::ChunkBuilderConfig;
    use diesel_kv::ShardedKv;
    use diesel_store::MemObjectStore;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dlcmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn import_export_roundtrip() {
        // Build a little tree on disk.
        let src = tempdir("src");
        std::fs::create_dir_all(src.join("a/b")).unwrap();
        std::fs::write(src.join("top.bin"), b"top").unwrap();
        std::fs::write(src.join("a/one.bin"), vec![1u8; 500]).unwrap();
        std::fs::write(src.join("a/b/two.bin"), vec![2u8; 999]).unwrap();

        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect_with(
            server.clone(),
            "ds",
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 1024, ..Default::default() },
            },
        )
        .with_deterministic_identity(1, 1, 100);

        let report = import_directory(&client, &src).unwrap();
        assert_eq!(report.files, 3);
        assert_eq!(report.bytes, 3 + 500 + 999);
        let (chunks, files, bytes) = usage(&server, "ds").unwrap();
        assert_eq!(files, 3);
        assert_eq!(bytes, 1502);
        assert!(chunks >= 2, "1 KB chunks force a split");

        client.download_meta().unwrap();
        assert_eq!(client.get("a/b/two.bin").unwrap().as_ref(), &vec![2u8; 999][..]);

        let dst = tempdir("dst");
        let n = export_directory(&client, &dst).unwrap();
        assert_eq!(n, 3);
        assert_eq!(std::fs::read(dst.join("top.bin")).unwrap(), b"top");
        assert_eq!(std::fs::read(dst.join("a/one.bin")).unwrap(), vec![1u8; 500]);

        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&dst);
    }

    #[test]
    fn dataset_label_parses_canonical_ids() {
        assert_eq!(dataset_label("cache.chunk_hits{dataset=imagenet}"), Some("imagenet"));
        assert_eq!(dataset_label("kv.gets{dataset=a,instance=3}"), Some("a"));
        assert_eq!(dataset_label("server.reads"), None);
        assert_eq!(dataset_label("kv.gets{instance=3}"), None);
    }

    #[test]
    fn filter_and_tenant_stats_slice_by_dataset() {
        let reg = diesel_obs::Registry::new(Arc::new(diesel_util::MockClock::new()));
        reg.counter("cache.file_reads", &[("dataset", "a")]).add(10);
        reg.counter("cache.chunk_hits", &[("dataset", "a")]).add(8);
        reg.counter("cache.bytes_loaded", &[("dataset", "a")]).add(4096);
        reg.gauge("cache.tenant.budget_bytes", &[("dataset", "a")]).set(1 << 20);
        reg.counter("server.tenant.throttled", &[("dataset", "a")]).add(3);
        reg.counter("cache.file_reads", &[("dataset", "b")]).add(2);
        reg.counter("server.reads", &[]).add(99);
        reg.event("cache.rebalance", &[("dataset", "a"), ("moved", "5")]);
        reg.event("cache.rebalance", &[("dataset", "b"), ("moved", "1")]);
        let snap = reg.snapshot();

        let only_a = filter_stats(&snap, "a");
        assert_eq!(only_a.counter("cache.file_reads{dataset=a}"), 10);
        assert_eq!(only_a.counter("cache.file_reads{dataset=b}"), 0);
        assert_eq!(only_a.counter("server.reads"), 0, "unlabelled metrics are dropped");
        assert_eq!(only_a.gauge("cache.tenant.budget_bytes{dataset=a}"), 1 << 20);
        assert_eq!(only_a.events.len(), 1);

        let rows = tenant_stats(&snap);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].dataset, "a");
        assert_eq!(rows[0].file_reads, 10);
        assert_eq!(rows[0].chunk_hits, 8);
        assert_eq!(rows[0].bytes_loaded, 4096);
        assert_eq!(rows[0].budget_bytes, 1 << 20);
        assert_eq!(rows[0].throttled, 3);
        assert!((rows[0].hit_rate() - 0.8).abs() < 1e-9);
        assert_eq!(rows[1].dataset, "b");
        assert_eq!(rows[1].hit_rate(), 0.0);
    }

    #[test]
    fn filter_stats_slices_histograms_and_drops_no_match() {
        let reg = diesel_obs::Registry::new(Arc::new(diesel_util::MockClock::new()));
        reg.histogram("server.read_latency", &[("dataset", "a")]).record_ns(1_000);
        reg.histogram("server.read_latency", &[("dataset", "a")]).record_ns(3_000);
        reg.histogram("server.read_latency", &[("dataset", "b")]).record_ns(9_000);
        reg.histogram("exec.queue_wait", &[]).record_ns(50);
        let snap = reg.snapshot();

        let only_a = filter_stats(&snap, "a");
        assert_eq!(only_a.histograms.len(), 1, "only tenant a's latency series survives");
        let h = only_a.histogram("server.read_latency{dataset=a}").expect("a's histogram kept");
        assert_eq!(h.count(), 2);
        assert!(only_a.histogram("server.read_latency{dataset=b}").is_none());
        assert!(only_a.histogram("exec.queue_wait").is_none(), "unlabelled series dropped");

        // A dataset that appears nowhere filters to an empty view — not
        // an error, and not someone else's metrics.
        let nothing = filter_stats(&snap, "ghost");
        assert!(nothing.counters.is_empty());
        assert!(nothing.gauges.is_empty());
        assert!(nothing.histograms.is_empty());
        assert!(nothing.events.is_empty());
    }

    #[test]
    fn filter_stats_and_prom_renderer_agree_on_label_escaping() {
        // The dataset label travels two paths out of a snapshot: the
        // dlcmd slice (raw metric ids) and the Prometheus renderer
        // (escaped label values). A hostile-but-representable dataset
        // name (quotes, backslashes — `,`/`=` can't appear in a metric
        // id's label values) must round-trip identically through both.
        let hostile = "train\"v2\\final";
        let reg = diesel_obs::Registry::new(Arc::new(diesel_util::MockClock::new()));
        reg.counter("cache.file_reads", &[("dataset", hostile)]).add(7);
        reg.counter("cache.file_reads", &[("dataset", "other")]).add(3);
        let snap = reg.snapshot();

        // dlcmd path: the raw id keeps the literal value.
        let sliced = filter_stats(&snap, hostile);
        assert_eq!(sliced.counters.len(), 1);
        assert_eq!(sliced.counter(&format!("cache.file_reads{{dataset={hostile}}}")), 7);

        // Prometheus path: render the slice, parse it back, and recover
        // the identical literal value through the escape rules.
        let text = diesel_obs::render_prometheus(&sliced);
        let samples = diesel_obs::parse_prometheus(&text).expect("renderer output parses");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "cache_file_reads");
        assert_eq!(samples[0].label("dataset"), Some(hostile));
        assert_eq!(samples[0].value, 7.0);
    }

    #[test]
    fn top_rows_and_renderers() {
        use diesel_obs::{FlightRecorder, RecorderConfig, SloMonitor, SloTarget};
        let clock = Arc::new(diesel_util::MockClock::new());
        let reg = Arc::new(diesel_obs::Registry::new(clock.clone()));
        let rec = Arc::new(FlightRecorder::new(
            reg.clone(),
            RecorderConfig { interval_ns: 1_000_000_000, ..Default::default() },
        ));
        let monitor = SloMonitor::with_windows(
            reg.clone(),
            rec.clone(),
            vec![
                SloTarget { min_hit_rate: Some(0.5), ..SloTarget::new("hot") },
                SloTarget::new("cold"),
            ],
            2_000_000_000,
            4_000_000_000,
        );
        rec.tick();
        for _ in 0..20 {
            reg.counter("server.file_reads", &[("dataset", "hot")]).inc();
            reg.histogram("server.read_latency", &[("dataset", "hot")]).record_ns(2_000_000);
        }
        reg.counter("cache.file_reads", &[("dataset", "hot")]).add(20);
        reg.counter("cache.chunk_hits", &[("dataset", "hot")]).add(15);
        reg.counter("server.file_reads", &[("dataset", "cold")]).inc();
        clock.advance(1_000_000_000);
        rec.tick();
        let reports = monitor.evaluate();

        let rows = top_rows(&rec, &reports, 2_000_000_000);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].dataset, "hot", "busiest tenant sorts first");
        assert!(rows[0].qps > rows[1].qps);
        assert!((rows[0].hit_rate - 0.75).abs() < 1e-9);
        assert_eq!(
            rows[0].p99_ns,
            rec.percentile_over("server.read_latency{dataset=hot}", 0.99, 2_000_000_000,)
        );
        assert!(rows[0].healthy && rows[1].healthy);

        let table = render_top(&rows);
        assert!(table.contains("DATASET"));
        assert!(table.contains("hot"));
        assert!(table.contains("ok"));

        let slo_text = render_slo(reports.iter().find(|r| r.dataset == "hot").unwrap());
        assert!(slo_text.starts_with("dataset hot: healthy"));
        assert!(slo_text.contains("hit_rate"));
    }

    #[test]
    fn import_missing_directory_errors() {
        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect(server, "ds");
        assert!(import_directory(&client, "/definitely/not/here").is_err());
    }
}
