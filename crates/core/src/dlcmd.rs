//! DLCMD — the dataset management tool (§5: "a separate command-line
//! tool (DLCMD, similar to s3cmd in Amazon S3) is provided to write and
//! manage the datasets in DIESEL").
//!
//! These functions are the tool's verbs; the `quickstart` example wires
//! them to a binary.

use std::path::Path;
use std::sync::Arc;

use diesel_kv::KvStore;
use diesel_store::ObjectStore;

use crate::client::DieselClient;
use crate::server::DieselServer;
use crate::{DieselError, Result};

/// Outcome of an import.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Files uploaded.
    pub files: u64,
    /// Bytes uploaded.
    pub bytes: u64,
}

/// `dlcmd put -r <dir> diesel://<dataset>/` — walk a local directory
/// tree and upload every regular file, preserving relative paths.
pub fn import_directory<K: KvStore + 'static, S: ObjectStore + 'static>(
    client: &DieselClient<K, S>,
    root: impl AsRef<Path>,
) -> Result<ImportReport> {
    let root = root.as_ref();
    let mut report = ImportReport::default();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| DieselError::Client(format!("read_dir {dir:?}: {e}")))?;
        // Sort for deterministic chunk packing.
        let mut entries: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.is_file() {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| DieselError::Client(e.to_string()))?
                    .to_string_lossy()
                    .replace('\\', "/");
                let data = std::fs::read(&path)
                    .map_err(|e| DieselError::Client(format!("read {path:?}: {e}")))?;
                report.bytes += data.len() as u64;
                report.files += 1;
                client.put(&rel, &data)?;
            }
        }
    }
    client.flush()?;
    Ok(report)
}

/// `dlcmd get -r diesel://<dataset>/ <dir>` — download every file of the
/// dataset into a local directory tree.
pub fn export_directory<K: KvStore + 'static, S: ObjectStore + 'static>(
    client: &DieselClient<K, S>,
    dest: impl AsRef<Path>,
) -> Result<u64> {
    let dest = dest.as_ref();
    let mut count = 0;
    for path in client.file_list()? {
        let data = client.get(&path)?;
        let target = dest.join(&path);
        if let Some(parent) = target.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| DieselError::Client(format!("mkdir {parent:?}: {e}")))?;
        }
        std::fs::write(&target, &data)
            .map_err(|e| DieselError::Client(format!("write {target:?}: {e}")))?;
        count += 1;
    }
    Ok(count)
}

/// `dlcmd purge diesel://<dataset>` — compact chunks with deletion holes.
pub fn purge<K: KvStore, S: ObjectStore>(
    server: &DieselServer<K, S>,
    dataset: &str,
    now_ms: u64,
) -> Result<crate::server::PurgeReport> {
    server.purge_dataset(dataset, now_ms)
}

/// `dlcmd du diesel://<dataset>` — dataset usage summary.
pub fn usage<K: KvStore, S: ObjectStore>(
    server: &Arc<DieselServer<K, S>>,
    dataset: &str,
) -> Result<(u64, u64, u64)> {
    let rec = server.meta().dataset_record(dataset)?;
    Ok((rec.chunk_count, rec.file_count, rec.total_bytes))
}

/// The `dataset` label of a canonical metric id (`name{…,dataset=x,…}`),
/// if present.
pub fn dataset_label(id: &str) -> Option<&str> {
    let open = id.find('{')?;
    let inner = id.get(open + 1..)?.strip_suffix('}')?;
    inner.split(',').find_map(|kv| kv.strip_prefix("dataset="))
}

/// `dlcmd stats --dataset <name>` — restrict a stats snapshot to the
/// metrics and events carrying `{dataset=<name>}`. Unlabelled
/// (cluster-wide) metrics are dropped, so the view shows exactly one
/// tenant's slice.
pub fn filter_stats(
    snap: &diesel_obs::RegistrySnapshot,
    dataset: &str,
) -> diesel_obs::RegistrySnapshot {
    let keep = |id: &str| dataset_label(id) == Some(dataset);
    let mut out = diesel_obs::RegistrySnapshot {
        counters: snap
            .counters
            .iter()
            .filter(|(id, _)| keep(id))
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        gauges: snap
            .gauges
            .iter()
            .filter(|(id, _)| keep(id))
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .filter(|(id, _)| keep(id))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        events: Vec::new(),
        dropped_events: snap.dropped_events,
    };
    out.events = snap
        .events
        .iter()
        .filter(|e| e.kv.iter().any(|(k, v)| k == "dataset" && v == dataset))
        .cloned()
        .collect();
    out
}

/// One tenant's line in `dlcmd tenants`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStatsRow {
    /// Tenant name (the dataset).
    pub dataset: String,
    /// Per-node cache byte budget (`cache.tenant.budget_bytes`).
    pub budget_bytes: u64,
    /// Bytes loaded into the tenant's cache so far.
    pub bytes_loaded: u64,
    /// File reads served through the tenant's cache.
    pub file_reads: u64,
    /// Reads satisfied by a resident chunk.
    pub chunk_hits: u64,
    /// Requests admitted by the server's admission controller.
    pub admitted: u64,
    /// Requests rejected with `Throttled`.
    pub throttled: u64,
}

impl TenantStatsRow {
    /// Cache hit rate over file reads, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.file_reads == 0 {
            0.0
        } else {
            self.chunk_hits as f64 / self.file_reads as f64
        }
    }
}

/// `dlcmd tenants` — collect every dataset that appears as a
/// `{dataset=…}` label anywhere in the snapshot and summarise its
/// cache footprint, hit rate and throttle counts.
pub fn tenant_stats(snap: &diesel_obs::RegistrySnapshot) -> Vec<TenantStatsRow> {
    let mut names: Vec<String> = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .filter_map(|id| dataset_label(id))
        .map(|d| d.to_owned())
        .collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|dataset| {
            let c = |name: &str| snap.counter(&format!("{name}{{dataset={dataset}}}"));
            let g = |name: &str| snap.gauge(&format!("{name}{{dataset={dataset}}}"));
            TenantStatsRow {
                budget_bytes: g("cache.tenant.budget_bytes"),
                bytes_loaded: c("cache.bytes_loaded"),
                file_reads: c("cache.file_reads"),
                chunk_hits: c("cache.chunk_hits"),
                admitted: c("server.tenant.admitted"),
                throttled: c("server.tenant.throttled"),
                dataset,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientConfig;
    use diesel_chunk::ChunkBuilderConfig;
    use diesel_kv::ShardedKv;
    use diesel_store::MemObjectStore;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dlcmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn import_export_roundtrip() {
        // Build a little tree on disk.
        let src = tempdir("src");
        std::fs::create_dir_all(src.join("a/b")).unwrap();
        std::fs::write(src.join("top.bin"), b"top").unwrap();
        std::fs::write(src.join("a/one.bin"), vec![1u8; 500]).unwrap();
        std::fs::write(src.join("a/b/two.bin"), vec![2u8; 999]).unwrap();

        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect_with(
            server.clone(),
            "ds",
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 1024, ..Default::default() },
            },
        )
        .with_deterministic_identity(1, 1, 100);

        let report = import_directory(&client, &src).unwrap();
        assert_eq!(report.files, 3);
        assert_eq!(report.bytes, 3 + 500 + 999);
        let (chunks, files, bytes) = usage(&server, "ds").unwrap();
        assert_eq!(files, 3);
        assert_eq!(bytes, 1502);
        assert!(chunks >= 2, "1 KB chunks force a split");

        client.download_meta().unwrap();
        assert_eq!(client.get("a/b/two.bin").unwrap().as_ref(), &vec![2u8; 999][..]);

        let dst = tempdir("dst");
        let n = export_directory(&client, &dst).unwrap();
        assert_eq!(n, 3);
        assert_eq!(std::fs::read(dst.join("top.bin")).unwrap(), b"top");
        assert_eq!(std::fs::read(dst.join("a/one.bin")).unwrap(), vec![1u8; 500]);

        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&dst);
    }

    #[test]
    fn dataset_label_parses_canonical_ids() {
        assert_eq!(dataset_label("cache.chunk_hits{dataset=imagenet}"), Some("imagenet"));
        assert_eq!(dataset_label("kv.gets{dataset=a,instance=3}"), Some("a"));
        assert_eq!(dataset_label("server.reads"), None);
        assert_eq!(dataset_label("kv.gets{instance=3}"), None);
    }

    #[test]
    fn filter_and_tenant_stats_slice_by_dataset() {
        let reg = diesel_obs::Registry::new(Arc::new(diesel_util::MockClock::new()));
        reg.counter("cache.file_reads", &[("dataset", "a")]).add(10);
        reg.counter("cache.chunk_hits", &[("dataset", "a")]).add(8);
        reg.counter("cache.bytes_loaded", &[("dataset", "a")]).add(4096);
        reg.gauge("cache.tenant.budget_bytes", &[("dataset", "a")]).set(1 << 20);
        reg.counter("server.tenant.throttled", &[("dataset", "a")]).add(3);
        reg.counter("cache.file_reads", &[("dataset", "b")]).add(2);
        reg.counter("server.reads", &[]).add(99);
        reg.event("cache.rebalance", &[("dataset", "a"), ("moved", "5")]);
        reg.event("cache.rebalance", &[("dataset", "b"), ("moved", "1")]);
        let snap = reg.snapshot();

        let only_a = filter_stats(&snap, "a");
        assert_eq!(only_a.counter("cache.file_reads{dataset=a}"), 10);
        assert_eq!(only_a.counter("cache.file_reads{dataset=b}"), 0);
        assert_eq!(only_a.counter("server.reads"), 0, "unlabelled metrics are dropped");
        assert_eq!(only_a.gauge("cache.tenant.budget_bytes{dataset=a}"), 1 << 20);
        assert_eq!(only_a.events.len(), 1);

        let rows = tenant_stats(&snap);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].dataset, "a");
        assert_eq!(rows[0].file_reads, 10);
        assert_eq!(rows[0].chunk_hits, 8);
        assert_eq!(rows[0].bytes_loaded, 4096);
        assert_eq!(rows[0].budget_bytes, 1 << 20);
        assert_eq!(rows[0].throttled, 3);
        assert!((rows[0].hit_rate() - 0.8).abs() < 1e-9);
        assert_eq!(rows[1].dataset, "b");
        assert_eq!(rows[1].hit_rate(), 0.0);
    }

    #[test]
    fn import_missing_directory_errors() {
        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect(server, "ds");
        assert!(import_directory(&client, "/definitely/not/here").is_err());
    }
}
