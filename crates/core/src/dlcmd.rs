//! DLCMD — the dataset management tool (§5: "a separate command-line
//! tool (DLCMD, similar to s3cmd in Amazon S3) is provided to write and
//! manage the datasets in DIESEL").
//!
//! These functions are the tool's verbs; the `quickstart` example wires
//! them to a binary.

use std::path::Path;
use std::sync::Arc;

use diesel_kv::KvStore;
use diesel_store::ObjectStore;

use crate::client::DieselClient;
use crate::server::DieselServer;
use crate::{DieselError, Result};

/// Outcome of an import.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Files uploaded.
    pub files: u64,
    /// Bytes uploaded.
    pub bytes: u64,
}

/// `dlcmd put -r <dir> diesel://<dataset>/` — walk a local directory
/// tree and upload every regular file, preserving relative paths.
pub fn import_directory<K: KvStore + 'static, S: ObjectStore + 'static>(
    client: &DieselClient<K, S>,
    root: impl AsRef<Path>,
) -> Result<ImportReport> {
    let root = root.as_ref();
    let mut report = ImportReport::default();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| DieselError::Client(format!("read_dir {dir:?}: {e}")))?;
        // Sort for deterministic chunk packing.
        let mut entries: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.is_file() {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| DieselError::Client(e.to_string()))?
                    .to_string_lossy()
                    .replace('\\', "/");
                let data = std::fs::read(&path)
                    .map_err(|e| DieselError::Client(format!("read {path:?}: {e}")))?;
                report.bytes += data.len() as u64;
                report.files += 1;
                client.put(&rel, &data)?;
            }
        }
    }
    client.flush()?;
    Ok(report)
}

/// `dlcmd get -r diesel://<dataset>/ <dir>` — download every file of the
/// dataset into a local directory tree.
pub fn export_directory<K: KvStore + 'static, S: ObjectStore + 'static>(
    client: &DieselClient<K, S>,
    dest: impl AsRef<Path>,
) -> Result<u64> {
    let dest = dest.as_ref();
    let mut count = 0;
    for path in client.file_list()? {
        let data = client.get(&path)?;
        let target = dest.join(&path);
        if let Some(parent) = target.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| DieselError::Client(format!("mkdir {parent:?}: {e}")))?;
        }
        std::fs::write(&target, &data)
            .map_err(|e| DieselError::Client(format!("write {target:?}: {e}")))?;
        count += 1;
    }
    Ok(count)
}

/// `dlcmd purge diesel://<dataset>` — compact chunks with deletion holes.
pub fn purge<K: KvStore, S: ObjectStore>(
    server: &DieselServer<K, S>,
    dataset: &str,
    now_ms: u64,
) -> Result<crate::server::PurgeReport> {
    server.purge_dataset(dataset, now_ms)
}

/// `dlcmd du diesel://<dataset>` — dataset usage summary.
pub fn usage<K: KvStore, S: ObjectStore>(
    server: &Arc<DieselServer<K, S>>,
    dataset: &str,
) -> Result<(u64, u64, u64)> {
    let rec = server.meta().dataset_record(dataset)?;
    Ok((rec.chunk_count, rec.file_count, rec.total_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientConfig;
    use diesel_chunk::ChunkBuilderConfig;
    use diesel_kv::ShardedKv;
    use diesel_store::MemObjectStore;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dlcmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn import_export_roundtrip() {
        // Build a little tree on disk.
        let src = tempdir("src");
        std::fs::create_dir_all(src.join("a/b")).unwrap();
        std::fs::write(src.join("top.bin"), b"top").unwrap();
        std::fs::write(src.join("a/one.bin"), vec![1u8; 500]).unwrap();
        std::fs::write(src.join("a/b/two.bin"), vec![2u8; 999]).unwrap();

        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect_with(
            server.clone(),
            "ds",
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 1024, ..Default::default() },
            },
        )
        .with_deterministic_identity(1, 1, 100);

        let report = import_directory(&client, &src).unwrap();
        assert_eq!(report.files, 3);
        assert_eq!(report.bytes, 3 + 500 + 999);
        let (chunks, files, bytes) = usage(&server, "ds").unwrap();
        assert_eq!(files, 3);
        assert_eq!(bytes, 1502);
        assert!(chunks >= 2, "1 KB chunks force a split");

        client.download_meta().unwrap();
        assert_eq!(client.get("a/b/two.bin").unwrap().as_ref(), &vec![2u8; 999][..]);

        let dst = tempdir("dst");
        let n = export_directory(&client, &dst).unwrap();
        assert_eq!(n, 3);
        assert_eq!(std::fs::read(dst.join("top.bin")).unwrap(), b"top");
        assert_eq!(std::fs::read(dst.join("a/one.bin")).unwrap(), vec![1u8; 500]);

        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&dst);
    }

    #[test]
    fn import_missing_directory_errors() {
        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect(server, "ds");
        assert!(import_directory(&client, "/definitely/not/here").is_err());
    }
}
