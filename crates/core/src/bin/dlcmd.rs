//! `dlcmd` — DIESEL's dataset management CLI (§5: "similar to s3cmd in
//! Amazon S3").
//!
//! Datasets live as self-contained chunks in a directory-backed object
//! store, so each invocation starts a fresh in-memory metadata database
//! and rebuilds it by scanning chunk headers (§4.1.2) — the CLI *is* a
//! demonstration of DIESEL's recovery-first metadata design.
//!
//! ```text
//! dlcmd --store /data/diesel put   ./imagenet  imagenet-1k
//! dlcmd --store /data/diesel ls    imagenet-1k train/cat
//! dlcmd --store /data/diesel stat  imagenet-1k train/cat/001.jpg
//! dlcmd --store /data/diesel cat   imagenet-1k train/cat/001.jpg > out.jpg
//! dlcmd --store /data/diesel get   imagenet-1k ./restore
//! dlcmd --store /data/diesel du    imagenet-1k
//! dlcmd --store /data/diesel rm    imagenet-1k train/cat/001.jpg
//! dlcmd --store /data/diesel purge imagenet-1k
//! dlcmd --store /data/diesel snapshot imagenet-1k ./imagenet.snap
//! dlcmd --store /data/diesel datasets
//! dlcmd --store /data/diesel stats
//! dlcmd --store /data/diesel trace imagenet-1k ./trace.json
//! ```

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

use diesel_core::dlcmd;
use diesel_core::{DieselClient, DieselServer, ServerRequest};
use diesel_kv::ShardedKv;
use diesel_meta::EntryKind;
use diesel_store::{DirObjectStore, ObjectStore};

type Server = DieselServer<ShardedKv, DirObjectStore>;

fn usage() -> ExitCode {
    eprintln!(
        "usage: dlcmd --store <dir> <command> [args]\n\
         commands:\n  \
           put <local-dir> <dataset>      import a directory tree\n  \
           get <dataset> <local-dir>      export the dataset\n  \
           ls <dataset> [path]            list a directory\n  \
           stat <dataset> <path>          show file metadata\n  \
           cat <dataset> <path>           print file contents to stdout\n  \
           rm <dataset> <path>            delete a file\n  \
           du <dataset>                   dataset usage summary\n  \
           purge <dataset>                compact chunks with holes\n  \
           snapshot <dataset> <out-file>  save the metadata snapshot\n  \
           datasets                       list datasets in the store\n  \
           stats [--dataset <name>]       dump server observability metrics,\n  \
                                          optionally only one tenant's slice\n  \
           tenants                        per-tenant cache bytes, hit rate\n  \
                                          and throttle counts\n  \
           trace <dataset> [out.json]     trace a full read sweep; print the\n  \
                                          critical-path summary and optionally\n  \
                                          write chrome-trace JSON\n  \
           scrape [--prom <out.txt>]      dump every metric in Prometheus text\n  \
                                          exposition format (stdout or a file)\n  \
           slo <dataset>                  sweep the dataset's reads, then print\n  \
                                          each objective's burn rates and state\n  \
           top                            per-tenant QPS, p99 read latency, hit\n  \
                                          rate, worst burn rate and SLO health"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Cli::Usage) => usage(),
        Err(Cli::Failed(msg)) => {
            eprintln!("dlcmd: {msg}");
            ExitCode::FAILURE
        }
    }
}

enum Cli {
    Usage,
    Failed(String),
}

impl<E: std::fmt::Display> From<E> for Cli {
    fn from(e: E) -> Self {
        Cli::Failed(e.to_string())
    }
}

/// Default per-tenant targets for the CLI's offline evaluation: a local
/// directory store should serve p99 well under 50 ms and essentially
/// error-free. Hit-rate/throttle objectives need a live cache and
/// admission controller, which a per-invocation CLI doesn't run.
fn cli_slo_target(dataset: &str) -> diesel_core::SloTarget {
    diesel_core::SloTarget {
        read_p99_ns: Some(50_000_000),
        max_error_ratio: Some(0.01),
        ..diesel_core::SloTarget::new(dataset)
    }
}

/// Build a telemetry-enabled server over the store, sweep every file of
/// the given datasets through the wire read path (so `server.read_latency`
/// and the error counters populate), and evaluate the SLO monitor over
/// the recording. The recorder is ticked manually around the sweep — a
/// CLI invocation is far shorter than the background driver's cadence.
fn telemetry_sweep(
    store: &Arc<DirObjectStore>,
    datasets: &[String],
) -> Result<(Arc<diesel_core::FlightRecorder>, Vec<diesel_core::SloReport>, u64), Cli> {
    let server = DieselServer::new(Arc::new(ShardedKv::new()), store.clone());
    let server: Arc<Server> =
        Arc::new(server.with_slo_targets(datasets.iter().map(|d| cli_slo_target(d)).collect()));
    for ds in datasets {
        server.recover_metadata_full(ds).map_err(Cli::from)?;
    }
    let rec = server.recorder().expect("with_slo_targets attaches a recorder").clone();
    let monitor = server.slo_monitor().expect("with_slo_targets installs a monitor").clone();
    rec.tick(); // baseline frame
    let t0 = rec.latest_t_ns().unwrap_or(0);
    for ds in datasets {
        let client = DieselClient::connect(server.clone(), ds);
        client.download_meta().map_err(Cli::from)?;
        for f in client.file_list().map_err(Cli::from)? {
            client.get(&f).map_err(Cli::from)?;
        }
    }
    rec.tick(); // sweep delta frame
    let t1 = rec.latest_t_ns().unwrap_or(t0);
    let reports = monitor.evaluate();
    // Window = the sweep's real duration, so `top`'s QPS is the sweep's
    // actual read throughput rather than a dilution over a fixed window.
    Ok((rec, reports, t1.saturating_sub(t0).max(1)))
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn run(args: &[String]) -> Result<(), Cli> {
    let mut it = args.iter();
    let mut store_dir: Option<&str> = None;
    let mut rest: Vec<&str> = Vec::new();
    while let Some(a) = it.next() {
        if a == "--store" {
            store_dir = Some(it.next().ok_or(Cli::Usage)?.as_str());
        } else if a == "--help" || a == "-h" {
            return Err(Cli::Usage);
        } else {
            rest.push(a.as_str());
        }
    }
    let Some(store_dir) = store_dir else { return Err(Cli::Usage) };
    let (cmd, rest) = rest.split_first().ok_or(Cli::Usage)?;

    let store = Arc::new(DirObjectStore::open(store_dir).map_err(Cli::from)?);
    let server: Arc<Server> =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store.clone()));

    // Discover datasets from chunk keys (`<dataset>/<chunk-id>`), then
    // rebuild the metadata database from the self-contained chunks.
    let mut datasets: Vec<String> = store
        .list_prefix("")
        .into_iter()
        .filter_map(|k| k.split_once('/').map(|(d, _)| d.to_owned()))
        .collect();
    datasets.sort();
    datasets.dedup();
    for ds in &datasets {
        server.recover_metadata_full(ds).map_err(Cli::from)?;
    }

    match (*cmd, rest) {
        ("datasets", []) => {
            for ds in &datasets {
                let (chunks, files, bytes) = dlcmd::usage(&server, ds).map_err(Cli::from)?;
                println!("{ds}\t{chunks} chunks\t{files} files\t{bytes} bytes");
            }
            Ok(())
        }
        ("put", [local, dataset]) => {
            let client = DieselClient::connect(server.clone(), *dataset);
            let report = dlcmd::import_directory(&client, local).map_err(Cli::from)?;
            println!("imported {} files / {} bytes into {dataset}", report.files, report.bytes);
            Ok(())
        }
        ("get", [dataset, local]) => {
            let client = DieselClient::connect(server.clone(), *dataset);
            client.download_meta().map_err(Cli::from)?;
            let n = dlcmd::export_directory(&client, local).map_err(Cli::from)?;
            println!("exported {n} files to {local}");
            Ok(())
        }
        ("ls", [dataset]) | ("ls", [dataset, _]) => {
            let path = rest.get(1).copied().unwrap_or("");
            for e in server.readdir(dataset, path).map_err(Cli::from)? {
                match e.kind {
                    EntryKind::Dir => println!("d {:>10}  {}/", "-", e.name),
                    EntryKind::File => println!("f {:>10}  {}", e.size, e.name),
                }
            }
            Ok(())
        }
        ("stat", [dataset, path]) => {
            let m = server.stat(dataset, path).map_err(Cli::from)?;
            println!("path:     {path}");
            println!("size:     {} bytes", m.length);
            println!("chunk:    {}", m.chunk);
            println!("offset:   {}", m.offset);
            println!("uploaded: {} (unix ms)", m.uploaded_ms);
            Ok(())
        }
        ("cat", [dataset, path]) => {
            let data = server.read_file(dataset, path).map_err(Cli::from)?;
            std::io::stdout().write_all(&data).map_err(Cli::from)?;
            Ok(())
        }
        ("rm", [dataset, path]) => {
            server.delete_file(dataset, path, now_ms()).map_err(Cli::from)?;
            println!("deleted {path} (run `purge` to reclaim space)");
            Ok(())
        }
        ("du", [dataset]) => {
            let (chunks, files, bytes) = dlcmd::usage(&server, dataset).map_err(Cli::from)?;
            println!("{dataset}: {files} files, {bytes} bytes in {chunks} chunks");
            println!("stored: {} bytes on disk", store.total_bytes());
            Ok(())
        }
        ("purge", [dataset]) => {
            let r = server.purge_dataset(dataset, now_ms()).map_err(Cli::from)?;
            println!(
                "compacted {} chunks, removed {}, reclaimed {} bytes",
                r.chunks_compacted, r.chunks_removed, r.bytes_reclaimed
            );
            Ok(())
        }
        ("stats", []) => {
            // Go through the wire request rather than reading the
            // registry directly: this is exactly what a remote
            // `ServerRequest::Stats` sees, with KV/store backend metrics
            // merged into one consistent snapshot.
            let snap = server.handle(ServerRequest::Stats).map_err(Cli::from)?.into_stats()?;
            print!("{}", snap.render());
            Ok(())
        }
        ("stats", ["--dataset", ds]) => {
            let snap = server.handle(ServerRequest::Stats).map_err(Cli::from)?.into_stats()?;
            print!("{}", dlcmd::filter_stats(&snap, ds).render());
            Ok(())
        }
        ("tenants", []) => {
            let snap = server.handle(ServerRequest::Stats).map_err(Cli::from)?.into_stats()?;
            let rows = dlcmd::tenant_stats(&snap);
            println!(
                "{:<24} {:>14} {:>14} {:>10} {:>9} {:>9} {:>9}",
                "dataset",
                "budget_bytes",
                "bytes_loaded",
                "reads",
                "hit_rate",
                "admitted",
                "throttled"
            );
            for r in rows {
                println!(
                    "{:<24} {:>14} {:>14} {:>10} {:>8.1}% {:>9} {:>9}",
                    r.dataset,
                    r.budget_bytes,
                    r.bytes_loaded,
                    r.file_reads,
                    r.hit_rate() * 100.0,
                    r.admitted,
                    r.throttled
                );
            }
            Ok(())
        }
        ("trace", [dataset]) | ("trace", [dataset, _]) => {
            let out = rest.get(1).copied();
            // A fresh server with an always-on tracer shared with the
            // client: the sweep's spans — client, server, kv, store —
            // all land in one buffer, drained over the wire exactly
            // like a remote `ServerRequest::Trace` would.
            let traced = DieselServer::new(Arc::new(ShardedKv::new()), store.clone());
            let tracer = diesel_obs::Tracer::enabled(traced.registry());
            let traced: Arc<Server> = Arc::new(traced.with_tracer(tracer.clone()));
            traced.recover_metadata_full(dataset).map_err(Cli::from)?;
            let client =
                DieselClient::connect(traced.clone(), *dataset).with_tracer(tracer.clone());
            client.download_meta().map_err(Cli::from)?;
            tracer.drain(); // trace only the read sweep
            for f in client.file_list().map_err(Cli::from)? {
                client.get(&f).map_err(Cli::from)?;
            }
            let spans = client.drain_trace().map_err(Cli::from)?;
            if let Some(out) = out {
                std::fs::write(out, diesel_obs::chrome_trace_json(&spans)).map_err(Cli::from)?;
                println!("wrote {} spans to {out}", spans.len());
            }
            print!("{}", diesel_obs::critical_path(&spans));
            Ok(())
        }
        ("scrape", []) | ("scrape", ["--prom", _]) => {
            // Same wire request external monitoring would issue; the
            // reply is already rendered text, so the CLI stays dumb.
            let text = server.handle(ServerRequest::Scrape).map_err(Cli::from)?.into_text()?;
            if let ["--prom", out] = rest {
                std::fs::write(out, &text).map_err(Cli::from)?;
                println!("wrote {} bytes of Prometheus exposition to {out}", text.len());
            } else {
                print!("{text}");
            }
            Ok(())
        }
        ("slo", [dataset]) => {
            if !datasets.iter().any(|d| d == dataset) {
                return Err(Cli::Failed(format!("no such dataset: {dataset}")));
            }
            let (_, reports, _) =
                telemetry_sweep(&store, std::slice::from_ref(&dataset.to_string()))?;
            let report = reports
                .iter()
                .find(|r| r.dataset == *dataset)
                .ok_or_else(|| Cli::Failed("no SLO report produced".into()))?;
            print!("{}", dlcmd::render_slo(report));
            Ok(())
        }
        ("top", []) => {
            let (rec, reports, window_ns) = telemetry_sweep(&store, &datasets)?;
            print!("{}", dlcmd::render_top(&dlcmd::top_rows(&rec, &reports, window_ns)));
            Ok(())
        }
        ("snapshot", [dataset, out]) => {
            let snap = server.build_snapshot(dataset).map_err(Cli::from)?;
            snap.save_to(out).map_err(Cli::from)?;
            println!(
                "snapshot of {dataset}: {} chunks, {} files, {} bytes -> {out}",
                snap.chunks.len(),
                snap.files.len(),
                snap.encoded_size()
            );
            Ok(())
        }
        _ => Err(Cli::Usage),
    }
}
