//! The FUSE-style POSIX facade (DIESEL-FUSE).
//!
//! The real system mounts libDIESEL through FUSE so unmodified training
//! frameworks read files with plain `open`/`read` (§5). Two properties of
//! that path matter for the evaluation and are modeled here:
//!
//! * **Kernel request splitting** — the kernel forwards reads to
//!   userspace in bounded requests (128 KiB max by default), so one
//!   `read()` of a large file becomes several FUSE round trips.
//! * **Per-request overhead** — each round trip costs two context
//!   switches; this is why DIESEL-FUSE reaches only ~60–80 % of
//!   DIESEL-API in Figs. 11a/12. [`FuseStats`] counts the requests so
//!   the benchmark harness can charge the measured per-crossing cost.
//!
//! Functionally this is a real VFS: open-file descriptors, positional
//! reads, `readdir`, `stat`, and the shuffle-list helper file that lets
//! FUSE users retrieve the chunk-wise epoch order (§5 "DIESEL provides
//! helper functions to let the user read the generated file list").

use diesel_util::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diesel_kv::KvStore;
use diesel_meta::DirEntry;
use diesel_store::{Bytes, ObjectStore};

use crate::client::DieselClient;
use crate::{DieselError, Result};

/// FUSE mount parameters.
#[derive(Debug, Clone)]
pub struct FuseConfig {
    /// Maximum bytes the kernel passes to userspace per read request
    /// (Linux default: 128 KiB).
    pub max_read: usize,
}

impl Default for FuseConfig {
    fn default() -> Self {
        FuseConfig { max_read: 128 << 10 }
    }
}

/// Counters of kernel↔userspace crossings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// FUSE read requests processed.
    pub read_requests: u64,
    /// Metadata requests (lookup/getattr/readdir).
    pub meta_requests: u64,
    /// open() calls.
    pub opens: u64,
}

struct OpenFile {
    path: String,
    /// Whole-file bytes, fetched on first read (the client caches chunks
    /// underneath, so this is a slice of cached memory in the hot path).
    content: Option<Bytes>,
}

/// A mounted DIESEL-FUSE file system over one client.
pub struct FuseMount<K, S> {
    client: Arc<DieselClient<K, S>>,
    config: FuseConfig,
    next_fd: AtomicU64,
    open_files: Mutex<HashMap<u64, OpenFile>>,
    read_requests: AtomicU64,
    meta_requests: AtomicU64,
    opens: AtomicU64,
}

impl<K: KvStore + 'static, S: ObjectStore + 'static> FuseMount<K, S> {
    /// Mount over `client`.
    pub fn mount(client: Arc<DieselClient<K, S>>, config: FuseConfig) -> Self {
        FuseMount {
            client,
            config,
            next_fd: AtomicU64::new(3),
            open_files: Mutex::named("core.fuse_open", HashMap::new()),
            read_requests: AtomicU64::new(0),
            meta_requests: AtomicU64::new(0),
            opens: AtomicU64::new(0),
        }
    }

    /// The wrapped client.
    pub fn client(&self) -> &Arc<DieselClient<K, S>> {
        &self.client
    }

    /// Crossing counters.
    pub fn stats(&self) -> FuseStats {
        FuseStats {
            read_requests: self.read_requests.load(Ordering::Relaxed),
            meta_requests: self.meta_requests.load(Ordering::Relaxed),
            opens: self.opens.load(Ordering::Relaxed),
        }
    }

    /// `open(path)` → fd.
    pub fn open(&self, path: &str) -> Result<u64> {
        self.opens.fetch_add(1, Ordering::Relaxed);
        // The lookup crossing; fail fast on missing files, like a kernel
        // lookup would.
        self.meta_requests.fetch_add(1, Ordering::Relaxed);
        self.client.stat(path)?;
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.open_files.lock().insert(fd, OpenFile { path: path.to_owned(), content: None });
        Ok(fd)
    }

    /// `pread(fd, offset, len)` — split into kernel-sized FUSE requests.
    pub fn read(&self, fd: u64, offset: u64, len: usize) -> Result<Bytes> {
        // Fetch (or reuse) the file content under the open-file entry.
        let content = {
            let mut files = self.open_files.lock();
            let of =
                files.get_mut(&fd).ok_or_else(|| DieselError::Client(format!("bad fd {fd}")))?;
            match &of.content {
                Some(cached) => cached.clone(),
                None => {
                    let path = of.path.clone();
                    drop(files);
                    let data = self.client.get(&path)?;
                    let mut files = self.open_files.lock();
                    let of = files
                        .get_mut(&fd)
                        .ok_or_else(|| DieselError::Client(format!("fd {fd} closed mid-read")))?;
                    of.content = Some(data.clone());
                    data
                }
            }
        };
        let start = (offset as usize).min(content.len());
        let end = (start + len).min(content.len());
        // Each kernel request covers at most `max_read` bytes.
        let span = end - start;
        let requests = span.div_ceil(self.config.max_read).max(1) as u64;
        self.read_requests.fetch_add(requests, Ordering::Relaxed);
        Ok(content.slice(start..end))
    }

    /// Read a whole file by path (open + full read + close).
    pub fn read_file(&self, path: &str) -> Result<Bytes> {
        let fd = self.open(path)?;
        let meta = self.client.stat(path)?;
        let data = self.read(fd, 0, meta.length as usize)?;
        self.close(fd)?;
        Ok(data)
    }

    /// `close(fd)`.
    pub fn close(&self, fd: u64) -> Result<()> {
        self.open_files
            .lock()
            .remove(&fd)
            .map(|_| ())
            .ok_or_else(|| DieselError::Client(format!("bad fd {fd}")))
    }

    /// `stat(path)` → size.
    pub fn getattr(&self, path: &str) -> Result<u64> {
        self.meta_requests.fetch_add(1, Ordering::Relaxed);
        Ok(self.client.stat(path)?.length)
    }

    /// `readdir(path)`.
    pub fn readdir(&self, path: &str) -> Result<Vec<DirEntry>> {
        self.meta_requests.fetch_add(1, Ordering::Relaxed);
        self.client.ls(path)
    }

    /// The shuffle helper file: `cat .diesel/epoch_<n>` returns the
    /// chunk-wise shuffled file list, newline-separated, exactly as the
    /// FUSE users of §5 consume it.
    pub fn read_epoch_list(&self, seed: u64, epoch: u64) -> Result<String> {
        self.meta_requests.fetch_add(1, Ordering::Relaxed);
        Ok(self.client.epoch_file_list(seed, epoch)?.join("\n"))
    }
}

impl<K, S> std::fmt::Debug for FuseMount<K, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuseMount")
            .field("read_requests", &self.read_requests.load(Ordering::Relaxed))
            .field("meta_requests", &self.meta_requests.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientConfig;
    use crate::server::DieselServer;
    use diesel_chunk::ChunkBuilderConfig;
    use diesel_kv::ShardedKv;
    use diesel_shuffle::ShuffleKind;
    use diesel_store::MemObjectStore;

    type Mount = FuseMount<ShardedKv, MemObjectStore>;

    fn mount(files: usize, size: usize) -> (Mount, Vec<(String, Vec<u8>)>) {
        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect_with(
            server,
            "ds",
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 64 << 10, ..Default::default() },
            },
        )
        .with_deterministic_identity(1, 1, 500);
        let mut out = Vec::new();
        for i in 0..files {
            let name = format!("train/c{}/f{i:03}", i % 4);
            let data: Vec<u8> = (0..size).map(|j| ((i * 131 + j) % 256) as u8).collect();
            client.put(&name, &data).unwrap();
            out.push((name, data));
        }
        client.flush().unwrap();
        client.download_meta().unwrap();
        (FuseMount::mount(Arc::new(client), FuseConfig::default()), out)
    }

    #[test]
    fn open_read_close() {
        let (m, files) = mount(8, 1000);
        let (name, data) = &files[3];
        let fd = m.open(name).unwrap();
        assert_eq!(m.read(fd, 0, 1000).unwrap().as_ref(), &data[..]);
        assert_eq!(m.read(fd, 100, 50).unwrap().as_ref(), &data[100..150]);
        assert_eq!(m.read(fd, 990, 100).unwrap().len(), 10, "reads clamp at EOF");
        m.close(fd).unwrap();
        assert!(m.read(fd, 0, 1).is_err(), "closed fd");
        assert!(m.open("nope").is_err());
    }

    #[test]
    fn large_reads_split_into_kernel_requests() {
        let (m, _) = mount(1, 0);
        // Write one 1 MiB file through the client directly.
        let c = m.client();
        let big = vec![7u8; 1 << 20];
        c.put("big", &big).unwrap();
        c.flush().unwrap();
        c.download_meta().unwrap();
        let before = m.stats().read_requests;
        let data = m.read_file("big").unwrap();
        assert_eq!(data.len(), 1 << 20);
        let requests = m.stats().read_requests - before;
        assert_eq!(requests, (1 << 20) / (128 << 10), "1 MiB / 128 KiB = 8 requests");
    }

    #[test]
    fn readdir_and_getattr() {
        let (m, files) = mount(12, 64);
        assert_eq!(m.getattr(&files[0].0).unwrap(), 64);
        let entries = m.readdir("train").unwrap();
        assert_eq!(entries.len(), 4, "four class dirs");
        assert!(m.readdir("ghost").is_err());
        assert!(m.stats().meta_requests >= 2);
    }

    #[test]
    fn epoch_list_helper_file() {
        let (m, files) = mount(20, 128);
        m.client().enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });
        let listing = m.read_epoch_list(42, 0).unwrap();
        let lines: Vec<&str> = listing.lines().collect();
        assert_eq!(lines.len(), files.len());
        // Reading the listed files in order works end to end.
        for name in lines.iter().take(5) {
            assert!(!m.read_file(name).unwrap().is_empty());
        }
    }

    #[test]
    fn whole_file_reads_are_correct_for_every_file() {
        let (m, files) = mount(30, 300);
        for (n, d) in &files {
            assert_eq!(m.read_file(n).unwrap().as_ref(), &d[..], "{n}");
        }
        assert_eq!(m.stats().opens, 30);
    }
}
