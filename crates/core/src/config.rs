//! Cluster configuration service — the ETCD of Fig. 2 ("the system
//! configurations are stored in an ETCD server").
//!
//! DIESEL needs only a small slice of etcd: versioned key-value storage
//! with compare-and-swap (for coordinated updates like "which server
//! list is current") and blocking watches (clients discovering
//! configuration changes, e.g. a new metadata snapshot being announced).
//! [`ConfigService`] provides exactly that, in-process.

use diesel_util::{Clock, Condvar, Mutex, SystemClock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A configuration entry with its revision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigEntry {
    /// The value.
    pub value: String,
    /// Monotonic revision at which this value was written (global
    /// counter, like etcd's mod_revision).
    pub revision: u64,
}

#[derive(Debug, Default)]
struct State {
    entries: HashMap<String, ConfigEntry>,
    revision: u64,
}

/// An in-process etcd stand-in: versioned KV + CAS + watch.
///
/// Deadlines are measured on an injected [`Clock`], so watch timeouts
/// are testable with a `MockClock`: a watcher's one-hour timeout
/// expires the moment a test advances virtual time by an hour, without
/// the test sleeping.
pub struct ConfigService {
    state: Mutex<State>,
    changed: Condvar,
    clock: Arc<dyn Clock>,
}

/// How long each individual condvar wait may block in real time. The
/// watch deadline itself is virtual (clock-based); this quantum only
/// bounds how stale a virtual-clock reading can get between wakeups.
const WATCH_QUANTUM: Duration = Duration::from_millis(5);

impl ConfigService {
    /// An empty service on the system clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(SystemClock::new()))
    }

    /// An empty service measuring watch deadlines on `clock`.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        ConfigService {
            state: Mutex::named("core.config", State::default()),
            changed: Condvar::new(),
            clock,
        }
    }

    /// Current global revision.
    pub fn revision(&self) -> u64 {
        self.state.lock().revision
    }

    /// Read a key.
    pub fn get(&self, key: &str) -> Option<ConfigEntry> {
        self.state.lock().entries.get(key).cloned()
    }

    /// Unconditional write; returns the new revision.
    pub fn put(&self, key: &str, value: impl Into<String>) -> u64 {
        let mut st = self.state.lock();
        st.revision += 1;
        let rev = st.revision;
        st.entries.insert(key.to_owned(), ConfigEntry { value: value.into(), revision: rev });
        drop(st);
        self.changed.notify_all();
        rev
    }

    /// Compare-and-swap: write only if the key's current revision is
    /// `expected_revision` (`None` = key must not exist). Returns
    /// `Ok(new_revision)` or `Err(current entry)` on conflict.
    pub fn cas(
        &self,
        key: &str,
        expected_revision: Option<u64>,
        value: impl Into<String>,
    ) -> Result<u64, Option<ConfigEntry>> {
        let mut st = self.state.lock();
        let current = st.entries.get(key).cloned();
        match (&current, expected_revision) {
            (None, None) => {}
            (Some(e), Some(rev)) if e.revision == rev => {}
            _ => return Err(current),
        }
        st.revision += 1;
        let rev = st.revision;
        st.entries.insert(key.to_owned(), ConfigEntry { value: value.into(), revision: rev });
        drop(st);
        self.changed.notify_all();
        Ok(rev)
    }

    /// Delete a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        let mut st = self.state.lock();
        let existed = st.entries.remove(key).is_some();
        if existed {
            st.revision += 1;
            drop(st);
            self.changed.notify_all();
        }
        existed
    }

    /// Block until `key` has a revision greater than `after_revision`
    /// (or the timeout passes on this service's [`Clock`]). Returns the
    /// entry that satisfied the watch, or `None` on timeout.
    pub fn watch(&self, key: &str, after_revision: u64, timeout: Duration) -> Option<ConfigEntry> {
        let deadline_ns = self.clock.now_ns().saturating_add(timeout.as_nanos() as u64);
        let mut st = self.state.lock();
        loop {
            // Entry check precedes the deadline check so a write landing
            // exactly at the deadline is still observed.
            if let Some(e) = st.entries.get(key) {
                if e.revision > after_revision {
                    return Some(e.clone());
                }
            }
            if self.clock.now_ns() >= deadline_ns {
                return None;
            }
            let (guard, _timed_out) = self.changed.wait_timeout(st, WATCH_QUANTUM);
            st = guard;
        }
    }

    /// All keys with a given prefix, sorted.
    pub fn list_prefix(&self, prefix: &str) -> Vec<(String, ConfigEntry)> {
        let st = self.state.lock();
        let mut out: Vec<(String, ConfigEntry)> = st
            .entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// The well-known configuration keys DIESEL components use.
pub mod keys {
    /// Value: comma-separated DIESEL server addresses.
    pub const SERVERS: &str = "diesel/servers";
    /// Per-dataset snapshot announcement (`diesel/snapshot/<dataset>` →
    /// update timestamp the latest snapshot covers).
    pub fn snapshot(dataset: &str) -> String {
        format!("diesel/snapshot/{dataset}")
    }
    /// Per-dataset chunk target size override.
    pub fn chunk_size(dataset: &str) -> String {
        format!("diesel/chunk_size/{dataset}")
    }
}

impl Default for ConfigService {
    fn default() -> Self {
        ConfigService::new()
    }
}

impl std::fmt::Debug for ConfigService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("ConfigService")
            .field("revision", &st.revision)
            .field("entries", &st.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_util::MockClock;

    #[test]
    fn put_get_delete_with_revisions() {
        let c = ConfigService::new();
        assert_eq!(c.get("a"), None);
        let r1 = c.put("a", "1");
        let r2 = c.put("a", "2");
        assert!(r2 > r1);
        let e = c.get("a").unwrap();
        assert_eq!(e.value, "2");
        assert_eq!(e.revision, r2);
        assert!(c.delete("a"));
        assert!(!c.delete("a"));
        assert_eq!(c.get("a"), None);
        assert_eq!(c.revision(), 3, "delete bumps the revision");
    }

    #[test]
    fn cas_enforces_expected_revision() {
        let c = ConfigService::new();
        // Create-if-absent.
        let r1 = c.cas("servers", None, "s1").unwrap();
        assert!(c.cas("servers", None, "s2").is_err(), "already exists");
        // Update at the right revision.
        let r2 = c.cas("servers", Some(r1), "s1,s2").unwrap();
        assert!(r2 > r1);
        // Stale update loses and learns the current entry.
        let err = c.cas("servers", Some(r1), "stale").unwrap_err().unwrap();
        assert_eq!(err.value, "s1,s2");
        assert_eq!(c.get("servers").unwrap().value, "s1,s2");
    }

    #[test]
    fn watch_wakes_on_write() {
        let c = Arc::new(ConfigService::new());
        let rev0 = c.put(&keys::snapshot("ds"), "100");
        let watcher = {
            let c = c.clone();
            std::thread::spawn(move || c.watch(&keys::snapshot("ds"), rev0, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(30));
        c.put(&keys::snapshot("ds"), "200");
        let seen = watcher.join().unwrap().expect("watch must fire");
        assert_eq!(seen.value, "200");
    }

    #[test]
    fn watch_times_out_quietly() {
        let c = ConfigService::new();
        c.put("k", "v");
        let rev = c.get("k").unwrap().revision;
        assert!(c.watch("k", rev, Duration::from_millis(40)).is_none());
        // Watching from before the current revision returns immediately.
        assert!(c.watch("k", rev - 1, Duration::from_millis(1)).is_some());
    }

    #[test]
    fn watch_deadline_is_virtual_with_a_mock_clock() {
        let clock = Arc::new(MockClock::new());
        let c = Arc::new(ConfigService::with_clock(clock.clone()));
        c.put("k", "v");
        let rev = c.get("k").unwrap().revision;
        // A one-hour watch on virtual time: no wall-clock sleep, the
        // watcher returns once the mock clock crosses the deadline.
        let watcher = {
            let c = c.clone();
            std::thread::spawn(move || c.watch("k", rev, Duration::from_secs(3600)))
        };
        clock.advance(3600 * 1_000_000_000 + 1);
        assert!(watcher.join().unwrap().is_none(), "virtual deadline must expire");
    }

    #[test]
    fn watch_on_a_mock_clock_still_wakes_on_write() {
        let clock = Arc::new(MockClock::new());
        let c = Arc::new(ConfigService::with_clock(clock));
        let rev0 = c.put("k", "old");
        let watcher = {
            let c = c.clone();
            std::thread::spawn(move || c.watch("k", rev0, Duration::from_secs(3600)))
        };
        std::thread::sleep(Duration::from_millis(20));
        c.put("k", "new");
        let seen = watcher.join().unwrap().expect("watch must fire without clock advance");
        assert_eq!(seen.value, "new");
    }

    #[test]
    fn list_prefix_sorted() {
        let c = ConfigService::new();
        c.put(&keys::snapshot("b"), "2");
        c.put(&keys::snapshot("a"), "1");
        c.put(keys::SERVERS, "s");
        let snaps = c.list_prefix("diesel/snapshot/");
        assert_eq!(snaps.len(), 2);
        assert!(snaps[0].0.ends_with("/a"));
    }

    #[test]
    fn concurrent_cas_elects_exactly_one_winner() {
        let c = Arc::new(ConfigService::new());
        let winners: Vec<_> = (0..8)
            .map(|i| {
                let c = c.clone();
                std::thread::spawn(move || c.cas("leader", None, format!("node-{i}")).is_ok())
            })
            .collect();
        let won: usize = winners.into_iter().map(|h| h.join().unwrap()).filter(|&w| w).count();
        assert_eq!(won, 1, "exactly one leader");
    }
}
