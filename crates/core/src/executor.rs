//! The request executor: sort + merge small file requests into chunk-wise
//! operations (Fig. 2: "The request executor in the DIESEL server sorts
//! and merges small file requests to chunk-wise operations").

use diesel_chunk::ChunkId;
use diesel_meta::FileMeta;

/// A planned chunk-wise read: which chunk to fetch, and which original
/// requests it satisfies (offsets sorted ascending so the per-chunk byte
/// range is contiguous-scan friendly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkReadPlan {
    /// The chunk to read.
    pub chunk: ChunkId,
    /// `(original request index, file meta)` pairs, sorted by offset.
    pub requests: Vec<(usize, FileMeta)>,
}

impl ChunkReadPlan {
    /// Smallest payload offset needed from this chunk.
    pub fn min_offset(&self) -> u64 {
        self.requests.first().map(|(_, m)| m.offset).unwrap_or(0)
    }

    /// One-past-the-last payload byte needed from this chunk.
    pub fn max_end(&self) -> u64 {
        self.requests.iter().map(|(_, m)| m.offset + m.length).max().unwrap_or(0)
    }

    /// Bytes covered if the chunk range `[min_offset, max_end)` is read
    /// in one operation.
    pub fn merged_span(&self) -> u64 {
        self.max_end() - self.min_offset()
    }

    /// Sum of the individual request lengths (what per-file reads would
    /// transfer).
    pub fn requested_bytes(&self) -> u64 {
        self.requests.iter().map(|(_, m)| m.length).sum()
    }
}

/// Group a batch of file requests by chunk and sort within each chunk by
/// offset. Plans come out ordered by chunk ID, so issuing them walks the
/// object store in key order.
pub fn plan_chunk_reads(requests: &[FileMeta]) -> Vec<ChunkReadPlan> {
    let mut indexed: Vec<(usize, FileMeta)> = requests.iter().copied().enumerate().collect();
    // Sort by (chunk, offset): one pass then split on chunk boundaries.
    indexed.sort_by_key(|a| (a.1.chunk, a.1.offset));
    let mut plans: Vec<ChunkReadPlan> = Vec::new();
    for (idx, meta) in indexed {
        match plans.last_mut() {
            Some(p) if p.chunk == meta.chunk => p.requests.push((idx, meta)),
            _ => plans.push(ChunkReadPlan { chunk: meta.chunk, requests: vec![(idx, meta)] }),
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::{ChunkId, MachineId};

    fn cid(n: u32) -> ChunkId {
        ChunkId::new(n, MachineId::from_seed(1), 1, 0)
    }

    fn meta(chunk: u32, offset: u64, length: u64) -> FileMeta {
        FileMeta { chunk: cid(chunk), index_in_chunk: 0, offset, length, uploaded_ms: 0 }
    }

    #[test]
    fn groups_by_chunk_sorted_by_offset() {
        let reqs = vec![
            meta(2, 500, 10),
            meta(1, 100, 10),
            meta(2, 0, 10),
            meta(1, 50, 10),
            meta(3, 7, 3),
        ];
        let plans = plan_chunk_reads(&reqs);
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].chunk, cid(1));
        assert_eq!(plans[0].requests.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![3, 1]);
        assert_eq!(plans[1].chunk, cid(2));
        assert_eq!(plans[1].requests[0].1.offset, 0);
        assert_eq!(plans[2].chunk, cid(3));
    }

    #[test]
    fn plans_preserve_original_indices() {
        let reqs = vec![meta(1, 10, 5), meta(1, 0, 5)];
        let plans = plan_chunk_reads(&reqs);
        let mut seen: Vec<usize> =
            plans.iter().flat_map(|p| p.requests.iter().map(|(i, _)| *i)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn span_accounting() {
        let plans = plan_chunk_reads(&[meta(1, 100, 50), meta(1, 400, 100), meta(1, 0, 10)]);
        let p = &plans[0];
        assert_eq!(p.min_offset(), 0);
        assert_eq!(p.max_end(), 500);
        assert_eq!(p.merged_span(), 500);
        assert_eq!(p.requested_bytes(), 160);
    }

    #[test]
    fn empty_batch() {
        assert!(plan_chunk_reads(&[]).is_empty());
    }

    #[test]
    fn merging_reduces_operation_count() {
        // 128 requests across 4 chunks become exactly 4 chunk operations.
        let reqs: Vec<FileMeta> =
            (0..128).map(|i| meta(i % 4, (i as u64 / 4) * 100, 100)).collect();
        let plans = plan_chunk_reads(&reqs);
        assert_eq!(plans.len(), 4);
        assert!(plans.iter().all(|p| p.requests.len() == 32));
    }
}
