//! libDIESEL — the client library (paper Table 3).
//!
//! | paper API        | here                                  |
//! |------------------|---------------------------------------|
//! | `DL_connect`     | [`DieselClient::connect`]             |
//! | `DL_put`         | [`DieselClient::put`]                 |
//! | `DL_flush`       | [`DieselClient::flush`]               |
//! | `DL_get`         | [`DieselClient::get`]                 |
//! | `DL_stat`        | [`DieselClient::stat`]                |
//! | `DL_delete`      | [`DieselClient::delete`]              |
//! | `DL_ls`          | [`DieselClient::ls`]                  |
//! | `DL_save_meta`   | [`DieselClient::save_meta`]           |
//! | `DL_load_meta`   | [`DieselClient::load_meta`]           |
//! | `DL_shuffle`     | [`DieselClient::enable_shuffle`]      |
//! | `DL_close`       | [`DieselClient::close`]               |
//!
//! The client buffers written files into ≥ 4 MB chunks (write flow,
//! Fig. 3), serves metadata from a locally loaded snapshot (the
//! "metadata cache and interpreter"), optionally joins a task-grained
//! distributed cache, and generates chunk-wise shuffled epoch orders.

use diesel_util::{Clock, Mutex, RwLock};
use std::sync::Arc;

use diesel_cache::{CacheError, TaskCache};
use diesel_chunk::{ChunkBuilder, ChunkBuilderConfig, ChunkIdGenerator, SealedChunk};
use diesel_kv::KvStore;
use diesel_meta::{DirEntry, FileMeta, MetaSnapshot, Namespace};
use diesel_net::Service;
use diesel_obs::{trace, Span, Tracer};
use diesel_shuffle::{epoch_order, ChunkFiles, DatasetIndex, ShuffleKind, ShufflePlan};
use diesel_store::{Bytes, ObjectStore};

use crate::api::{ServerConn, ServerRequest, ServerResponse};
use crate::server::DieselServer;
use crate::{DieselError, Result};

/// Client construction parameters.
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Chunk aggregation settings for the write path.
    pub chunk: ChunkBuilderConfig,
}

struct MetaState {
    snapshot: MetaSnapshot,
    namespace: Namespace,
    index: DatasetIndex,
}

/// One libDIESEL client instance.
///
/// All server traffic goes through a [`ServerConn`] — a `diesel-net`
/// channel carrying [`ServerRequest`]s. [`connect`](Self::connect)
/// builds a direct in-process channel (zero overhead, as before);
/// [`connect_channel`](Self::connect_channel) accepts any channel — a
/// thread transport, a load-balanced pool, a fault-injected test rig.
pub struct DieselClient<K, S> {
    conn: ServerConn,
    // Kept for co-located deployments so `server()` still hands out the
    // concrete server (cache attachment, tests). Channel-connected
    // clients have no such handle.
    direct: Option<Arc<DieselServer<K, S>>>,
    dataset: String,
    config: ClientConfig,
    ids: ChunkIdGenerator,
    builder: Mutex<ChunkBuilder>,
    meta: RwLock<Option<MetaState>>,
    cache: RwLock<Option<Arc<TaskCache<S>>>>,
    shuffle: RwLock<Option<ShuffleKind>>,
    clock_ms: Box<dyn Fn() -> u64 + Send + Sync>,
    /// Back-off sleeper for obeying [`CacheError::Throttled`] replies.
    clock: Arc<dyn Clock>,
    /// How many throttled replies to obey (sleep + retry) before
    /// surfacing the error.
    throttle_retries: u32,
    tracer: Option<Tracer>,
}

impl<K: KvStore + 'static, S: ObjectStore + 'static> DieselClient<K, S> {
    /// `DL_connect`: open a client against a co-located server for one
    /// dataset (direct in-process dispatch).
    pub fn connect(server: Arc<DieselServer<K, S>>, dataset: impl Into<String>) -> Self {
        Self::connect_with(server, dataset, ClientConfig::default())
    }

    /// `DL_connect` with explicit configuration.
    pub fn connect_with(
        server: Arc<DieselServer<K, S>>,
        dataset: impl Into<String>,
        config: ClientConfig,
    ) -> Self {
        let conn = server.direct_channel(0);
        Self::build(conn, Some(server), dataset.into(), config)
    }

    /// `DL_connect` over an arbitrary `diesel-net` channel (thread
    /// transport, server pool, instrumented/fault-injected stack).
    pub fn connect_channel(conn: ServerConn, dataset: impl Into<String>) -> Self {
        Self::connect_channel_with(conn, dataset, ClientConfig::default())
    }

    /// [`connect_channel`](Self::connect_channel) with explicit
    /// configuration.
    pub fn connect_channel_with(
        conn: ServerConn,
        dataset: impl Into<String>,
        config: ClientConfig,
    ) -> Self {
        Self::build(conn, None, dataset.into(), config)
    }

    fn build(
        conn: ServerConn,
        direct: Option<Arc<DieselServer<K, S>>>,
        dataset: String,
        config: ClientConfig,
    ) -> Self {
        let builder = ChunkBuilder::new(config.chunk.clone());
        DieselClient {
            conn,
            direct,
            dataset,
            config,
            ids: ChunkIdGenerator::new(),
            builder: Mutex::named("core.client_builder", builder),
            meta: RwLock::named("core.client_meta", None),
            cache: RwLock::named("core.client_cache", None),
            shuffle: RwLock::named("core.client_shuffle", None),
            clock_ms: {
                let clock = diesel_util::SystemClock::new();
                Box::new(move || clock.epoch_ms())
            },
            clock: Arc::new(diesel_util::SystemClock::new()),
            throttle_retries: 8,
            tracer: None,
        }
    }

    /// Sleep throttle back-offs on `clock` (a
    /// [`MockClock`](diesel_util::MockClock) makes retry schedules
    /// instant and exactly assertable).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// How many [`CacheError::Throttled`] replies to obey (sleep for the
    /// server-advised back-off, then retry) before surfacing the error.
    /// Default 8; 0 disables the retry loop.
    pub fn with_throttle_retries(mut self, retries: u32) -> Self {
        self.throttle_retries = retries;
        self
    }

    /// Deterministic identity and clock (tests / simulations).
    pub fn with_deterministic_identity(mut self, machine_seed: u64, pid: u32, ts: u32) -> Self {
        self.ids = ChunkIdGenerator::deterministic(machine_seed, pid, ts);
        let fixed_ms = ts as u64 * 1000;
        self.clock_ms = Box::new(move || fixed_ms);
        self
    }

    /// Trace read requests into `tracer`: [`get`](Self::get) and
    /// [`get_many`](Self::get_many) open `client.read` spans whose
    /// context flows through the channel to the server side.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The dataset this client works on.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The server handle (co-located deployments only).
    ///
    /// # Panics
    /// Panics for clients built with
    /// [`connect_channel`](Self::connect_channel), which hold no direct
    /// server reference.
    pub fn server(&self) -> &Arc<DieselServer<K, S>> {
        // diesel-lint: allow(R1) documented panic: direct-only accessor, misuse is a caller bug
        self.direct.as_ref().expect("client was connected over a channel, not a direct server")
    }

    /// One request over the server channel. Transport failures surface
    /// as [`DieselError::Net`]; application errors pass through — except
    /// [`CacheError::Throttled`], which the client *obeys*: it sleeps
    /// for the server-advised back-off and retries, up to
    /// [`with_throttle_retries`](Self::with_throttle_retries) times.
    /// (The net layer's `Retry` only re-sends on retryable transport
    /// errors; an admission rejection is an application reply, so the
    /// back-off loop lives here.)
    fn call(&self, req: ServerRequest) -> Result<ServerResponse> {
        let mut attempts = 0u32;
        loop {
            // Requests hold refcounted payloads, so the per-attempt
            // clone is pointer-sized per field, not a byte copy.
            match self.conn.call(req.clone()).map_err(DieselError::Net)? {
                Err(DieselError::Cache(CacheError::Throttled { retry_after_ms }))
                    if attempts < self.throttle_retries =>
                {
                    attempts += 1;
                    self.clock.sleep_ns(retry_after_ms.saturating_mul(1_000_000));
                }
                other => return other,
            }
        }
    }

    // ---- write path ----

    /// `DL_put`: buffer one file; ships a sealed chunk when the buffer
    /// reaches the target chunk size.
    pub fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        let mut b = self.builder.lock();
        if b.would_overflow(path.len(), data.len()) {
            let full = std::mem::replace(&mut *b, ChunkBuilder::new(self.config.chunk.clone()));
            drop(b);
            self.ship(full)?;
            b = self.builder.lock();
        }
        b.add_file(path, data)?;
        Ok(())
    }

    /// `DL_flush`: seal and ship any buffered files. Returns the number
    /// of chunks shipped by this call.
    pub fn flush(&self) -> Result<usize> {
        let mut b = self.builder.lock();
        if b.is_empty() {
            return Ok(0);
        }
        let full = std::mem::replace(&mut *b, ChunkBuilder::new(self.config.chunk.clone()));
        drop(b);
        self.ship(full)?;
        Ok(1)
    }

    fn ship(&self, builder: ChunkBuilder) -> Result<()> {
        let (header, bytes) = builder.seal(self.ids.next_id(), (self.clock_ms)());
        self.call(ServerRequest::IngestChunk {
            dataset: self.dataset.clone(),
            chunk: SealedChunk { header, bytes: bytes.into() },
        })?;
        Ok(())
    }

    // ---- metadata ----

    /// Download a fresh snapshot from the server and install it as the
    /// local metadata cache.
    pub fn download_meta(&self) -> Result<()> {
        let snapshot = self
            .call(ServerRequest::BuildSnapshot { dataset: self.dataset.clone() })?
            .into_snapshot()?;
        self.install_snapshot(snapshot);
        Ok(())
    }

    /// `DL_save_meta`: materialize the dataset snapshot to a local file.
    pub fn save_meta(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let snapshot = self
            .call(ServerRequest::BuildSnapshot { dataset: self.dataset.clone() })?
            .into_snapshot()?;
        snapshot.save_to(path)?;
        Ok(())
    }

    /// `DL_load_meta`: load a snapshot file and install it — after
    /// verifying it is fresh against the server's dataset record
    /// (§4.1.3). A stale or foreign snapshot is rejected.
    pub fn load_meta(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let snapshot = MetaSnapshot::load_from(path)?;
        let authority = self
            .call(ServerRequest::DatasetRecord { dataset: self.dataset.clone() })?
            .into_record()?;
        if !snapshot.is_fresh(&self.dataset, authority.updated_ms) {
            return Err(DieselError::Client(format!(
                "snapshot is stale (snapshot ts {} vs dataset ts {}); download a new one",
                snapshot.updated_ms, authority.updated_ms
            )));
        }
        self.install_snapshot(snapshot);
        Ok(())
    }

    fn install_snapshot(&self, snapshot: MetaSnapshot) {
        let namespace = snapshot.build_namespace();
        let index = build_index(&snapshot);
        *self.meta.write() = Some(MetaState { snapshot, namespace, index });
    }

    /// Is a metadata snapshot loaded?
    pub fn has_meta(&self) -> bool {
        self.meta.read().is_some()
    }

    /// `DL_stat`: O(1) from the local namespace when loaded, otherwise
    /// one server round trip.
    pub fn stat(&self, path: &str) -> Result<FileMeta> {
        if let Some(state) = self.meta.read().as_ref() {
            return state
                .namespace
                .stat(path)
                .copied()
                .ok_or_else(|| DieselError::Meta(diesel_meta::MetaError::NoSuchFile(path.into())));
        }
        self.call(ServerRequest::Stat { dataset: self.dataset.clone(), path: path.to_owned() })?
            .into_meta()
    }

    /// `DL_ls`: list a directory.
    pub fn ls(&self, path: &str) -> Result<Vec<DirEntry>> {
        if let Some(state) = self.meta.read().as_ref() {
            return Ok(state.namespace.readdir(path)?);
        }
        self.call(ServerRequest::Readdir { dataset: self.dataset.clone(), dir: path.to_owned() })?
            .into_entries()
    }

    /// All file paths in the loaded snapshot (training file lists).
    pub fn file_list(&self) -> Result<Vec<String>> {
        let guard = self.meta.read();
        let state = guard
            .as_ref()
            .ok_or_else(|| DieselError::Client("no metadata snapshot loaded".into()))?;
        Ok(state.snapshot.files.iter().map(|f| f.path.clone()).collect())
    }

    // ---- read path (Fig. 4) ----

    /// Join a task-grained distributed cache.
    pub fn attach_cache(&self, cache: Arc<TaskCache<S>>) {
        *self.cache.write() = Some(cache);
    }

    /// `DL_get`: read one file. Resolution order is the read flow of
    /// Fig. 4 — task-grained cache first (one hop), then the server
    /// (which consults its own tiers). A cache node failure falls back
    /// to the server path transparently.
    pub fn get(&self, path: &str) -> Result<Bytes> {
        let _tracer = self.tracer.as_ref().map(trace::install_tracer);
        let _span = if trace::active() {
            trace::span("client.read", &[("path", path)])
        } else {
            trace::SpanGuard::default()
        };
        let meta = self.stat(path)?;
        if let Some(cache) = self.cache.read().as_ref() {
            match cache.get_file(&meta) {
                Ok(f) => return Ok(f.data),
                Err(CacheError::NodeDown { .. }) => { /* fall through to server */ }
                Err(CacheError::UnknownChunk(_)) => { /* stale snapshot; server path */ }
                // The cache retries stale-owner routes internally; an
                // escaping StaleOwner means membership is churning faster
                // than we can re-resolve — the server is still
                // authoritative, so serve from there rather than failing
                // the read.
                Err(CacheError::StaleOwner { .. }) => { /* rebalance in flight */ }
                Err(e) => return Err(e.into()),
            }
        }
        let read = self
            .call(ServerRequest::ReadByMeta { dataset: self.dataset.clone(), meta })
            .and_then(ServerResponse::into_bytes);
        match read {
            Ok(data) => Ok(data),
            // A chunk that vanished under a snapshot-directed read means
            // the local snapshot went stale (e.g. `DL_purge` compacted
            // the chunk away). Retry with authoritative server-side
            // metadata; the caller should re-download the snapshot.
            Err(DieselError::Store(diesel_store::StoreError::NotFound(_))) if self.has_meta() => {
                self.call(ServerRequest::ReadFile {
                    dataset: self.dataset.clone(),
                    path: path.to_owned(),
                })?
                .into_bytes()
            }
            Err(e) => Err(e),
        }
    }

    /// Read a batch of files in one round trip via the server's request
    /// executor (`read_files_merged`, Fig. 2): requests are merged into
    /// one ranged read per chunk — the paper's answer to the small-file
    /// anti-pattern of one `get` per sample. Results come back in
    /// request order.
    ///
    /// When a task-grained cache is attached the batch is served
    /// file-by-file through it instead (one-hop chunk-resident reads
    /// beat a merged server read); any per-file fallback matches
    /// [`get`](Self::get).
    pub fn get_many(&self, paths: &[String]) -> Result<Vec<Bytes>> {
        if paths.is_empty() {
            return Ok(Vec::new());
        }
        let _tracer = self.tracer.as_ref().map(trace::install_tracer);
        let _span = if trace::active() {
            let n = paths.len().to_string();
            trace::span("client.get_many", &[("files", n.as_str())])
        } else {
            trace::SpanGuard::default()
        };
        if self.cache.read().is_some() {
            return paths.iter().map(|p| self.get(p)).collect();
        }
        let merged = self
            .call(ServerRequest::ReadFilesMerged {
                dataset: self.dataset.clone(),
                // diesel-lint: allow(R6) request path list, not payload bytes
                paths: paths.to_vec(),
            })
            .and_then(ServerResponse::into_bytes_vec);
        match merged {
            Ok(bytes) => Ok(bytes),
            // Any batch-level failure (stale snapshot, purge race, a
            // single missing file) degrades to per-file reads so one bad
            // path doesn't poison the whole batch's error story.
            Err(_) => paths.iter().map(|p| self.get(p)).collect(),
        }
    }

    /// Drain the spans recorded by the *server side* of this
    /// connection ([`ServerRequest::Trace`]). With a tracer shared
    /// between client and server this also returns the client spans —
    /// they live in the same buffer.
    pub fn drain_trace(&self) -> Result<Vec<Span>> {
        self.call(ServerRequest::Trace)?.into_trace()
    }

    /// `DL_delete`: remove a file (server-side) and drop it from the
    /// local namespace.
    pub fn delete(&self, path: &str) -> Result<()> {
        self.call(ServerRequest::DeleteFile {
            dataset: self.dataset.clone(),
            path: path.to_owned(),
            now_ms: (self.clock_ms)(),
        })?;
        if let Some(state) = self.meta.write().as_mut() {
            state.namespace.remove(path);
        }
        Ok(())
    }

    /// Modify a file: DIESEL "supports modifying/deleting files by first
    /// deleting the old file and then writing a new file" (§4.1.1). The
    /// old copy becomes a deletion-bitmap hole (reclaimed by
    /// `DL_purge`); the new copy is flushed immediately so it is
    /// readable on return.
    pub fn overwrite(&self, path: &str, data: &[u8]) -> Result<()> {
        match self.delete(path) {
            Ok(()) => {}
            Err(DieselError::Meta(diesel_meta::MetaError::NoSuchFile(_))) => {}
            Err(e) => return Err(e),
        }
        self.put(path, data)?;
        self.flush()?;
        if let Some(state) = self.meta.write().as_mut() {
            // Keep the local namespace usable without a full re-download;
            // note the snapshot object itself is now stale for freshness
            // checks, as any mutation makes it.
            let fresh = self
                .call(ServerRequest::Stat { dataset: self.dataset.clone(), path: path.to_owned() })
                .and_then(ServerResponse::into_meta);
            if let Ok(meta) = fresh {
                state.namespace.insert(path.to_owned(), meta);
            }
        }
        Ok(())
    }

    // ---- chunk-wise shuffle (§4.3) ----

    /// `DL_shuffle`: enable chunk-wise shuffle (or the baseline) for
    /// epoch-order generation.
    pub fn enable_shuffle(&self, kind: ShuffleKind) {
        *self.shuffle.write() = Some(kind);
    }

    /// Generate this epoch's shuffled file list (the list the training
    /// framework reads; FUSE users fetch it via a helper file).
    pub fn epoch_file_list(&self, seed: u64, epoch: u64) -> Result<Vec<String>> {
        let plan = self.epoch_plan(seed, epoch)?;
        let guard = self.meta.read();
        let state =
            guard.as_ref().ok_or_else(|| DieselError::Client("metadata not downloaded".into()))?;
        Ok(plan.items.iter().map(|&i| state.index.resolve(i).1.to_owned()).collect())
    }

    /// The raw shuffle plan (group boundaries included), for working-set
    /// accounting and chunk-prefetch decisions.
    pub fn epoch_plan(&self, seed: u64, epoch: u64) -> Result<ShufflePlan> {
        let kind = (*self.shuffle.read())
            .ok_or_else(|| DieselError::Client("call enable_shuffle first".into()))?;
        let guard = self.meta.read();
        let state = guard
            .as_ref()
            .ok_or_else(|| DieselError::Client("no metadata snapshot loaded".into()))?;
        Ok(epoch_order(&state.index, kind, seed, epoch))
    }

    /// `DL_close`: flush outstanding writes and drop local state.
    pub fn close(self) -> Result<()> {
        self.flush()?;
        Ok(())
    }
}

fn build_index(snapshot: &MetaSnapshot) -> DatasetIndex {
    use std::collections::HashMap;
    let mut pos: HashMap<diesel_chunk::ChunkId, usize> = HashMap::new();
    let mut chunks: Vec<ChunkFiles> = snapshot
        .chunks
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            pos.insert(c, i);
            ChunkFiles { chunk: c, chunk_bytes: 0, files: Vec::new() }
        })
        .collect();
    for f in &snapshot.files {
        if let Some(&i) = pos.get(&f.meta.chunk) {
            chunks[i].chunk_bytes += f.meta.length;
            chunks[i].files.push(f.path.clone());
        }
    }
    DatasetIndex::new(chunks)
}

impl<K, S> std::fmt::Debug for DieselClient<K, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DieselClient").field("dataset", &self.dataset).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_cache::{CacheConfig, CachePolicy, Topology};
    use diesel_kv::ShardedKv;
    use diesel_store::MemObjectStore;

    type Server = DieselServer<ShardedKv, MemObjectStore>;
    type Client = DieselClient<ShardedKv, MemObjectStore>;

    fn server() -> Arc<Server> {
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())))
    }

    fn small_chunk_client(server: &Arc<Server>, seed: u64) -> Client {
        let config = ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() },
        };
        DieselClient::connect_with(server.clone(), "ds", config).with_deterministic_identity(
            seed,
            seed as u32,
            1000 + seed as u32,
        )
    }

    fn populate(client: &Client, files: usize, size: usize) -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        for i in 0..files {
            let name = format!("cls{}/img{i:04}", i % 5);
            let data = vec![(i % 251) as u8; size];
            client.put(&name, &data).unwrap();
            out.push((name, data));
        }
        client.flush().unwrap();
        out
    }

    #[test]
    fn put_flush_get_roundtrip() {
        let s = server();
        let c = small_chunk_client(&s, 1);
        let files = populate(&c, 30, 300);
        for (n, d) in &files {
            assert_eq!(c.get(n).unwrap().as_ref(), &d[..], "{n}");
        }
        // Several chunks were auto-shipped before the final flush.
        assert!(s.meta().chunk_ids("ds").unwrap().len() > 1);
    }

    #[test]
    fn snapshot_workflow_save_load_fresh_and_stale() {
        let s = server();
        let c = small_chunk_client(&s, 2);
        populate(&c, 10, 100);
        let path =
            std::env::temp_dir().join(format!("diesel-client-snap-{}.bin", std::process::id()));
        c.save_meta(&path).unwrap();
        c.load_meta(&path).unwrap();
        assert!(c.has_meta());
        // Local (O(1)) stat and ls now work without the server.
        assert_eq!(c.stat("cls0/img0000").unwrap().length, 100);
        assert!(!c.ls("cls1").unwrap().is_empty());
        assert_eq!(c.file_list().unwrap().len(), 10);

        // Mutate the dataset (with a later timestamp than the client's
        // frozen clock): the snapshot goes stale and must be rejected on
        // the next load.
        s.delete_file("ds", "cls0/img0005", 9_999_999_000).unwrap();
        let c2 = small_chunk_client(&s, 3);
        let err = c2.load_meta(&path).unwrap_err();
        assert!(matches!(err, DieselError::Client(_)), "stale snapshot must be rejected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn get_without_snapshot_uses_server_metadata() {
        let s = server();
        let c = small_chunk_client(&s, 4);
        populate(&c, 5, 50);
        assert!(!c.has_meta());
        assert_eq!(c.get("cls0/img0000").unwrap().len(), 50);
        assert!(matches!(c.get("missing"), Err(DieselError::Meta(_))));
    }

    #[test]
    fn delete_updates_local_namespace() {
        let s = server();
        let c = small_chunk_client(&s, 5);
        populate(&c, 6, 40);
        c.download_meta().unwrap();
        c.delete("cls2/img0002").unwrap();
        assert!(c.stat("cls2/img0002").is_err());
        assert!(c.get("cls2/img0002").is_err());
    }

    #[test]
    fn reads_through_task_cache_with_failover() {
        let s = server();
        let c = small_chunk_client(&s, 6);
        let files = populate(&c, 40, 200);
        c.download_meta().unwrap();

        let chunks = s.meta().chunk_ids("ds").unwrap();
        let cache = Arc::new(
            TaskCache::new(
                Topology::uniform(2, 2).unwrap(),
                s.store().clone(),
                "ds",
                chunks,
                CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
            )
            .unwrap(),
        );
        cache.prefetch_all().unwrap();
        c.attach_cache(cache.clone());

        for (n, d) in &files {
            assert_eq!(c.get(n).unwrap().as_ref(), &d[..]);
        }
        assert_eq!(cache.metrics().file_reads(), 40);

        // Kill a cache node: reads transparently fall back to the server.
        cache.kill_node(0);
        for (n, d) in &files {
            assert_eq!(c.get(n).unwrap().as_ref(), &d[..], "failover read of {n}");
        }
    }

    #[test]
    fn shuffle_epoch_lists_are_permutations() {
        let s = server();
        let c = small_chunk_client(&s, 7);
        let files = populate(&c, 50, 150);
        c.download_meta().unwrap();
        assert!(c.epoch_plan(1, 1).is_err(), "shuffle must be enabled first");
        c.enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });
        let e1 = c.epoch_file_list(9, 1).unwrap();
        let e2 = c.epoch_file_list(9, 2).unwrap();
        assert_eq!(e1.len(), files.len());
        assert_ne!(e1, e2);
        let mut sorted1 = e1.clone();
        sorted1.sort();
        let mut expect: Vec<String> = files.iter().map(|(n, _)| n.clone()).collect();
        expect.sort();
        assert_eq!(sorted1, expect);
        // Plan accounting: working set bounded by group size.
        let plan = c.epoch_plan(9, 1).unwrap();
        for set in plan.group_chunk_sets() {
            assert!(set.len() <= 2);
        }
    }

    #[test]
    fn overwrite_replaces_content_and_leaves_hole() {
        let s = server();
        let c = small_chunk_client(&s, 10);
        populate(&c, 8, 100);
        c.download_meta().unwrap();
        c.overwrite("cls0/img0000", b"brand-new-content").unwrap();
        assert_eq!(c.get("cls0/img0000").unwrap().as_ref(), b"brand-new-content");
        assert_eq!(c.stat("cls0/img0000").unwrap().length, 17);
        // The old copy is a deletion hole; purge reclaims it.
        let report = s.purge_dataset("ds", u64::MAX).unwrap();
        assert_eq!(report.bytes_reclaimed, 100);
        assert_eq!(c.get("cls0/img0000").unwrap().as_ref(), b"brand-new-content");
        // Overwriting a file that never existed behaves like put+flush.
        c.overwrite("fresh/file", b"abc").unwrap();
        assert_eq!(c.get("fresh/file").unwrap().as_ref(), b"abc");
    }

    #[test]
    fn close_flushes_pending_writes() {
        let s = server();
        let c = small_chunk_client(&s, 8);
        c.put("pending", b"data").unwrap();
        c.close().unwrap();
        let c2 = small_chunk_client(&s, 9);
        assert_eq!(c2.get("pending").unwrap().as_ref(), b"data");
    }
}
