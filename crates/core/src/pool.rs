//! Multiple DIESEL servers over one storage deployment.
//!
//! Fig. 10a scales metadata throughput by running 1/3/5 DIESEL servers
//! against the same KV cluster and object store — servers are stateless
//! front-ends (all state lives in the KV database and the chunks), so
//! adding one is just adding a process. [`ServerPool`] models that
//! deployment: N [`DieselServer`]s sharing the backing stores, with two
//! load-balancing modes:
//!
//! * connect-time: [`assign`](ServerPool::assign) hands each new client
//!   one server round-robin (the original behavior);
//! * request-time: the pool itself is a `diesel-net`
//!   [`Service`] — every request is routed round-robin across the
//!   servers, with automatic failover past disconnected backends. Use
//!   [`channel`](ServerPool::channel) with
//!   [`DieselClient::connect_channel`](crate::DieselClient::connect_channel).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use diesel_kv::KvStore;
use diesel_net::{BalancedChannel, Channel, Endpoint, Service};
use diesel_obs::{Span, Tracer};
use diesel_store::ObjectStore;

use crate::api::{ServerConn, ServerReply, ServerRequest};
use crate::server::DieselServer;

/// A pool of stateless DIESEL servers over shared backends.
pub struct ServerPool<K, S> {
    servers: Vec<Arc<DieselServer<K, S>>>,
    balance: BalancedChannel<ServerRequest, ServerReply>,
    next: AtomicUsize,
}

impl<K: KvStore + 'static, S: ObjectStore + 'static> ServerPool<K, S> {
    /// Deploy `n` servers over the same KV store and object store.
    pub fn deploy(n: usize, kv: Arc<K>, store: Arc<S>) -> Self {
        assert!(n >= 1, "need at least one server");
        // Part-namespaced tracers keep span/trace ids disjoint across
        // the pool, so a pool-wide drain merges without collisions.
        let servers: Vec<Arc<DieselServer<K, S>>> = (0..n)
            .map(|i| {
                let server = DieselServer::new(kv.clone(), store.clone());
                let tracer = Tracer::new(server.registry()).with_part((i + 1) as u16);
                Arc::new(server.with_tracer(tracer))
            })
            .collect();
        let backends: Vec<Channel<ServerRequest, ServerReply>> =
            servers.iter().enumerate().map(|(i, s)| s.direct_channel(i)).collect();
        ServerPool { servers, balance: BalancedChannel::new(backends), next: AtomicUsize::new(0) }
    }

    /// Deploy `n` servers with the telemetry plane live on each: an
    /// env-configured flight recorder, the given per-tenant SLO targets,
    /// and a background driver ticking both on the system clock. Every
    /// front-end watches the same targets against its own registry;
    /// `slo.health` gauges merge across the pool via [`stats`](Self::stats)
    /// (min over servers, since a breach zeroes the gauge — merge keeps
    /// the last-merged value per id, and per-server ids are identical, so
    /// read per-server health from [`server`](Self::server) when it
    /// matters).
    pub fn deploy_with_telemetry(
        n: usize,
        kv: Arc<K>,
        store: Arc<S>,
        targets: Vec<crate::SloTarget>,
    ) -> Self {
        assert!(n >= 1, "need at least one server");
        let servers: Vec<Arc<DieselServer<K, S>>> = (0..n)
            .map(|i| {
                let server = DieselServer::new(kv.clone(), store.clone());
                let tracer = Tracer::new(server.registry()).with_part((i + 1) as u16);
                Arc::new(
                    server.with_tracer(tracer).with_slo_targets(targets.clone()).start_telemetry(),
                )
            })
            .collect();
        let backends: Vec<Channel<ServerRequest, ServerReply>> =
            servers.iter().enumerate().map(|(i, s)| s.direct_channel(i)).collect();
        ServerPool { servers, balance: BalancedChannel::new(backends), next: AtomicUsize::new(0) }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The server a new client should connect to (round-robin, the
    /// load-balancing a deployment would do at connect time).
    pub fn assign(&self) -> Arc<DieselServer<K, S>> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.servers.len();
        self.servers[i].clone()
    }

    /// A specific server (tests / targeted operations).
    pub fn server(&self, i: usize) -> &Arc<DieselServer<K, S>> {
        &self.servers[i]
    }

    /// The pool as a client connection: each request load-balances
    /// across all servers.
    pub fn channel(self: &Arc<Self>) -> ServerConn {
        self.clone()
    }

    /// One merged observability snapshot for the whole deployment: every
    /// front-end's own `server.*` counters summed together, plus the
    /// *shared* KV and store backends counted exactly once (merging each
    /// server's [`DieselServer::stats_snapshot`] would multiply the
    /// backend counters by the pool size).
    pub fn stats(&self) -> diesel_obs::RegistrySnapshot {
        let mut merged = diesel_obs::RegistrySnapshot::default();
        for s in &self.servers {
            merged.merge(&s.own_snapshot());
        }
        if let Some(first) = self.servers.first() {
            if let Some(kv) = first.meta().kv().obs_snapshot() {
                merged.merge(&kv);
            }
            if let Some(store) = first.store().obs_snapshot() {
                merged.merge(&store);
            }
        }
        merged
    }

    /// The pool-wide Prometheus scrape: the merged [`stats`](Self::stats)
    /// snapshot rendered in text exposition format. Same double-count-free
    /// merge as `stats()`, so backend series appear exactly once.
    pub fn scrape(&self) -> String {
        diesel_obs::render_prometheus(&self.stats())
    }

    /// Drain every front-end's recorded spans into one list, ordered
    /// like a single tracer's drain (by trace id then span id — part
    /// namespacing keeps ids disjoint across servers).
    pub fn drain_trace(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = Vec::new();
        for s in &self.servers {
            spans.extend(s.tracer().drain());
        }
        spans.sort_by_key(|s| (s.trace, s.id));
        spans
    }
}

impl<K: KvStore + 'static, S: ObjectStore + 'static> Service<ServerRequest, ServerReply>
    for ServerPool<K, S>
{
    fn call(&self, req: ServerRequest) -> diesel_net::Result<ServerReply> {
        self.balance.call(req)
    }

    fn endpoint(&self) -> Endpoint {
        self.balance.endpoint()
    }
}

impl<K, S> std::fmt::Debug for ServerPool<K, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerPool").field("servers", &self.servers.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, DieselClient};
    use diesel_chunk::ChunkBuilderConfig;
    use diesel_kv::ShardedKv;
    use diesel_store::MemObjectStore;

    fn pool(n: usize) -> ServerPool<ShardedKv, MemObjectStore> {
        ServerPool::deploy(n, Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new()))
    }

    #[test]
    fn round_robin_assignment() {
        let p = pool(3);
        assert_eq!(p.len(), 3);
        // Six clients spread 2-2-2 across servers (by Arc identity).
        let mut counts = [0usize; 3];
        for _ in 0..6 {
            let s = p.assign();
            for (i, srv) in (0..3).map(|i| (i, p.server(i))) {
                if Arc::ptr_eq(&s, srv) {
                    counts[i] += 1;
                }
            }
        }
        assert_eq!(counts, [2, 2, 2]);
    }

    #[test]
    fn writes_through_one_server_visible_through_all() {
        // The servers share the KV + store, so they are interchangeable —
        // the statelessness Fig. 10a relies on.
        let p = pool(3);
        let writer = DieselClient::connect_with(
            p.assign(),
            "ds",
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() },
            },
        );
        for i in 0..40 {
            writer.put(&format!("f{i:02}"), &[i as u8; 100]).unwrap();
        }
        writer.flush().unwrap();

        for i in 0..3 {
            let reader = DieselClient::connect(p.server(i).clone(), "ds");
            reader.download_meta().unwrap();
            assert_eq!(reader.get("f07").unwrap().as_ref(), &vec![7u8; 100][..]);
            assert_eq!(reader.file_list().unwrap().len(), 40);
        }
    }

    #[test]
    fn concurrent_clients_across_servers() {
        let p = Arc::new(pool(5));
        let handles: Vec<_> = (0..10)
            .map(|t| {
                let p = p.clone();
                std::thread::spawn(move || {
                    let c = DieselClient::connect_with(
                        p.assign(),
                        "ds",
                        ClientConfig {
                            chunk: ChunkBuilderConfig {
                                target_chunk_size: 2048,
                                ..Default::default()
                            },
                        },
                    );
                    for i in 0..50 {
                        c.put(&format!("t{t}/f{i}"), &[t as u8; 64]).unwrap();
                    }
                    c.flush().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let check = DieselClient::connect(p.assign(), "ds");
        check.download_meta().unwrap();
        assert_eq!(check.file_list().unwrap().len(), 500);
        let rec = p.server(0).meta().dataset_record("ds").unwrap();
        assert_eq!(rec.file_count, 500);
    }

    #[test]
    fn stats_request_per_server_and_pool_aggregation() {
        // Three front-ends over one backend: each server's own executor
        // counters are disjoint, every `ServerRequest::Stats` reply merges
        // the shared KV exactly once, and the pool-level aggregate sums
        // the front-ends without multiplying the backend.
        let p = pool(3);
        let writer = DieselClient::connect_with(
            p.server(0).clone(),
            "ds",
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() },
            },
        );
        for i in 0..12 {
            writer.put(&format!("f{i:02}"), &[i as u8; 100]).unwrap();
        }
        writer.flush().unwrap();

        // Server i serves i+1 file reads — distinct per-node counters.
        for i in 0..3 {
            let reader = DieselClient::connect(p.server(i).clone(), "ds");
            reader.download_meta().unwrap();
            for j in 0..=i {
                reader.get(&format!("f{j:02}")).unwrap();
            }
        }
        for i in 0..3u64 {
            let own = p.server(i as usize).own_snapshot();
            assert_eq!(own.sum_counter("server.file_reads"), i + 1, "server {i} front-end counter");
        }

        // The wire endpoint on each server reports its own front-end
        // counters plus the shared backend, merged into one snapshot.
        let via_rpc =
            p.server(1).handle(crate::api::ServerRequest::Stats).unwrap().into_stats().unwrap();
        assert_eq!(via_rpc.sum_counter("server.file_reads"), 2);
        let backend_puts = via_rpc.sum_counter("kv.puts");
        assert!(backend_puts > 0, "shared KV metrics ride along in the reply");

        // Pool aggregate: front-end counters sum, backend counted once.
        let agg = p.stats();
        assert_eq!(agg.sum_counter("server.file_reads"), 1 + 2 + 3);
        assert_eq!(agg.sum_counter("kv.puts"), backend_puts, "backend must not be multiplied");
    }

    #[test]
    fn pool_channel_spreads_requests_across_servers() {
        // One client, per-request balancing: every server in the pool
        // sees traffic from the same connection.
        let p = Arc::new(pool(3));
        let c: DieselClient<ShardedKv, MemObjectStore> = DieselClient::connect_channel_with(
            p.channel(),
            "ds",
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() },
            },
        );
        for i in 0..30 {
            c.put(&format!("f{i:02}"), &[i as u8; 120]).unwrap();
        }
        c.flush().unwrap();
        c.download_meta().unwrap();
        for i in 0..30 {
            assert_eq!(c.get(&format!("f{i:02}")).unwrap().as_ref(), &vec![i as u8; 120][..]);
        }
        assert_eq!(c.file_list().unwrap().len(), 30);
        // Round-robin actually rotated: the balance index moved well past
        // the pool size.
        assert_eq!(p.balance.len(), 3);
    }
}
