//! The DIESEL server: unified data + metadata front over the object
//! store and the KV database (Fig. 2).

use std::collections::HashMap;
use std::sync::Arc;

use diesel_chunk::{compact_chunk, mark_deleted, ChunkId, ChunkIdGenerator, SealedChunk};
use diesel_exec::WorkPool;
use diesel_kv::KvStore;
use diesel_meta::recovery::{
    chunk_object_key, recover_from_timestamp, recover_full, RecoveryReport,
};
use diesel_meta::{DirEntry, FileMeta, MetaService, MetaSnapshot};
use diesel_obs::{
    trace, Counter, FlightRecorder, RecorderConfig, RecorderDriver, Registry, RegistrySnapshot,
    SloMonitor, SloTarget, Tracer,
};
use diesel_store::{Bytes, ObjectStore};
use diesel_util::Mutex;

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::executor::plan_chunk_reads;
use crate::{DieselError, Result};

/// Statistics of a purge (`DL_purge`) sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PurgeReport {
    /// Chunks rewritten.
    pub chunks_compacted: u64,
    /// Chunks removed entirely (all files deleted).
    pub chunks_removed: u64,
    /// Payload bytes reclaimed.
    pub bytes_reclaimed: u64,
}

/// Per-server executor counters, registered under `server.*`. The
/// read-path counters (`server.file_reads`, `server.chunks_fetched`)
/// are *not* held here: they carry a `{dataset=…}` label per tenant and
/// are resolved from the registry at the call site, so per-tenant QPS
/// is attributable and cluster totals come from `sum_counter`.
struct Metrics {
    chunks_ingested: Counter,
    merged_reads: Counter,
    merged_requests: Counter,
    purge_chunks_compacted: Counter,
    purge_chunks_removed: Counter,
    purge_bytes_reclaimed: Counter,
    refreshes: Counter,
    refresh_chunks_added: Counter,
    refresh_chunks_removed: Counter,
    refresh_chunks_rechecked: Counter,
    refresh_files_added: Counter,
    refresh_files_removed: Counter,
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        Metrics {
            chunks_ingested: registry.counter("server.chunks_ingested", &[]),
            merged_reads: registry.counter("server.merged_reads", &[]),
            merged_requests: registry.counter("server.merged_requests", &[]),
            purge_chunks_compacted: registry.counter("server.purge.chunks_compacted", &[]),
            purge_chunks_removed: registry.counter("server.purge.chunks_removed", &[]),
            purge_bytes_reclaimed: registry.counter("server.purge.bytes_reclaimed", &[]),
            refreshes: registry.counter("server.refreshes", &[]),
            refresh_chunks_added: registry.counter("server.refresh.chunks_added", &[]),
            refresh_chunks_removed: registry.counter("server.refresh.chunks_removed", &[]),
            refresh_chunks_rechecked: registry.counter("server.refresh.chunks_rechecked", &[]),
            refresh_files_added: registry.counter("server.refresh.files_added", &[]),
            refresh_files_removed: registry.counter("server.refresh.files_removed", &[]),
        }
    }
}

/// The DIESEL server.
pub struct DieselServer<K, S> {
    meta: MetaService<K>,
    store: Arc<S>,
    ids: ChunkIdGenerator,
    // Chunk header lengths by object key. A chunk's header length is
    // immutable for the object's lifetime (bitmap flips rewrite bytes in
    // place without resizing the header), so caching it removes the
    // 4-byte probe read that used to precede every payload read.
    header_lens: Mutex<HashMap<String, u64>>,
    registry: Arc<Registry>,
    metrics: Metrics,
    pool: WorkPool,
    tracer: Tracer,
    admission: Option<AdmissionController>,
    recorder: Option<Arc<FlightRecorder>>,
    slo: Option<Arc<SloMonitor>>,
    telemetry_driver: Option<RecorderDriver>,
}

impl<K: KvStore, S: ObjectStore> DieselServer<K, S> {
    /// Deploy a server over the given KV database and object store, with
    /// a private metrics registry.
    pub fn new(kv: Arc<K>, store: Arc<S>) -> Self {
        Self::with_registry(kv, store, Arc::new(Registry::default()))
    }

    /// Deploy a server whose `server.*` counters land in `registry`.
    pub fn with_registry(kv: Arc<K>, store: Arc<S>, registry: Arc<Registry>) -> Self {
        let metrics = Metrics::new(&registry);
        let tracer = Tracer::new(&registry);
        DieselServer {
            meta: MetaService::new(kv),
            store,
            ids: ChunkIdGenerator::new(),
            header_lens: Mutex::named("core.server_headers", HashMap::new()),
            registry,
            metrics,
            pool: diesel_exec::global().clone(),
            tracer,
            admission: None,
            recorder: None,
            slo: None,
            telemetry_driver: None,
        }
    }

    /// Gate tenant-carrying requests behind an admission controller
    /// (per-tenant token bucket + global concurrency cap + DRR
    /// fair-share queue, DESIGN.md §14) whose `server.tenant.*` metrics
    /// land in this server's registry.
    pub fn with_admission(mut self, cfg: AdmissionConfig) -> Self {
        self.admission = Some(AdmissionController::with_registry(cfg, Arc::clone(&self.registry)));
        self
    }

    /// Like [`DieselServer::with_admission`], but with a caller-built
    /// controller — e.g. one driven by a
    /// [`MockClock`](diesel_util::MockClock), or shared across the
    /// front-ends of a [`ServerPool`](crate::ServerPool) so the global
    /// concurrency cap spans the whole fleet.
    pub fn with_admission_controller(mut self, admission: AdmissionController) -> Self {
        self.admission = Some(admission);
        self
    }

    /// The admission controller gating this server's tenant requests,
    /// if one is installed.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// Attach a caller-built flight recorder (it must sample this
    /// server's registry). Nothing drives it yet — deterministic
    /// harnesses tick it themselves; live deployments follow with
    /// [`DieselServer::start_telemetry`].
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attach a flight recorder over this server's registry with the
    /// given caps/interval (use [`RecorderConfig::from_env`] for the
    /// `DIESEL_RECORDER_*` knobs).
    pub fn with_recorder_config(self, cfg: RecorderConfig) -> Self {
        let recorder = Arc::new(FlightRecorder::new(Arc::clone(&self.registry), cfg));
        self.with_recorder(recorder)
    }

    /// Declare per-tenant SLO targets, evaluated against the flight
    /// recorder on every telemetry tick. Attaches an env-configured
    /// recorder first if none is present.
    pub fn with_slo_targets(mut self, targets: Vec<SloTarget>) -> Self {
        if self.recorder.is_none() {
            self = self.with_recorder_config(RecorderConfig::from_env());
        }
        if let Some(recorder) = &self.recorder {
            self.slo = Some(Arc::new(SloMonitor::new(
                Arc::clone(&self.registry),
                Arc::clone(recorder),
                targets,
            )));
        }
        self
    }

    /// Spawn the background telemetry driver: one recorder tick per
    /// interval on the registry's clock, each followed by an SLO
    /// evaluation when targets are declared. The driver stops (and its
    /// thread joins) when the server drops. No-op without a recorder;
    /// don't call under `MockClock` (virtual sleeps return instantly —
    /// tick deterministically instead).
    pub fn start_telemetry(mut self) -> Self {
        if let Some(rec) = &self.recorder {
            let slo = self.slo.clone();
            self.telemetry_driver = Some(rec.spawn_with(move || {
                if let Some(monitor) = &slo {
                    monitor.evaluate();
                }
            }));
        }
        self
    }

    /// The attached flight recorder, if any — what `dlcmd top` and the
    /// SLO monitor query.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The SLO monitor evaluating this server's tenants, if configured.
    pub fn slo_monitor(&self) -> Option<&Arc<SloMonitor>> {
        self.slo.as_ref()
    }

    /// Deterministic ID generation for compaction (tests/simulations).
    pub fn with_id_generator(mut self, ids: ChunkIdGenerator) -> Self {
        self.ids = ids;
        self
    }

    /// Execute merged read plans on `pool` instead of the process-wide
    /// [`diesel_exec::global()`] pool (e.g. an inline pool for
    /// deterministic tests, or a pool sharing this server's registry
    /// for unified `exec.*` metrics).
    pub fn with_pool(mut self, pool: WorkPool) -> Self {
        self.pool = pool;
        self
    }

    /// Record request handling into `tracer` instead of the default
    /// `DIESEL_TRACE`-configured one — e.g. a [`Tracer::enabled`] shared
    /// with the client side so one drain yields the whole request tree.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer recording this server's `server.*` spans; drained
    /// remotely via `ServerRequest::Trace`.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metadata service.
    pub fn meta(&self) -> &MetaService<K> {
        &self.meta
    }

    /// The backing object store.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// The registry holding this server's `server.*` counters.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A snapshot of this server's *own* metrics only — what a
    /// [`ServerPool`](crate::ServerPool) merges per front-end so shared
    /// backends are not double counted.
    pub fn own_snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// The full observability picture through this server: its own
    /// `server.*` counters merged with the KV database's `kv.*` and the
    /// object store's `store.*` metrics, when those layers keep
    /// registries. Served remotely as `ServerRequest::Stats`.
    pub fn stats_snapshot(&self) -> RegistrySnapshot {
        let mut snap = self.registry.snapshot();
        if let Some(kv) = self.meta.kv().obs_snapshot() {
            snap.merge(&kv);
        }
        if let Some(store) = self.store.obs_snapshot() {
            snap.merge(&store);
        }
        snap
    }

    // ---- write flow (Fig. 3) ----

    /// Receive one sealed chunk from a client: persist the chunk bytes
    /// and extract its metadata into the KV database. Takes the chunk
    /// by value so the payload moves straight into the store's
    /// refcounted [`Bytes`] without a copy.
    pub fn ingest_chunk(&self, dataset: &str, chunk: SealedChunk) -> Result<()> {
        let SealedChunk { header, bytes } = chunk;
        let key = chunk_object_key(dataset, header.id);
        let size = bytes.len() as u64;
        self.store.put(&key, bytes)?;
        self.meta.ingest_chunk(dataset, &header, size)?;
        self.header_lens.lock().insert(key, header.header_len as u64);
        self.metrics.chunks_ingested.inc();
        Ok(())
    }

    /// The header length of the chunk object at `key`, probed once and
    /// cached (the header is a fixed prefix; its length sits at bytes
    /// 6..10 of the encoding).
    fn chunk_header_len(&self, key: &str) -> Result<u64> {
        if let Some(&len) = self.header_lens.lock().get(key) {
            return Ok(len);
        }
        let head = self.store.get_range(key, 6, 4)?;
        let head: [u8; 4] = head
            .as_ref()
            .try_into()
            .map_err(|_| DieselError::Client(format!("chunk object {key} truncated")))?;
        let len = u32::from_le_bytes(head) as u64;
        self.header_lens.lock().insert(key.to_owned(), len);
        Ok(len)
    }

    // ---- read flow (Fig. 4) ----

    /// Read one file by path (metadata lookup + range read).
    pub fn read_file(&self, dataset: &str, path: &str) -> Result<Bytes> {
        let meta = self.meta.file_meta(dataset, path)?;
        self.read_by_meta(dataset, &meta)
    }

    /// Read one file when the caller already holds its metadata (clients
    /// with a snapshot skip the server-side lookup entirely).
    pub fn read_by_meta(&self, dataset: &str, meta: &FileMeta) -> Result<Bytes> {
        self.registry.counter("server.file_reads", &[("dataset", dataset)]).inc();
        let key = chunk_object_key(dataset, meta.chunk);
        // The payload offset is relative to the chunk payload; the chunk
        // header precedes it.
        let header_len = self.chunk_header_len(&key)?;
        let _span = if trace::active() {
            trace::span("store.get_range", &[("key", key.as_str())])
        } else {
            trace::SpanGuard::default()
        };
        let data = self.store.get_range(&key, header_len + meta.offset, meta.length as usize)?;
        Ok(data)
    }

    /// Read a whole chunk (what the task-grained cache and the chunk-wise
    /// shuffle issue).
    pub fn read_chunk(&self, dataset: &str, chunk: ChunkId) -> Result<Bytes> {
        self.registry.counter("server.chunks_fetched", &[("dataset", dataset)]).inc();
        let key = chunk_object_key(dataset, chunk);
        let _span = if trace::active() {
            trace::span("store.get", &[("key", key.as_str())])
        } else {
            trace::SpanGuard::default()
        };
        Ok(self.store.get(&key)?)
    }

    /// Batched read with the request executor: requests are sorted and
    /// merged into one ranged read per chunk (Fig. 2). Results come back
    /// in the original request order.
    pub fn read_files_merged(&self, dataset: &str, paths: &[&str]) -> Result<Vec<Bytes>> {
        // One batch: a merged read is never visible without its request
        // count, so `merged_requests / merged_reads` is a sound average.
        self.registry.batch(|| {
            self.metrics.merged_reads.inc();
            self.metrics.merged_requests.add(paths.len() as u64);
        });
        let metas: Vec<FileMeta> = paths
            .iter()
            .map(|p| self.meta.file_meta(dataset, p))
            .collect::<diesel_meta::Result<_>>()?;
        let plans = plan_chunk_reads(&metas);
        // Execute the per-chunk plans concurrently on the work pool; the
        // slices land in request-order slots, so the response (and the
        // first error, if any, in plan order) is identical to the serial
        // loop for any worker count.
        let plan_slices = self.pool.try_map(plans, |_, plan| {
            let key = chunk_object_key(dataset, plan.chunk);
            // Per-plan span: the work pool carries the handler's trace
            // context onto whichever worker runs this plan.
            let _span = if trace::active() {
                let n = plan.requests.len().to_string();
                trace::span("server.plan_read", &[("key", key.as_str()), ("files", n.as_str())])
            } else {
                trace::SpanGuard::default()
            };
            let header_len = self.chunk_header_len(&key)?;
            // One merged read covering every requested byte in the chunk.
            let base = plan.min_offset();
            let span = plan.merged_span() as usize;
            let merged = self.store.get_range(&key, header_len + base, span)?;
            let mut slices = Vec::with_capacity(plan.requests.len());
            for (idx, meta) in &plan.requests {
                let start = (meta.offset - base) as usize;
                let end = start + meta.length as usize;
                if end > merged.len() {
                    return Err(DieselError::Client(format!(
                        "merged read short for request {idx}"
                    )));
                }
                slices.push((*idx, merged.slice(start..end)));
            }
            Ok(slices)
        })?;
        let mut out: Vec<Option<Bytes>> = vec![None; paths.len()];
        for (idx, bytes) in plan_slices.into_iter().flatten() {
            if let Some(slot) = out.get_mut(idx) {
                *slot = Some(bytes);
            }
        }
        out.into_iter()
            .enumerate()
            .map(|(idx, b)| {
                b.ok_or_else(|| {
                    DieselError::Client(format!("request {idx} not covered by any read plan"))
                })
            })
            .collect()
    }

    // ---- metadata passthrough ----

    /// `stat` by path.
    pub fn stat(&self, dataset: &str, path: &str) -> Result<FileMeta> {
        Ok(self.meta.file_meta(dataset, path)?)
    }

    /// `readdir`.
    pub fn readdir(&self, dataset: &str, dir: &str) -> Result<Vec<DirEntry>> {
        Ok(self.meta.readdir(dataset, dir)?)
    }

    /// Materialize the dataset's metadata snapshot (what clients
    /// download).
    pub fn build_snapshot(&self, dataset: &str) -> Result<MetaSnapshot> {
        Ok(self.meta.build_snapshot(dataset)?)
    }

    // ---- mutation & housekeeping ----

    /// Delete one file: metadata removal + in-place bitmap flip in the
    /// stored chunk (so chunks stay self-contained for recovery).
    pub fn delete_file(&self, dataset: &str, path: &str, now_ms: u64) -> Result<()> {
        let meta = self.meta.delete_file(dataset, path, now_ms)?;
        let key = chunk_object_key(dataset, meta.chunk);
        // The store keeps its own reference, so `into_vec` materialises a
        // private copy of the chunk for the in-place bitmap flip — a
        // deliberate write-path copy, ledgered as such.
        let shared = self.store.get(&key)?;
        diesel_obs::record_copy("delete_rewrite", shared.len() as u64);
        let mut bytes = shared.into_vec();
        mark_deleted(&mut bytes, path)?;
        self.store.put(&key, Bytes::from(bytes))?;
        Ok(())
    }

    /// `DL_purge`: rewrite chunks with deletion holes, dropping dead
    /// bytes; fully-deleted chunks are removed.
    pub fn purge_dataset(&self, dataset: &str, now_ms: u64) -> Result<PurgeReport> {
        let mut report = PurgeReport::default();
        for id in self.meta.chunk_ids(dataset)? {
            let record = self.meta.chunk_record(dataset, id)?;
            if record.deleted_count() == 0 {
                continue;
            }
            let key = chunk_object_key(dataset, id);
            let bytes = self.store.get(&key)?;
            let old_header = diesel_chunk::ChunkHeader::decode(&bytes)?;
            let live_bytes: u64 = old_header
                .files
                .iter()
                .enumerate()
                .filter(|(i, _)| !old_header.bitmap.is_deleted(*i))
                .map(|(_, f)| f.length)
                .sum();
            let Some((new_header, new_bytes, stats)) = compact_chunk(&bytes, &self.ids, now_ms)?
            else {
                continue;
            };
            report.bytes_reclaimed += stats.reclaimed_bytes;
            // Remove the old chunk's contribution to the dataset counters;
            // the re-ingest below adds the rewritten chunk's back.
            self.meta.adjust_dataset_counters(
                dataset,
                -1,
                -(stats.live_files as i64),
                -(live_bytes as i64),
                now_ms,
            )?;
            // Remove the old chunk object and record. File records were
            // already removed at delete time; live files need re-pointing
            // to the new chunk, which re-ingest performs.
            self.store.delete(&key)?;
            self.header_lens.lock().remove(&key);
            self.meta
                .kv()
                .delete(&diesel_meta::keys::chunk_key(dataset, id))
                .map_err(diesel_meta::MetaError::Kv)?;
            if new_header.file_count() == 0 {
                report.chunks_removed += 1;
                // Nothing left to store; adjust the dataset chunk count.
                continue;
            }
            let new_key = chunk_object_key(dataset, new_header.id);
            let new_len = new_bytes.len() as u64;
            self.store.put(&new_key, Bytes::from(new_bytes))?;
            self.meta.ingest_chunk(dataset, &new_header, new_len)?;
            report.chunks_compacted += 1;
        }
        self.registry.batch(|| {
            self.metrics.purge_chunks_compacted.add(report.chunks_compacted);
            self.metrics.purge_chunks_removed.add(report.chunks_removed);
            self.metrics.purge_bytes_reclaimed.add(report.bytes_reclaimed);
        });
        Ok(report)
    }

    /// `DL_delete_dataset`: drop every chunk object and metadata key.
    pub fn delete_dataset(&self, dataset: &str) -> Result<u64> {
        let mut removed = 0u64;
        let prefix = format!("{dataset}/");
        for key in self.store.list_prefix(&prefix) {
            if self.store.delete(&key)? {
                removed += 1;
            }
        }
        self.header_lens.lock().retain(|k, _| !k.starts_with(&prefix));
        self.meta.delete_dataset(dataset)?;
        Ok(removed)
    }

    /// Incrementally refresh a stale snapshot instead of rebuilding it
    /// from scratch (§4.1.3 requires clients to re-download when the
    /// timestamp mismatches; for large datasets most of the snapshot is
    /// still valid, so this transfers only the delta):
    ///
    /// * chunks that vanished (purge/delete-dataset) drop their files;
    /// * new chunks are read from their self-contained headers;
    /// * surviving chunks whose record is newer than the snapshot are
    ///   re-checked against their deletion bitmaps.
    ///
    /// Returns the refreshed snapshot — byte-equivalent in content to a
    /// freshly built one. Delta statistics land in the server's
    /// `server.refresh.*` counters (one atomic batch per refresh).
    pub fn refresh_snapshot(&self, snapshot: &MetaSnapshot) -> Result<MetaSnapshot> {
        let dataset = snapshot.dataset.as_str();
        let record = self.meta.dataset_record(dataset)?;
        if snapshot.is_fresh(dataset, record.updated_ms) {
            return Ok(snapshot.clone());
        }
        let mut chunks_added = 0u64;
        let mut files_added = 0u64;
        let current: Vec<ChunkId> = self.meta.chunk_ids(dataset)?;
        let current_set: std::collections::HashSet<ChunkId> = current.iter().copied().collect();
        let old_set: std::collections::HashSet<ChunkId> = snapshot.chunks.iter().copied().collect();

        // Which surviving chunks changed since the snapshot?
        let mut rechecked: std::collections::HashMap<ChunkId, diesel_meta::ChunkRecord> =
            std::collections::HashMap::new();
        for &id in &current {
            if old_set.contains(&id) {
                let rec = self.meta.chunk_record(dataset, id)?;
                if rec.updated_ms > snapshot.updated_ms {
                    rechecked.insert(id, rec);
                }
            }
        }

        // Keep files from surviving chunks, applying newer bitmaps.
        let before = snapshot.files.len();
        let mut files: Vec<diesel_meta::snapshot::SnapshotFile> = snapshot
            .files
            .iter()
            .filter(|f| {
                if !current_set.contains(&f.meta.chunk) {
                    return false;
                }
                match rechecked.get(&f.meta.chunk) {
                    Some(rec) => !rec.bitmap.is_deleted(f.meta.index_in_chunk as usize),
                    None => true,
                }
            })
            .cloned()
            .collect();
        let files_removed = (before - files.len()) as u64;
        let chunks_removed =
            snapshot.chunks.iter().filter(|c| !current_set.contains(c)).count() as u64;
        let chunks_rechecked = rechecked.len() as u64;

        // Scan new chunks from their self-contained headers.
        for &id in &current {
            if old_set.contains(&id) {
                continue;
            }
            chunks_added += 1;
            let bytes = self.store.get(&chunk_object_key(dataset, id))?;
            let header = diesel_chunk::ChunkHeader::decode(&bytes)?;
            for (i, f) in header.files.iter().enumerate() {
                if header.bitmap.is_deleted(i) {
                    continue;
                }
                files_added += 1;
                files.push(diesel_meta::snapshot::SnapshotFile {
                    path: f.name.clone(),
                    meta: FileMeta {
                        chunk: id,
                        index_in_chunk: i as u32,
                        offset: f.offset,
                        length: f.length,
                        uploaded_ms: header.updated_ms,
                    },
                });
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        self.registry.batch(|| {
            self.metrics.refreshes.inc();
            self.metrics.refresh_chunks_added.add(chunks_added);
            self.metrics.refresh_chunks_removed.add(chunks_removed);
            self.metrics.refresh_chunks_rechecked.add(chunks_rechecked);
            self.metrics.refresh_files_added.add(files_added);
            self.metrics.refresh_files_removed.add(files_removed);
        });
        Ok(MetaSnapshot {
            dataset: dataset.to_owned(),
            updated_ms: record.updated_ms,
            chunks: current,
            files,
        })
    }

    // ---- fault recovery (§4.1.2) ----

    /// Rebuild all of `dataset`'s metadata from chunk headers (power
    /// loss, scenario b).
    pub fn recover_metadata_full(&self, dataset: &str) -> Result<RecoveryReport> {
        Ok(recover_full(&self.meta, self.store.as_ref(), dataset)?)
    }

    /// Rebuild metadata for chunks written at/after `since_secs`
    /// (scenario a).
    pub fn recover_metadata_since(&self, dataset: &str, since_secs: u32) -> Result<RecoveryReport> {
        Ok(recover_from_timestamp(&self.meta, self.store.as_ref(), dataset, since_secs)?)
    }
}

impl<K, S> std::fmt::Debug for DieselServer<K, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DieselServer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::{ChunkBuilder, ChunkBuilderConfig, ChunkWriter};
    use diesel_kv::ShardedKv;
    use diesel_store::MemObjectStore;

    type Server = DieselServer<ShardedKv, MemObjectStore>;

    fn server() -> Server {
        DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new()))
            .with_id_generator(ChunkIdGenerator::deterministic(7, 7, 70_000))
    }

    fn ingest_files(s: &Server, dataset: &str, files: &[(&str, Vec<u8>)], chunk_size: usize) {
        let ids = ChunkIdGenerator::deterministic(1, 1, 1_000);
        let cfg = ChunkBuilderConfig { target_chunk_size: chunk_size, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1_000_000);
        for (n, d) in files {
            w.add_file(n, d).unwrap();
        }
        for sealed in w.finish() {
            s.ingest_chunk(dataset, sealed).unwrap();
        }
    }

    fn file(i: usize, len: usize) -> (String, Vec<u8>) {
        (format!("d{}/f{i:03}", i % 3), vec![(i % 251) as u8; len])
    }

    #[test]
    fn write_then_read_roundtrip() {
        let s = server();
        let files: Vec<(String, Vec<u8>)> = (0..30).map(|i| file(i, 100)).collect();
        let refs: Vec<(&str, Vec<u8>)> =
            files.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
        ingest_files(&s, "ds", &refs, 1024);
        for (n, d) in &files {
            assert_eq!(s.read_file("ds", n).unwrap().as_ref(), &d[..], "{n}");
        }
        assert!(matches!(s.read_file("ds", "ghost"), Err(DieselError::Meta(_))));
        let rec = s.meta().dataset_record("ds").unwrap();
        assert_eq!(rec.file_count, 30);
        assert!(rec.chunk_count > 1);
    }

    #[test]
    fn merged_reads_equal_individual_reads() {
        let s = server();
        let files: Vec<(String, Vec<u8>)> = (0..40).map(|i| file(i, 64)).collect();
        let refs: Vec<(&str, Vec<u8>)> =
            files.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
        ingest_files(&s, "ds", &refs, 2048);
        let paths: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        let merged = s.read_files_merged("ds", &paths).unwrap();
        assert_eq!(merged.len(), 40);
        for (i, (n, d)) in files.iter().enumerate() {
            assert_eq!(merged[i].as_ref(), &d[..], "merged read of {n}");
        }
    }

    #[test]
    fn read_chunk_returns_full_self_contained_chunk() {
        let s = server();
        ingest_files(&s, "ds", &[("a", vec![1; 10]), ("b", vec![2; 20])], 1 << 20);
        let ids = s.meta().chunk_ids("ds").unwrap();
        assert_eq!(ids.len(), 1);
        let chunk = s.read_chunk("ds", ids[0]).unwrap();
        let r = diesel_chunk::ChunkReader::parse(&chunk).unwrap();
        assert_eq!(r.read_file("a").unwrap(), &[1u8; 10][..]);
    }

    #[test]
    fn delete_then_purge_reclaims_space() {
        let s = server();
        let files: Vec<(String, Vec<u8>)> = (0..12).map(|i| file(i, 500)).collect();
        let refs: Vec<(&str, Vec<u8>)> =
            files.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
        ingest_files(&s, "ds", &refs, 2048);
        let before_bytes = s.store().total_bytes();

        s.delete_file("ds", &files[0].0, 2_000_000).unwrap();
        s.delete_file("ds", &files[1].0, 2_000_001).unwrap();
        assert!(s.read_file("ds", &files[0].0).is_err());

        let report = s.purge_dataset("ds", 2_000_002).unwrap();
        assert!(report.chunks_compacted >= 1);
        assert_eq!(report.bytes_reclaimed, 1000);
        assert!(s.store().total_bytes() < before_bytes);

        // Remaining files still readable after compaction re-pointing.
        for (n, d) in files.iter().skip(2) {
            assert_eq!(s.read_file("ds", n).unwrap().as_ref(), &d[..], "{n} after purge");
        }
        // Purge again: nothing to do.
        let again = s.purge_dataset("ds", 2_000_003).unwrap();
        assert_eq!(again, PurgeReport::default());
    }

    #[test]
    fn purge_removes_fully_deleted_chunks() {
        let s = server();
        // One chunk with exactly two files; delete both.
        let ids = ChunkIdGenerator::deterministic(2, 2, 500);
        let mut b = ChunkBuilder::with_default_config();
        b.add_file("x", b"xx").unwrap();
        b.add_file("y", b"yy").unwrap();
        let (header, bytes) = b.seal(ids.next_id(), 1);
        s.ingest_chunk("ds", SealedChunk { header, bytes: bytes.into() }).unwrap();
        s.delete_file("ds", "x", 2).unwrap();
        s.delete_file("ds", "y", 3).unwrap();
        let report = s.purge_dataset("ds", 4).unwrap();
        assert_eq!(report.chunks_removed, 1);
        assert_eq!(s.store().len(), 0, "empty chunk object must be gone");
    }

    #[test]
    fn delete_dataset_clears_store_and_meta() {
        let s = server();
        ingest_files(&s, "ds", &[("a", vec![0; 10])], 1024);
        ingest_files(&s, "other", &[("b", vec![0; 10])], 1024);
        let removed = s.delete_dataset("ds").unwrap();
        assert_eq!(removed, 1);
        assert!(s.meta().dataset_record("ds").is_err());
        assert!(s.read_file("other", "b").is_ok());
    }

    #[test]
    fn metadata_recovery_after_power_loss() {
        let s = server();
        let files: Vec<(String, Vec<u8>)> = (0..25).map(|i| file(i, 200)).collect();
        let refs: Vec<(&str, Vec<u8>)> =
            files.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
        ingest_files(&s, "ds", &refs, 2048);
        s.delete_file("ds", &files[5].0, 9_999_999).unwrap();

        s.meta().kv().clear();
        let report = s.recover_metadata_full("ds").unwrap();
        assert_eq!(report.files_recovered, 24, "deleted file must stay deleted");
        for (i, (n, d)) in files.iter().enumerate() {
            if i == 5 {
                assert!(s.read_file("ds", n).is_err());
            } else {
                assert_eq!(s.read_file("ds", n).unwrap().as_ref(), &d[..]);
            }
        }
    }

    #[test]
    fn incremental_refresh_matches_full_rebuild() {
        let s = server();
        let files: Vec<(String, Vec<u8>)> = (0..30).map(|i| file(i, 120)).collect();
        let refs: Vec<(&str, Vec<u8>)> =
            files.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
        ingest_files(&s, "ds", &refs, 2048);
        let snap0 = s.build_snapshot("ds").unwrap();

        // Fresh snapshot: refresh is a no-op and counts nothing.
        let same = s.refresh_snapshot(&snap0).unwrap();
        assert_eq!(same, snap0);
        assert_eq!(s.own_snapshot().counter("server.refreshes"), 0);

        // Mutate: delete two files, write new ones, purge (rewrites a
        // chunk under a fresh ID).
        s.delete_file("ds", &files[0].0, 5_000_000).unwrap();
        s.delete_file("ds", &files[4].0, 5_000_001).unwrap();
        let ids = ChunkIdGenerator::deterministic(8, 8, 90_000);
        let mut b = ChunkBuilder::with_default_config();
        b.add_file("new/one", b"fresh").unwrap();
        let (h, bytes) = b.seal(ids.next_id(), 5_000_002);
        s.ingest_chunk("ds", SealedChunk { header: h, bytes: bytes.into() }).unwrap();
        s.purge_dataset("ds", 5_000_003).unwrap();

        let refreshed = s.refresh_snapshot(&snap0).unwrap();
        let mut full = s.build_snapshot("ds").unwrap();
        full.files.sort_by(|a, b| a.path.cmp(&b.path));
        let mut refreshed_sorted = refreshed.clone();
        refreshed_sorted.files.sort_by(|a, b| a.path.cmp(&b.path));
        assert_eq!(refreshed_sorted.files, full.files);
        assert_eq!(refreshed.chunks, full.chunks);
        assert_eq!(refreshed.updated_ms, full.updated_ms);
        let stats = s.own_snapshot();
        assert_eq!(stats.counter("server.refreshes"), 1);
        assert!(stats.counter("server.refresh.chunks_added") >= 1, "new + compacted chunk");
        assert!(stats.counter("server.refresh.files_removed") >= 2);
        // The refreshed snapshot passes the freshness check.
        let rec = s.meta().dataset_record("ds").unwrap();
        assert!(refreshed.is_fresh("ds", rec.updated_ms));
    }

    #[test]
    fn refresh_applies_bitmap_only_deletions() {
        // A delete without purge leaves the chunk in place; the refresh
        // must still drop the file via the chunk record's newer bitmap.
        let s = server();
        let files: Vec<(String, Vec<u8>)> = (0..6).map(|i| file(i, 80)).collect();
        let refs: Vec<(&str, Vec<u8>)> =
            files.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
        ingest_files(&s, "ds", &refs, 1 << 20); // one chunk
        let snap0 = s.build_snapshot("ds").unwrap();
        s.delete_file("ds", &files[2].0, 7_000_000).unwrap();
        let refreshed = s.refresh_snapshot(&snap0).unwrap();
        let stats = s.own_snapshot();
        assert_eq!(stats.counter("server.refresh.chunks_added"), 0);
        assert_eq!(stats.counter("server.refresh.chunks_rechecked"), 1);
        assert_eq!(stats.counter("server.refresh.files_removed"), 1);
        assert!(refreshed.files.iter().all(|f| f.path != files[2].0));
        assert_eq!(refreshed.files.len(), 5);
    }

    #[test]
    fn snapshot_served_by_server() {
        let s = server();
        ingest_files(&s, "ds", &[("p/q", vec![9; 40])], 1024);
        let snap = s.build_snapshot("ds").unwrap();
        assert_eq!(snap.files.len(), 1);
        let ns = snap.build_namespace();
        assert_eq!(ns.stat("p/q").unwrap().length, 40);
        assert_eq!(s.readdir("ds", "p").unwrap().len(), 1);
    }
}
