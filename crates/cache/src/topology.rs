//! Client ranks, master election and connection topology (§4.2, Fig. 7).

use crate::{CacheError, Result};

/// Identity of one DIESEL client instance: which physical node it runs
/// on and its global rank within the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId {
    /// Physical node index (0-based).
    pub node: usize,
    /// Global rank of this client across the task (0-based, unique).
    pub rank: usize,
}

/// The task's client layout: which clients exist, which are masters.
#[derive(Debug, Clone)]
pub struct Topology {
    clients: Vec<PeerId>,
    /// Master rank per node: the smallest rank on that node.
    masters: Vec<usize>,
}

impl Topology {
    /// A uniform layout: `nodes` physical nodes, `clients_per_node` I/O
    /// workers each (e.g. PyTorch `num_workers`), ranked node-major.
    pub fn uniform(nodes: usize, clients_per_node: usize) -> Result<Self> {
        if nodes < 1 || clients_per_node < 1 {
            return Err(CacheError::InvalidMembership(format!(
                "a uniform topology needs at least one node and one client per node \
                 (got {nodes} nodes × {clients_per_node} clients)"
            )));
        }
        let clients: Vec<PeerId> = (0..nodes)
            .flat_map(|node| {
                (0..clients_per_node)
                    .map(move |i| PeerId { node, rank: node * clients_per_node + i })
            })
            .collect();
        Self::from_clients(clients)
    }

    /// Build from an explicit client list (ranks must be unique).
    pub fn from_clients(clients: Vec<PeerId>) -> Result<Self> {
        if clients.is_empty() {
            return Err(CacheError::InvalidMembership("a task needs at least one client".into()));
        }
        // Non-empty is checked above, so the fold has a base case.
        let max_node = clients.iter().map(|c| c.node).fold(0, usize::max);
        let mut masters = vec![usize::MAX; max_node + 1];
        for c in &clients {
            if let Some(m) = masters.get_mut(c.node) {
                *m = (*m).min(c.rank);
            }
        }
        if let Some(hole) = masters.iter().position(|&m| m == usize::MAX) {
            return Err(CacheError::InvalidMembership(format!(
                "node {hole} hosts no client but smaller-indexed nodes exist up to {max_node}"
            )));
        }
        Ok(Topology { clients, masters })
    }

    /// Number of physical nodes (p).
    pub fn node_count(&self) -> usize {
        self.masters.len()
    }

    /// Number of clients (n).
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// All clients.
    pub fn clients(&self) -> &[PeerId] {
        &self.clients
    }

    /// The master client's rank on `node` (the smallest rank there;
    /// `usize::MAX` for out-of-range nodes).
    pub fn master_of(&self, node: usize) -> usize {
        self.masters.get(node).copied().unwrap_or(usize::MAX)
    }

    /// Is `client` a master?
    pub fn is_master(&self, client: PeerId) -> bool {
        self.masters.get(client.node) == Some(&client.rank)
    }

    /// Connection count under DIESEL's master-client scheme: every
    /// client holds a connection to every master except itself —
    /// `p × (n − 1)` in total (§4.2).
    pub fn diesel_connection_count(&self) -> usize {
        let p = self.node_count();
        let n = self.client_count();
        // `from_clients` rejects empty client lists, but that invariant
        // lives far from this arithmetic — saturate so the formula is
        // locally total instead of resting on a distant constructor.
        p * n.saturating_sub(1)
    }

    /// Connection count under a full mesh of clients: `n × (n − 1)`.
    pub fn full_mesh_connection_count(&self) -> usize {
        let n = self.client_count();
        n * (n - 1)
    }

    /// Enumerate the DIESEL connections as (client, master-rank) pairs.
    pub fn diesel_connections(&self) -> Vec<(PeerId, usize)> {
        let mut out = Vec::with_capacity(self.diesel_connection_count());
        for &c in &self.clients {
            for node in 0..self.node_count() {
                let m = self.master_of(node);
                if m != c.rank {
                    out.push((c, m));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout_elects_smallest_ranks() {
        let t = Topology::uniform(4, 8).unwrap();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.client_count(), 32);
        for node in 0..4 {
            assert_eq!(t.master_of(node), node * 8);
            assert!(t.is_master(PeerId { node, rank: node * 8 }));
            assert!(!t.is_master(PeerId { node, rank: node * 8 + 1 }));
        }
    }

    #[test]
    fn connection_counts_match_paper_formulas() {
        // Fig. 7's example halves the connections; with p=10, n=160
        // (paper's read tests: 10 nodes × 16 threads) the saving is 16×.
        let t = Topology::uniform(10, 16).unwrap();
        assert_eq!(t.diesel_connection_count(), 10 * (160 - 1));
        assert_eq!(t.full_mesh_connection_count(), 160 * 159);
        assert_eq!(
            t.diesel_connections().len(),
            t.diesel_connection_count(),
            "enumeration must agree with the closed form"
        );
    }

    #[test]
    fn every_file_is_one_hop_away() {
        // Every client must hold a connection to every master (or be that
        // master) — the one-hop property the paper contrasts with
        // DeltaFS's multi-hop routing.
        let t = Topology::uniform(3, 4).unwrap();
        let conns = t.diesel_connections();
        for &c in t.clients() {
            for node in 0..t.node_count() {
                let m = t.master_of(node);
                assert!(
                    m == c.rank || conns.contains(&(c, m)),
                    "client {c:?} cannot reach master {m} in one hop"
                );
            }
        }
    }

    #[test]
    fn single_node_single_client() {
        let t = Topology::uniform(1, 1).unwrap();
        assert_eq!(t.diesel_connection_count(), 0);
        assert_eq!(t.full_mesh_connection_count(), 0);
        assert!(t.is_master(PeerId { node: 0, rank: 0 }));
    }

    #[test]
    fn explicit_uneven_layout() {
        let t = Topology::from_clients(vec![
            PeerId { node: 0, rank: 3 },
            PeerId { node: 0, rank: 7 },
            PeerId { node: 1, rank: 1 },
        ])
        .unwrap();
        assert_eq!(t.master_of(0), 3, "smallest rank on the node is master");
        assert_eq!(t.master_of(1), 1);
        assert_eq!(t.diesel_connection_count(), 2 * 2);
    }

    #[test]
    fn empty_topology_rejected() {
        assert!(matches!(Topology::from_clients(vec![]), Err(CacheError::InvalidMembership(_))));
        assert!(Topology::uniform(0, 4).is_err());
        assert!(Topology::uniform(4, 0).is_err());
    }

    #[test]
    fn node_coverage_holes_rejected() {
        // Node 0 hosts no client while node 1 does: the dense master
        // table would have a hole, so construction must fail.
        let r = Topology::from_clients(vec![PeerId { node: 1, rank: 0 }]);
        assert!(matches!(r, Err(CacheError::InvalidMembership(_))));
    }

    #[test]
    fn connection_count_is_total_even_for_degenerate_layouts() {
        // Regression: `p * (n - 1)` underflowed for n = 0. The public
        // constructors reject that layout, but the arithmetic must not
        // depend on it — build the degenerate value directly.
        let t = Topology { clients: vec![], masters: vec![usize::MAX] };
        assert_eq!(t.diesel_connection_count(), 0, "no clients ⇒ no connections");
    }
}
