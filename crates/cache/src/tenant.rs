//! Multi-tenant ownership of the cache plane (DESIGN.md §14).
//!
//! DIESEL's failure-containment pillar (§4.2) is *per-dataset* task
//! caches; a shared serving fleet therefore hosts many of them at once.
//! [`TenantCacheMap`] is the registry of record for that arrangement:
//! one [`TaskCache`] per tenant (tenant ≡ dataset name), all over the
//! same node plane and backing store, with the node LRU budget
//! partitioned across tenants by **weighted shares with a hard cap** —
//! tenant A filling or churning its cache can never evict tenant B's
//! residency, because A's `TaskCache` evicts only against A's own
//! budget.
//!
//! Budgets are re-partitioned on every register/deregister: each tenant
//! gets `node_budget × weight / Σweights` bytes per node, applied via
//! [`TaskCache::set_capacity_bytes_per_node`] (which shrinks residency
//! synchronously, so a cap is never violated by bytes installed under
//! an older, larger share).
//!
//! Lock order: the tenant map's `tenants` RwLock ranks *below* every
//! `TaskCache` lock (`LOCK_RANKS` in diesel-lint), but the map never
//! holds its guard across a cache call — entries are cloned out first,
//! so the guard is leaf-only in practice.

use std::collections::BTreeMap;
use std::sync::Arc;

use diesel_chunk::ChunkId;
use diesel_exec::WorkPool;
use diesel_obs::Registry;
use diesel_store::ObjectStore;
use diesel_util::RwLock;

use crate::task_cache::{CacheConfig, CachePolicy, RebalanceReport, TaskCache};
use crate::topology::Topology;
use crate::{CacheError, Result};

struct TenantEntry<S> {
    cache: Arc<TaskCache<S>>,
    weight: u64,
}

/// Point-in-time accounting for one tenant (see
/// [`TenantCacheMap::usage`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantUsage {
    /// The tenant (dataset name).
    pub dataset: String,
    /// Fair-share weight.
    pub weight: u64,
    /// Hard per-node byte cap currently assigned.
    pub budget_bytes_per_node: u64,
    /// Bytes resident across all nodes.
    pub resident_bytes: u64,
    /// File reads served.
    pub file_reads: u64,
    /// Reads whose chunk was already resident.
    pub chunk_hits: u64,
    /// Chunks evicted for capacity.
    pub evictions: u64,
}

/// One `TaskCache` per tenant over a shared node plane, with weighted
/// per-tenant byte budgets carved out of the node LRU budget.
pub struct TenantCacheMap<S> {
    topology: Topology,
    backing: Arc<S>,
    /// Total per-node byte budget shared by all tenants.
    node_budget_bytes: u64,
    policy: CachePolicy,
    registry: Arc<Registry>,
    pool: WorkPool,
    tenants: RwLock<BTreeMap<String, TenantEntry<S>>>,
}

impl<S: ObjectStore + 'static> TenantCacheMap<S> {
    /// A tenant map over `topology`/`backing` with `node_budget_bytes`
    /// of cache memory per node to share, and a private registry.
    pub fn new(
        topology: Topology,
        backing: Arc<S>,
        node_budget_bytes: u64,
        policy: CachePolicy,
    ) -> Self {
        Self::with_registry(topology, backing, node_budget_bytes, policy, Arc::default())
    }

    /// A tenant map whose tenants all register their `{dataset=…}`
    /// labelled counters in one shared `registry`.
    pub fn with_registry(
        topology: Topology,
        backing: Arc<S>,
        node_budget_bytes: u64,
        policy: CachePolicy,
        registry: Arc<Registry>,
    ) -> Self {
        TenantCacheMap {
            topology,
            backing,
            node_budget_bytes,
            policy,
            registry,
            pool: diesel_exec::global().clone(),
            tenants: RwLock::named("cache.tenant_map", BTreeMap::new()),
        }
    }

    /// Run every tenant cache's sweeps on `pool` (e.g. an inline pool
    /// for deterministic tests).
    pub fn with_pool(mut self, pool: WorkPool) -> Self {
        self.pool = pool;
        self
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The total per-node byte budget being partitioned.
    pub fn node_budget_bytes(&self) -> u64 {
        self.node_budget_bytes
    }

    /// Register `dataset` as a tenant with fair-share `weight` (≥ 1) and
    /// build its cache over the shared plane. Re-partitions every
    /// tenant's budget. Errors on a duplicate registration or a zero
    /// weight.
    pub fn register(
        &self,
        dataset: impl Into<String>,
        chunks: Vec<ChunkId>,
        weight: u64,
    ) -> Result<Arc<TaskCache<S>>> {
        let dataset = dataset.into();
        if weight == 0 {
            return Err(CacheError::InvalidMembership(format!(
                "tenant {dataset}: weight must be >= 1"
            )));
        }
        let cache = Arc::new(
            TaskCache::with_registry(
                self.topology.clone(),
                Arc::clone(&self.backing),
                dataset.clone(),
                chunks,
                CacheConfig {
                    capacity_bytes_per_node: self.node_budget_bytes,
                    policy: self.policy,
                },
                Arc::clone(&self.registry),
            )?
            .with_pool(self.pool.clone()),
        );
        {
            let mut t = self.tenants.write();
            if t.contains_key(&dataset) {
                return Err(CacheError::InvalidMembership(format!(
                    "tenant {dataset} already registered"
                )));
            }
            t.insert(dataset.clone(), TenantEntry { cache: Arc::clone(&cache), weight });
        }
        self.registry.event(
            "cache.tenant.registered",
            &[("dataset", &dataset), ("weight", &weight.to_string())],
        );
        self.repartition();
        Ok(cache)
    }

    /// Retire a tenant; its budget flows back to the survivors. Returns
    /// whether it was registered.
    pub fn deregister(&self, dataset: &str) -> bool {
        let removed = self.tenants.write().remove(dataset).is_some();
        if removed {
            self.registry.event("cache.tenant.deregistered", &[("dataset", dataset)]);
            self.repartition();
        }
        removed
    }

    /// The cache serving `dataset`, if registered.
    pub fn get(&self, dataset: &str) -> Option<Arc<TaskCache<S>>> {
        self.tenants.read().get(dataset).map(|e| Arc::clone(&e.cache))
    }

    /// Registered tenants, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.tenants.read().keys().cloned().collect()
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.read().len()
    }

    /// The hard per-node byte cap currently assigned to `dataset`.
    pub fn budget_of(&self, dataset: &str) -> Option<u64> {
        self.tenants.read().get(dataset).map(|e| e.cache.capacity_bytes_per_node())
    }

    /// Resize the shared node plane: every tenant's cache swings to the
    /// contiguous membership `0..nodes` (each runs its own warm-handoff
    /// rebalance, reported per tenant in deterministic dataset order).
    pub fn resize_all(&self, nodes: usize) -> Result<Vec<(String, RebalanceReport)>> {
        let caches: Vec<(String, Arc<TaskCache<S>>)> = {
            let t = self.tenants.read();
            t.iter().map(|(ds, e)| (ds.clone(), Arc::clone(&e.cache))).collect()
        };
        let mut reports = Vec::with_capacity(caches.len());
        for (ds, cache) in caches {
            reports.push((ds, cache.resize(nodes)?));
        }
        Ok(reports)
    }

    /// Per-tenant accounting (dataset order).
    pub fn usage(&self) -> Vec<TenantUsage> {
        let entries: Vec<(String, u64, Arc<TaskCache<S>>)> = {
            let t = self.tenants.read();
            t.iter().map(|(ds, e)| (ds.clone(), e.weight, Arc::clone(&e.cache))).collect()
        };
        entries
            .into_iter()
            .map(|(dataset, weight, cache)| {
                let resident_bytes =
                    cache.members().iter().map(|&n| cache.node_resident_bytes(n)).sum();
                let m = cache.metrics();
                TenantUsage {
                    dataset,
                    weight,
                    budget_bytes_per_node: cache.capacity_bytes_per_node(),
                    resident_bytes,
                    file_reads: m.file_reads(),
                    chunk_hits: m.chunk_hits(),
                    evictions: m.evictions(),
                }
            })
            .collect()
    }

    /// Recompute every tenant's weighted share of the node budget and
    /// apply it as that tenant's hard cap. Shares are
    /// `node_budget × weight / Σweights`, so they always sum to at most
    /// the node budget — the plane as a whole can never over-commit.
    fn repartition(&self) {
        let entries: Vec<(String, u64, Arc<TaskCache<S>>)> = {
            let t = self.tenants.read();
            t.iter().map(|(ds, e)| (ds.clone(), e.weight, Arc::clone(&e.cache))).collect()
        };
        let total_weight: u64 = entries.iter().map(|(_, w, _)| *w).sum();
        if total_weight == 0 {
            return;
        }
        for (dataset, weight, cache) in entries {
            let share =
                ((self.node_budget_bytes as u128 * weight as u128) / total_weight as u128) as u64;
            cache.set_capacity_bytes_per_node(share);
            self.registry.gauge("cache.tenant.budget_bytes", &[("dataset", &dataset)]).set(share);
            self.registry.gauge("cache.tenant.weight", &[("dataset", &dataset)]).set(weight);
        }
    }
}

impl<S> std::fmt::Debug for TenantCacheMap<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantCacheMap")
            .field("tenants", &self.tenants.read().len())
            .field("node_budget_bytes", &self.node_budget_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::{ChunkBuilderConfig, ChunkIdGenerator, ChunkWriter};
    use diesel_kv::ShardedKv;
    use diesel_meta::recovery::chunk_object_key;
    use diesel_meta::{FileMeta, MetaService};
    use diesel_store::MemObjectStore;

    /// Write `files` small files for `dataset` into `store` as chunks;
    /// returns the file metas and chunk ids. `seed` keeps chunk ids
    /// distinct across tenants.
    fn seed_dataset(
        store: &Arc<MemObjectStore>,
        dataset: &str,
        files: usize,
        seed: u64,
    ) -> (Vec<FileMeta>, Vec<ChunkId>) {
        let svc = MetaService::new(Arc::new(ShardedKv::new()));
        let ids = ChunkIdGenerator::deterministic(seed, seed as u32, 100);
        let cfg = ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
        for i in 0..files {
            w.add_file(&format!("f{i:04}"), &[(i % 251) as u8; 200]).unwrap();
        }
        for sealed in w.finish() {
            svc.ingest_chunk(dataset, &sealed.header, sealed.bytes.len() as u64).unwrap();
            store.put(&chunk_object_key(dataset, sealed.header.id), sealed.bytes).unwrap();
        }
        let snap = svc.build_snapshot(dataset).unwrap();
        (snap.files.iter().map(|f| f.meta).collect(), snap.chunks)
    }

    fn plane(budget: u64) -> (Arc<MemObjectStore>, TenantCacheMap<MemObjectStore>) {
        let store = Arc::new(MemObjectStore::new());
        let map = TenantCacheMap::new(
            Topology::uniform(2, 2).unwrap(),
            Arc::clone(&store),
            budget,
            CachePolicy::OnDemand,
        )
        .with_pool(WorkPool::inline("tenant-test"));
        (store, map)
    }

    #[test]
    fn budgets_partition_by_weight_and_repartition_on_churn() {
        let (store, map) = plane(90_000);
        let (_, a_chunks) = seed_dataset(&store, "a", 10, 1);
        let (_, b_chunks) = seed_dataset(&store, "b", 10, 2);
        map.register("a", a_chunks, 2).unwrap();
        assert_eq!(map.budget_of("a"), Some(90_000));
        map.register("b", b_chunks, 1).unwrap();
        assert_eq!(map.budget_of("a"), Some(60_000));
        assert_eq!(map.budget_of("b"), Some(30_000));
        assert!(map.deregister("a"));
        assert_eq!(map.budget_of("b"), Some(90_000));
        assert_eq!(map.tenants(), vec!["b".to_string()]);
    }

    #[test]
    fn duplicate_and_zero_weight_registrations_are_rejected() {
        let (store, map) = plane(1 << 20);
        let (_, chunks) = seed_dataset(&store, "a", 4, 1);
        map.register("a", chunks.clone(), 1).unwrap();
        assert!(matches!(
            map.register("a", chunks.clone(), 1),
            Err(CacheError::InvalidMembership(_))
        ));
        assert!(matches!(map.register("z", chunks, 0), Err(CacheError::InvalidMembership(_))));
    }

    #[test]
    fn tenant_a_churn_never_evicts_tenant_b() {
        // Budget fits both tenants' data comfortably; each gets half.
        let (store, map) = plane(1 << 20);
        let (a_metas, a_chunks) = seed_dataset(&store, "a", 40, 1);
        let (b_metas, b_chunks) = seed_dataset(&store, "b", 40, 2);
        let a = map.register("a", a_chunks, 1).unwrap();
        let b = map.register("b", b_chunks, 1).unwrap();
        for m in &b_metas {
            b.get_file(m).unwrap();
        }
        let b_resident: u64 = b.members().iter().map(|&n| b.node_resident_bytes(n)).sum();
        assert!(b_resident > 0);
        // Tenant A hammers its cache (fills everything, repeatedly).
        for _ in 0..3 {
            for m in &a_metas {
                a.get_file(m).unwrap();
            }
        }
        // B's residency and hit path are untouched: A evicts only
        // against A's own budget.
        let b_after: u64 = b.members().iter().map(|&n| b.node_resident_bytes(n)).sum();
        assert_eq!(b_resident, b_after);
        assert_eq!(b.metrics().evictions(), 0);
    }

    #[test]
    fn shrinking_a_share_evicts_synchronously() {
        let (store, map) = plane(1 << 20);
        let (a_metas, a_chunks) = seed_dataset(&store, "a", 40, 1);
        let a = map.register("a", a_chunks, 1).unwrap();
        for m in &a_metas {
            a.get_file(m).unwrap();
        }
        assert!(a.members().iter().map(|&n| a.node_resident_bytes(n)).sum::<u64>() > 0);
        // A heavy new tenant squeezes A's share down to a sliver; A's
        // residency must shrink under the new cap immediately.
        let (_, b_chunks) = seed_dataset(&store, "b", 4, 2);
        map.register("b", b_chunks, 255).unwrap();
        let cap = map.budget_of("a").unwrap();
        for &n in &a.members() {
            assert!(a.node_resident_bytes(n) <= cap);
        }
    }

    #[test]
    fn usage_reports_per_tenant_accounting() {
        let (store, map) = plane(1 << 20);
        let (a_metas, a_chunks) = seed_dataset(&store, "a", 8, 1);
        let (_, b_chunks) = seed_dataset(&store, "b", 8, 2);
        let a = map.register("a", a_chunks, 3).unwrap();
        map.register("b", b_chunks, 1).unwrap();
        for m in &a_metas {
            a.get_file(m).unwrap();
        }
        let usage = map.usage();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].dataset, "a");
        assert_eq!(usage[0].weight, 3);
        assert_eq!(usage[0].file_reads, a_metas.len() as u64);
        assert!(usage[0].resident_bytes > 0);
        assert_eq!(usage[1].dataset, "b");
        assert_eq!(usage[1].file_reads, 0);
        assert_eq!(usage[1].resident_bytes, 0);
    }

    #[test]
    fn resize_all_rebalances_every_tenant() {
        let (store, map) = plane(1 << 20);
        let (a_metas, a_chunks) = seed_dataset(&store, "a", 30, 1);
        let (b_metas, b_chunks) = seed_dataset(&store, "b", 30, 2);
        let a = map.register("a", a_chunks, 1).unwrap();
        let b = map.register("b", b_chunks, 1).unwrap();
        for m in &a_metas {
            a.get_file(m).unwrap();
        }
        for m in &b_metas {
            b.get_file(m).unwrap();
        }
        let reports = map.resize_all(4).unwrap();
        assert_eq!(reports.len(), 2);
        for (_, r) in &reports {
            assert_eq!(r.epoch, 1);
        }
        assert_eq!(a.members(), vec![0, 1, 2, 3]);
        for m in &a_metas {
            a.get_file(m).unwrap();
        }
        for m in &b_metas {
            b.get_file(m).unwrap();
        }
    }
}
