//! Dataset partitioning: assigning chunks to the task's cache nodes.
//!
//! The master clients "participate in dataset partitioning" (§4.2): every
//! client computes the owner of any chunk locally — no directory service,
//! no extra hop. Placement is delegated to the consistent-hash
//! [`HashRing`], so the partition is a pure
//! function of (chunk set, membership set) and a membership change moves
//! only ≈ 1/n of the chunks (DESIGN.md §13). The materialized owner map
//! and per-node lists here are a lookup cache over the ring plus the
//! dataset-scoping filter (`owner_of` answers `None` for chunks outside
//! the dataset, which the bare ring cannot).

use std::collections::HashMap;

use diesel_chunk::ChunkId;

use crate::ring::HashRing;
use crate::Result;

/// One chunk relocation between two memberships: `chunk` leaves `from`'s
/// cache and must become resident on `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMove {
    /// The relocated chunk.
    pub chunk: ChunkId,
    /// Owner under the old membership — the warm-handoff source peer.
    pub from: usize,
    /// Owner under the new membership.
    pub to: usize,
}

/// The chunk → node assignment for one dataset in one task.
#[derive(Debug, Clone)]
pub struct ChunkPartition {
    ring: HashRing,
    owner: HashMap<ChunkId, usize>,
    per_node: HashMap<usize, Vec<ChunkId>>,
    chunks: Vec<ChunkId>,
}

impl ChunkPartition {
    /// Partition `chunks` (any order; they are sorted internally so that
    /// all peers agree) over the contiguous membership `0..nodes`.
    pub fn new(chunks: Vec<ChunkId>, nodes: usize) -> Result<Self> {
        Ok(Self::with_ring(chunks, HashRing::contiguous(nodes)?))
    }

    /// Partition `chunks` over an explicit ring membership.
    pub fn with_ring(mut chunks: Vec<ChunkId>, ring: HashRing) -> Self {
        chunks.sort_unstable();
        chunks.dedup();
        let mut owner = HashMap::with_capacity(chunks.len());
        let mut per_node: HashMap<usize, Vec<ChunkId>> = HashMap::new();
        for &m in ring.members() {
            per_node.insert(m, Vec::new());
        }
        for &c in &chunks {
            let node = ring.owner_of(c);
            owner.insert(c, node);
            if let Some(list) = per_node.get_mut(&node) {
                list.push(c);
            }
        }
        ChunkPartition { ring, owner, per_node, chunks }
    }

    /// The same chunk set partitioned over a different ring.
    pub fn with_membership(&self, ring: HashRing) -> Self {
        Self::with_ring(self.chunks.clone(), ring)
    }

    /// The placement ring underlying this partition.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The node owning `chunk`, if it belongs to the dataset.
    pub fn owner_of(&self, chunk: ChunkId) -> Option<usize> {
        self.owner.get(&chunk).copied()
    }

    /// The chunks assigned to `node` (empty for non-members).
    pub fn chunks_of(&self, node: usize) -> &[ChunkId] {
        self.per_node.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.ring.node_count()
    }

    /// Member node ids (sorted).
    pub fn members(&self) -> &[usize] {
        self.ring.members()
    }

    /// Total number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.owner.len()
    }

    /// The sorted, deduplicated chunk set.
    pub fn chunks(&self) -> &[ChunkId] {
        &self.chunks
    }

    /// The chunks whose owner differs between `self` and `new`, in
    /// sorted chunk order (deterministic sweep order for the rebalance).
    /// The consistent-hash ring bounds this at ≈ Δnodes/n_new of the
    /// dataset.
    pub fn moved_to(&self, new: &ChunkPartition) -> Vec<ChunkMove> {
        let mut moves = Vec::new();
        for &c in &self.chunks {
            if let (Some(from), Some(to)) = (self.owner_of(c), new.owner_of(c)) {
                if from != to {
                    moves.push(ChunkMove { chunk: c, from, to });
                }
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::ChunkIdGenerator;

    fn chunks(n: usize) -> Vec<ChunkId> {
        let g = ChunkIdGenerator::deterministic(1, 1, 10);
        (0..n).map(|_| g.next_id()).collect()
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(ChunkPartition::new(chunks(4), 0).is_err());
    }

    #[test]
    fn assignment_is_roughly_balanced() {
        let p = ChunkPartition::new(chunks(1000), 4).unwrap();
        assert_eq!(p.chunk_count(), 1000);
        let mut total = 0;
        for node in 0..4 {
            let share = p.chunks_of(node).len();
            // Ring placement balances statistically, not exactly: with
            // 128 vnodes each share lands near 250 ± a few tens.
            assert!((125..=375).contains(&share), "node {node} holds {share} of 1000");
            total += share;
        }
        assert_eq!(total, 1000, "every chunk is owned exactly once");
    }

    #[test]
    fn owner_lookup_agrees_with_per_node_lists() {
        let p = ChunkPartition::new(chunks(37), 5).unwrap();
        for node in 0..5 {
            for &c in p.chunks_of(node) {
                assert_eq!(p.owner_of(c), Some(node));
            }
        }
    }

    #[test]
    fn assignment_is_order_independent() {
        let mut cs = chunks(50);
        let p1 = ChunkPartition::new(cs.clone(), 4).unwrap();
        cs.reverse();
        let p2 = ChunkPartition::new(cs.clone(), 4).unwrap();
        for c in &cs {
            assert_eq!(p1.owner_of(*c), p2.owner_of(*c), "peers must agree on owners");
        }
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut cs = chunks(10);
        cs.extend(cs.clone());
        let p = ChunkPartition::new(cs, 2).unwrap();
        assert_eq!(p.chunk_count(), 10);
    }

    #[test]
    fn unknown_chunk_has_no_owner() {
        let p = ChunkPartition::new(chunks(5), 2).unwrap();
        let foreign = ChunkIdGenerator::deterministic(99, 99, 99).next_id();
        assert_eq!(p.owner_of(foreign), None);
    }

    #[test]
    fn moved_to_lists_exactly_the_ownership_diffs() {
        let old = ChunkPartition::new(chunks(600), 4).unwrap();
        let new = old.with_membership(old.ring().add(4).unwrap());
        let moves = old.moved_to(&new);
        assert!(!moves.is_empty(), "a join must claim some chunks");
        assert!(
            moves.len() <= 2 * old.chunk_count() / 5,
            "join moved {}/600, beyond the 2/n consistency bound",
            moves.len()
        );
        for m in &moves {
            assert_eq!(old.owner_of(m.chunk), Some(m.from));
            assert_eq!(new.owner_of(m.chunk), Some(m.to));
            assert_eq!(m.to, 4, "a join only moves chunks to the joiner");
        }
        let moved: std::collections::HashSet<ChunkId> = moves.iter().map(|m| m.chunk).collect();
        for &c in old.chunks() {
            if !moved.contains(&c) {
                assert_eq!(old.owner_of(c), new.owner_of(c), "unmoved chunk changed owner");
            }
        }
    }

    #[test]
    fn shrink_returns_the_leavers_chunks() {
        let big = ChunkPartition::new(chunks(300), 5).unwrap();
        let small = big.with_membership(big.ring().remove(4).unwrap());
        assert_eq!(small.chunks_of(4), &[] as &[ChunkId], "leaver owns nothing");
        for m in big.moved_to(&small) {
            assert_eq!(m.from, 4, "only the leaver's chunks move on a shrink");
        }
    }
}
