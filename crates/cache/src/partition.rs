//! Dataset partitioning: assigning chunks to the task's cache nodes.
//!
//! The master clients "participate in dataset partitioning" (§4.2): the
//! sorted chunk list is dealt round-robin across physical nodes, so every
//! node caches an equal share and any client can compute the owner of any
//! chunk locally — no directory service, no extra hop.

use std::collections::HashMap;

use diesel_chunk::ChunkId;

/// The chunk → node assignment for one dataset in one task.
#[derive(Debug, Clone)]
pub struct ChunkPartition {
    owner: HashMap<ChunkId, usize>,
    per_node: Vec<Vec<ChunkId>>,
}

impl ChunkPartition {
    /// Deal `chunks` (any order; they are sorted internally so that all
    /// peers agree) round-robin over `nodes`.
    pub fn new(mut chunks: Vec<ChunkId>, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        chunks.sort_unstable();
        chunks.dedup();
        let mut owner = HashMap::with_capacity(chunks.len());
        let mut per_node = vec![Vec::new(); nodes];
        for (i, c) in chunks.iter().enumerate() {
            let node = i % nodes;
            owner.insert(*c, node);
            if let Some(list) = per_node.get_mut(node) {
                list.push(*c);
            }
        }
        ChunkPartition { owner, per_node }
    }

    /// The node owning `chunk`, if it belongs to the dataset.
    pub fn owner_of(&self, chunk: ChunkId) -> Option<usize> {
        self.owner.get(&chunk).copied()
    }

    /// The chunks assigned to `node` (empty for out-of-range nodes).
    pub fn chunks_of(&self, node: usize) -> &[ChunkId] {
        self.per_node.get(node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// Total number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.owner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::ChunkIdGenerator;

    fn chunks(n: usize) -> Vec<ChunkId> {
        let g = ChunkIdGenerator::deterministic(1, 1, 10);
        (0..n).map(|_| g.next_id()).collect()
    }

    #[test]
    fn balanced_assignment() {
        let p = ChunkPartition::new(chunks(100), 4);
        assert_eq!(p.chunk_count(), 100);
        for node in 0..4 {
            assert_eq!(p.chunks_of(node).len(), 25);
        }
    }

    #[test]
    fn uneven_remainder_spreads_front_nodes() {
        let p = ChunkPartition::new(chunks(10), 3);
        let sizes: Vec<usize> = (0..3).map(|n| p.chunks_of(n).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn owner_lookup_agrees_with_per_node_lists() {
        let p = ChunkPartition::new(chunks(37), 5);
        for node in 0..5 {
            for &c in p.chunks_of(node) {
                assert_eq!(p.owner_of(c), Some(node));
            }
        }
    }

    #[test]
    fn assignment_is_order_independent() {
        let mut cs = chunks(50);
        let p1 = ChunkPartition::new(cs.clone(), 4);
        cs.reverse();
        let p2 = ChunkPartition::new(cs.clone(), 4);
        for c in &cs {
            assert_eq!(p1.owner_of(*c), p2.owner_of(*c), "peers must agree on owners");
        }
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut cs = chunks(10);
        cs.extend(cs.clone());
        let p = ChunkPartition::new(cs, 2);
        assert_eq!(p.chunk_count(), 10);
    }

    #[test]
    fn unknown_chunk_has_no_owner() {
        let p = ChunkPartition::new(chunks(5), 2);
        let foreign = ChunkIdGenerator::deterministic(99, 99, 99).next_id();
        assert_eq!(p.owner_of(foreign), None);
    }
}
