//! Message-passing transport between cache peers.
//!
//! The real DIESEL uses Apache Thrift between clients ("Peers in the
//! task-grained distributed caching system also use Thrift to exchange
//! data", §5). This module provides the in-process equivalent with real
//! message passing: each master client runs a [`PeerServer`] thread that
//! owns its chunk data and serves fetch requests arriving on a crossbeam
//! channel; [`PeerHandle`]s are the "connections" other clients hold.
//!
//! The shared-memory [`TaskCache`](crate::task_cache::TaskCache) remains
//! the fast path for single-process deployments; [`RpcCache`] composes
//! peer servers into the same one-hop read protocol over channels, and
//! the tests assert both give identical results.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::Arc;

use diesel_chunk::{ChunkHeader, ChunkId};
use diesel_meta::recovery::chunk_object_key;
use diesel_meta::FileMeta;
use diesel_store::{Bytes, ObjectStore};

use crate::partition::ChunkPartition;
use crate::{CacheError, Result};

/// A fetch request to a peer.
#[derive(Debug)]
enum Request {
    /// Read one file out of a chunk the peer owns.
    FetchFile {
        /// File location.
        meta: FileMeta,
        /// Where to send the reply.
        reply: Sender<Result<Bytes>>,
    },
    /// Fetch a whole chunk (used by recovering peers / chunk-wise reads).
    FetchChunk {
        /// The chunk ID.
        chunk: ChunkId,
        /// Where to send the reply.
        reply: Sender<Result<Bytes>>,
    },
    /// Orderly shutdown.
    Shutdown,
}

/// A connection to one peer (clone per client; channels are MPMC).
#[derive(Debug, Clone)]
pub struct PeerHandle {
    tx: Sender<Request>,
}

impl PeerHandle {
    /// Fetch a file from the peer (one hop, blocking).
    pub fn fetch_file(&self, meta: &FileMeta) -> Result<Bytes> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Request::FetchFile { meta: *meta, reply: reply_tx })
            .map_err(|_| CacheError::NodeDown { node: usize::MAX })?;
        reply_rx.recv().map_err(|_| CacheError::NodeDown { node: usize::MAX })?
    }

    /// Fetch a whole chunk from the peer.
    pub fn fetch_chunk(&self, chunk: ChunkId) -> Result<Bytes> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Request::FetchChunk { chunk, reply: reply_tx })
            .map_err(|_| CacheError::NodeDown { node: usize::MAX })?;
        reply_rx.recv().map_err(|_| CacheError::NodeDown { node: usize::MAX })?
    }
}

/// One master client's serving thread: owns its partition's chunks.
pub struct PeerServer {
    handle: PeerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

struct PeerState<S> {
    node: usize,
    dataset: String,
    backing: Arc<S>,
    chunks: HashMap<ChunkId, (Bytes, u32)>, // bytes + header_len
}

impl<S: ObjectStore> PeerState<S> {
    fn ensure_chunk(&mut self, chunk: ChunkId) -> Result<&(Bytes, u32)> {
        if !self.chunks.contains_key(&chunk) {
            let key = chunk_object_key(&self.dataset, chunk);
            let bytes = self
                .backing
                .get(&key)
                .map_err(|e| CacheError::Backing(e.to_string()))?;
            let header =
                ChunkHeader::decode(&bytes).map_err(|e| CacheError::Corrupt(e.to_string()))?;
            self.chunks.insert(chunk, (bytes, header.header_len));
        }
        Ok(self.chunks.get(&chunk).expect("just inserted"))
    }

    fn serve(mut self, rx: Receiver<Request>) {
        let _ = self.node;
        while let Ok(req) = rx.recv() {
            match req {
                Request::FetchFile { meta, reply } => {
                    let out = self.ensure_chunk(meta.chunk).and_then(|(bytes, hlen)| {
                        let start = *hlen as usize + meta.offset as usize;
                        let end = start + meta.length as usize;
                        if end > bytes.len() {
                            Err(CacheError::Corrupt(format!(
                                "range {start}..{end} outside chunk"
                            )))
                        } else {
                            Ok(bytes.slice(start..end))
                        }
                    });
                    let _ = reply.send(out);
                }
                Request::FetchChunk { chunk, reply } => {
                    let out = self.ensure_chunk(chunk).map(|(bytes, _)| bytes.clone());
                    let _ = reply.send(out);
                }
                Request::Shutdown => break,
            }
        }
    }
}

impl PeerServer {
    /// Spawn a serving thread for node `node`, loading chunks lazily
    /// from `backing`.
    pub fn spawn<S: ObjectStore + 'static>(
        node: usize,
        dataset: impl Into<String>,
        backing: Arc<S>,
    ) -> Self {
        let (tx, rx) = unbounded();
        let state =
            PeerState { node, dataset: dataset.into(), backing, chunks: HashMap::new() };
        let thread = std::thread::Builder::new()
            .name(format!("diesel-peer-{node}"))
            .spawn(move || state.serve(rx))
            .expect("spawn peer thread");
        PeerServer { handle: PeerHandle { tx }, thread: Some(thread) }
    }

    /// A connection handle to this peer.
    pub fn handle(&self) -> PeerHandle {
        self.handle.clone()
    }

    /// Stop the peer (simulating a node crash: in-flight and future
    /// requests fail).
    pub fn kill(&mut self) {
        let _ = self.handle.tx.send(Request::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PeerServer {
    fn drop(&mut self) {
        self.kill();
    }
}

impl std::fmt::Debug for PeerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerServer").finish_non_exhaustive()
    }
}

/// A task cache whose one-hop reads really cross threads: one
/// [`PeerServer`] per node, clients routing via the shared partition.
pub struct RpcCache {
    partition: ChunkPartition,
    peers: Vec<PeerServer>,
}

impl RpcCache {
    /// Spawn `nodes` peer servers for `dataset`.
    pub fn spawn<S: ObjectStore + 'static>(
        nodes: usize,
        dataset: &str,
        backing: Arc<S>,
        chunks: Vec<ChunkId>,
    ) -> Self {
        let partition = ChunkPartition::new(chunks, nodes);
        let peers = (0..nodes)
            .map(|n| PeerServer::spawn(n, dataset, backing.clone()))
            .collect();
        RpcCache { partition, peers }
    }

    /// The partition map (all clients share it, so owner lookup is
    /// local — no directory hop).
    pub fn partition(&self) -> &ChunkPartition {
        &self.partition
    }

    /// Read a file via its owner peer (one message round trip).
    pub fn get_file(&self, meta: &FileMeta) -> Result<Bytes> {
        let owner = self
            .partition
            .owner_of(meta.chunk)
            .ok_or_else(|| CacheError::UnknownChunk(meta.chunk.encode()))?;
        self.peers[owner].handle().fetch_file(meta).map_err(|e| match e {
            CacheError::NodeDown { .. } => CacheError::NodeDown { node: owner },
            other => other,
        })
    }

    /// Kill one node's peer server.
    pub fn kill_node(&mut self, node: usize) {
        self.peers[node].kill();
    }
}

impl std::fmt::Debug for RpcCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcCache").field("nodes", &self.peers.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task_cache::{CacheConfig, CachePolicy, TaskCache};
    use crate::topology::Topology;
    use diesel_chunk::{ChunkBuilderConfig, ChunkIdGenerator, ChunkWriter};
    use diesel_kv::ShardedKv;
    use diesel_meta::MetaService;
    use diesel_store::MemObjectStore;

    fn dataset(files: usize) -> (Arc<MemObjectStore>, Vec<(String, FileMeta)>, Vec<ChunkId>) {
        let store = Arc::new(MemObjectStore::new());
        let svc = MetaService::new(Arc::new(ShardedKv::new()));
        let ids = ChunkIdGenerator::deterministic(5, 5, 55);
        let cfg = ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
        for i in 0..files {
            w.add_file(&format!("f{i:04}"), &vec![(i % 251) as u8; 300]).unwrap();
        }
        for sealed in w.finish() {
            store
                .put(&chunk_object_key("ds", sealed.header.id), Bytes::from(sealed.bytes.clone()))
                .unwrap();
            svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
        }
        let snap = svc.build_snapshot("ds").unwrap();
        let metas = snap.files.iter().map(|f| (f.path.clone(), f.meta)).collect();
        (store, metas, snap.chunks)
    }

    #[test]
    fn rpc_reads_cross_real_threads() {
        let (store, metas, chunks) = dataset(60);
        let rpc = RpcCache::spawn(3, "ds", store, chunks);
        for (name, meta) in &metas {
            let i: usize = name[1..].parse().unwrap();
            assert_eq!(rpc.get_file(meta).unwrap().as_ref(), &vec![(i % 251) as u8; 300][..]);
        }
    }

    #[test]
    fn rpc_and_shared_memory_caches_agree() {
        let (store, metas, chunks) = dataset(50);
        let rpc = RpcCache::spawn(2, "ds", store.clone(), chunks.clone());
        let shm = TaskCache::new(
            Topology::uniform(2, 2),
            store,
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::OnDemand },
        );
        for (_, meta) in &metas {
            assert_eq!(rpc.get_file(meta).unwrap(), shm.get_file(meta).unwrap().data);
        }
    }

    #[test]
    fn concurrent_clients_share_peers() {
        let (store, metas, chunks) = dataset(80);
        let rpc = Arc::new(RpcCache::spawn(4, "ds", store, chunks));
        let metas = Arc::new(metas);
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let rpc = rpc.clone();
                let metas = metas.clone();
                std::thread::spawn(move || {
                    for (i, (_, meta)) in metas.iter().enumerate() {
                        if i % 8 == t {
                            rpc.get_file(meta).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn killed_peer_fails_its_partition_only() {
        let (store, metas, chunks) = dataset(60);
        let mut rpc = RpcCache::spawn(3, "ds", store, chunks);
        rpc.kill_node(1);
        let mut down = 0;
        let mut ok = 0;
        for (_, meta) in &metas {
            match rpc.get_file(meta) {
                Ok(_) => ok += 1,
                Err(CacheError::NodeDown { node: 1 }) => down += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(down > 0, "node 1's share must fail");
        assert!(ok > 0, "other partitions keep serving");
    }

    #[test]
    fn fetch_chunk_returns_parseable_chunk() {
        let (store, _, chunks) = dataset(40);
        let rpc = RpcCache::spawn(2, "ds", store, chunks.clone());
        for &c in &chunks {
            let owner = rpc.partition().owner_of(c).unwrap();
            let bytes = rpc.peers[owner].handle().fetch_chunk(c).unwrap();
            diesel_chunk::ChunkReader::parse(&bytes).unwrap();
        }
    }

    #[test]
    fn drop_shuts_peers_down_cleanly() {
        let (store, metas, chunks) = dataset(20);
        let handle = {
            let rpc = RpcCache::spawn(2, "ds", store, chunks);
            rpc.get_file(&metas[0].1).unwrap();
            rpc.peers[0].handle()
        }; // rpc dropped here: threads joined
        assert!(handle.fetch_file(&metas[0].1).is_err(), "dead peer must error");
    }
}
